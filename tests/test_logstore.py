"""Tests for log records, the buffer-logging buffer, and the four schemes."""

import numpy as np
import pytest

from repro.ec.delta import ParityDelta
from repro.logstore import SCHEMES, make_scheme
from repro.logstore.buffer import LogBuffer
from repro.logstore.records import LogRecord, merge_records
from repro.sim.disk import DiskModel
from repro.sim.params import HardwareProfile

PHYS = 256  # physical chunk size used in these tests
LOGICAL = 4096


def _chunk_record(sid=0, pidx=1, seed=0):
    rng = np.random.default_rng(seed)
    return LogRecord.for_chunk(sid, pidx, rng.integers(0, 256, PHYS, dtype=np.uint8), LOGICAL)


def _delta_record(sid=0, pidx=1, offset=0, length=PHYS, seed=1):
    rng = np.random.default_rng(seed)
    d = ParityDelta(sid, pidx, offset, rng.integers(0, 256, length, dtype=np.uint8))
    return LogRecord.for_delta(d, round(LOGICAL * length / PHYS))


def _disk():
    return DiskModel(HardwareProfile())


# ------------------------------------------------------------------- records


def test_log_record_requires_exactly_one_payload():
    with pytest.raises(ValueError):
        LogRecord(stripe_id=0, parity_index=0, logical_nbytes=10)
    d = ParityDelta(0, 0, 0, np.zeros(4, dtype=np.uint8))
    with pytest.raises(ValueError):
        LogRecord(
            stripe_id=0, parity_index=0, logical_nbytes=10,
            chunk=np.zeros(4, dtype=np.uint8), delta=d,
        )


def test_log_record_positive_bytes():
    with pytest.raises(ValueError):
        LogRecord(stripe_id=0, parity_index=0, logical_nbytes=0, chunk=np.zeros(4, dtype=np.uint8))


def test_merge_records_chunk_plus_deltas():
    base = _chunk_record(seed=3)
    d1 = _delta_record(offset=0, length=64, seed=4)
    d2 = _delta_record(offset=32, length=64, seed=5)
    merged = merge_records([base, d1, d2])
    assert merged.is_chunk
    expect = base.chunk.copy()
    expect[0:64] ^= d1.delta.payload
    expect[32:96] ^= d2.delta.payload
    assert np.array_equal(merged.chunk, expect)
    assert merged.logical_nbytes == LOGICAL


def test_merge_records_deltas_only():
    d1 = _delta_record(offset=0, length=64, seed=6)
    d2 = _delta_record(offset=64, length=64, seed=7)
    merged = merge_records([d1, d2])
    assert not merged.is_chunk
    assert merged.delta.offset == 0
    assert merged.delta.length == 128
    # logical size scales to the union extent at the same density
    assert merged.logical_nbytes == d1.logical_nbytes + d2.logical_nbytes


def test_merge_records_rejects_mixed_keys():
    with pytest.raises(ValueError):
        merge_records([_delta_record(sid=0), _delta_record(sid=1)])


def test_merge_records_rejects_two_chunks():
    with pytest.raises(ValueError):
        merge_records([_chunk_record(), _chunk_record()])


def test_merge_records_empty():
    with pytest.raises(ValueError):
        merge_records([])


# -------------------------------------------------------------------- buffer


def test_buffer_merging_collapses_same_target():
    buf = LogBuffer(capacity_bytes=1 << 20, flush_threshold_bytes=1 << 19, merge=True)
    buf.add(_delta_record(offset=0, length=64, seed=1))
    buf.add(_delta_record(offset=0, length=64, seed=2))
    assert len(buf) == 1
    assert buf.merges == 1
    assert buf.appends == 2


def test_buffer_no_merge_keeps_all():
    buf = LogBuffer(capacity_bytes=1 << 20, flush_threshold_bytes=1 << 19, merge=False)
    buf.add(_delta_record(seed=1))
    buf.add(_delta_record(seed=2))
    assert len(buf) == 2
    assert buf.merges == 0


def test_buffer_threshold_and_capacity():
    buf = LogBuffer(capacity_bytes=10_000, flush_threshold_bytes=8_000, merge=False)
    assert not buf.should_flush()
    buf.add(_delta_record(sid=1, length=PHYS, seed=1))  # 4096 logical
    buf.add(_delta_record(sid=2, length=PHYS, seed=2))
    assert buf.should_flush()
    assert not buf.is_full()
    buf.add(_delta_record(sid=3, length=PHYS, seed=3))
    assert buf.is_full()


def test_buffer_threshold_above_capacity_rejected():
    with pytest.raises(ValueError):
        LogBuffer(capacity_bytes=10, flush_threshold_bytes=20)


def test_buffer_drain_resets():
    buf = LogBuffer(capacity_bytes=1 << 20, flush_threshold_bytes=1 << 19)
    buf.add(_delta_record(sid=1))
    buf.add(_delta_record(sid=2))
    records = buf.drain()
    assert len(records) == 2
    assert buf.is_empty
    assert buf.logical_bytes == 0


def test_buffer_records_for():
    buf = LogBuffer(capacity_bytes=1 << 20, flush_threshold_bytes=1 << 19)
    buf.add(_delta_record(sid=1, pidx=1))
    buf.add(_delta_record(sid=2, pidx=1))
    assert len(buf.records_for(1, 1)) == 1
    assert buf.records_for(3, 1) == []


# ----------------------------------------------------------------- schemes


def test_make_scheme_names():
    for name in SCHEMES:
        scheme = make_scheme(name, _disk())
        assert scheme.name == name
    with pytest.raises(ValueError):
        make_scheme("bogus", _disk())


def _feed(scheme, n_updates=6, flush_every=3):
    """Write a base chunk then n deltas in batches; return expected parity."""
    rng = np.random.default_rng(42)
    base = rng.integers(0, 256, PHYS, dtype=np.uint8)
    scheme.flush([LogRecord.for_chunk(7, 1, base, LOGICAL)], now=0.0)
    expect = base.copy()
    batch = []
    for i in range(n_updates):
        off = (i * 32) % (PHYS - 64)
        payload = rng.integers(0, 256, 64, dtype=np.uint8)
        expect[off : off + 64] ^= payload
        batch.append(
            LogRecord.for_delta(ParityDelta(7, 1, off, payload), round(LOGICAL * 64 / PHYS))
        )
        if len(batch) == flush_every:
            scheme.flush(batch, now=0.0)
            batch = []
    if batch:
        scheme.flush(batch, now=0.0)
    scheme.settle(now=0.0)
    return expect


@pytest.mark.parametrize("name", sorted(SCHEMES))
def test_all_schemes_reconstruct_identical_parity(name):
    scheme = make_scheme(name, _disk())
    expect = _feed(scheme)
    result = scheme.read_parity(7, 1, PHYS, now=1.0)
    assert np.array_equal(result.payload, expect)
    assert result.has_base


def test_pl_flush_is_one_sequential_io():
    disk = _disk()
    scheme = make_scheme("pl", disk)
    recs = [_delta_record(sid=i, seed=i) for i in range(5)]
    scheme.flush(recs, now=0.0)
    assert disk.stats.writes == 1
    assert disk.stats.seeks == 0


def test_plr_flush_is_one_random_io_per_record():
    disk = _disk()
    scheme = make_scheme("plr", disk)
    recs = [_delta_record(sid=i, seed=i) for i in range(5)]
    scheme.flush(recs, now=0.0)
    assert disk.stats.writes == 5
    assert disk.stats.seeks == 5


def test_plrm_merges_within_flush():
    disk = _disk()
    scheme = make_scheme("plr-m", disk)
    recs = [
        _delta_record(sid=1, seed=1),
        _delta_record(sid=1, seed=2),  # same stripe -> merged
        _delta_record(sid=2, seed=3),
    ]
    scheme.flush(recs, now=0.0)
    assert disk.stats.writes == 2


def test_plm_stages_then_lazily_merges():
    disk = _disk()
    scheme = make_scheme("plm", disk)
    scheme.staging_threshold_bytes = 10_000
    recs = [_delta_record(sid=1, seed=1), _delta_record(sid=1, seed=2)]
    scheme.flush(recs, now=0.0)  # 8192 logical staged: below threshold
    assert disk.stats.writes == 1  # one sequential staging append
    assert scheme.staging_bytes > 0
    scheme.flush([_delta_record(sid=2, seed=3)], now=0.0)  # crosses threshold
    assert scheme.lazy_merges == 1
    assert scheme.staging_bytes == 0
    # 2 staging appends + 2 merged region writes (stripe 1 merged to one)
    assert disk.stats.writes == 4
    assert disk.stats.reads == 1  # staging read-back


def test_plm_settle_merges_remainder():
    scheme = make_scheme("plm", _disk())
    scheme.flush([_delta_record(sid=1, seed=1)], now=0.0)
    assert scheme.staging_bytes > 0
    scheme.settle(now=0.0)
    assert scheme.staging_bytes == 0


def test_pl_repair_reads_scale_with_flush_batches():
    disk = _disk()
    scheme = make_scheme("pl", disk)
    _feed(scheme, n_updates=6, flush_every=2)
    disk.stats.reads = 0
    result = scheme.read_parity(7, 1, PHYS, now=1.0)
    # base + one seek per flush batch (6 deltas over 3 batches) = 4 reads;
    # records inside one batch are contiguous on disk
    assert result.disk_reads == 4


def test_pl_repair_reads_grow_with_scattered_flushes():
    disk = _disk()
    scheme = make_scheme("pl", disk)
    _feed(scheme, n_updates=6, flush_every=1)  # every delta its own batch
    disk.stats.reads = 0
    result = scheme.read_parity(7, 1, PHYS, now=1.0)
    assert result.disk_reads == 7  # base + 6 scattered deltas


@pytest.mark.parametrize("name", ["plr", "plr-m"])
def test_reserved_schemes_repair_in_one_read(name):
    scheme = make_scheme(name, _disk())
    _feed(scheme, n_updates=6, flush_every=2)
    result = scheme.read_parity(7, 1, PHYS, now=1.0)
    assert result.disk_reads == 1


def test_plm_repair_reads_fewer_bytes_than_plr():
    """Cross-flush merging shrinks the reserved region PLM has to read."""
    plr = make_scheme("plr", _disk())
    plm = make_scheme("plm", _disk())
    # Overlapping same-stripe deltas across different flush batches merge in
    # PLM's staging window but not in PLR's reserved space.
    for scheme in (plr, plm):
        rng = np.random.default_rng(0)
        base = rng.integers(0, 256, PHYS, dtype=np.uint8)
        scheme.flush([LogRecord.for_chunk(1, 1, base, LOGICAL)], now=0.0)
        for _ in range(4):
            d = ParityDelta(1, 1, 0, rng.integers(0, 256, 64, dtype=np.uint8))
            scheme.flush([LogRecord.for_delta(d, 1024)], now=0.0)
        scheme.settle(now=0.0)
    r_plr = plr.read_parity(1, 1, PHYS, now=1.0)
    r_plm = plm.read_parity(1, 1, PHYS, now=1.0)
    assert r_plm.logical_bytes_read < r_plr.logical_bytes_read
    assert np.array_equal(r_plm.payload, r_plr.payload)


def test_empty_flush_is_free():
    for name in SCHEMES:
        disk = _disk()
        scheme = make_scheme(name, disk)
        assert scheme.flush([], now=0.0) == 0.0
        assert disk.stats.io_count == 0
