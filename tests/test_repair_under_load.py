"""Tests for node repair under foreground load (§5.3's congestion case)."""

import pytest

from repro.core.config import StoreConfig
from repro.core.logecmem import LogECMem
from repro.core.repair import repair_node


def _failed_store(n=48):
    store = LogECMem(StoreConfig(k=4, r=3, payload_scale=1 / 16))
    for i in range(n):
        store.write(f"user{i}")
    store.cluster.kill("dram1")
    return store


def test_foreground_load_slows_repair():
    store = _failed_store()
    idle = repair_node(store, "dram1", foreground_utilisation=0.0)
    busy = repair_node(store, "dram1", foreground_utilisation=0.5)
    assert busy.repair_time_s > 1.8 * idle.repair_time_s


def test_log_assist_saves_more_absolute_time_under_load():
    """Log-node bandwidth is free (§5.3), so the seconds log-assist saves
    grow as foreground traffic inflates DRAM GETs."""
    savings = {}
    for u in (0.0, 0.6):
        store_a = _failed_store()
        store_b = _failed_store()
        plain = repair_node(store_a, "dram1", log_assist=False, foreground_utilisation=u)
        assisted = repair_node(store_b, "dram1", log_assist=True, foreground_utilisation=u)
        savings[u] = plain.repair_time_s - assisted.repair_time_s
        assert assisted.repair_time_s < plain.repair_time_s
    assert savings[0.6] > savings[0.0]


def test_relative_gain_stable_in_serial_get_model():
    """With serial per-stripe GETs the relative gain is structurally
    ~k/(k-1) regardless of load (documented model property)."""
    gains = []
    for u in (0.0, 0.5):
        store_a = _failed_store()
        store_b = _failed_store()
        plain = repair_node(store_a, "dram1", log_assist=False, foreground_utilisation=u)
        assisted = repair_node(store_b, "dram1", log_assist=True, foreground_utilisation=u)
        gains.append(plain.repair_time_s / assisted.repair_time_s)
    assert gains[0] == pytest.approx(gains[1], rel=0.05)


def test_utilisation_validation():
    store = _failed_store()
    with pytest.raises(ValueError):
        repair_node(store, "dram1", foreground_utilisation=1.0)
    with pytest.raises(ValueError):
        repair_node(store, "dram1", foreground_utilisation=-0.1)
