"""Property-based chaos: any kill/restore sequence within the code's failure
tolerance leaves every object decodable (hypothesis drives the sequences)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import make_store
from repro.bench.runner import load_store
from repro.chaos import check_store
from repro.core import StoreConfig
from repro.core.recovery import crash_log_node, recover_log_node
from repro.workloads import WorkloadSpec

# small on purpose: hypothesis runs the whole scenario per example
K, R = 3, 3
N_OBJECTS = 48


def build_store():
    store = make_store("logecmem", StoreConfig(k=K, r=R, value_size=512, scheme="plm"))
    spec = WorkloadSpec(
        n_objects=N_OBJECTS, n_requests=0, value_size=512, seed=2,
        read_ratio=1.0, update_ratio=0.0,
    )
    load_store(store, spec)
    # a few updates so logged parities carry real deltas
    for i in range(0, N_OBJECTS, 3):
        store.update(f"user{i:016d}")
    store.finalize()
    return store


@settings(max_examples=20, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=11), min_size=1, max_size=10))
def test_any_tolerated_failure_sequence_keeps_objects_decodable(toggles):
    """Interpret each integer as toggling one node up<->down; skip any toggle
    that would exceed the code's tolerance of r simultaneous failures.  After
    the sequence, every acked object must reconstruct from survivors."""
    store = build_store()
    node_ids = store.cluster.dram_ids() + store.cluster.log_ids()
    down: set[str] = set()
    for t in toggles:
        nid = node_ids[t % len(node_ids)]
        if nid in down:
            if nid in store.cluster.log_nodes:
                recover_log_node(store, nid)  # rebuild before serving again
            else:
                store.cluster.restore(nid)
            down.discard(nid)
        else:
            if len(down) >= R:
                continue  # beyond tolerance: the MDS guarantee ends at r
            if nid in store.cluster.log_nodes:
                crash_log_node(store.cluster.log_nodes[nid])
            store.cluster.kill(nid)
            down.add(nid)
    assert len(down) <= R
    report = check_store(store)
    assert report.violations == [], [v.describe() for v in report.violations]
    assert report.objects_checked == N_OBJECTS


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=3), st.integers(min_value=0, max_value=1))
def test_reads_stay_correct_with_one_dram_and_one_log_down(dram_i, log_i):
    """Every (DRAM node, log node) failure pair: all reads degrade correctly."""
    store = build_store()
    store.cluster.kill(f"dram{dram_i}")
    crash_log_node(store.cluster.log_nodes[f"log{log_i}"])
    store.cluster.kill(f"log{log_i}")
    for i in range(N_OBJECTS):
        key = f"user{i:016d}"
        res = store.read(key)
        assert np.array_equal(res.value, store.expected_value(key)), key
