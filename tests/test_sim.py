"""Tests for the simulation substrate (clock, resources, network, disk, events)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import (
    Counters,
    DiskModel,
    EventQueue,
    HardwareProfile,
    NetworkModel,
    Resource,
    SimClock,
)


# --------------------------------------------------------------------- clock


def test_clock_advances():
    c = SimClock()
    assert c.advance(1.5) == 1.5
    assert c.advance(0.5) == 2.0
    assert c.now == 2.0


def test_clock_rejects_negative():
    c = SimClock()
    with pytest.raises(ValueError):
        c.advance(-1)  # simlint: disable=SIM005 -- asserts the guard fires


def test_clock_advance_to_is_monotonic():
    c = SimClock(5.0)
    assert c.advance_to(3.0) == 5.0  # no going back
    assert c.advance_to(7.0) == 7.0


def test_clock_reset():
    c = SimClock(9.0)
    c.reset()
    assert c.now == 0.0


# ------------------------------------------------------------------ resource


def test_resource_fifo_reservation():
    r = Resource("disk")
    done1 = r.reserve(now=0.0, duration=2.0)
    done2 = r.reserve(now=1.0, duration=1.0)  # queued behind job 1
    assert done1 == 2.0
    assert done2 == 3.0
    assert r.busy_s == 3.0
    assert r.jobs == 2


def test_resource_idle_gap_not_counted_busy():
    r = Resource("nic")
    r.reserve(now=0.0, duration=1.0)
    r.reserve(now=5.0, duration=1.0)  # arrives after an idle gap
    assert r.free_at == 6.0
    assert r.busy_s == 2.0


def test_resource_wait():
    r = Resource("disk")
    r.reserve(now=0.0, duration=4.0)
    assert r.wait_s(1.0) == 3.0
    assert r.wait_s(10.0) == 0.0


def test_resource_utilisation():
    r = Resource("disk")
    r.reserve(now=0.0, duration=2.0)
    assert r.utilisation(4.0) == 0.5
    assert r.utilisation(0.0) == 0.0


def test_resource_negative_duration():
    with pytest.raises(ValueError):
        Resource("x").reserve(0.0, -1.0)


# ------------------------------------------------------------------ counters


def test_counters_add_get_merge():
    a = Counters()
    a.add("x")
    a.add("x", 2)
    assert a["x"] == 3
    assert a["missing"] == 0
    b = Counters()
    b.add("x", 5)
    b.add("y", 1)
    a.merge(b)
    assert a["x"] == 8
    assert a["y"] == 1
    a.reset()
    assert a.as_dict() == {}


# ------------------------------------------------------------------- network


def test_network_rpc_latency_components():
    p = HardwareProfile(rtt_s=100e-6, net_bandwidth_Bps=1e9, rpc_overhead_s=10e-6)
    net = NetworkModel(p)
    t = net.rpc(0, 1000)
    assert t == pytest.approx(100e-6 + 1e-6 + 10e-6)


def test_sequential_gets_scale_linearly():
    p = HardwareProfile()
    net = NetworkModel(p)
    one = net.sequential_gets([4096])
    four = NetworkModel(p).sequential_gets([4096] * 4)
    assert four == pytest.approx(4 * one)


def test_parallel_puts_share_round_trip():
    p = HardwareProfile()
    one = NetworkModel(p).parallel_puts([4096])
    four = NetworkModel(p).parallel_puts([4096] * 4)
    # fan-out pays extra wire+dispatch but NOT extra round trips
    assert four < 4 * one
    assert four > one


def test_parallel_puts_empty_is_free():
    assert NetworkModel(HardwareProfile()).parallel_puts([]) == 0.0
    assert NetworkModel(HardwareProfile()).parallel_gets([]) == 0.0


def test_network_counts_bytes_and_rpcs():
    net = NetworkModel(HardwareProfile())
    net.rpc(100, 200)
    net.parallel_puts([1000, 1000])
    c = net.counters
    assert c["net_rpcs"] == 3
    assert c["net_bytes"] >= 2300
    assert c["chunk_writes"] == 2


def test_sequential_gets_count_chunk_reads():
    net = NetworkModel(HardwareProfile())
    net.sequential_gets([10, 20, 30])
    assert net.counters["chunk_reads"] == 3


# ---------------------------------------------------------------------- disk


def test_disk_sequential_vs_random_cost():
    p = HardwareProfile(disk_seek_s=1e-3, disk_io_overhead_s=0.0)
    d = DiskModel(p)
    seq = d.write(1 << 20, sequential=True)
    rnd = d.write(1 << 20, sequential=False)
    assert rnd == pytest.approx(seq + 1e-3)


def test_disk_counts_ios_and_seeks():
    d = DiskModel(HardwareProfile())
    d.write(100, sequential=True)
    d.write(100, sequential=False)
    d.read(100, sequential=False)
    s = d.stats
    assert s.io_count == 3
    assert s.writes == 2
    assert s.reads == 1
    assert s.seeks == 2
    assert s.write_bytes == 200
    assert s.read_bytes == 100


def test_disk_backlog_accumulates():
    p = HardwareProfile(disk_seq_bandwidth_Bps=1e6, disk_io_overhead_s=0.0)
    d = DiskModel(p)
    d.write(1_000_000, sequential=True, now=0.0)  # 1 second of IO
    assert d.backlog_s(0.5) == pytest.approx(0.5)
    assert d.backlog_s(2.0) == 0.0


def test_disk_reset():
    d = DiskModel(HardwareProfile())
    d.write(10, sequential=False)
    d.reset()
    assert d.stats.io_count == 0
    assert d.resource.busy_s == 0.0


# -------------------------------------------------------------------- events


def test_event_queue_fires_in_order():
    q = EventQueue()
    fired = []
    q.schedule(2.0, lambda t: fired.append(("b", t)))
    q.schedule(1.0, lambda t: fired.append(("a", t)))
    q.schedule(3.0, lambda t: fired.append(("c", t)))
    assert q.run_until(2.5) == 2
    assert fired == [("a", 1.0), ("b", 2.0)]
    assert q.next_time() == 3.0
    assert q.drain() == 1
    assert len(q) == 0


def test_event_queue_stable_tie_order():
    q = EventQueue()
    fired = []
    for i in range(5):
        q.schedule(1.0, lambda t, i=i: fired.append(i))
    q.run_until(1.0)
    assert fired == [0, 1, 2, 3, 4]


def test_event_queue_clear():
    q = EventQueue()
    q.schedule(1.0, lambda t: None)
    q.clear()
    assert len(q) == 0
    assert q.next_time() is None


# ----------------------------------------------------------------- profile


def test_profile_helpers():
    p = HardwareProfile(net_bandwidth_Bps=1e9, encode_bandwidth_Bps=2e9, mem_bandwidth_Bps=4e9)
    assert p.transfer_s(1e9) == pytest.approx(1.0)
    assert p.encode_s(2e9) == pytest.approx(1.0)
    assert p.memcpy_s(4e9) == pytest.approx(1.0)


@given(st.integers(min_value=0, max_value=10**9))
def test_transfer_nonnegative(nbytes):
    assert HardwareProfile().transfer_s(nbytes) >= 0
