"""Tests for the KV substrate: memtable, chunk packing, metadata indices."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvstore import (
    Chunk,
    MemTable,
    ObjectIndex,
    ObjectLocation,
    StripeIndex,
    StripeRecord,
)
from repro.kvstore.chunk import make_value
from repro.kvstore.memtable import ITEM_OVERHEAD


# ------------------------------------------------------------------ memtable


def test_memtable_set_get_delete():
    t = MemTable()
    t.set("a", 4096)
    assert "a" in t
    assert t.get("a").logical_size == 4096
    assert t.delete("a")
    assert not t.delete("a")
    assert t.get("a") is None


def test_memtable_accounting_on_replace():
    t = MemTable()
    t.set("k", 1000)
    before = t.logical_bytes
    t.set("k", 2000)
    assert t.logical_bytes == before + 1000
    assert t.verify_accounting()


def test_memtable_footprint_includes_key_and_header():
    t = MemTable()
    t.set("abcd", 100)
    assert t.logical_bytes == 100 + 4 + ITEM_OVERHEAD


def test_memtable_rejects_negative_size():
    with pytest.raises(ValueError):
        MemTable().set("k", -1)


def test_memtable_clear():
    t = MemTable()
    t.set("a", 10)
    t.set("b", 20)
    t.clear()
    assert len(t) == 0
    assert t.logical_bytes == 0


@settings(max_examples=30)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["a", "b", "c", "d"]),
            st.sampled_from(["set", "del"]),
            st.integers(min_value=0, max_value=10_000),
        ),
        max_size=40,
    )
)
def test_memtable_accounting_invariant(ops):
    t = MemTable()
    for key, op, size in ops:
        if op == "set":
            t.set(key, size)
        else:
            t.delete(key)
        assert t.verify_accounting()


# --------------------------------------------------------------------- chunk


def test_chunk_pack_and_read_full_scale():
    c = Chunk(logical_size=4096, payload_scale=1.0)
    v = make_value("k1", 0, 1024)
    slot = c.append("k1", 1024, v)
    assert slot.offset == 0 and slot.length == 1024
    assert slot.phys_offset == 0 and slot.phys_length == 1024
    assert np.array_equal(c.read_slot(slot), v)


def test_chunk_packs_fcfs():
    c = Chunk(logical_size=4096)
    s1 = c.append("a", 1000, make_value("a", 0, 1000))
    s2 = c.append("b", 2000, make_value("b", 0, 2000))
    assert s2.offset == s1.end
    assert c.object_count == 2
    assert c.free_logical() == 4096 - 3000


def test_chunk_overflow_raises():
    c = Chunk(logical_size=100)
    c.append("a", 80, make_value("a", 0, 80))
    assert not c.fits(30)
    with pytest.raises(ValueError):
        c.append("b", 30, make_value("b", 0, 30))


def test_chunk_scaled_payload():
    c = Chunk(logical_size=4096, payload_scale=0.0625)
    assert c.physical_size == 256
    v = make_value("k", 0, 256)
    slot = c.append("k", 4096, v)  # object fills the whole logical chunk
    assert slot.length == 4096
    assert slot.phys_length == 256
    assert np.array_equal(c.read_slot(slot), v)


def test_chunk_write_slot_in_place():
    c = Chunk(logical_size=1024)
    slot = c.append("k", 512, make_value("k", 0, 512))
    v2 = make_value("k", 1, 512)
    c.write_slot(slot, v2)
    assert np.array_equal(c.read_slot(slot), v2)


def test_chunk_write_slot_size_check():
    c = Chunk(logical_size=1024)
    slot = c.append("k", 512, make_value("k", 0, 512))
    with pytest.raises(ValueError):
        c.write_slot(slot, np.zeros(100, dtype=np.uint8))


def test_chunk_slot_for():
    c = Chunk(logical_size=1024)
    c.append("k", 100, make_value("k", 0, 100))
    assert c.slot_for("k").key == "k"
    assert c.slot_for("missing") is None


def test_chunk_invalid_params():
    with pytest.raises(ValueError):
        Chunk(logical_size=0)
    with pytest.raises(ValueError):
        Chunk(logical_size=10, payload_scale=0.0)
    with pytest.raises(ValueError):
        Chunk(logical_size=10, payload_scale=1.5)


def test_make_value_deterministic():
    assert np.array_equal(make_value("k", 3, 64), make_value("k", 3, 64))
    assert not np.array_equal(make_value("k", 3, 64), make_value("k", 4, 64))


# ------------------------------------------------------------- object index


def test_object_index_roundtrip():
    idx = ObjectIndex()
    loc = ObjectLocation(stripe_id=5, seq_no=2, offset=100, length=50)
    idx.put("key", loc)
    assert "key" in idx
    assert idx.lookup("key") == loc
    assert idx.lookup("key").end == 150
    assert idx.remove("key")
    assert not idx.remove("key")
    with pytest.raises(KeyError):
        idx.lookup("key")


def test_object_index_get_missing_is_none():
    assert ObjectIndex().get("nope") is None


# ------------------------------------------------------------- stripe index


def _record(sid=0, k=4, r=2):
    nodes = [f"dram{i}" for i in range(k + 1)] + [f"log{j}" for j in range(r - 1)]
    return StripeRecord(stripe_id=sid, k=k, r=r, chunk_nodes=nodes)


def test_stripe_record_structure():
    rec = _record()
    assert rec.n == 6
    assert rec.data_nodes() == ["dram0", "dram1", "dram2", "dram3"]
    assert rec.xor_parity_node() == "dram4"
    assert rec.logged_parity_nodes() == ["log0"]
    assert rec.chunk_keys == [[], [], [], []]


def test_stripe_record_wrong_length_raises():
    with pytest.raises(ValueError):
        StripeRecord(stripe_id=0, k=4, r=2, chunk_nodes=["a"])


def test_stripe_record_chunks_on_node():
    nodes = ["n0", "n1", "n0", "n2", "n3", "n4"]
    rec = StripeRecord(stripe_id=1, k=4, r=2, chunk_nodes=nodes)
    assert rec.chunks_on_node("n0") == [0, 2]
    assert rec.chunks_on_node("n9") == []


def test_stripe_index_reverse_map():
    idx = StripeIndex()
    idx.put(_record(sid=1))
    idx.put(_record(sid=2))
    assert len(idx) == 2
    assert 1 in idx
    assert idx.stripes_on_node("dram0") == [1, 2]
    assert idx.stripes_on_node("nonexistent") == []
    assert idx.get(1).stripe_id == 1
    with pytest.raises(KeyError):
        idx.get(99)
