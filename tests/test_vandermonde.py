"""Cross-validation of the Cauchy codec against a systematic Vandermonde RS."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec.matrix import gf_matinv
from repro.ec.rs import RSCode
from repro.ec.vandermonde import (
    VandermondeRS,
    systematic_generator,
    vandermonde,
    xor_row_gap,
)


def test_vandermonde_structure():
    v = vandermonde(4, 3)
    assert v[0, 0] == 1 and v[0, 1] == 0  # alpha_0 = 0
    assert v[2, 0] == 1 and v[2, 1] == 2 and v[2, 2] == 4  # alpha_2 = 2
    with pytest.raises(ValueError):
        vandermonde(300, 3)


def test_systematic_top_is_identity():
    g = systematic_generator(5, 3)
    assert np.array_equal(g[:5], np.eye(5, dtype=np.uint8))


@pytest.mark.parametrize("k,r", [(4, 2), (6, 3), (10, 4)])
def test_vandermonde_is_mds(k, r):
    g = systematic_generator(k, r)
    for rows in itertools.combinations(range(k + r), k):
        gf_matinv(g[list(rows), :])  # must not raise


@pytest.mark.parametrize("k,r", [(4, 2), (6, 3), (10, 4), (15, 3)])
def test_vandermonde_roundtrip(k, r):
    code = VandermondeRS(k, r)
    rng = np.random.default_rng(0)
    data = rng.integers(0, 256, size=(k, 64), dtype=np.uint8)
    parity = code.encode(data)
    chunks = {i: data[i] for i in range(k)}
    chunks.update({k + j: parity[j] for j in range(r)})
    lost = list(range(min(r, k)))
    available = {i: c for i, c in chunks.items() if i not in lost}
    out = code.decode(available, wanted=lost)
    for i in lost:
        assert np.array_equal(out[i], data[i])


def test_decode_insufficient_raises():
    code = VandermondeRS(4, 2)
    with pytest.raises(ValueError):
        code.decode({0: np.zeros(4, dtype=np.uint8)}, wanted=[1])
    with pytest.raises(ValueError):
        code.encode(np.zeros((3, 4), dtype=np.uint8))


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=2, max_value=8),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_constructions_agree_on_data(k, r, seed):
    """Both codecs must recover identical data from k survivors, even though
    their parity bytes differ."""
    cauchy = RSCode(k, r)
    vander = VandermondeRS(k, r)
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size=(k, 32), dtype=np.uint8)
    for code in (cauchy, vander):
        parity = code.encode(data)
        chunks = {i: data[i] for i in range(k)}
        chunks.update({k + j: parity[j] for j in range(r)})
        drop = rng.choice(k, size=min(r, k), replace=False)
        available = {
            i: c for i, c in chunks.items() if i not in {int(d) for d in drop}
        }
        out = code.decode(available, wanted=[int(d) for d in drop])
        for i in drop:
            assert np.array_equal(out[int(i)], data[int(i)])


def test_parity_bytes_differ_between_constructions():
    cauchy = RSCode(6, 3)
    vander = VandermondeRS(6, 3)
    rng = np.random.default_rng(1)
    data = rng.integers(0, 256, size=(6, 32), dtype=np.uint8)
    assert not np.array_equal(cauchy.encode(data), vander.encode(data))


@pytest.mark.parametrize("k,r", [(4, 2), (6, 3), (10, 4), (12, 4), (16, 4)])
def test_vandermonde_has_no_xor_parity(k, r):
    """The design reason for the Cauchy construction: the classic systematic
    Vandermonde parity's first row is generally NOT all ones (a curious
    exception exists at (15,3), but nothing guarantees it), while the
    production codec's first parity row is exactly XOR for every code."""
    assert xor_row_gap(k, r) > 0
    assert np.all(RSCode(k, r).parity_matrix[0] == 1)


def test_vandermonde_xor_gap_is_not_guaranteed_zero_anywhere():
    # document the (15,3) coincidence so nobody "fixes" it into an invariant
    assert xor_row_gap(15, 3) == 0
    assert np.all(RSCode(15, 3).parity_matrix[0] == 1)
