"""Tests for PLR reserved-space sizing and overflow extents (CodFS's
reserved-space tradeoff, §5.1)."""

import numpy as np

from repro.ec.delta import ParityDelta
from repro.logstore import make_scheme
from repro.logstore.base import ReservedRegion, region_extents
from repro.logstore.records import LogRecord
from repro.sim.disk import DiskModel
from repro.sim.params import HardwareProfile

PHYS = 256
LOGICAL = 4096


def _region(delta_logicals):
    region = ReservedRegion()
    region.base = np.zeros(PHYS, dtype=np.uint8)
    region.base_logical = LOGICAL
    for nbytes in delta_logicals:
        region.deltas.append(
            ParityDelta(0, 1, 0, np.zeros(max(1, nbytes // 16), dtype=np.uint8))
        )
        region.delta_logical.append(nbytes)
    return region


def test_unbounded_reserve_is_one_extent():
    assert region_extents(_region([1000] * 50), reserve_bytes=0) == 1


def test_within_reserve_is_one_extent():
    assert region_extents(_region([1000, 1000]), reserve_bytes=4096) == 1
    assert region_extents(_region([]), reserve_bytes=4096) == 1


def test_overflow_chains_extents():
    # 10000 delta bytes, 4096 reserve -> 5904 overflow -> 2 spill extents
    assert region_extents(_region([5000, 5000]), reserve_bytes=4096) == 3
    assert region_extents(_region([4096]), reserve_bytes=4096) == 1
    assert region_extents(_region([4097]), reserve_bytes=4096) == 2


def _feed(scheme, n_deltas):
    rng = np.random.default_rng(0)
    base = rng.integers(0, 256, PHYS, dtype=np.uint8)
    scheme.flush([LogRecord.for_chunk(1, 1, base, LOGICAL)], now=0.0)
    expect = base.copy()
    for i in range(n_deltas):
        payload = rng.integers(0, 256, 64, dtype=np.uint8)
        off = (i * 32) % (PHYS - 64)
        expect[off : off + 64] ^= payload
        scheme.flush(
            [LogRecord.for_delta(ParityDelta(1, 1, off, payload), 1024)], now=0.0
        )
    return expect


def test_small_reserve_costs_repair_reads():
    small = HardwareProfile(plr_reserve_bytes=2048)
    big = HardwareProfile(plr_reserve_bytes=0)
    results = {}
    for name, profile in (("small", small), ("big", big)):
        disk = DiskModel(profile)
        scheme = make_scheme("plr", disk)
        expect = _feed(scheme, n_deltas=8)  # 8 KiB of deltas vs 2 KiB reserve
        result = scheme.read_parity(1, 1, PHYS, now=1.0)
        assert np.array_equal(result.payload, expect)  # correctness unchanged
        results[name] = result
    assert results["small"].disk_reads > results["big"].disk_reads
    assert results["small"].duration_s > results["big"].duration_s
    assert results["small"].logical_bytes_read == results["big"].logical_bytes_read


def test_reserve_affects_all_reserved_schemes():
    profile = HardwareProfile(plr_reserve_bytes=1024)
    for name in ("plr", "plr-m", "plm"):
        scheme = make_scheme(name, DiskModel(profile))
        _feed(scheme, n_deltas=8)
        scheme.settle(now=0.0)
        result = scheme.read_parity(1, 1, PHYS, now=1.0)
        assert result.disk_reads >= 1


def test_plm_merging_avoids_overflow():
    """PLM's lazy merge collapses deltas, staying inside a reserve PLR blows."""
    profile = HardwareProfile(plr_reserve_bytes=2048)
    plr = make_scheme("plr", DiskModel(profile))
    plm = make_scheme("plm", DiskModel(profile))
    rng = np.random.default_rng(1)
    base = rng.integers(0, 256, PHYS, dtype=np.uint8)
    for scheme in (plr, plm):
        scheme.flush([LogRecord.for_chunk(1, 1, base, LOGICAL)], now=0.0)
        for _ in range(8):  # same 64-byte range over and over
            payload = rng.integers(0, 256, 64, dtype=np.uint8)
            scheme.flush(
                [LogRecord.for_delta(ParityDelta(1, 1, 0, payload), 1024)], now=0.0
            )
        scheme.settle(now=0.0)
    r_plr = plr.read_parity(1, 1, PHYS, now=1.0)
    r_plm = plm.read_parity(1, 1, PHYS, now=1.0)
    assert r_plr.disk_reads > 1      # 8 KiB of raw deltas overflow the reserve
    assert r_plm.disk_reads == 1     # one merged delta fits
