"""Larger-scale smoke test: the headline shapes must hold an order of
magnitude above the default bench scale (guards against artefacts of tiny
populations like pending-object skew or empty log buffers)."""

import pytest

from repro.baselines import make_store
from repro.bench.runner import run_workload
from repro.core.config import StoreConfig
from repro.core.scrub import scrub
from repro.workloads import WorkloadSpec

N = 10_000


@pytest.fixture(scope="module")
def big_runs():
    out = {}
    spec = WorkloadSpec.read_update("50:50", n_objects=N, n_requests=N, seed=42)
    for name in ("ipmem", "fsmem", "logecmem"):
        store = make_store(
            name, StoreConfig(k=6, r=3, value_size=4096, payload_scale=1 / 64)
        )
        out[name] = (store, run_workload(store, spec))
    return out


def test_shapes_hold_at_scale(big_runs):
    lat = {name: res.mean_latency_us("update") for name, (_, res) in big_runs.items()}
    mem = {name: res.memory_bytes for name, (_, res) in big_runs.items()}
    # LogECMem < IPMem on latency; FSMem wins at 50:50 with k=6; LogECMem
    # lowest memory -- all exactly as at bench scale
    assert lat["logecmem"] < lat["ipmem"]
    assert lat["fsmem"] < lat["logecmem"]
    assert mem["logecmem"] < min(mem["ipmem"], mem["fsmem"])


def test_memory_factors_at_scale(big_runs):
    _, lec = big_runs["logecmem"]
    _, ip = big_runs["ipmem"]
    data = N * 4096
    assert lec.memory_bytes / data == pytest.approx(7 / 6, rel=0.03)
    assert ip.memory_bytes / data == pytest.approx(9 / 6, rel=0.03)


def test_store_integrity_at_scale(big_runs):
    store, _ = big_runs["logecmem"]
    report = scrub(store)
    assert report.clean
    assert report.stripes_checked > 1500


def test_pending_fraction_negligible_at_scale(big_runs):
    store, _ = big_runs["logecmem"]
    assert len(store._pending) < 0.01 * N
