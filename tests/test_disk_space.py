"""Tests for log disk-space accounting and update-under-failure semantics."""

import pytest

from repro.core.config import StoreConfig
from repro.core.logecmem import LogECMem
from repro.core.striped import ChunkUnavailableError
from repro.baselines.ipmem import IPMem
from repro.logstore import make_scheme
from repro.sim.disk import DiskModel
from repro.sim.params import HardwareProfile


def _loaded(n=24, updates=12):
    store = LogECMem(StoreConfig(k=4, r=3, payload_scale=1 / 16))
    for i in range(n):
        store.write(f"user{i}")
    for i in range(updates):
        store.update(f"user{i % n}")
    store.finalize()
    return store


# --------------------------------------------------------------- disk space


def test_pl_appended_space_grows_monotonically():
    store_pl = LogECMem(StoreConfig(k=4, r=3, payload_scale=1 / 16, scheme="pl"))
    for i in range(24):
        store_pl.write(f"user{i}")
    store_pl.finalize()
    base = store_pl.cluster.log_disk_logical_bytes()
    for i in range(12):
        store_pl.update(f"user{i}")
    store_pl.finalize()
    assert store_pl.cluster.log_disk_logical_bytes() > base


def test_pl_uses_more_space_than_plm_after_merging():
    """PL keeps every superseded delta on disk; PLM's lazy merge compacts."""
    sizes = {}
    for scheme in ("pl", "plm"):
        store = LogECMem(StoreConfig(k=4, r=3, payload_scale=1 / 16, scheme=scheme))
        for i in range(24):
            store.write(f"user{i}")
        for _ in range(10):
            store.update("user3")  # same object, deltas merge in PLM
        store.finalize()
        sizes[scheme] = store.cluster.log_disk_logical_bytes()
    assert sizes["pl"] > sizes["plm"]


def test_region_space_matches_records():
    scheme = make_scheme("plr", DiskModel(HardwareProfile()))
    from repro.logstore.records import LogRecord
    from repro.ec.delta import ParityDelta
    import numpy as np

    scheme.flush(
        [LogRecord.for_chunk(1, 1, np.zeros(256, dtype=np.uint8), 4096)], now=0.0
    )
    scheme.flush(
        [LogRecord.for_delta(ParityDelta(1, 1, 0, np.ones(64, dtype=np.uint8)), 1024)],
        now=0.0,
    )
    assert scheme.disk_logical_bytes == 4096 + 1024
    scheme.drop(1, 1)
    assert scheme.disk_logical_bytes == 0


def test_gc_reclaims_log_space():
    from repro.core.gc import collect_garbage

    store = _loaded()
    before = store.cluster.log_disk_logical_bytes()
    store.delete("user3")
    collect_garbage(store)
    assert store.cluster.log_disk_logical_bytes() < before


# ----------------------------------------------------- update under failure


def test_update_refused_when_home_node_down():
    store = _loaded()
    loc = store.object_index.lookup("user3")
    home = store.stripe_index.get(loc.stripe_id).chunk_nodes[loc.seq_no]
    store.cluster.kill(home)
    with pytest.raises(ChunkUnavailableError):
        store.update("user3")
    # reads still degrade fine
    assert store.read("user3").degraded


def test_update_refused_when_xor_node_down():
    store = _loaded()
    loc = store.object_index.lookup("user3")
    xor = store.stripe_index.get(loc.stripe_id).xor_parity_node()
    store.cluster.kill(xor)
    with pytest.raises(ChunkUnavailableError):
        store.update("user3")


def test_update_resumes_after_restore():
    store = _loaded()
    loc = store.object_index.lookup("user3")
    home = store.stripe_index.get(loc.stripe_id).chunk_nodes[loc.seq_no]
    store.cluster.kill(home)
    with pytest.raises(ChunkUnavailableError):
        store.update("user3")
    store.cluster.restore(home)
    res = store.update("user3")
    assert res.latency_s > 0


def test_ipmem_update_refused_when_home_down():
    store = IPMem(StoreConfig(k=4, r=3, payload_scale=1 / 16))
    for i in range(24):
        store.write(f"user{i}")
    loc = store.object_index.lookup("user3")
    home = store.stripe_index.get(loc.stripe_id).chunk_nodes[loc.seq_no]
    store.cluster.kill(home)
    with pytest.raises(ChunkUnavailableError):
        store.update("user3")
