"""Tests for consistent hashing, nodes and cluster topology."""

import numpy as np
import pytest

from repro.cluster import Cluster, ConsistentHashRing, DRAMNode, LogNode, UnknownNodeError
from repro.ec.delta import ParityDelta
from repro.logstore.records import LogRecord
from repro.sim.params import HardwareProfile


# ----------------------------------------------------------------- hash ring


def test_ring_lookup_deterministic():
    ring = ConsistentHashRing(["a", "b", "c"])
    assert ring.lookup("key1") == ring.lookup("key1")


def test_ring_balances_roughly():
    ring = ConsistentHashRing([f"n{i}" for i in range(4)], vnodes=128)
    counts = {f"n{i}": 0 for i in range(4)}
    for i in range(4000):
        counts[ring.lookup(f"key-{i}")] += 1
    for c in counts.values():
        assert 400 < c < 2000  # no node starved or dominant


def test_ring_remove_only_remaps_removed_arc():
    ring = ConsistentHashRing(["a", "b", "c"], vnodes=64)
    before = {f"k{i}": ring.lookup(f"k{i}") for i in range(500)}
    ring.remove_node("b")
    for key, owner in before.items():
        if owner != "b":
            assert ring.lookup(key) == owner


def test_ring_add_duplicate_raises():
    ring = ConsistentHashRing(["a"])
    with pytest.raises(ValueError):
        ring.add_node("a")


def test_ring_remove_missing_raises():
    with pytest.raises(KeyError):
        ConsistentHashRing(["a"]).remove_node("z")


def test_ring_empty_lookup_raises():
    with pytest.raises(LookupError):
        ConsistentHashRing().lookup("k")


def test_ring_lookup_many_distinct():
    ring = ConsistentHashRing(["a", "b", "c", "d"])
    nodes = ring.lookup_many("key", 3)
    assert len(nodes) == 3
    assert len(set(nodes)) == 3
    with pytest.raises(ValueError):
        ring.lookup_many("key", 5)


def test_ring_vnodes_validation():
    with pytest.raises(ValueError):
        ConsistentHashRing(vnodes=0)


# --------------------------------------------------------------------- nodes


def test_dram_node_holds_items():
    n = DRAMNode("dram0")
    n.table.set("k", 4096)
    assert n.logical_bytes > 4096
    n.fail()
    assert not n.alive
    n.restore()
    assert n.alive


def _delta_rec(sid=0, pidx=1, seed=0, length=64):
    rng = np.random.default_rng(seed)
    d = ParityDelta(sid, pidx, 0, rng.integers(0, 256, length, dtype=np.uint8))
    return LogRecord.for_delta(d, length * 16)


def test_log_node_async_append_is_free():
    node = LogNode("log0", HardwareProfile(), scheme="plm")
    stall = node.append(_delta_rec(), now=0.0)
    assert stall == 0.0
    assert len(node.buffer) == 1


def test_log_node_flushes_at_threshold():
    profile = HardwareProfile(log_buffer_bytes=10_000, log_flush_threshold_bytes=2_000)
    node = LogNode("log0", profile, scheme="pl", merge_buffer=False)
    for i in range(3):
        node.append(_delta_rec(sid=i, seed=i), now=0.0)
    assert node.disk.stats.writes >= 1  # threshold crossed -> async flush
    assert node.buffer.logical_bytes < 2_000  # drained below threshold


def test_log_node_backpressure_when_disk_lags():
    # a glacial disk: every flush leaves a backlog that exceeds the bound
    profile = HardwareProfile(
        log_buffer_bytes=10_000,
        log_flush_threshold_bytes=1_000,
        disk_seq_bandwidth_Bps=1e3,
        max_disk_backlog_s=0.1,
    )
    node = LogNode("log0", profile, scheme="pl", merge_buffer=False)
    stalls = [node.append(_delta_rec(sid=i, seed=i), now=0.0) for i in range(8)]
    assert node.sync_flush_stalls >= 1
    assert any(s > 0 for s in stalls)


def test_log_node_read_overlays_buffer():
    node = LogNode("log0", HardwareProfile(), scheme="plm")
    rng = np.random.default_rng(1)
    base = rng.integers(0, 256, 256, dtype=np.uint8)
    node.append(LogRecord.for_chunk(5, 1, base, 4096), now=0.0)
    payload = rng.integers(0, 256, 64, dtype=np.uint8)
    node.append(LogRecord.for_delta(ParityDelta(5, 1, 10, payload), 1024), now=0.0)
    result = node.read_uptodate_parity(5, 1, 256, now=0.0)
    expect = base.copy()
    expect[10:74] ^= payload
    assert np.array_equal(result.payload, expect)


def test_log_node_read_unknown_parity_raises():
    node = LogNode("log0", HardwareProfile(), scheme="plm")
    with pytest.raises(KeyError):
        node.read_uptodate_parity(1, 1, 256, now=0.0)


def test_log_node_settle_drains_everything():
    node = LogNode("log0", HardwareProfile(), scheme="plm")
    node.append(_delta_rec(), now=0.0)
    node.settle(now=0.0)
    assert node.buffer.is_empty
    assert node.scheme.staging_bytes == 0


# ------------------------------------------------------------------- cluster


def test_cluster_builds_expected_nodes():
    c = Cluster(n_dram=7, n_log=2)
    assert c.dram_ids() == [f"dram{i}" for i in range(7)]
    assert c.log_ids() == ["log0", "log1"]
    assert len(c.ring) == 7


def test_cluster_requires_dram():
    with pytest.raises(ValueError):
        Cluster(n_dram=0)


def test_cluster_kill_and_restore():
    c = Cluster(n_dram=3, n_log=1)
    c.kill("dram1")
    assert c.alive_dram_ids() == ["dram0", "dram2"]
    c.kill("log0")
    assert c.alive_log_ids() == []
    c.restore("dram1")
    assert "dram1" in c.alive_dram_ids()
    with pytest.raises(KeyError):
        c.kill("nope")


def test_kill_restore_report_transitions():
    c = Cluster(n_dram=2, n_log=1)
    assert c.kill("dram0") is True
    assert c.kill("dram0") is False   # already down: no silent double-count
    assert c.restore("dram0") is True
    assert c.restore("dram0") is False
    assert c.dram_nodes["dram0"].fail_count == 1
    assert c.dram_nodes["dram0"].restore_count == 1


def test_unknown_node_error_lists_cluster():
    c = Cluster(n_dram=2, n_log=1)
    with pytest.raises(UnknownNodeError) as err:
        c.kill("dram9")
    assert "dram9" in str(err.value)
    assert "dram0" in str(err.value) and "log0" in str(err.value)
    with pytest.raises(UnknownNodeError):
        c.restore("nope")
    with pytest.raises(UnknownNodeError):
        c.downtime_s("nope")


def test_downtime_accounting():
    c = Cluster(n_dram=2, n_log=0)
    c.kill("dram0", now=1.0)
    assert c.downtime_s("dram0", now=3.0) == pytest.approx(2.0)  # open outage
    c.restore("dram0", now=4.0)
    assert c.downtime_s("dram0", now=10.0) == pytest.approx(3.0)  # closed
    c.kill("dram0", now=12.0)
    assert c.downtime_s("dram0", now=13.0) == pytest.approx(4.0)  # re-opened
    assert c.downtime_s("dram1", now=13.0) == 0.0


def test_cluster_availability():
    c = Cluster(n_dram=3, n_log=1)  # 4 nodes
    assert c.availability(now=0.0) == 1.0  # no exposure yet
    c.kill("dram0", now=0.0)
    c.restore("dram0", now=2.0)
    # 2 node-seconds down out of 4 nodes * 4 s
    assert c.availability(now=4.0) == pytest.approx(1.0 - 2.0 / 16.0)


def test_kill_defaults_to_cluster_clock():
    c = Cluster(n_dram=1, n_log=0)
    c.clock.advance(5.0)
    c.kill("dram0")
    assert c.dram_nodes["dram0"].failed_at == pytest.approx(5.0)
    c.clock.advance(1.0)
    c.restore("dram0")
    assert c.downtime_s("dram0") == pytest.approx(1.0)


def test_cluster_memory_and_disk_aggregation():
    c = Cluster(n_dram=2, n_log=2, scheme="pl")
    c.dram_nodes["dram0"].table.set("a", 1000)
    c.dram_nodes["dram1"].table.set("b", 2000)
    assert c.dram_logical_bytes == c.dram_nodes["dram0"].logical_bytes + c.dram_nodes[
        "dram1"
    ].logical_bytes
    c.log_nodes["log0"].append(_delta_rec(), now=0.0)
    c.settle_logs()
    assert c.disk_stats().writes >= 1
