"""Tests for the shared striped-store machinery (write path, sealing,
placement invariants, reads) through LogECMem and IPMem instances."""

import numpy as np
import pytest

from repro.baselines.ipmem import IPMem
from repro.core.config import StoreConfig
from repro.core.logecmem import LogECMem


def _cfg(**kw):
    defaults = dict(k=4, r=3, value_size=4096, payload_scale=1 / 16)
    defaults.update(kw)
    return StoreConfig(**defaults)


def _load(store, n):
    for i in range(n):
        store.write(f"user{i}")
    return store


# -------------------------------------------------------------- write + seal


def test_object_conservation_across_sealing():
    """Every written object is either in a sealed stripe or pending."""
    store = _load(LogECMem(_cfg()), 20)
    sealed = store.cfg.k * len(store.stripe_index)
    assert sealed + len(store._pending) == 20
    assert len(store.stripe_index) >= 2  # hashing is uneven but not starved


def test_more_writes_seal_more_stripes():
    a = _load(LogECMem(_cfg()), 12)
    b = _load(LogECMem(_cfg()), 48)
    assert len(b.stripe_index) > len(a.stripe_index)
    assert len(b._pending) < 48 - 12  # pendings don't accumulate unboundedly


def test_duplicate_write_rejected():
    store = _load(LogECMem(_cfg()), 1)
    with pytest.raises(KeyError):
        store.write("user0")


def test_stripe_chunks_on_distinct_nodes():
    """Fault tolerance: no two chunks of a stripe on one DRAM node."""
    store = _load(LogECMem(_cfg()), 40)
    for sid in store.stripe_index.stripe_ids():
        rec = store.stripe_index.get(sid)
        dram_chunk_nodes = rec.chunk_nodes[: store.cfg.k + 1]
        assert len(set(dram_chunk_nodes)) == store.cfg.k + 1


def test_logecmem_node_layout():
    store = LogECMem(_cfg())
    assert len(store.cluster.dram_nodes) == store.cfg.k + 1
    assert len(store.cluster.log_nodes) == store.cfg.r - 1


def test_ipmem_node_layout():
    store = IPMem(_cfg())
    assert len(store.cluster.dram_nodes) == store.cfg.n
    assert len(store.cluster.log_nodes) == 0


def test_logecmem_logged_parities_on_log_nodes():
    store = _load(LogECMem(_cfg()), 16)
    for sid in store.stripe_index.stripe_ids():
        rec = store.stripe_index.get(sid)
        assert rec.xor_parity_node() in store.cluster.dram_nodes
        for nid in rec.logged_parity_nodes():
            assert nid in store.cluster.log_nodes


def test_parity_consistency_after_load():
    store = _load(LogECMem(_cfg()), 16)
    for sid in store.stripe_index.stripe_ids():
        assert store.verify_stripe(sid)
        data = np.stack(
            [store.data_chunks[(sid, i)].buffer for i in range(store.cfg.k)]
        )
        expect = store.code.encode(data)
        assert np.array_equal(store.parity_chunks[(sid, 0)], expect[0])
        for j in range(1, store.cfg.r):
            assert np.array_equal(store.uptodate_logged_parity(sid, j), expect[j])


def test_memory_accounting_logecmem():
    """DRAM = objects + one XOR parity chunk per stripe (the (k+1)/k factor)."""
    store = _load(LogECMem(_cfg()), 16)
    cfg = store.cfg
    expected_values = 16 * cfg.value_size + len(store.stripe_index) * cfg.chunk_size
    # plus per-item key+header overhead
    assert store.memory_logical_bytes > expected_values
    assert store.memory_logical_bytes < expected_values * 1.1


def test_memory_accounting_ipmem_includes_all_parities():
    lec = _load(LogECMem(_cfg()), 16)
    ip = _load(IPMem(_cfg()), 16)
    assert ip.memory_logical_bytes > lec.memory_logical_bytes


# ---------------------------------------------------------------------- read


def test_read_returns_written_bytes():
    store = _load(LogECMem(_cfg()), 16)
    for key in ("user0", "user7", "user15"):
        res = store.read(key)
        assert np.array_equal(res.value, store.expected_value(key))
        assert not res.degraded


def test_read_pending_object():
    store = _load(LogECMem(_cfg()), 2)  # stripe not sealed
    res = store.read("user1")
    assert np.array_equal(res.value, store.expected_value("user1"))


def test_read_missing_key_raises():
    store = LogECMem(_cfg())
    with pytest.raises(KeyError):
        store.read("ghost")


def test_read_latency_positive_and_stable():
    store = _load(LogECMem(_cfg()), 16)
    lat = [store.read("user3").latency_s for _ in range(3)]
    assert all(x > 0 for x in lat)
    assert lat[0] == lat[1] == lat[2]  # deterministic cost model


# -------------------------------------------------------------------- delete


def test_delete_tombstones_object():
    store = _load(LogECMem(_cfg()), 16)
    store.delete("user5")
    with pytest.raises(KeyError):
        store.read("user5")
    with pytest.raises(KeyError):
        store.update("user5")
    # stripe parities stay consistent with the zeroed value
    sid = store.object_index.lookup("user5").stripe_id
    assert store.verify_stripe(sid)


def test_update_missing_key_raises():
    store = LogECMem(_cfg())
    with pytest.raises(KeyError):
        store.update("ghost")


# ------------------------------------------------------------------ packing


def _sealed_keys(store, count=1):
    """Keys whose stripes have sealed (safe for update/degraded tests)."""
    out = []
    for sid in sorted(store.stripe_index.stripe_ids()):
        for keys in store.stripe_index.get(sid).chunk_keys:
            out.extend(keys)
            if len(out) >= count:
                return out[:count]
    raise AssertionError("no sealed stripes yet")


def test_small_objects_pack_into_chunks():
    """§4.1: multiple small objects share one 4 KiB unit."""
    cfg = StoreConfig(k=4, r=3, value_size=1024, chunk_size=4096, payload_scale=1 / 16)
    store = _load(LogECMem(cfg), 64)  # 4 objects per unit
    assert len(store.stripe_index) >= 2
    sealed_objects = sum(
        len(keys)
        for sid in store.stripe_index.stripe_ids()
        for keys in store.stripe_index.get(sid).chunk_keys
    )
    assert sealed_objects + len(store._pending) == 64
    key = _sealed_keys(store)[0]
    rec = store.stripe_index.get(store.object_index.lookup(key).stripe_id)
    assert any(len(keys) == 4 for keys in rec.chunk_keys)
    res = store.read(key)
    assert np.array_equal(res.value, store.expected_value(key))


def test_packed_object_update_keeps_stripe_consistent():
    cfg = StoreConfig(k=4, r=3, value_size=1024, chunk_size=4096, payload_scale=1 / 16)
    store = _load(LogECMem(cfg), 64)
    key = _sealed_keys(store)[0]
    store.update(key)
    store.update(key)
    sid = store.object_index.lookup(key).stripe_id
    assert store.verify_stripe(sid)
    for j in range(1, 3):
        data = np.stack([store.data_chunks[(sid, i)].buffer for i in range(4)])
        assert np.array_equal(
            store.uptodate_logged_parity(sid, j), store.code.encode(data)[j]
        )
