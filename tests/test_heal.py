"""Tests for the self-healing control plane: detector, proposer, scheduler,
verifier, plane, and the with/without-plane experiment."""

import math

import pytest

from repro.baselines import make_store
from repro.bench.runner import load_store
from repro.chaos import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    RetryPolicy,
    check_store,
    run_chaos,
)
from repro.core import StoreConfig
from repro.core.adaptive import choose_log_scheme
from repro.heal import (
    ACTION_KINDS,
    Action,
    ActionScheduler,
    ControlPlane,
    INCIDENT_KINDS,
    Incident,
    experiment_ok,
    run_heal_experiment,
)
from repro.sim.events import EventQueue
from repro.workloads import WorkloadSpec

CFG = dict(k=3, r=3, value_size=1024, scheme="plm")


def small_store(name="logecmem", **kw):
    return make_store(name, StoreConfig(**{**CFG, **kw}))


def small_spec(**kw):
    base = dict(n_objects=60, n_requests=90, seed=7,
                read_ratio=0.5, update_ratio=0.5, value_size=1024)
    base.update(kw)
    return WorkloadSpec(**base)


def attached_plane(store, **kw):
    plane = ControlPlane(**kw)
    plane.attach(store, policy=RetryPolicy(jitter_fraction=0.0))
    return plane


def drive(store, plane, queue, steps=40, dt=1e-3):
    """Advance the clock in small ticks, healing transients and polling the
    plane, until the action queue drains (or the step budget runs out)."""
    clock = store.cluster.clock
    plane.poll(clock.now)
    for _ in range(steps):
        clock.advance(dt)
        queue.run_until(clock.now)
        plane.poll(clock.now)
        if not plane.pending:
            break


def heal_pipeline_stages(journal, seq):
    """The heal_* journal stages recorded for one action/incident seq."""
    stages = []
    for ev in journal.to_dicts():
        if not ev["kind"].startswith("heal_") or ev["attrs"].get("seq") != seq:
            continue
        stage = ev["kind"]
        if stage == "heal_verify":
            stage += ":" + ev["attrs"]["stage"]
        stages.append(stage)
    return stages


# ------------------------------------------------------------------ taxonomy


def test_taxonomies_are_closed():
    with pytest.raises(ValueError):
        Incident(kind="gremlin", node_id="dram0", detected_s=0.0, seq=0)  # simlint: disable=SIM008
    with pytest.raises(ValueError):
        Action(kind="reboot_universe", node_id="dram0", seq=0)  # simlint: disable=SIM008
    assert INCIDENT_KINDS == tuple(sorted(INCIDENT_KINDS))
    assert ACTION_KINDS == tuple(sorted(ACTION_KINDS))


def test_choose_log_scheme_targets():
    # stalls push toward pure parity logging (sequential appends)
    assert choose_log_scheme("plm", sync_stalls=3, random_writes=0,
                             flush_records=0) == "pl"
    assert choose_log_scheme("pl", sync_stalls=3, random_writes=0,
                             flush_records=0) == "pl"
    # random-write-heavy disks prefer the merge-friendly layout
    assert choose_log_scheme("plr", sync_stalls=0, random_writes=10,
                             flush_records=2) == "plm"
    # nothing wrong: keep the current layout
    assert choose_log_scheme("plm", sync_stalls=0, random_writes=0,
                             flush_records=5) == "plm"


# ------------------------------------------- per-fault-family incident tests


FAMILIES = [
    # (fault kind, target, expected incident, expected first action)
    ("crash", "dram", "node_crash", "repair_node"),
    ("blip", "dram", "node_blip", "observe"),
    ("slow", "dram", "straggler", "traffic_backoff"),
    ("partition", "dram", "partition", "traffic_backoff"),
    ("stall", "log", "disk_stall", "scheme_switch"),
    ("crash", "log", "stale_parity", "recover_log"),
]


def _fault_event(kind, node, t):
    k = FaultKind(kind)
    if k is FaultKind.CRASH:
        return FaultEvent(t, k, node)
    if k is FaultKind.SLOW:
        return FaultEvent(t, k, node, duration_s=1e-3, magnitude=4.0)
    return FaultEvent(t, k, node, duration_s=1e-3)


@pytest.mark.parametrize("fault,target,incident,action", FAMILIES)
def test_fault_family_detected_and_remediated(fault, target, incident, action):
    store = small_store()
    load_store(store, small_spec())
    plane = attached_plane(store)
    injector = FaultInjector(store.cluster)
    queue = EventQueue()
    clock = store.cluster.clock

    node = sorted(store.cluster.dram_nodes if target == "dram"
                  else store.cluster.log_nodes)[0]
    injector.apply(_fault_event(fault, node, clock.now), clock.now, queue)
    drive(store, plane, queue)

    kinds = [inc.kind for inc in plane.detector.incidents]
    assert incident in kinds, kinds
    executed = [rec["action"]["kind"] for rec in plane.executed]
    assert action in executed, executed

    # the journal shows the full pipeline for the first action, in order
    assert heal_pipeline_stages(store.cluster.journal, 0) == [
        "heal_detect",
        "heal_propose",
        "heal_verify:pre",
        "heal_execute",
        "heal_verify:post",
    ]
    # and the store came out invariant-clean
    assert not check_store(store).violations


def test_buffer_overrun_detected_from_counter_movement():
    store = small_store()
    load_store(store, small_spec())
    plane = attached_plane(store)
    nid = sorted(store.cluster.log_nodes)[0]
    store.cluster.log_nodes[nid].sync_flush_stalls += 3

    drive(store, plane, EventQueue())

    (inc,) = plane.detector.incidents
    assert inc.kind == "buffer_overrun" and inc.node_id == nid
    assert inc.details["stalls"] == 3
    (rec,) = plane.executed
    assert rec["action"]["kind"] == "flush_logs"
    assert rec["result"]["status"] == "done"
    assert heal_pipeline_stages(store.cluster.journal, 0) == [
        "heal_detect",
        "heal_propose",
        "heal_verify:pre",
        "heal_execute",
        "heal_verify:post",
    ]


def test_detector_suppresses_duplicate_open_incidents():
    store = small_store()
    plane = attached_plane(store)
    journal = store.cluster.journal
    for _ in range(3):
        journal.emit("fault_inject", kind="crash", node="dram0",
                     duration_s=0.0, magnitude=0.0)
    fresh, _ = plane.detector.poll(0.0)
    assert [inc.kind for inc in fresh] == ["node_crash"]
    assert plane.detector.suppressed == 2
    assert store.cluster.counters["heal_incidents_suppressed"] == 2
    # once resolved, the same fault raises a fresh incident
    journal.emit("repair_done", node="dram0", repair_time_s=0.0)
    journal.emit("fault_inject", kind="crash", node="dram0",
                 duration_s=0.0, magnitude=0.0)
    fresh, _ = plane.detector.poll(1.0)
    assert [inc.kind for inc in fresh] == ["node_crash"]
    assert plane.detector.suppressed == 2


def test_blip_beyond_grace_escalates_to_repair():
    """A blip that outlives the observation grace period turns into a full
    repair via the observe -> escalate path."""
    store = small_store()
    load_store(store, small_spec())
    plane = attached_plane(store, blip_grace_s=2e-3)
    injector = FaultInjector(store.cluster)
    queue = EventQueue()
    clock = store.cluster.clock
    victim = sorted(store.cluster.dram_nodes)[0]

    injector.apply(FaultEvent(clock.now, FaultKind.BLIP, victim,
                              duration_s=50e-3), clock.now, queue)
    drive(store, plane, queue, steps=10)  # stop before the blip self-heals

    executed = [rec["action"]["kind"] for rec in plane.executed]
    assert executed[:2] == ["observe", "repair_node"]
    assert store.cluster.dram_nodes[victim].alive
    assert not check_store(store).violations


# ------------------------------------------------------------------ scheduler


def test_scheduler_rate_limits_releases():
    sched = ActionScheduler(min_gap_s=1e-3)
    for i in range(3):
        sched.push(Action(kind="observe", node_id=f"n{i}", seq=i))
    assert sched.next_ready(0.0).seq == 0
    assert sched.next_ready(0.0) is None          # gap not elapsed
    assert sched.next_ready(0.5e-3) is None
    assert sched.next_ready(1e-3).seq == 1


def test_scheduler_defer_keeps_slot_and_exhausts():
    sched = ActionScheduler(min_gap_s=0.0, max_defers=2)
    first = Action(kind="recover_log", node_id="log0", seq=0)
    sched.push(first)
    sched.push(Action(kind="flush_logs", node_id="log0", seq=1))
    a = sched.next_ready(0.0)
    assert a.seq == 0
    assert sched.defer(a, until_s=5.0)
    # the deferred action blocks its node: seq 1 cannot overtake seq 0
    assert sched.next_ready(1.0) is None
    b = sched.next_ready(5.0)
    assert b.seq == 0
    assert sched.defer(b, until_s=6.0)
    c = sched.next_ready(6.0)
    assert not sched.defer(c, until_s=7.0)        # max_defers exhausted


# ----------------------------------------------------------------- experiment


def test_heal_experiment_improves_mttr_and_availability():
    doc = run_heal_experiment(n_objects=200, n_requests=200, seed=42)
    assert experiment_ok(doc) == []
    disabled, enabled = doc["disabled"], doc["enabled"]
    assert disabled["faults_fired"] == enabled["faults_fired"]
    assert disabled["faults_fired"].get("crash", 0) > 0
    assert enabled["mttr_ms"] < disabled["mttr_ms"]
    assert enabled["availability_pct"] > disabled["availability_pct"]
    assert enabled["violations"] == 0
    assert math.isfinite(enabled["mttr_ms"])

    # acceptance: every executed action is bracketed by passing verifications
    events = doc["reports"]["enabled"].events
    heal = [e for e in events if e["kind"].startswith("heal_")]
    for ev in heal:
        if ev["kind"] != "heal_execute":
            continue
        seq = ev["attrs"]["seq"]
        idx = heal.index(ev)
        pre = [e for e in heal[:idx]
               if e["kind"] == "heal_verify" and e["attrs"]["seq"] == seq
               and e["attrs"]["stage"] == "pre"]
        post = [e for e in heal[idx:]
                if e["kind"] == "heal_verify" and e["attrs"]["seq"] == seq
                and e["attrs"]["stage"] == "post"]
        assert pre and pre[-1]["attrs"]["ok"], ev
        assert post and post[0]["attrs"]["ok"], ev


def test_heal_experiment_deterministic():
    kw = dict(n_objects=120, n_requests=120, seed=9)
    a = run_heal_experiment(**kw)
    b = run_heal_experiment(**kw)
    for arm in ("disabled", "enabled"):
        assert a[arm]["fingerprint"] == b[arm]["fingerprint"]
    a.pop("reports")
    b.pop("reports")
    assert a == b


def test_run_chaos_control_plane_forces_open_loop_repair_off():
    store = small_store()
    plane = ControlPlane()
    report = run_chaos(store, small_spec(), expected_faults=3.0,
                       repair=True, control_plane=plane)
    # the plane owns remediation: the harness's own repair loop must not run
    assert report.heal["actions_proposed"] == len(plane.proposer.proposed)
    assert report.mttr_s >= 0.0
    assert report.violations == 0


def test_plane_attach_is_single_use():
    store = small_store()
    plane = attached_plane(store)
    with pytest.raises(RuntimeError):
        plane.attach(store)
    with pytest.raises(ValueError):
        run_heal_experiment(n_objects=30, n_requests=30, plane=plane)


def test_cli_heal_subcommand(tmp_path):
    from repro.cli import main

    out_path = tmp_path / "heal.json"
    lines = []
    rc = main(
        ["heal", "--objects", "200", "--requests", "200", "--report",
         "--out", str(out_path)],
        out=lines.append,
    )
    assert rc == 0
    text = "\n".join(str(x) for x in lines)
    assert "closed-loop resilience" in text
    assert "MTTR improvement" in text
    assert "executed actions (verification-bracketed)" in text
    import json

    doc = json.loads(out_path.read_text())
    assert "reports" not in doc
    assert doc["enabled"]["mttr_ms"] < doc["disabled"]["mttr_ms"]


# ------------------------------------------------------------- scheme switch


def test_switch_scheme_preserves_replayable_parity():
    store = small_store()
    spec = small_spec(read_ratio=0.2, update_ratio=0.8)
    load_store(store, spec)
    from repro.bench.runner import run_requests
    from repro.workloads import generate_requests
    run_requests(store, generate_requests(spec), spec)

    clock = store.cluster.clock
    nid = sorted(store.cluster.log_nodes)[0]
    node = store.cluster.log_nodes[nid]
    before = store.cluster.counters["log_scheme_switches"]
    assert node.scheme.name == "plm"
    duration = node.switch_scheme("pl", clock.now)
    assert node.scheme.name == "pl"
    assert duration > 0.0
    assert store.cluster.counters["log_scheme_switches"] == before + 1
    (ev,) = store.cluster.journal.of_kind("scheme_switch")
    assert ev.attrs["node"] == nid and ev.attrs["new"] == "pl"
    # the migrated log still replays to the up-to-date parity encode
    assert not check_store(store).violations
    # switching to the current layout is free
    assert node.switch_scheme("pl", clock.now) == 0.0
