"""Tests for the workload runner and (scaled-down) experiment drivers.

These assert the *shapes* the paper reports -- who wins, where crossovers
fall -- at small scale, so the benchmark harness is itself verified.
"""

import math

import pytest

from repro.baselines import make_store
from repro.bench.experiments import (
    experiment1,
    experiment5,
    experiment6,
    experiment7,
    update_memory_sweep,
)
from repro.bench.runner import (
    estimate_throughput,
    load_store,
    measure_degraded_reads,
    run_workload,
)
from repro.core.config import StoreConfig
from repro.workloads import WorkloadSpec


def _cfg(**kw):
    defaults = dict(k=4, r=3, value_size=4096, payload_scale=1 / 16)
    defaults.update(kw)
    return StoreConfig(**defaults)


def _spec(ratio="95:5", n=200, reqs=200, kind="ru"):
    ctor = WorkloadSpec.read_update if kind == "ru" else WorkloadSpec.read_write
    return ctor(ratio, n_objects=n, n_requests=reqs, seed=42)


# -------------------------------------------------------------------- runner


def test_run_workload_collects_all_ops():
    store = make_store("logecmem", _cfg())
    result = run_workload(store, _spec("50:50"))
    assert result.op_count("read") + result.op_count("update") == 200
    assert result.mean_latency_us("read") > 0
    assert result.mean_latency_us("update") > result.mean_latency_us("read")
    assert result.memory_bytes > 0
    assert result.throughput_ops_s > 0


def test_runner_advances_clock():
    store = make_store("vanilla", _cfg())
    load_store(store, _spec())
    assert store.cluster.clock.now > 0


def test_latency_percentiles_ordered():
    store = make_store("logecmem", _cfg())
    result = run_workload(store, _spec("50:50"))
    for op in ("read", "update"):
        assert (
            result.median_latency_us(op)
            <= result.mean_latency_us(op) + result.p95_latency_us(op)
        )
        assert result.p95_latency_us(op) >= result.median_latency_us(op)


def test_fsmem_deferred_gc_amortised_into_update_mean():
    store = make_store("fsmem", _cfg())
    result = run_workload(store, _spec("50:50"))
    raw_mean = (
        sum(result.latencies_s["update"]) / len(result.latencies_s["update"]) * 1e6
    )
    assert result.mean_latency_us("update") > raw_mean
    assert result.deferred_update_s > 0


def test_measure_degraded_reads_sample():
    store = make_store("logecmem", _cfg())
    spec = _spec()
    load_store(store, spec)
    lats = measure_degraded_reads(store, spec, samples=20)
    assert len(lats) == 20
    assert all(x > 0 for x in lats)


def test_estimate_throughput_empty_run():
    store = make_store("vanilla", _cfg())
    from repro.bench.runner import WorkloadResult

    assert estimate_throughput(store, WorkloadResult(store="vanilla", spec=_spec())) == 0.0


# ------------------------------------------------------------- experiment 1


@pytest.fixture(scope="module")
def exp1_rows():
    return experiment1(
        n_objects=240,
        n_requests=240,
        value_sizes=(4096,),
        ratios=("95:5",),
        degraded_samples=20,
    )


def _row(rows, store, **match):
    for row in rows:
        if row["store"] == store and all(row[k] == v for k, v in match.items()):
            return row
    raise AssertionError(f"no row for {store} {match}")


def test_exp1_reads_similar_across_systems(exp1_rows):
    reads = [r["read_latency_us"] for r in exp1_rows]
    assert max(reads) / min(reads) < 1.2  # Figure 10(a): all systems similar


def test_exp1_write_ordering(exp1_rows):
    """Figure 10(c): replication >> EC systems > Vanilla."""
    vanilla = _row(exp1_rows, "vanilla")["write_latency_us"]
    rep = _row(exp1_rows, "replication")["write_latency_us"]
    lec = _row(exp1_rows, "logecmem")["write_latency_us"]
    assert rep > lec > vanilla


def test_exp1_degraded_ordering(exp1_rows):
    """Figure 10(g): replication's degraded read is cheapest; EC systems similar."""
    rep = _row(exp1_rows, "replication")["degraded_latency_us"]
    ip = _row(exp1_rows, "ipmem")["degraded_latency_us"]
    lec = _row(exp1_rows, "logecmem")["degraded_latency_us"]
    assert rep < lec
    assert abs(ip - lec) / lec < 0.2
    assert math.isnan(_row(exp1_rows, "vanilla")["degraded_latency_us"])


def test_exp1_vanilla_highest_throughput(exp1_rows):
    tputs = {r["store"]: r["throughput_kops"] for r in exp1_rows}
    assert tputs["vanilla"] >= max(tputs.values()) * 0.999


# --------------------------------------------------------- experiments 2-4


@pytest.fixture(scope="module")
def sweep_rows():
    return update_memory_sweep(
        [(6, 3), (10, 4)], ratios=("95:5", "50:50"), n_objects=600, n_requests=600
    )


def test_exp2_logecmem_beats_ipmem(sweep_rows):
    for k in (6, 10):
        for ratio in ("95:5", "50:50"):
            lec = _row(sweep_rows, "logecmem", k=k, ratio=ratio)["update_latency_us"]
            ip = _row(sweep_rows, "ipmem", k=k, ratio=ratio)["update_latency_us"]
            assert lec < ip


def test_exp2_gap_grows_with_r(sweep_rows):
    def reduction(k):
        lec = _row(sweep_rows, "logecmem", k=k, ratio="95:5")["update_latency_us"]
        ip = _row(sweep_rows, "ipmem", k=k, ratio="95:5")["update_latency_us"]
        return (ip - lec) / ip

    assert reduction(10) > reduction(6)  # r=4 vs r=3


def test_exp2_fsmem_crossover(sweep_rows):
    """Figure 11: LogECMem wins update-light, FSMem wins update-heavy."""
    lec_l = _row(sweep_rows, "logecmem", k=6, ratio="95:5")["update_latency_us"]
    fs_l = _row(sweep_rows, "fsmem", k=6, ratio="95:5")["update_latency_us"]
    lec_h = _row(sweep_rows, "logecmem", k=6, ratio="50:50")["update_latency_us"]
    fs_h = _row(sweep_rows, "fsmem", k=6, ratio="50:50")["update_latency_us"]
    assert fs_l > lec_l
    assert fs_h < lec_h


def test_exp2_replication_fastest_updates(sweep_rows):
    for k in (6, 10):
        rep = _row(sweep_rows, "replication", k=k, ratio="95:5")["update_latency_us"]
        others = [
            _row(sweep_rows, s, k=k, ratio="95:5")["update_latency_us"]
            for s in ("ipmem", "fsmem", "logecmem")
        ]
        assert rep < min(others)


def test_exp3_memory_ordering(sweep_rows):
    """Figure 12: replication >> FSMem > IPMem > LogECMem."""
    for ratio in ("95:5", "50:50"):
        mem = {
            s: _row(sweep_rows, s, k=6, ratio=ratio)["memory_GiB"]
            for s in ("replication", "ipmem", "fsmem", "logecmem")
        }
        assert mem["replication"] > mem["fsmem"] > mem["logecmem"]
        assert mem["ipmem"] > mem["logecmem"]


def test_exp3_paper_scale_magnitudes(sweep_rows):
    """(6,3): 4-way ~16 GiB, IPMem ~6, LogECMem ~4.7 (Figure 12(a))."""
    assert _row(sweep_rows, "replication", k=6, ratio="95:5")["memory_GiB"] == pytest.approx(16, rel=0.1)
    assert _row(sweep_rows, "ipmem", k=6, ratio="95:5")["memory_GiB"] == pytest.approx(6, rel=0.1)
    assert _row(sweep_rows, "logecmem", k=6, ratio="95:5")["memory_GiB"] == pytest.approx(4.7, rel=0.1)


def test_exp4_large_k_fsmem_degrades():
    rows = update_memory_sweep(
        [(16, 4)], ratios=("95:5",), stores=("fsmem", "logecmem"),
        n_objects=640, n_requests=320,
    )
    fs = _row(rows, "fsmem", k=16)["update_latency_us"]
    lec = _row(rows, "logecmem", k=16)["update_latency_us"]
    assert fs > 1.5 * lec  # re-computation dominates at large k


# ------------------------------------------------------------- experiment 5


def test_exp5_scheme_io_ordering():
    rows = experiment5(
        codes=[(6, 3)], ratios=("50:50",), n_objects=400, n_requests=400,
        io_code=(6, 3),
    )
    ios = {r["scheme"]: r["disk_ios"] for r in rows}
    assert ios["pl"] < ios["plm"] < ios["plr-m"] < ios["plr"]


def test_exp5_ios_grow_with_update_ratio():
    rows = experiment5(
        codes=[(6, 3)], ratios=("95:5", "50:50"), n_objects=400, n_requests=400,
        schemes=("plr",), io_code=(6, 3),
    )
    light = next(r for r in rows if r["ratio"] == "95:5")["disk_ios"]
    heavy = next(r for r in rows if r["ratio"] == "50:50")["disk_ios"]
    assert heavy > light


# ------------------------------------------------------------- experiment 6


def test_exp6_pl_repair_slowest():
    rows = experiment6(
        codes=[(6, 3)], ratios=("50:50",), n_objects=300, n_requests=300,
        samples=25, io_code=(6, 3),
    )
    lat = {r["scheme"]: r["degraded_latency_us"] for r in rows}
    assert lat["pl"] > lat["plr"]
    assert lat["pl"] > lat["plm"]
    assert lat["plm"] <= lat["plr"] * 1.01  # PLM at least matches PLR


# ------------------------------------------------------------- experiment 7


def test_exp7_log_assist_helps_most_at_small_k():
    rows = experiment7(codes=[(6, 3), (12, 4)], n_objects=480, n_requests=240)

    def gain(k):
        plain = next(r for r in rows if r["k"] == k and not r["log_assist"])
        assisted = next(r for r in rows if r["k"] == k and r["log_assist"])
        return (
            assisted["throughput_GiB_per_min"] - plain["throughput_GiB_per_min"]
        ) / plain["throughput_GiB_per_min"]

    assert gain(6) > gain(12) > 0
    # the paper's headline: up to ~18% at (6,3)
    assert 0.10 < gain(6) < 0.30
