"""Tests for the delta algebra (Properties 1 and 2, merging, application)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec.delta import (
    DeltaRecord,
    ParityDelta,
    apply_parity_delta,
    compute_delta,
    merge_parity_deltas,
    parity_delta_from_data_delta,
)
from repro.ec.rs import RSCode


def test_compute_delta_roundtrip():
    rng = np.random.default_rng(0)
    old = rng.integers(0, 256, size=512, dtype=np.uint8)
    new = rng.integers(0, 256, size=512, dtype=np.uint8)
    d = compute_delta(old, new)
    assert np.array_equal(old ^ d, new)
    assert np.array_equal(new ^ d, old)


def test_compute_delta_shape_mismatch():
    with pytest.raises(ValueError):
        compute_delta(np.zeros(4, dtype=np.uint8), np.zeros(5, dtype=np.uint8))


def test_delta_record_properties():
    rec = DeltaRecord(stripe_id=7, data_index=2, offset=100, payload=np.zeros(50, dtype=np.uint8))
    assert rec.length == 50
    assert rec.end == 150


def test_delta_record_negative_offset():
    with pytest.raises(ValueError):
        DeltaRecord(stripe_id=0, data_index=0, offset=-1, payload=np.zeros(1, dtype=np.uint8))


def test_parity_delta_from_record_applies_coefficient():
    code = RSCode(6, 3)
    rng = np.random.default_rng(1)
    payload = rng.integers(0, 256, size=64, dtype=np.uint8)
    rec = DeltaRecord(stripe_id=3, data_index=4, offset=8, payload=payload)
    coeff = code.coefficient(2, 4)
    pd = ParityDelta.from_data_delta(rec, parity_index=2, coefficient=coeff)
    assert pd.stripe_id == 3
    assert pd.parity_index == 2
    assert pd.offset == 8
    assert np.array_equal(pd.payload, parity_delta_from_data_delta(coeff, payload))


def test_merge_requires_nonempty():
    with pytest.raises(ValueError):
        merge_parity_deltas([])


def test_merge_rejects_mixed_targets():
    a = ParityDelta(1, 0, 0, np.zeros(4, dtype=np.uint8))
    b = ParityDelta(2, 0, 0, np.zeros(4, dtype=np.uint8))
    with pytest.raises(ValueError):
        merge_parity_deltas([a, b])
    c = ParityDelta(1, 1, 0, np.zeros(4, dtype=np.uint8))
    with pytest.raises(ValueError):
        merge_parity_deltas([a, c])


def test_merge_overlapping_ranges_equals_sequential_apply():
    rng = np.random.default_rng(2)
    chunk_a = rng.integers(0, 256, size=256, dtype=np.uint8)
    chunk_b = chunk_a.copy()
    deltas = [
        ParityDelta(5, 1, 10, rng.integers(0, 256, size=64, dtype=np.uint8)),
        ParityDelta(5, 1, 40, rng.integers(0, 256, size=64, dtype=np.uint8)),
        ParityDelta(5, 1, 200, rng.integers(0, 256, size=32, dtype=np.uint8)),
    ]
    for d in deltas:
        apply_parity_delta(chunk_a, d)
    merged = merge_parity_deltas(deltas)
    apply_parity_delta(chunk_b, merged)
    assert np.array_equal(chunk_a, chunk_b)
    assert merged.offset == 10
    assert merged.end == 232
    assert merged.merged_count == 3


def test_merge_single_delta_is_identity():
    payload = np.arange(16, dtype=np.uint8)
    d = ParityDelta(1, 0, 4, payload)
    m = merge_parity_deltas([d])
    assert m.offset == 4
    assert np.array_equal(m.payload, payload)
    assert m.merged_count == 1


def test_apply_out_of_range_raises():
    chunk = np.zeros(16, dtype=np.uint8)
    d = ParityDelta(0, 0, 10, np.ones(10, dtype=np.uint8))
    with pytest.raises(ValueError):
        apply_parity_delta(chunk, d)


def test_merged_count_accumulates():
    a = ParityDelta(1, 0, 0, np.zeros(4, dtype=np.uint8), merged_count=2)
    b = ParityDelta(1, 0, 2, np.zeros(4, dtype=np.uint8), merged_count=3)
    assert merge_parity_deltas([a, b]).merged_count == 5


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=192),
            st.integers(min_value=1, max_value=64),
            st.integers(min_value=0, max_value=2**31 - 1),
        ),
        min_size=1,
        max_size=8,
    )
)
def test_merge_equivalence_property(specs):
    """Merged application == sequential application for arbitrary deltas."""
    chunk_seq = np.zeros(256, dtype=np.uint8)
    chunk_mrg = np.zeros(256, dtype=np.uint8)
    deltas = []
    for off, ln, seed in specs:
        rng = np.random.default_rng(seed)
        payload = rng.integers(0, 256, size=ln, dtype=np.uint8)
        deltas.append(ParityDelta(9, 2, off, payload))
    for d in deltas:
        apply_parity_delta(chunk_seq, d)
    apply_parity_delta(chunk_mrg, merge_parity_deltas(deltas))
    assert np.array_equal(chunk_seq, chunk_mrg)


def test_end_to_end_update_consistency_via_records():
    """Full Property-1 + Property-2 pipeline keeps the stripe decodable."""
    code = RSCode(4, 2)
    rng = np.random.default_rng(3)
    data = rng.integers(0, 256, size=(4, 128), dtype=np.uint8)
    parity = code.encode(data)

    # Update bytes [32:64) of chunk 2 twice.
    updates = []
    current = data.copy()
    for seed in (10, 11):
        r = np.random.default_rng(seed)
        new_bytes = r.integers(0, 256, size=32, dtype=np.uint8)
        delta = current[2, 32:64] ^ new_bytes
        updates.append(DeltaRecord(stripe_id=0, data_index=2, offset=32, payload=delta))
        current[2, 32:64] = new_bytes

    # Log node for parity 1 folds both records, merged, into its parity.
    coeff = code.coefficient(1, 2)
    pds = [ParityDelta.from_data_delta(u, 1, coeff) for u in updates]
    merged = merge_parity_deltas(pds)
    p1 = parity[1].copy()
    apply_parity_delta(p1, merged)
    assert np.array_equal(p1, code.encode(current)[1])
