"""Tests for StoreConfig validation and derived values."""

import pytest

from repro.core.config import StoreConfig


def test_defaults_mirror_paper():
    cfg = StoreConfig()
    assert (cfg.k, cfg.r) == (6, 3)
    assert cfg.value_size == 4096
    assert cfg.chunk_size == 4096  # object == chunk by default
    assert cfg.scheme == "plm"
    assert cfg.n == 9
    assert cfg.n_log_nodes == 2


def test_chunk_size_defaults_to_value_size():
    cfg = StoreConfig(value_size=1024)
    assert cfg.chunk_size == 1024


def test_explicit_chunk_size_allows_packing():
    cfg = StoreConfig(value_size=512, chunk_size=4096)
    assert cfg.chunk_size == 4096


def test_value_larger_than_chunk_rejected():
    with pytest.raises(ValueError):
        StoreConfig(value_size=8192, chunk_size=4096)


def test_k_r_bounds():
    with pytest.raises(ValueError):
        StoreConfig(k=1)
    with pytest.raises(ValueError):
        StoreConfig(r=0)
    with pytest.raises(ValueError):
        StoreConfig(k=255, r=10)


def test_phys_chunk_size_scales():
    cfg = StoreConfig(value_size=4096, payload_scale=1 / 16)
    assert cfg.phys_chunk_size() == 256
    cfg_full = StoreConfig(value_size=4096, payload_scale=1.0)
    assert cfg_full.phys_chunk_size() == 4096


def test_n_log_nodes_for_r1():
    cfg = StoreConfig(k=4, r=1)
    assert cfg.n_log_nodes == 0


def test_profiles_not_shared():
    a = StoreConfig()
    b = StoreConfig()
    assert a.profile is not b.profile
