"""Property-based tests for LatencyHistogram: merge exactness and the
quantile contract (monotone in q, clamped to the [min, max] envelope),
including the underflow and overflow bins."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import LatencyHistogram

# spans underflow (< 1e-7 s), all ten decades, and overflow (> 1e3 s)
latencies = st.floats(
    min_value=0.0, max_value=1e5, allow_nan=False, allow_infinity=False
)
streams = st.lists(latencies, min_size=0, max_size=200)
quantiles = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


def observe_all(values):
    hist = LatencyHistogram()
    for v in values:
        hist.observe(v)
    return hist


@settings(max_examples=200, deadline=None)
@given(streams, streams)
def test_merge_equals_concatenated_stream(xs, ys):
    merged = observe_all(xs)
    merged.merge(observe_all(ys))
    concat = observe_all(xs + ys)
    assert merged.bins == concat.bins
    assert merged.count == concat.count
    assert merged.min_s == concat.min_s
    assert merged.max_s == concat.max_s
    # sums agree only up to float-addition order (merge adds subtotals)
    assert math.isclose(merged.total_s, concat.total_s, rel_tol=1e-12, abs_tol=1e-15)
    # quantiles depend only on bins/count/min/max, so they agree exactly
    for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
        assert merged.quantile(q) == concat.quantile(q)


@settings(max_examples=200, deadline=None)
@given(streams, st.lists(quantiles, min_size=2, max_size=10))
def test_quantile_monotone_and_within_envelope(xs, qs):
    hist = observe_all(xs)
    if not xs:
        assert all(hist.quantile(q) == 0.0 for q in qs)
        return
    for q in qs:
        v = hist.quantile(q)
        assert hist.min_s <= v <= hist.max_s
    for lo, hi in zip(sorted(qs), sorted(qs)[1:]):
        assert hist.quantile(lo) <= hist.quantile(hi)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=9e-8), min_size=1, max_size=50))
def test_all_underflow_quantiles_stay_in_envelope(xs):
    # every sample lands in the underflow bin; the bin edge (1e-7) is above
    # max_s, so the clamp must pull estimates back inside [min, max]
    hist = observe_all(xs)
    for q in (0.0, 0.5, 1.0):
        assert hist.min_s <= hist.quantile(q) <= hist.max_s


@settings(max_examples=100, deadline=None)
@given(st.lists(st.floats(min_value=2e3, max_value=1e6), min_size=1, max_size=50))
def test_all_overflow_quantiles_stay_in_envelope(xs):
    # every sample lands in the overflow bin, which has no finite upper
    # edge; quantiles must fall back to the exact envelope
    hist = observe_all(xs)
    for q in (0.0, 0.5, 1.0):
        assert hist.min_s <= hist.quantile(q) <= hist.max_s
