"""Update-path tests for LogECMem: Figure 7's workflow, delta consistency,
buffer logging, and the latency advantages §6.3 measures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.ipmem import IPMem
from repro.core.config import StoreConfig
from repro.core.logecmem import LogECMem


def _cfg(**kw):
    defaults = dict(k=4, r=3, value_size=4096, payload_scale=1 / 16)
    defaults.update(kw)
    return StoreConfig(**defaults)


def _loaded(cfg=None, n=16):
    store = LogECMem(cfg or _cfg())
    for i in range(n):
        store.write(f"user{i}")
    return store


def test_update_changes_value():
    store = _loaded()
    before = store.read("user2").value.copy()
    store.update("user2")
    after = store.read("user2").value
    assert not np.array_equal(before, after)
    assert np.array_equal(after, store.expected_value("user2"))


def test_update_keeps_xor_parity_consistent():
    store = _loaded()
    store.update("user2")
    sid = store.object_index.lookup("user2").stripe_id
    assert store.verify_stripe(sid)


def _sealed_keys(store, count):
    out = []
    for sid in sorted(store.stripe_index.stripe_ids()):
        for keys in store.stripe_index.get(sid).chunk_keys:
            out.extend(keys)
    assert len(out) >= count, "not enough sealed objects"
    return out[:count]


def test_update_keeps_logged_parities_consistent():
    store = _loaded(n=24)
    a, b = _sealed_keys(store, 2)
    for key in (a, a, b, a):
        store.update(key)
    for key in (a, b):
        sid = store.object_index.lookup(key).stripe_id
        data = np.stack([store.data_chunks[(sid, i)].buffer for i in range(4)])
        expect = store.code.encode(data)
        for j in range(1, 3):
            assert np.array_equal(store.uptodate_logged_parity(sid, j), expect[j])


def test_update_survives_flush_and_settle():
    """Deltas remain applicable after they reach disk through any path."""
    cfg = _cfg()
    cfg.profile.log_flush_threshold_bytes = 4096  # flush after every delta
    cfg.profile.log_buffer_bytes = 8192
    store = LogECMem(cfg)
    for i in range(16):
        store.write(f"user{i}")
    for _ in range(6):
        store.update("user1")
    store.finalize()
    sid = store.object_index.lookup("user1").stripe_id
    data = np.stack([store.data_chunks[(sid, i)].buffer for i in range(4)])
    expect = store.code.encode(data)
    for j in range(1, 3):
        assert np.array_equal(store.uptodate_logged_parity(sid, j), expect[j])


def test_update_reads_only_one_parity():
    """The HybridPL point: one parity read (XOR) vs IPMem's r."""
    lec = _loaded()
    lec.update("user2")
    assert lec.counters["parity_chunk_reads"] == 1

    ip = IPMem(_cfg())
    for i in range(16):
        ip.write(f"user{i}")
    ip.update("user2")
    assert ip.counters["parity_chunk_reads"] == ip.cfg.r


def test_update_sends_delta_per_log_parity():
    store = _loaded()
    store.update("user2")
    assert store.counters["parity_deltas_sent"] == store.cfg.r - 1


def test_update_latency_beats_ipmem():
    """Figure 11's headline: LogECMem < IPMem, and the gap grows with r."""
    gaps = {}
    for r in (3, 4):
        cfg_args = dict(k=6, r=r, value_size=4096, payload_scale=1 / 16)
        lec = LogECMem(StoreConfig(**cfg_args))
        ip = IPMem(StoreConfig(**cfg_args))
        for s in (lec, ip):
            for i in range(24):
                s.write(f"user{i}")
        lat_lec = lec.update("user2").latency_s
        lat_ip = ip.update("user2").latency_s
        assert lat_lec < lat_ip
        gaps[r] = (lat_ip - lat_lec) / lat_ip
    assert gaps[4] > gaps[3]


def test_update_latency_flat_across_k():
    """Delta-based updates are k-independent (§7 Originalities)."""
    lats = []
    for k in (4, 8, 16):
        store = LogECMem(StoreConfig(k=k, r=3, value_size=4096, payload_scale=1 / 16))
        for i in range(6 * k):
            store.write(f"user{i}")
        key = _sealed_keys(store, 1)[0]
        lats.append(store.update(key).latency_s)
    assert max(lats) / min(lats) < 1.05


def test_pending_update_before_seal():
    store = _loaded(n=2)  # unsealed
    store.update("user1")
    res = store.read("user1")
    assert np.array_equal(res.value, store.expected_value("user1"))


def test_update_of_logecmem_requires_r_ge_2():
    with pytest.raises(ValueError):
        LogECMem(StoreConfig(k=4, r=1))


def test_backpressure_surfaces_in_latency():
    """A glacial log disk eventually stalls updates (bounded backlog)."""
    cfg = _cfg()
    cfg.profile.disk_seq_bandwidth_Bps = 1e4
    cfg.profile.log_flush_threshold_bytes = 8192
    cfg.profile.log_buffer_bytes = 16384
    cfg.profile.max_disk_backlog_s = 1e-3
    store = LogECMem(cfg)
    for i in range(16):
        store.write(f"user{i}")
    lats = []
    for i in range(30):
        res = store.update(f"user{i % 16}")
        store.cluster.clock.advance(res.latency_s)
        lats.append(res.latency_s)
    assert max(lats) > min(lats) * 2  # stalled updates are visibly slower


@settings(max_examples=10, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=25))
def test_random_update_sequences_keep_all_parities_consistent(sequence):
    """Property: any update sequence leaves every parity reconstructible."""
    store = _loaded()
    for idx in sequence:
        store.update(f"user{idx}")
    store.finalize()
    for sid in store.stripe_index.stripe_ids():
        data = np.stack([store.data_chunks[(sid, i)].buffer for i in range(4)])
        expect = store.code.encode(data)
        assert np.array_equal(store.parity_chunks[(sid, 0)], expect[0])
        for j in range(1, 3):
            assert np.array_equal(store.uptodate_logged_parity(sid, j), expect[j])
