"""Tests for per-phase latency breakdowns on the update path."""

import pytest

from repro.analysis.breakdown import aggregate_breakdowns, breakdown_shares
from repro.core.config import StoreConfig
from repro.core.interface import OpResult
from repro.core.logecmem import LogECMem


def _loaded(n=24):
    store = LogECMem(StoreConfig(k=4, r=3, payload_scale=1 / 16))
    for i in range(n):
        store.write(f"user{i}")
    return store


def test_update_carries_breakdown():
    store = _loaded()
    res = store.update("user3")
    parts = res.info["breakdown"]
    assert set(parts) == {"client", "reads", "compute", "writes", "log_stall"}
    assert sum(parts.values()) == pytest.approx(res.latency_s)
    assert all(v >= 0 for v in parts.values())


def test_network_phases_dominate_update_latency():
    """The paper's point: updates are I/O-path-bound -- the sequential reads
    (old data + XOR parity) and the fan-out writes dwarf the compute."""
    store = _loaded()
    results = [store.update(f"user{i}") for i in range(12)]
    shares = breakdown_shares(results)
    assert shares["reads"] + shares["writes"] > 0.8
    assert shares["reads"] > 10 * shares["compute"]
    assert sum(shares.values()) == pytest.approx(1.0)


def test_aggregate_means():
    store = _loaded()
    results = [store.update("user3") for _ in range(5)]
    means = aggregate_breakdowns(results)
    assert means["reads"] == pytest.approx(results[0].info["breakdown"]["reads"])


def test_aggregate_handles_missing_breakdowns():
    assert aggregate_breakdowns([OpResult(latency_s=1.0)]) == {}
    assert breakdown_shares([]) == {}
    store = _loaded()
    mixed = [store.read("user3"), store.update("user3")]
    means = aggregate_breakdowns(mixed)
    assert "reads" in means  # only the update contributes


def test_no_stall_on_healthy_disk():
    store = _loaded()
    res = store.update("user3")
    assert res.info["breakdown"]["log_stall"] == 0.0
