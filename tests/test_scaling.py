"""Tests for cluster scaling: DRAM node join and decommission."""

import numpy as np
import pytest

from repro.core.config import StoreConfig
from repro.core.logecmem import LogECMem
from repro.core.scaling import add_dram_node, decommission_dram_node
from repro.core.scrub import scrub


def _cfg(**kw):
    defaults = dict(k=4, r=3, value_size=4096, payload_scale=1 / 16)
    defaults.update(kw)
    return StoreConfig(**defaults)


def _loaded(n=32):
    store = LogECMem(_cfg())
    for i in range(n):
        store.write(f"user{i}")
    return store


# ---------------------------------------------------------------------- join


def test_join_adds_ring_member_and_queue():
    store = _loaded()
    before = len(store.cluster.dram_nodes)
    report = add_dram_node(store)
    assert len(store.cluster.dram_nodes) == before + 1
    assert report.node_id in store.cluster.dram_nodes
    assert report.chunks_moved == 0
    assert report.node_id in store._full_units


def test_join_is_metadata_only_for_existing_stripes():
    store = _loaded()
    placements = {
        sid: list(store.stripe_index.get(sid).chunk_nodes)
        for sid in store.stripe_index.stripe_ids()
    }
    add_dram_node(store)
    for sid, nodes in placements.items():
        assert store.stripe_index.get(sid).chunk_nodes == nodes


def test_joined_node_receives_new_stripes():
    store = _loaded(n=16)
    report = add_dram_node(store)
    for i in range(16, 120):
        store.write(f"user{i}")
    used = any(
        report.node_id in store.stripe_index.get(sid).chunk_nodes
        for sid in store.stripe_index.stripe_ids()
    )
    assert used
    assert scrub(store).clean


def test_join_rejects_duplicate_id():
    store = _loaded()
    with pytest.raises(ValueError):
        add_dram_node(store, "dram0")
    with pytest.raises(ValueError):
        add_dram_node(store, "log0")


# -------------------------------------------------------------- decommission


def test_decommission_needs_spare_node():
    store = _loaded()
    with pytest.raises(ValueError):
        decommission_dram_node(store, "dram0")  # only k+1 nodes present


def test_decommission_moves_all_chunks():
    store = _loaded()
    add_dram_node(store)
    victim = "dram1"
    stripes = store.stripe_index.stripes_on_node(victim)
    report = decommission_dram_node(store, victim)
    assert report.chunks_moved == len(stripes)  # one chunk per stripe per node
    assert victim not in store.cluster.dram_nodes
    assert victim not in store.cluster.ring.nodes
    for sid in stripes:
        assert victim not in store.stripe_index.get(sid).chunk_nodes


def test_decommission_preserves_distinct_placement_invariant():
    store = _loaded(n=48)
    add_dram_node(store)
    decommission_dram_node(store, "dram2")
    for sid in store.stripe_index.stripe_ids():
        rec = store.stripe_index.get(sid)
        dram_nodes = rec.chunk_nodes[: store.cfg.k + 1]
        assert len(set(dram_nodes)) == store.cfg.k + 1


def test_decommission_keeps_data_readable():
    store = _loaded(n=48)
    expect = {f"user{i}": store.expected_value(f"user{i}") for i in range(48)}
    add_dram_node(store)
    decommission_dram_node(store, "dram0")
    for key, value in expect.items():
        assert np.array_equal(store.read(key).value, value), key
    # degraded reads and updates still work after the move
    store.update("user7")
    res = store.degraded_read("user7")
    assert np.array_equal(res.value, store.expected_value("user7"))
    assert scrub(store).clean


def test_decommission_requeues_pending_objects():
    store = _loaded(n=30)  # likely leaves pendings
    add_dram_node(store)
    pending_before = set(store._pending)
    victim = next(iter(store.cluster.dram_ids()))
    decommission_dram_node(store, victim)
    # every previously-pending object is still readable
    for key in pending_before:
        assert store.read(key).value is not None


def test_decommission_moves_memory_accounting():
    store = _loaded(n=48)
    add_dram_node(store)
    total_before = store.memory_logical_bytes
    decommission_dram_node(store, "dram3")
    assert store.memory_logical_bytes == total_before  # moved, not lost


def test_decommission_rejects_dead_or_unknown():
    store = _loaded()
    add_dram_node(store)
    store.cluster.kill("dram1")
    with pytest.raises(ValueError):
        decommission_dram_node(store, "dram1")
    with pytest.raises(KeyError):
        decommission_dram_node(store, "nope")


def test_join_then_decommission_roundtrip():
    store = _loaded(n=48)
    report = add_dram_node(store)
    for i in range(48, 80):
        store.write(f"user{i}")
    decommission_dram_node(store, report.node_id)
    for i in range(80):
        key = f"user{i}"
        assert np.array_equal(store.read(key).value, store.expected_value(key)), key
    assert scrub(store).clean
