"""Sim-time telemetry: series properties, sampler wiring, SLO signals.

Covers the telemetry layer end to end:

* property tests (hypothesis) for the series contracts -- monotone
  timestamps, window-sum conservation, ring eviction preserving totals;
* the engine's sampler wiring: tick grid, ops conservation, default-off
  byte-stability of the result JSON;
* SLO burn edge detection -> journal events -> heal detector/proposer;
* the chaos+plane integration: a burn fires, backoff executes, occupancy
  rises through the fault window and recovers, invariants stay clean;
* byte-determinism of the CSV/JSONL/Prometheus exporters and of the
  ``repro watch`` document across repeated runs.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.ascii_chart import strip_chart, time_ruler
from repro.analysis.timeline import fault_windows, telemetry_overlay
from repro.baselines import make_store
from repro.bench.compare import compare_profiles
from repro.chaos import run_chaos
from repro.core.config import StoreConfig
from repro.engine.load import build_jobs, run_point, run_watch, watch_json
from repro.heal.detector import Detector
from repro.heal.plane import ControlPlane
from repro.heal.proposer import Proposer
from repro.obs.export import (
    engine_gauges_text,
    prometheus_text,
    timeseries_csv,
    timeseries_jsonl,
    timeseries_prometheus,
)
from repro.obs.timeseries import (
    Gauge,
    SLOTracker,
    SlidingQuantile,
    TelemetrySampler,
    WindowedCounter,
    exact_quantile,
)
from repro.workloads import WorkloadSpec


# --------------------------------------------------------------- properties


@given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
def test_gauge_timestamps_monotone_nondecreasing(values):
    g = Gauge("g")
    for i, v in enumerate(values):
        g.record(float(i), v)
    points = g.points()
    assert all(points[i][0] <= points[i + 1][0] for i in range(len(points) - 1))


def test_gauge_rejects_backwards_timestamp():
    g = Gauge("g")
    g.record(1.0, 0.0)
    with pytest.raises(ValueError):
        g.record(0.5, 0.0)


@given(
    st.lists(
        st.tuples(st.floats(min_value=0, max_value=100), st.booleans()),
        min_size=1,
        max_size=60,
    )
)
def test_windowed_counter_conserves_total(ops):
    """sum(recorded windows) + pending == total bumped, at every point."""
    c = WindowedCounter("c")
    t = 0.0
    for amount, close in ops:
        c.bump(amount)
        if close:
            t += 1.0
            c.flush(t)
        total_windows = sum(c.values())
        assert total_windows + c.pending == pytest.approx(c.bumped)
    assert c.bumped == pytest.approx(sum(a for a, _ in ops))


@given(
    st.integers(min_value=1, max_value=8),
    st.lists(st.floats(min_value=0, max_value=1e3), min_size=1, max_size=64),
)
def test_ring_eviction_preserves_totals(capacity, values):
    g = Gauge("g", capacity=capacity)
    for i, v in enumerate(values):
        g.record(float(i), v)
    assert len(g.points()) == min(capacity, len(values))
    assert g.count == len(values)
    assert g.total == pytest.approx(sum(values))


@given(
    st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=100),
    st.floats(min_value=0.01, max_value=1.0),
)
def test_exact_quantile_is_order_statistic(values, q):
    ordered = sorted(values)
    result = exact_quantile(ordered, q)
    assert result in ordered
    # at least ceil(q*n) values are <= result
    assert sum(1 for v in ordered if v <= result) >= q * len(ordered) - 1e-9


def test_sliding_quantile_prunes_old_observations():
    sq = SlidingQuantile("p99", q=1.0, window_s=1.0)
    sq.observe(0.0, 100.0)
    sq.observe(0.8, 50.0)
    assert sq.record_at(1.0) == 100.0  # both in window: max is 100
    assert sq.record_at(1.6) == 50.0  # the 100 at t=0 fell out
    assert sq.record_at(3.0) == 0.0  # idle window has no tail


# ------------------------------------------------------------------ sampler


def test_sampler_tick_grid_and_alignment():
    s = TelemetrySampler(interval_s=0.5)
    assert s.next_tick() == 0.5
    s.align(2.2)  # run phase starts mid-clock: skip past ticks
    assert s.next_tick() == 2.5
    assert s.pump(3.6) == 3  # 2.5, 3.0, 3.5
    ts = [t for t, _ in s.series["client.ops"].points()]
    assert ts == [2.5, 3.0, 3.5]
    s.finish(3.7)  # final off-grid point
    assert s.series["client.ops"].last()[0] == 3.7


def test_sampler_stale_tick_rejected():
    s = TelemetrySampler(interval_s=1.0)
    assert s.sample(1.0)
    assert not s.sample(1.0)
    assert not s.sample(0.5)
    assert s.samples == 1


def _engine_result(telemetry_interval_s=0.0, slo_p99_us=0.0, faults=None):
    jobs, profile, dram_ids, log_ids = build_jobs(n_objects=60, n_requests=150)
    res = run_point(
        jobs,
        profile,
        16,
        faults=faults,
        telemetry_interval_s=telemetry_interval_s,
        slo_p99_us=slo_p99_us,
    )
    return res, dram_ids, log_ids


def test_engine_telemetry_conserves_ops_and_is_deterministic():
    res, _, _ = _engine_result(telemetry_interval_s=5e-4, slo_p99_us=5000.0)
    tele = res.telemetry
    assert tele["samples"] > 0
    ops = tele["series"]["client.ops"]
    # windowed ops over the whole run sum to the completed jobs
    assert sum(v for _, v in ops["points"]) == res.jobs_completed
    assert ops["count"] == tele["samples"]
    # station/admission/log series all present and sampled on the same grid
    names = set(tele["series"])
    assert "admission.inflight" in names
    assert any(n.startswith("station.") and n.endswith(".util") for n in names)
    assert any(n.startswith("log.") and n.endswith(".occupancy") for n in names)
    for s in tele["series"].values():
        ts = [t for t, _ in s["points"]]
        assert ts == sorted(ts)
    res2, _, _ = _engine_result(telemetry_interval_s=5e-4, slo_p99_us=5000.0)
    assert json.dumps(res.to_dict(), sort_keys=True) == json.dumps(
        res2.to_dict(), sort_keys=True
    )


def test_engine_telemetry_off_leaves_result_unchanged():
    res, _, _ = _engine_result()
    doc = res.to_dict()
    assert "telemetry" not in doc
    res2, _, _ = _engine_result()
    assert json.dumps(doc, sort_keys=True) == json.dumps(
        res2.to_dict(), sort_keys=True
    )


def test_station_utilisation_bounded():
    res, _, _ = _engine_result(telemetry_interval_s=5e-4)
    for name, series in res.telemetry["series"].items():
        if name.startswith("station.") and name.endswith(".util"):
            assert all(0.0 <= v <= 1.0 for _, v in series["points"])


# ----------------------------------------------------------------- SLO edge


def _burn_window(tracker, t, n_bad=10):
    for _ in range(n_bad):
        tracker.observe(2000.0)  # above target
    return tracker.sample(t)


def test_slo_tracker_edges_emit_events():
    from repro.obs.events import EventJournal
    from repro.sim.clock import SimClock

    journal = EventJournal(SimClock())
    tracker = SLOTracker(target_p99_us=1000.0, journal=journal)
    # window 1: all good -> no burn
    tracker.observe(10.0)
    assert tracker.sample(1.0) == 0.0
    assert journal.counts == {}
    # window 2: all bad -> burn rate 1/0.01 = 100, rising edge
    burn = _burn_window(tracker, 2.0)
    assert burn == pytest.approx(100.0)
    assert journal.counts.get("telemetry_slo_burn") == 1
    # window 3: still bad -> no duplicate rising edge
    _burn_window(tracker, 3.0)
    assert journal.counts.get("telemetry_slo_burn") == 1
    # window 4: recovered -> falling edge
    tracker.observe(10.0)
    tracker.sample(4.0)
    assert journal.counts.get("telemetry_slo_ok") == 1
    summary = tracker.summary()
    assert summary["episodes"] == 1
    assert summary["samples_burning"] == 2
    assert summary["max_burn_rate"] == pytest.approx(100.0)


def test_empty_window_keeps_prior_state():
    tracker = SLOTracker(target_p99_us=1000.0)
    _burn_window(tracker, 1.0)
    assert tracker.burning
    tracker.sample(2.0)  # no ops at all: stays burning (no evidence of recovery)
    assert tracker.episodes == 1


def test_detector_maps_slo_events_to_incidents():
    store = make_store("logecmem", StoreConfig(k=3, r=3, value_size=1024))
    cluster = store.cluster
    detector = Detector(cluster)
    cluster.journal.emit("telemetry_slo_burn", node="_cluster", burn_rate=5.0)
    fresh, resolved = detector.poll(1.0)
    assert [(i.kind, i.node_id) for i in fresh] == [("slo_burn", "_cluster")]
    assert not resolved
    # dedupe: a second burn for the same node while open is suppressed
    cluster.journal.emit("telemetry_slo_burn", node="_cluster", burn_rate=9.0)
    fresh2, _ = detector.poll(2.0)
    assert not fresh2
    cluster.journal.emit("telemetry_slo_ok", node="_cluster")
    _, resolved2 = detector.poll(3.0)
    assert [i.kind for i in resolved2] == ["slo_burn"]


def test_proposer_backoff_playbook_for_slo_burn():
    from repro.heal.incidents import Incident

    proposer = Proposer()
    inc = Incident(kind="slo_burn", node_id="_cluster", seq=0, detected_s=1.0)
    plan = proposer.propose(inc, 1.0)
    assert [a.kind for a in plan] == ["traffic_backoff"]
    assert plan[0].reversible
    follow = proposer.on_resolved(inc, 2.0)
    assert [a.kind for a in follow] == ["release_backoff"]


# ------------------------------------------------------- chaos integration


def _chaos_with_telemetry(expected_faults=3.0, with_plane=True):
    store = make_store("logecmem", StoreConfig(k=6, r=3, value_size=4096))
    spec = WorkloadSpec.read_update(
        "50:50", n_objects=120, n_requests=300, value_size=4096, seed=42
    )
    telemetry = TelemetrySampler(
        interval_s=2e-4,
        journal=store.cluster.journal,
        counters=store.cluster.counters,
        slo=SLOTracker(
            target_p99_us=400.0,
            journal=store.cluster.journal,
            counters=store.cluster.counters,
        ),
    )
    plane = ControlPlane() if with_plane else None
    report = run_chaos(
        store,
        spec,
        expected_faults=expected_faults,
        control_plane=plane,
        telemetry=telemetry,
    )
    return report


def test_chaos_burn_fires_backoff_with_clean_invariants():
    report = _chaos_with_telemetry()
    assert not report.violations
    doc = report.to_dict()
    tele = doc["telemetry"]
    assert tele["slo"]["episodes"] >= 1
    # the plane consumed the burn event and answered with a backoff
    kinds = [e["action"]["kind"] for e in report.heal["executed"]]
    assert "traffic_backoff" in kinds
    burn_incidents = [
        i for i in report.heal["incidents"] if i["kind"] == "slo_burn"
    ]
    assert burn_incidents and burn_incidents[0]["node"] == "_cluster"


def test_chaos_occupancy_rises_through_fault_and_recovers():
    report = _chaos_with_telemetry()
    doc = report.to_dict()
    series = doc["telemetry"]["series"]
    windows = fault_windows(doc["events"], run_end_s=doc["makespan_s"])
    assert windows
    occ = next(
        series[n]["points"] for n in sorted(series) if n.endswith(".occupancy")
    )
    in_window = [v for t, v in occ if any(w.contains(t) for w in windows)]
    tail = [v for t, v in occ[-5:]]
    assert in_window, "no telemetry samples inside any fault window"
    # pressure peaked inside a window and drained by run end
    assert max(in_window) > 0
    assert min(tail) <= max(in_window)


def test_chaos_without_telemetry_unchanged():
    def outcome(telemetry):
        store = make_store("logecmem", StoreConfig(k=6, r=3, value_size=4096))
        spec = WorkloadSpec.read_update(
            "50:50", n_objects=80, n_requests=160, value_size=4096, seed=7
        )
        doc = run_chaos(
            store, spec, expected_faults=2.0, telemetry=telemetry
        ).to_dict()
        doc.pop("telemetry", None)
        return json.dumps(doc, sort_keys=True)

    bare = outcome(None)
    with_tele = outcome(TelemetrySampler(interval_s=2e-4))
    # telemetry observes; it must not perturb the simulation itself
    assert bare == with_tele


# ---------------------------------------------------------------- exporters


def _sample_telemetry():
    res, _, _ = _engine_result(telemetry_interval_s=5e-4, slo_p99_us=5000.0)
    return res


def test_export_forms_are_byte_deterministic():
    res = _sample_telemetry()
    res2 = _sample_telemetry()
    for fn in (timeseries_csv, timeseries_jsonl, timeseries_prometheus):
        assert fn(res.telemetry) == fn(res2.telemetry)
    csv = timeseries_csv(res.telemetry)
    header, first = csv.splitlines()[:2]
    assert header == "series,t_s,value"
    assert len(first.split(",")) == 3
    for line in timeseries_jsonl(res.telemetry).splitlines():
        doc = json.loads(line)
        assert set(doc) == {"kind", "series", "t_s", "value"}
    prom = timeseries_prometheus(res.telemetry)
    assert prom.startswith("# TYPE repro_timeseries gauge")


def test_engine_gauges_and_combined_prometheus():
    res = _sample_telemetry()
    text = engine_gauges_text(res.stations, res.backpressure)
    assert "# TYPE repro_station_utilisation gauge" in text
    assert 'repro_log_buffer_flushes{node="log0"}' in text
    store = make_store("logecmem", StoreConfig(k=6, r=3, value_size=4096))
    combined = prometheus_text(
        store.metrics,
        telemetry=res.telemetry,
        stations=res.stations,
        backpressure=res.backpressure,
    )
    assert "repro_station_utilisation" in combined
    assert "repro_timeseries" in combined


# -------------------------------------------------------------------- watch


def test_strip_chart_and_ruler_align():
    points = [(0.0, 1.0), (0.5, 2.0), (1.0, 3.0)]
    chart = strip_chart(points, width=10, t0=0.0, t1=1.0)
    assert len(chart) == 10
    ruler = time_ruler([(0.5, 1.0)], width=10, t0=0.0, t1=1.0)
    assert len(ruler) == 10
    assert ruler[0] == "·" and ruler[-1] == "▓"


def test_strip_chart_empty_and_flat():
    assert strip_chart([], width=8) == " " * 8
    flat = strip_chart([(0.0, 5.0), (1.0, 5.0)], width=4, t0=0.0, t1=1.0)
    assert "▁" in flat


def test_telemetry_overlay_renders_all_series():
    res = _sample_telemetry()
    text = telemetry_overlay(res.telemetry, width=40)
    assert "client.throughput_ops_s" in text
    assert "admission.inflight" in text
    filtered = telemetry_overlay(res.telemetry, width=40, series=["slo."])
    assert "slo.burn_rate" in filtered
    assert "admission.inflight" not in filtered
    assert telemetry_overlay({"series": {}}) == "(no telemetry)"


def test_watch_document_deterministic_and_renders():
    from repro.engine.load import render_watch

    kwargs = dict(
        n_objects=60, n_requests=150, concurrency=8, expected_faults=2.0, samples=16
    )
    doc = run_watch(**kwargs)
    doc2 = run_watch(**kwargs)
    assert watch_json(doc) == watch_json(doc2)
    assert doc["windows"], "chaos watch run drew no fault windows"
    text = render_watch(doc, width=40)
    assert text == render_watch(doc2, width=40)
    assert "watch: logecmem" in text
    assert "faults" in text  # the window ruler row
    assert "slo:" in text


# ------------------------------------------------------------ compare gate


def _speed_doc(us_per_op, ops_per_s):
    return {
        "meta": {"objects": 600, "requests": 600, "seed": 42},
        "experiments": {
            "speed": {
                "logecmem": {
                    "ops_replayed": 600,
                    "wall_us_per_op": us_per_op,
                    "wall_s_per_sim_s": us_per_op / 100.0,
                    "wall_ops_per_s": ops_per_s,
                }
            }
        },
    }


def test_speed_slice_gates_generously():
    base = _speed_doc(100.0, 10000.0)
    # 2x slower stays inside the generous 150% threshold
    assert compare_profiles(base, _speed_doc(200.0, 5000.0))["status"] == "pass"
    # an order-of-magnitude slowdown fails
    verdict = compare_profiles(base, _speed_doc(1000.0, 1000.0))
    assert verdict["status"] == "fail"
    paths = [r["path"] for r in verdict["regressions"]]
    assert any("wall_us_per_op" in p for p in paths)
    # throughput is informational: never a regression on its own
    assert not any("wall_ops_per_s" in p for p in paths)
