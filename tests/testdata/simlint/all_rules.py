"""Deliberately non-deterministic module: one violation of every SIM rule.

Lives under ``testdata/`` so default scans skip it; tests and the CI
negative check lint it explicitly and assert the run fails.  DO NOT fix
these -- they are the fixture.
"""

import random
import time
from dataclasses import dataclass, field


def sim001_wall_clock():
    return time.perf_counter()


def sim002_global_rng():
    return random.randint(0, 6)


def sim003_set_iteration(node_ids):
    total = 0
    for nid in set(node_ids):
        total += hash(nid)
    victims = {1, 2, 3}
    victims.pop()
    return total + sum(set(node_ids))


def sim004_unknown_event(journal, counters):
    journal.emit("warp_core_breach", node="dram0")
    counters.add("made_up_counter")


def sim005_clock_mutation(clock):
    clock.now = 12.0
    clock.advance(-0.5)


def sim006_mutable_default(batch=[]):
    batch.append(1)
    return batch


@dataclass
class Sim006Record:
    tags: list = field(default=[])


def sim007_set_accumulation():
    weights = {0.1, 0.2, 0.7}
    total = 0.0
    for w in weights:
        total += w
    return total + sum(x * 2 for x in weights)


def sim008_unknown_taxonomy_literals(Incident, Action, Station, Stage):
    Incident(kind="gremlin", node_id="dram0", detected_s=0.0, seq=0)
    Action("reboot_universe", node_id="dram0", seq=0)
    Station("warp_core")
    Stage("teleporter", 1e-4)


def sim009_lambda_captures_loop_var(queue, events):
    for ev in events:
        queue.schedule(0.1, lambda t: ev.fire(t))
