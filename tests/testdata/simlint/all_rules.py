"""Deliberately non-deterministic module: one violation of every SIM rule.

Lives under ``testdata/`` so default scans skip it; tests and the CI
negative check lint it explicitly and assert the run fails.  DO NOT fix
these -- they are the fixture.
"""

import random
import time
from dataclasses import dataclass, field


def sim001_wall_clock():
    return time.perf_counter()


def sim002_global_rng():
    return random.randint(0, 6)


def sim003_set_iteration(node_ids):
    total = 0
    for nid in set(node_ids):
        total += hash(nid)
    victims = {1, 2, 3}
    victims.pop()
    return total + sum(set(node_ids))


def sim004_unknown_event(journal, counters):
    journal.emit("warp_core_breach", node="dram0")
    counters.add("made_up_counter")


def sim005_clock_mutation(clock):
    clock.now = 12.0
    clock.advance(-0.5)


def sim006_mutable_default(batch=[]):
    batch.append(1)
    return batch


@dataclass
class Sim006Record:
    tags: list = field(default=[])
