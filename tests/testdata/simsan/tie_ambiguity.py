"""Planted simsan fixture: a result that depends on equal-timestamp order.

Two callbacks are scheduled at the same simulated instant and each appends
its tag to a shared list.  Under FIFO tie-breaking the order is
``["a", "b"]``; under reversed or shuffled tie-breaking it flips -- so the
result fingerprint diverges across modes and simsan must flag the scenario
as order-sensitive.  This is the distilled shape of a handler whose output
silently encodes the tie order the default sequence number masks.
"""

from repro.sim.events import EventQueue


def scenario():
    queue = EventQueue()  # captures the ambient tie-break mode
    order = []
    queue.schedule(1e-3, lambda t: order.append("a"))
    queue.schedule(1e-3, lambda t: order.append("b"))
    while len(queue):
        queue.run_until(queue.next_time())
    return {"order": order}
