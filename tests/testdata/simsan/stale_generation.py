"""Planted simsan fixture: the PR 8 stale-slot bug, replayed against the
generation checker.

A buggy store writes generation 1 and then generation 2 of the same key, but
seals (applies) the *superseded* generation 1 -- exactly the stale coalescing
slot that once leaked old bytes into a sealed stripe.  The fixture drives
the sanitizer's happens-before hooks the way ``core/striped.py`` does, so
simsan must report a ``stale_apply`` violation.  The returned document is
constant; the fixture flags purely through the runtime check.
"""

from repro.devtools.simsan import runtime


def scenario():
    san = runtime.ACTIVE
    # key "obj7" advances to gen 2, then the seal applies gen 1 anyway
    san.on_write_gen("obj7", 1, 0)
    san.on_write_gen("obj7", 2, 1)
    san.on_seal("obj7", 1, 2, applied=True)
    return {"sealed": "obj7", "generation": 1}
