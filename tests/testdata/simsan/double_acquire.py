"""Planted simsan fixture: unbalanced acquire/release on real engine objects.

Drives the instrumented objects the way a buggy scheduler would:

* a :class:`Station` departs twice for a single submit, so live queue depth
  crosses below zero (``negative_occupancy``);
* a :class:`LogBufferModel` begins a second flush while one is already in
  flight (``double_acquire``) -- the overlapping-drain bug the
  ``flush_inflight`` latch exists to prevent.

The returned document is constant, so the fixture flags purely through
runtime sanitizer violations, not fingerprint divergence.
"""

from repro.engine.backpressure import LogBufferModel
from repro.engine.stations import Station
from repro.sim.params import HardwareProfile


def scenario():
    st = Station("proxy_cpu")
    st.submit(0.0, 1e-4)
    st.depart()
    st.depart()  # one submit, two departs: occupancy goes negative

    buf = LogBufferModel("l0", HardwareProfile())
    buf.append(4096)
    buf.begin_flush()
    buf.begin_flush()  # second flush begun while the first is in flight
    return {"pending": st.pending, "inflight": buf.flush_inflight}
