"""Property-based tests for the control-plane scheduler: rate limiting and
deferral may delay actions arbitrarily, but they must never reorder the plan
for any single node (per-node FIFO), never lose an action, and never release
two actions closer together than the configured gap."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.heal import Action, ActionScheduler

nodes = st.sampled_from(["dram0", "dram1", "log0"])
delays = st.floats(min_value=0.0, max_value=5e-3,
                   allow_nan=False, allow_infinity=False)
plans = st.lists(st.tuples(nodes, delays), min_size=0, max_size=24)
gaps = st.floats(min_value=0.0, max_value=2e-3,
                 allow_nan=False, allow_infinity=False)


def _release_all(plan, gap, defer_flags):
    """Push the whole plan, then run the clock forward releasing (and
    sometimes deferring) until the queue drains; returns executed actions."""
    sched = ActionScheduler(min_gap_s=gap, max_defers=64)
    for seq, (node, not_before) in enumerate(plan):
        sched.push(Action(kind="observe", node_id=node, seq=seq,
                          not_before_s=not_before))
    executed = []
    release_times = []
    now = 0.0
    flags = iter(defer_flags)
    while len(sched):
        action = sched.next_ready(now)
        if action is None:
            now += max(gap, 1e-4)
            continue
        release_times.append(now)
        if next(flags, False) and action.defers < 4:
            assert sched.defer(action, until_s=now + 1e-3)
        else:
            executed.append(action)
    return executed, release_times


@settings(max_examples=200, deadline=None)
@given(plan=plans, gap=gaps, defer_flags=st.lists(st.booleans(), max_size=64))
def test_rate_limiting_and_deferral_never_reorder_a_node(plan, gap, defer_flags):
    executed, release_times = _release_all(plan, gap, defer_flags)

    # nothing is lost: every pushed action eventually executes exactly once
    assert sorted(a.seq for a in executed) == list(range(len(plan)))

    # per-node FIFO: execution order matches proposal order for each node
    per_node: dict[str, list[int]] = {}
    for action in executed:
        per_node.setdefault(action.node_id, []).append(action.seq)
    for seqs in per_node.values():
        assert seqs == sorted(seqs)

    # the rate limit held across every release (including re-released defers)
    for earlier, later in zip(release_times, release_times[1:]):
        assert later - earlier >= gap
