"""Tests for YCSB preset workloads, the latest-distribution chooser, and
trace record/replay."""

import numpy as np
import pytest

from repro.baselines import make_store
from repro.core.config import StoreConfig
from repro.workloads import (
    LatestGenerator,
    Operation,
    PRESETS,
    WorkloadSpec,
    generate_preset_requests,
    load_keys,
    preset_spec,
    trace,
)
from repro.workloads.ycsb import Request
from repro.bench.runner import run_requests


def _spec(n=500, reqs=1000, seed=9):
    return WorkloadSpec(n_objects=n, n_requests=reqs, read_ratio=1.0,
                        update_ratio=0.0, seed=seed)


# ------------------------------------------------------------------- latest


def test_latest_generator_prefers_recent():
    gen = LatestGenerator(1000, seed=2)
    draws = gen.sample(5000)
    assert draws.min() >= 0 and draws.max() < 1000
    assert np.mean(draws > 900) > 0.5  # most draws near the newest item


def test_latest_generator_grow_shifts_window():
    gen = LatestGenerator(100, seed=3)
    gen.grow(900)
    draws = gen.sample(2000)
    assert draws.max() >= 900


def test_latest_generator_validation():
    with pytest.raises(ValueError):
        LatestGenerator(0)


# ------------------------------------------------------------------ presets


def test_preset_definitions_sum_to_one():
    for name, d in PRESETS.items():
        assert d.read + d.update + d.insert + d.rmw == pytest.approx(1.0), name


def test_preset_spec_builds_valid_workloadspec():
    spec = preset_spec("A", n_objects=100, n_requests=100)
    assert spec.read_ratio == pytest.approx(0.5)
    assert spec.update_ratio == pytest.approx(0.5)
    with pytest.raises(ValueError):
        preset_spec("Z")


def test_workload_a_mix():
    reqs = generate_preset_requests("A", _spec())
    ops = [r.op for r in reqs]
    assert 0.44 < ops.count(Operation.UPDATE) / len(ops) < 0.56
    assert Operation.WRITE not in ops


def test_workload_c_read_only():
    reqs = generate_preset_requests("C", _spec())
    assert all(r.op is Operation.READ for r in reqs)


def test_workload_d_inserts_and_recency():
    reqs = generate_preset_requests("D", _spec())
    inserts = [r for r in reqs if r.op is Operation.WRITE]
    assert inserts
    loaded = set(load_keys(_spec()))
    for r in inserts:
        assert r.key not in loaded


def test_workload_f_pairs_read_then_update():
    reqs = generate_preset_requests("F", _spec())
    rmw_pairs = 0
    for a, b in zip(reqs, reqs[1:]):
        if a.op is Operation.READ and b.op is Operation.UPDATE and a.key == b.key:
            rmw_pairs += 1
    assert rmw_pairs > len(reqs) * 0.15  # ~25% of positions start an RMW pair


def test_presets_run_against_a_store():
    spec = _spec(n=120, reqs=200)
    for name in ("A", "B", "D", "F"):
        store = make_store("logecmem", StoreConfig(k=4, r=3, payload_scale=1 / 32))
        for key in load_keys(spec):
            store.write(key)
        result = run_requests(store, generate_preset_requests(name, spec), spec)
        total = sum(result.op_count(op) for op in ("read", "update", "write"))
        assert total == spec.n_requests


def test_preset_requests_deterministic():
    assert generate_preset_requests("A", _spec()) == generate_preset_requests("A", _spec())


# -------------------------------------------------------------------- trace


def test_trace_roundtrip_string():
    reqs = generate_preset_requests("A", _spec(n=50, reqs=100))
    assert trace.loads(trace.dumps(reqs)) == reqs


def test_trace_roundtrip_file(tmp_path):
    reqs = [
        Request(Operation.READ, "k1"),
        Request(Operation.UPDATE, "k2"),
        Request(Operation.WRITE, "k3"),
        Request(Operation.DELETE, "k4"),
    ]
    path = tmp_path / "run.trace"
    trace.save(reqs, path)
    assert trace.load(path) == reqs


def test_trace_rejects_malformed():
    with pytest.raises(ValueError):
        trace.loads("X\tkey\n")
    with pytest.raises(ValueError):
        trace.loads("no-tab-here\n")


def test_trace_skips_blank_lines():
    assert trace.loads("\nR\tk\n\n") == [Request(Operation.READ, "k")]


def test_trace_replay_reproduces_run():
    """Replaying a recorded trace gives identical latencies and counters."""
    spec = _spec(n=100, reqs=150)
    reqs = generate_preset_requests("B", spec)
    results = []
    for stream in (reqs, trace.loads(trace.dumps(reqs))):
        store = make_store("logecmem", StoreConfig(k=4, r=3, payload_scale=1 / 32))
        for key in load_keys(spec):
            store.write(key)
        results.append(run_requests(store, stream, spec))
    assert results[0].latencies_s == results[1].latencies_s
    assert results[0].counters == results[1].counters
