"""Tests for log-node crash consistency (§3.3.2)."""

import numpy as np
import pytest

from repro.core.config import StoreConfig
from repro.core.logecmem import LogECMem
from repro.core.recovery import crash_log_node, recover_log_node
from repro.core.scrub import scrub


def _cfg(**kw):
    defaults = dict(k=4, r=3, value_size=4096, payload_scale=1 / 16)
    defaults.update(kw)
    return StoreConfig(**defaults)


def _loaded(n=24, updates=8):
    store = LogECMem(_cfg())
    for i in range(n):
        store.write(f"user{i}")
    for i in range(updates):
        store.update(f"user{i % n}")
    return store


def test_crash_drops_buffered_records():
    store = _loaded()
    node = store.cluster.log_nodes["log0"]
    assert len(node.buffer) > 0
    lost = crash_log_node(node)
    assert lost > 0
    assert node.buffer.is_empty


def test_crash_makes_logged_parities_stale():
    """Losing unflushed deltas leaves disk state valid but behind DRAM."""
    store = _loaded()
    for node in store.cluster.log_nodes.values():
        crash_log_node(node)
    report = scrub(store)
    assert not report.clean  # some logged parities are stale now


def test_recovery_restores_consistency():
    store = _loaded()
    lost = 0
    for node in store.cluster.log_nodes.values():
        lost += crash_log_node(node)
    for node_id in store.cluster.log_ids():
        report = recover_log_node(store, node_id, lost_records=lost)
        assert report.parities_rebuilt > 0
        assert report.duration_s > 0
        assert report.chunk_reads == report.parities_rebuilt * store.cfg.k
    assert scrub(store).clean


def test_recovery_supersedes_stale_deltas():
    """After recovery a repair reads one clean base chunk, no delta chain."""
    store = _loaded()
    store.finalize()  # deltas reach disk
    node_id = store.cluster.log_ids()[0]
    node = store.cluster.log_nodes[node_id]
    crash_log_node(node)
    recover_log_node(store, node_id)
    for (_sid, _j), region in node.scheme.regions.items():
        assert region.base is not None
        assert region.deltas == []


def test_recovered_node_supports_multifailure_repair():
    store = _loaded()
    for node_id in store.cluster.log_ids():
        crash_log_node(store.cluster.log_nodes[node_id])
        recover_log_node(store, node_id)
    store.cluster.kill("dram0")
    store.cluster.kill("dram1")
    for i in range(24):
        key = f"user{i}"
        res = store.read(key)
        assert np.array_equal(res.value, store.expected_value(key)), key


def test_updates_after_recovery_stay_consistent():
    store = _loaded()
    node_id = store.cluster.log_ids()[0]
    crash_log_node(store.cluster.log_nodes[node_id])
    recover_log_node(store, node_id)
    for i in range(6):
        store.update(f"user{i}")
    store.finalize()
    assert scrub(store).clean


def test_recover_unknown_node_raises():
    store = _loaded()
    with pytest.raises(KeyError):
        recover_log_node(store, "dram0")
