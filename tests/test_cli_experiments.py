"""Tests for the remaining CLI experiment handlers (exp1/3/4/5/6) and the
determinism of the harness across handler paths."""


from repro.cli import main
from repro.kvstore.chunk import make_value


def _run(argv):
    lines: list[str] = []
    rc = main(argv, out=lambda text: lines.append(str(text)))
    return rc, "\n".join(lines)


SMALL = ["--objects", "240", "--requests", "240"]


def test_exp1_command():
    rc, out = _run(["exp1"] + SMALL)
    assert rc == 0
    assert "read_latency_us" in out and "throughput_kops" in out
    assert "vanilla" in out and "logecmem" in out


def test_exp3_command():
    rc, out = _run(["exp3"] + SMALL)
    assert rc == 0
    assert "memory_GiB" in out


def test_exp4_command():
    rc, out = _run(["exp4", "--objects", "512", "--requests", "256"])
    assert rc == 0
    assert "128" in out  # the (128,4) code appears


def test_exp5_command():
    rc, out = _run(["exp5"] + SMALL)
    assert rc == 0
    assert "disk_ios" in out
    for scheme in ("pl", "plr", "plr-m", "plm"):
        assert scheme in out


def test_exp6_command():
    rc, out = _run(["exp6"] + SMALL)
    assert rc == 0
    assert "degraded_latency_us" in out


def test_cli_output_deterministic():
    rc1, out1 = _run(["exp2"] + SMALL)
    rc2, out2 = _run(["exp2"] + SMALL)
    assert out1 == out2


def test_cli_seed_changes_rows():
    _, out1 = _run(["exp5"] + SMALL + ["--seed", "1"])
    _, out2 = _run(["exp5"] + SMALL + ["--seed", "2"])
    assert out1 != out2


def test_make_value_stable_hash():
    """The value generator must not depend on Python's salted hash()."""
    v = make_value("user42", 7, 8)
    assert v.tolist() == [224, 161, 122, 55, 85, 111, 216, 12]
