"""Degraded reads (single + multi failure) and node repair (§5)."""

import numpy as np
import pytest

from repro.core.config import StoreConfig
from repro.core.interface import DataLossError
from repro.core.logecmem import LogECMem
from repro.core.repair import repair_node


def _cfg(**kw):
    defaults = dict(k=4, r=3, value_size=4096, payload_scale=1 / 16)
    defaults.update(kw)
    return StoreConfig(**defaults)


def _loaded(cfg=None, n=32, updates=()):
    store = LogECMem(cfg or _cfg())
    for i in range(n):
        store.write(f"user{i}")
    for key in updates:
        store.update(key)
    return store


# --------------------------------------------------------- degraded: single


def test_forced_degraded_read_matches_value():
    store = _loaded()
    res = store.degraded_read("user3")
    assert res.degraded
    assert np.array_equal(res.value, store.expected_value("user3"))


def test_degraded_read_after_updates():
    store = _loaded(updates=["user3", "user3", "user5"])
    for key in ("user3", "user5"):
        res = store.degraded_read(key)
        assert np.array_equal(res.value, store.expected_value(key))


def test_read_autofails_over_to_degraded():
    store = _loaded()
    loc = store.object_index.lookup("user3")
    node = store.stripe_index.get(loc.stripe_id).chunk_nodes[loc.seq_no]
    store.cluster.kill(node)
    res = store.read("user3")
    assert res.degraded
    assert np.array_equal(res.value, store.expected_value("user3"))


def test_degraded_read_slower_than_read():
    store = _loaded()
    assert store.degraded_read("user3").latency_s > store.read("user3").latency_s


def test_single_failure_repair_stays_in_dram():
    """§3.3.1: single failures never touch log-node disks."""
    store = _loaded(updates=["user3"])
    store.finalize()
    reads_before = store.cluster.disk_stats().reads
    store.degraded_read("user3")
    assert store.cluster.disk_stats().reads == reads_before
    assert store.counters["logged_parity_reads"] == 0


# ---------------------------------------------------------- degraded: multi


def test_two_node_failure_uses_logged_parity():
    store = _loaded(updates=["user3", "user7", "user3"])
    store.cluster.kill("dram0")
    store.cluster.kill("dram1")
    # find an object on a dead node
    key = next(
        k
        for k in (f"user{i}" for i in range(32))
        if store.object_index.get(k)
        and store.stripe_index.get(store.object_index.lookup(k).stripe_id).chunk_nodes[
            store.object_index.lookup(k).seq_no
        ]
        in ("dram0", "dram1")
    )
    res = store.read(key)
    assert res.degraded
    assert np.array_equal(res.value, store.expected_value(key))
    assert store.counters["logged_parity_reads"] >= 1
    assert store.counters["multi_failure_repairs"] >= 1


def test_r_failures_still_recoverable():
    """(k, r) tolerates r lost chunks: kill 2 DRAM nodes + 1 log node."""
    store = _loaded(updates=["user3"])
    store.cluster.kill("dram0")
    store.cluster.kill("dram1")
    store.cluster.kill("log0")
    for i in range(8):
        key = f"user{i}"
        res = store.read(key)
        assert np.array_equal(res.value, store.expected_value(key)), key


def test_too_many_failures_is_data_loss():
    store = _loaded()
    for nid in ("dram0", "dram1", "dram2"):
        store.cluster.kill(nid)
    for nid in store.cluster.log_ids():
        store.cluster.kill(nid)
    # some object on a dead node can no longer gather k chunks
    with pytest.raises(DataLossError):
        for i in range(32):
            store.degraded_read(f"user{i}")


def test_multi_failure_latency_exceeds_single():
    store = _loaded(updates=["user3"])
    single = store.degraded_read("user3").latency_s
    store.cluster.kill("dram0")
    store.cluster.kill("dram1")
    key = next(
        k
        for k in (f"user{i}" for i in range(32))
        if store.stripe_index.get(store.object_index.lookup(k).stripe_id).chunk_nodes[
            store.object_index.lookup(k).seq_no
        ]
        in ("dram0", "dram1")
    )
    multi = store.read(key).latency_s
    assert multi > single  # disk-resident parity costs more than DRAM chunks


# -------------------------------------------------------------- node repair


def test_repair_requires_failed_node():
    store = _loaded()
    with pytest.raises(ValueError):
        repair_node(store, "dram0")
    with pytest.raises(KeyError):
        repair_node(store, "not-a-node")


def test_repair_covers_all_stripes_of_node():
    store = _loaded(n=64)
    store.cluster.kill("dram2")
    result = repair_node(store, "dram2", log_assist=True)
    assert result.stripes_repaired == len(store.stripe_index.stripes_on_node("dram2"))
    assert result.chunks_repaired >= result.stripes_repaired
    assert result.bytes_repaired == result.chunks_repaired * store.cfg.chunk_size


def test_log_assist_speeds_up_repair():
    store_a = _loaded(n=64)
    store_b = _loaded(n=64)
    store_a.cluster.kill("dram1")
    store_b.cluster.kill("dram1")
    plain = repair_node(store_a, "dram1", log_assist=False)
    assisted = repair_node(store_b, "dram1", log_assist=True)
    assert assisted.repair_time_s < plain.repair_time_s
    assert assisted.log_assisted_stripes > 0
    assert plain.log_assisted_stripes == 0
    assert assisted.throughput_GiB_per_min > plain.throughput_GiB_per_min


def test_log_assist_gain_decreases_with_k():
    """Figure 15's trend: the ~k/(k-1) gain shrinks as k grows."""
    gains = []
    for k in (4, 8):
        plain_t, assist_t = [], []
        for assist in (False, True):
            store = LogECMem(
                StoreConfig(k=k, r=3, value_size=4096, payload_scale=1 / 16)
            )
            for i in range(8 * k):
                store.write(f"user{i}")
            store.cluster.kill("dram0")
            res = repair_node(store, "dram0", log_assist=assist)
            (assist_t if assist else plain_t).append(res.repair_time_s)
        gains.append((plain_t[0] - assist_t[0]) / plain_t[0])
    assert gains[0] > gains[1] > 0


def test_repair_prepair_fits_detection_window():
    store = _loaded(n=64, updates=["user3"] * 4)
    store.cluster.kill("dram1")
    result = repair_node(store, "dram1", log_assist=True)
    assert result.log_prepair_s < result.detection_window_s


def test_repair_streams_scale_wall_time():
    store = _loaded(n=64)
    store.cluster.kill("dram1")
    r64 = repair_node(store, "dram1", streams=64)
    r8 = repair_node(store, "dram1", streams=8)
    assert r8.repair_time_s == pytest.approx(8 * r64.repair_time_s)
    with pytest.raises(ValueError):
        repair_node(store, "dram1", streams=0)
