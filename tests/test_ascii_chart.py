"""Tests for the terminal chart helpers."""

from repro.analysis.ascii_chart import grouped_chart, hbar_chart, sparkline


def test_hbar_scales_to_peak():
    out = hbar_chart({"a": 10.0, "b": 5.0}, width=10)
    lines = out.splitlines()
    assert lines[0].count("█") == 10
    assert lines[1].count("█") == 5


def test_hbar_title_and_units():
    out = hbar_chart({"x": 1.0}, title="T", unit="us")
    assert out.startswith("T\n")
    assert "1us" in out


def test_hbar_zero_and_empty():
    assert hbar_chart({}, title="empty") == "empty"
    out = hbar_chart({"a": 0.0})
    assert "█" not in out


def test_grouped_chart_shares_scale():
    out = grouped_chart({"g1": {"a": 10.0}, "g2": {"a": 5.0}}, width=10)
    lines = [ln for ln in out.splitlines() if "█" in ln]
    assert lines[0].count("█") == 10
    assert lines[1].count("█") == 5
    assert "-- g1" in out and "-- g2" in out


def test_sparkline_trend():
    line = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
    assert line[0] == "▁"
    assert line[-1] == "█"
    assert len(line) == 8


def test_sparkline_flat_and_empty():
    assert sparkline([]) == ""
    assert sparkline([3, 3, 3]) == "▁▁▁"


def test_sparkline_downsamples():
    line = sparkline(list(range(100)), width=10)
    assert len(line) == 10


def test_chart_on_real_experiment_rows():
    from repro.bench.experiments import update_memory_sweep

    rows = update_memory_sweep(
        [(6, 3)], ratios=("95:5",), n_objects=240, n_requests=240
    )
    series = {r["store"]: r["update_latency_us"] for r in rows}
    out = hbar_chart(series, unit="us", title="update latency")
    assert "logecmem" in out and "ipmem" in out
