"""Tests for checksum-guarded degraded reads (silent-corruption handling)."""

import numpy as np
import pytest

from repro.baselines.ipmem import IPMem
from repro.core.config import StoreConfig
from repro.core.interface import DataLossError
from repro.core.logecmem import LogECMem


def _cfg(**kw):
    defaults = dict(k=4, r=3, value_size=4096, payload_scale=1 / 16)
    defaults.update(kw)
    return StoreConfig(**defaults)


def _loaded(cls=LogECMem, n=32):
    store = cls(_cfg())
    for i in range(n):
        store.write(f"user{i}")
    return store


def test_checksums_written_at_seal():
    store = _loaded()
    sid = next(iter(store.stripe_index.stripe_ids()))
    for i in range(store.cfg.k):
        assert (sid, i) in store.checksums
    assert (sid, store.cfg.k) in store.checksums  # XOR parity


def test_checksums_follow_updates():
    store = _loaded()
    sid = store.object_index.lookup("user3").stripe_id
    seq = store.object_index.lookup("user3").seq_no
    before = store.checksums[(sid, seq)]
    store.update("user3")
    after = store.checksums[(sid, seq)]
    assert before != after
    # and the stored values verify
    assert store._checksum_ok(sid, seq, store.data_chunks[(sid, seq)].buffer)
    assert store._checksum_ok(sid, store.cfg.k, store.parity_chunks[(sid, 0)])


def test_degraded_read_routes_around_corrupt_survivor():
    """Bit rot in a survivor chunk: detected, excluded, decoded around."""
    store = _loaded()
    loc = store.object_index.lookup("user3")
    sid = loc.stripe_id
    # corrupt a DIFFERENT data chunk of the same stripe
    other = next(i for i in range(store.cfg.k) if i != loc.seq_no)
    store.data_chunks[(sid, other)].buffer[0] ^= 0xFF
    res = store.degraded_read("user3")
    assert np.array_equal(res.value, store.expected_value("user3"))
    assert store.counters["corrupt_chunks_detected"] >= 1
    assert store.counters["logged_parity_reads"] >= 1  # had to escalate


def test_corrupt_xor_parity_detected():
    store = _loaded()
    loc = store.object_index.lookup("user3")
    store.parity_chunks[(loc.stripe_id, 0)][0] ^= 0xFF
    res = store.degraded_read("user3")
    assert np.array_equal(res.value, store.expected_value("user3"))
    assert store.counters["corrupt_chunks_detected"] >= 1


def test_corruption_beyond_tolerance_is_data_loss():
    store = _loaded()
    loc = store.object_index.lookup("user3")
    sid = loc.stripe_id
    # corrupt every other data chunk AND the XOR parity: only r-1 = 2 logged
    # parities remain for a k=4 decode that's missing 4 chunks
    for i in range(store.cfg.k):
        if i != loc.seq_no:
            store.data_chunks[(sid, i)].buffer[0] ^= 0xFF
    store.parity_chunks[(sid, 0)][0] ^= 0xFF
    with pytest.raises(DataLossError):
        store.degraded_read("user3")


def test_ipmem_checksums_on_all_parities():
    store = _loaded(cls=IPMem)
    store.update("user3")
    loc = store.object_index.lookup("user3")
    sid = loc.stripe_id
    for j in range(store.cfg.r):
        assert store._checksum_ok(
            sid, store.cfg.k + j, store.parity_chunks[(sid, j)]
        )
    # corrupt one parity: degraded read routes around it
    store.parity_chunks[(sid, 0)][0] ^= 0xFF
    res = store.degraded_read("user3")
    assert np.array_equal(res.value, store.expected_value("user3"))


def test_clean_store_never_flags_corruption():
    store = _loaded()
    for i in range(8):
        store.update(f"user{i}")
    for i in range(16):
        store.degraded_read(f"user{i}")
    assert store.counters["corrupt_chunks_detected"] == 0
