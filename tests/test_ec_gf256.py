"""Unit and property tests for GF(2^8) arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec import gf256
from repro.ec.gf256 import (
    GF_EXP,
    GF_LOG,
    gf_add,
    gf_div,
    gf_inv,
    gf_mul,
    gf_mul_scalar,
    gf_pow,
)

elem = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


def test_exp_log_roundtrip():
    for a in range(1, 256):
        assert int(GF_EXP[GF_LOG[a]]) == a


def test_exp_table_periodicity():
    assert np.array_equal(GF_EXP[0:255], GF_EXP[255:510])


def test_mul_identity_and_zero():
    a = np.arange(256, dtype=np.uint8)
    assert np.array_equal(gf_mul(a, 1), a)
    assert np.array_equal(gf_mul(a, 0), np.zeros(256, dtype=np.uint8))


def test_mul_known_values():
    # 2 * 0x80 wraps through the primitive polynomial 0x11D
    assert int(gf_mul(2, 0x80)) == (0x100 ^ 0x11D)
    assert int(gf_mul(3, 7)) == 9  # (x+1)(x^2+x+1) = x^3 + 1 -> 0b1001


@given(elem, elem)
def test_mul_commutative(a, b):
    assert int(gf_mul(a, b)) == int(gf_mul(b, a))


@given(elem, elem, elem)
def test_mul_associative(a, b, c):
    assert int(gf_mul(gf_mul(a, b), c)) == int(gf_mul(a, gf_mul(b, c)))


@given(elem, elem, elem)
def test_distributive(a, b, c):
    left = int(gf_mul(a, gf_add(b, c)))
    right = int(gf_add(gf_mul(a, b), gf_mul(a, c)))
    assert left == right


@given(nonzero)
def test_inverse(a):
    assert int(gf_mul(a, gf_inv(a))) == 1


def test_inv_zero_raises():
    with pytest.raises(ZeroDivisionError):
        gf_inv(0)


@given(elem, nonzero)
def test_div_is_mul_by_inverse(a, b):
    assert int(gf_div(a, b)) == int(gf_mul(a, gf_inv(b)))


def test_div_by_zero_raises():
    with pytest.raises(ZeroDivisionError):
        gf_div(5, 0)


@given(nonzero, st.integers(min_value=0, max_value=600))
def test_pow_matches_repeated_mul(a, n):
    acc = 1
    for _ in range(n):
        acc = int(gf_mul(acc, a))
    assert gf_pow(a, n) == acc


def test_pow_zero_base():
    assert gf_pow(0, 0) == 1
    assert gf_pow(0, 5) == 0
    with pytest.raises(ZeroDivisionError):
        gf_pow(0, -1)


def test_pow_negative_exponent():
    a = 37
    assert gf_pow(a, -1) == gf_inv(a)


def test_mul_scalar_matches_elementwise():
    rng = np.random.default_rng(0)
    buf = rng.integers(0, 256, size=4096, dtype=np.uint8)
    for c in (0, 1, 2, 0x53, 255):
        expect = gf_mul(np.full_like(buf, c), buf)
        assert np.array_equal(gf_mul_scalar(c, buf), expect)


def test_mul_scalar_rejects_out_of_range():
    with pytest.raises(ValueError):
        gf_mul_scalar(256, np.zeros(4, dtype=np.uint8))
    with pytest.raises(ValueError):
        gf_mul_scalar(-1, np.zeros(4, dtype=np.uint8))


def test_mul_scalar_copies_for_identity():
    buf = np.arange(16, dtype=np.uint8)
    out = gf_mul_scalar(1, buf)
    out[0] = 99
    assert buf[0] == 0  # must not alias the input


def test_addition_is_self_inverse():
    rng = np.random.default_rng(1)
    a = rng.integers(0, 256, size=1024, dtype=np.uint8)
    b = rng.integers(0, 256, size=1024, dtype=np.uint8)
    assert np.array_equal(gf_add(gf_add(a, b), b), a)


def test_mul_table_symmetric():
    assert np.array_equal(gf256.GF_MUL_TABLE, gf256.GF_MUL_TABLE.T)


@settings(max_examples=25)
@given(st.lists(elem, min_size=1, max_size=64))
def test_vectorised_matches_scalar(xs):
    arr = np.array(xs, dtype=np.uint8)
    c = 0x1D
    out = gf_mul(arr, np.full_like(arr, c))
    for i, x in enumerate(xs):
        assert int(out[i]) == int(gf_mul(x, c))
