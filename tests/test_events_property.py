"""Property tests for the deterministic event queue (repro.sim.events).

The concurrent engine leans on three EventQueue guarantees: global time
order, FIFO tie-breaking by schedule order, and well-defined behaviour when
callbacks schedule more work (including at times at or before ``now``).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.events import EventQueue

times = st.floats(min_value=0.0, max_value=1e3, allow_nan=False,
                  allow_infinity=False)


def _record(log, tag):
    return lambda t: log.append((t, tag))


@settings(max_examples=100, deadline=None)
@given(st.lists(times, max_size=60))
def test_drain_fires_in_time_then_fifo_order(when):
    q = EventQueue()
    log: list[tuple[float, int]] = []
    for i, t in enumerate(when):
        q.schedule(t, _record(log, i))
    assert q.drain() == len(when)
    assert len(q) == 0
    # fired times are sorted, and equal times preserve schedule order
    assert [t for t, _ in log] == sorted(when)
    assert log == sorted(log, key=lambda e: (e[0], e[1]))


@settings(max_examples=100, deadline=None)
@given(st.lists(times, min_size=1, max_size=60), times)
def test_run_until_fires_exactly_the_due_prefix(when, cutoff):
    q = EventQueue()
    log: list[tuple[float, int]] = []
    for i, t in enumerate(when):
        q.schedule(t, _record(log, i))
    fired = q.run_until(cutoff)
    assert fired == sum(1 for t in when if t <= cutoff)
    assert all(t <= cutoff for t, _ in log)
    assert len(q) == len(when) - fired
    remaining = q.next_time()
    assert remaining is None or remaining > cutoff


@settings(max_examples=50, deadline=None)
@given(st.lists(times, min_size=1, max_size=20))
def test_reentrant_scheduling_at_or_before_now_fires_same_pass(when):
    """A callback scheduling follow-up work at ``t <= now`` (the engine does
    this for zero-think-time reissues) still fires within the same
    ``run_until`` call, after everything already due at that time."""
    q = EventQueue()
    log: list[str] = []

    def chained(t: float) -> None:
        log.append("parent")
        q.schedule(t, lambda _t: log.append("child"))

    for t in when:
        q.schedule(t, chained)
    fired = q.run_until(max(when))
    assert fired == 2 * len(when)
    assert log.count("child") == len(when)
    assert len(q) == 0


def test_interleaved_schedule_and_run():
    """The engine's main loop shape: run to the next event time, which may
    schedule more events at that same time."""
    q = EventQueue()
    order: list[int] = []
    q.schedule(1.0, lambda t: (order.append(1), q.schedule(t, lambda _t: order.append(2))))
    q.schedule(2.0, lambda t: order.append(3))
    while len(q):
        q.run_until(q.next_time())
    assert order == [1, 2, 3]


def test_clear_discards_pending():
    q = EventQueue()
    q.schedule(1.0, lambda t: None)
    q.clear()
    assert len(q) == 0
    assert q.next_time() is None
