"""Property tests for the deterministic event queue (repro.sim.events).

The concurrent engine leans on three EventQueue guarantees: global time
order, FIFO tie-breaking by schedule order, and well-defined behaviour when
callbacks schedule more work (including at times at or before ``now``).
simsan adds a fourth: permuting the tie-break (reversed, seeded shuffle)
reorders *only* equal-timestamp events, so any scenario whose state does not
encode tie order fingerprints byte-identically across modes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devtools.simsan.fingerprint import fingerprint_state
from repro.sim.events import TIEBREAK_MODES, EventQueue, TieBreak, tiebreak

modes = st.sampled_from(TIEBREAK_MODES)
seeds = st.integers(min_value=0, max_value=2**32 - 1)

times = st.floats(min_value=0.0, max_value=1e3, allow_nan=False,
                  allow_infinity=False)


def _record(log, tag):
    return lambda t: log.append((t, tag))


@settings(max_examples=100, deadline=None)
@given(st.lists(times, max_size=60))
def test_drain_fires_in_time_then_fifo_order(when):
    q = EventQueue()
    log: list[tuple[float, int]] = []
    for i, t in enumerate(when):
        q.schedule(t, _record(log, i))
    assert q.drain() == len(when)
    assert len(q) == 0
    # fired times are sorted, and equal times preserve schedule order
    assert [t for t, _ in log] == sorted(when)
    assert log == sorted(log, key=lambda e: (e[0], e[1]))


@settings(max_examples=100, deadline=None)
@given(st.lists(times, min_size=1, max_size=60), times)
def test_run_until_fires_exactly_the_due_prefix(when, cutoff):
    q = EventQueue()
    log: list[tuple[float, int]] = []
    for i, t in enumerate(when):
        q.schedule(t, _record(log, i))
    fired = q.run_until(cutoff)
    assert fired == sum(1 for t in when if t <= cutoff)
    assert all(t <= cutoff for t, _ in log)
    assert len(q) == len(when) - fired
    remaining = q.next_time()
    assert remaining is None or remaining > cutoff


@settings(max_examples=50, deadline=None)
@given(st.lists(times, min_size=1, max_size=20))
def test_reentrant_scheduling_at_or_before_now_fires_same_pass(when):
    """A callback scheduling follow-up work at ``t <= now`` (the engine does
    this for zero-think-time reissues) still fires within the same
    ``run_until`` call, after everything already due at that time."""
    q = EventQueue()
    log: list[str] = []

    def chained(t: float) -> None:
        log.append("parent")
        q.schedule(t, lambda _t: log.append("child"))

    for t in when:
        q.schedule(t, chained)
    fired = q.run_until(max(when))
    assert fired == 2 * len(when)
    assert log.count("child") == len(when)
    assert len(q) == 0


def test_interleaved_schedule_and_run():
    """The engine's main loop shape: run to the next event time, which may
    schedule more events at that same time."""
    q = EventQueue()
    order: list[int] = []
    q.schedule(1.0, lambda t: (order.append(1), q.schedule(t, lambda _t: order.append(2))))
    q.schedule(2.0, lambda t: order.append(3))
    while len(q):
        q.run_until(q.next_time())
    assert order == [1, 2, 3]


def test_clear_discards_pending():
    q = EventQueue()
    q.schedule(1.0, lambda t: None)
    q.clear()
    assert len(q) == 0
    assert q.next_time() is None


# ------------------------------------------------------- tie-break permutation


@settings(max_examples=100, deadline=None)
@given(st.lists(times, max_size=60), modes, seeds)
def test_permuted_ties_still_fire_in_time_order(when, mode, seed):
    """Every tie-break mode preserves global time order and fires each event
    exactly once -- only the order *within* an equal-timestamp group moves."""
    with tiebreak(mode, seed):
        q = EventQueue()
        log: list[tuple[float, int]] = []
        for i, t in enumerate(when):
            q.schedule(t, _record(log, i))
        assert q.drain() == len(when)
    assert [t for t, _ in log] == sorted(when)
    assert sorted(tag for _, tag in log) == list(range(len(when)))


@settings(max_examples=100, deadline=None)
@given(st.lists(times, max_size=40), seeds)
def test_order_robust_state_fingerprints_identically_across_modes(when, seed):
    """The simsan premise: a scenario whose result does not depend on tie
    order (here: per-tag firing times, key-sorted) produces byte-identical
    state fingerprints under FIFO, reversed and shuffled tie-breaking."""
    fps = []
    for mode in TIEBREAK_MODES:
        with tiebreak(mode, seed):
            q = EventQueue()
            fired: dict[str, float] = {}
            counters: dict[str, float] = {"fired": 0.0}

            def record(tag):
                def cb(t, tag=tag):
                    fired[tag] = t
                    counters["fired"] += 1.0
                return cb

            for i, t in enumerate(when):
                q.schedule(t, record(f"ev{i}"))
            q.drain()
        fps.append(fingerprint_state(fired, counters, {"tick": len(when)}))
    assert fps[0] == fps[1] == fps[2]


@settings(max_examples=50, deadline=None)
@given(st.lists(times, min_size=1, max_size=20), modes, seeds)
def test_reentrancy_contract_holds_under_every_mode(when, mode, seed):
    """The run_until re-entrancy contract (work scheduled at t <= now fires
    in the same pass) is mode-independent."""
    with tiebreak(mode, seed):
        q = EventQueue()
        log: list[str] = []

        def chained(t: float) -> None:
            log.append("parent")
            q.schedule(t, lambda _t: log.append("child"))

        for t in when:
            q.schedule(t, chained)
        fired = q.run_until(max(when))
    assert fired == 2 * len(when)
    assert log.count("child") == len(when)
    assert len(q) == 0


def test_queue_captures_tiebreak_at_construction():
    """An EventQueue snapshots the ambient mode: changing it afterwards does
    not reorder events already managed by the queue."""
    with tiebreak("reversed"):
        q = EventQueue()
    assert q._tie == TieBreak("reversed", 0)
    order: list[str] = []
    q.schedule(1.0, lambda t: order.append("first-scheduled"))
    q.schedule(1.0, lambda t: order.append("second-scheduled"))
    with tiebreak("fifo"):
        q.drain()
    assert order == ["second-scheduled", "first-scheduled"]
