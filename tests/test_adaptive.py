"""Tests for the §9 future-work extensions: popularity-aware delta
coalescing (AdaptiveLogECMem) and SSD/NVRAM log-media profiles."""

import numpy as np
import pytest

from repro.core.adaptive import AdaptiveLogECMem
from repro.core.config import StoreConfig
from repro.core.logecmem import LogECMem
from repro.core.scrub import scrub
from repro.sim.params import ec2_profile, nvram_log_profile, ssd_log_profile


def _cfg(**kw):
    defaults = dict(k=4, r=3, value_size=4096, payload_scale=1 / 16)
    defaults.update(kw)
    return StoreConfig(**defaults)


def _loaded(cls=AdaptiveLogECMem, n=24, **kw):
    store = cls(_cfg(), **kw) if kw or cls is AdaptiveLogECMem else cls(_cfg())
    for i in range(n):
        store.write(f"user{i}")
    return store


# ----------------------------------------------------------------- adaptive


def test_cold_keys_behave_like_plain_logecmem():
    store = _loaded(hot_threshold=100)  # nothing ever becomes hot
    for _ in range(5):
        store.update("user3")
    assert store.coalesced_updates == 0
    assert store.counters["parity_deltas_sent"] == 5 * (store.cfg.r - 1)


def test_hot_keys_coalesce_deltas():
    store = _loaded(hot_threshold=2, coalesce_updates=100)
    for _ in range(10):
        store.update("user3")
    # first update is cold, second crosses the threshold -> 9 coalesced
    assert store.coalesced_updates == 9
    shipped = store.counters["parity_deltas_sent"]
    assert shipped == 1 * (store.cfg.r - 1)  # only the cold update shipped
    store.finalize()
    assert store.counters["parity_deltas_sent"] > shipped  # flush shipped the rest


def test_coalesced_state_settles_identical_to_plain():
    """After finalize, adaptive == plain LogECMem bit-for-bit."""
    plain = _loaded(cls=LogECMem)
    adaptive = _loaded(hot_threshold=2, coalesce_updates=100)
    for store in (plain, adaptive):
        for key in ("user3", "user3", "user3", "user7", "user3"):
            store.update(key)
        store.finalize()
    assert scrub(adaptive).clean
    for key in ("user3", "user7"):
        sid_p = plain.object_index.lookup(key).stripe_id
        sid_a = adaptive.object_index.lookup(key).stripe_id
        for j in range(1, 3):
            pa = adaptive.uptodate_logged_parity(sid_a, j)
            data = np.stack(
                [adaptive.data_chunks[(sid_a, i)].buffer for i in range(4)]
            )
            assert np.array_equal(pa, adaptive.code.encode(data)[j])
        del sid_p


def test_pending_deltas_visible_to_multi_failure_repair():
    """Un-shipped deltas must not be lost when a repair needs logged parity."""
    store = _loaded(hot_threshold=2, coalesce_updates=100)
    for _ in range(4):
        store.update("user3")
    assert store._pending_deltas  # something is coalesced and unshipped
    loc = store.object_index.lookup("user3")
    rec = store.stripe_index.get(loc.stripe_id)
    store.cluster.kill(rec.chunk_nodes[loc.seq_no])
    store.cluster.kill(rec.xor_parity_node())
    res = store.read("user3")  # forced through a logged parity
    assert res.degraded
    assert np.array_equal(res.value, store.expected_value("user3"))


def test_flush_after_coalesce_window():
    store = _loaded(hot_threshold=1, coalesce_updates=3)
    for _ in range(3):
        store.update("user3")
    assert store.flushes == 1
    assert not store._pending_deltas


def test_pending_capacity_forces_flush():
    store = _loaded(n=24, hot_threshold=1, coalesce_updates=10_000)
    store.pending_capacity = 2
    for key in ("user0", "user1", "user2", "user3"):
        store.update(key)
    assert store.flushes >= 1


def test_cancelling_deltas_ship_nothing():
    """An update cycled back to the same bytes folds to a zero delta."""
    store = _loaded(hot_threshold=1, coalesce_updates=100)
    key = "user3"
    v = store.versions[key]
    store.update(key)  # v+1
    # simulate reverting: write old bytes back via a crafted update
    loc = store.object_index.lookup(key)
    chunk = store.data_chunks[(loc.stripe_id, loc.seq_no)]
    slot = chunk.slot_for(key)
    old = store._new_value(key, v)
    entry = store._pending_deltas[(loc.stripe_id, loc.seq_no)]
    entry[0][slot.phys_offset : slot.phys_end] ^= chunk.read_slot(slot) ^ old
    chunk.write_slot(slot, old)
    xor = store.parity_chunks[(loc.stripe_id, 0)]
    xor[slot.phys_offset : slot.phys_end] ^= store._new_value(key, v + 1) ^ old
    sent_before = store.counters["parity_deltas_sent"]
    store._flush_entry(loc.stripe_id, loc.seq_no)
    assert store.counters["parity_deltas_sent"] == sent_before  # zero delta


def test_hot_updates_fewer_log_messages_on_zipf():
    """The §9 payoff: a Zipf-skewed update stream ships far fewer deltas."""
    from repro.workloads.zipf import ScrambledZipfian

    chooser = ScrambledZipfian(24, seed=1)
    keys = [f"user{chooser.next()}" for _ in range(150)]
    plain = _loaded(cls=LogECMem)
    adaptive = _loaded(hot_threshold=2, coalesce_updates=16)
    for store in (plain, adaptive):
        for key in keys:
            store.update(key)
        store.finalize()
    assert (
        adaptive.counters["parity_deltas_sent"]
        < 0.8 * plain.counters["parity_deltas_sent"]
    )
    assert scrub(adaptive).clean


# ------------------------------------------------------------------- media


def test_media_profiles_ordering():
    ec2 = ec2_profile()
    ssd = ssd_log_profile()
    nvram = nvram_log_profile()
    assert nvram.disk_seek_s < ssd.disk_seek_s < ec2.disk_seek_s
    assert nvram.disk_seq_bandwidth_Bps > ssd.disk_seq_bandwidth_Bps > ec2.disk_seq_bandwidth_Bps


@pytest.mark.parametrize("profile_fn", [ssd_log_profile, nvram_log_profile])
def test_faster_media_cheaper_multifailure_repair(profile_fn):
    def run(profile):
        cfg = StoreConfig(k=4, r=3, value_size=4096, payload_scale=1 / 16, profile=profile)
        store = LogECMem(cfg)
        for i in range(24):
            store.write(f"user{i}")
        for i in range(12):
            store.update(f"user{i % 8}")
        store.finalize()
        loc = store.object_index.lookup("user3")
        rec = store.stripe_index.get(loc.stripe_id)
        store.cluster.kill(rec.chunk_nodes[loc.seq_no])
        store.cluster.kill(rec.xor_parity_node())
        return store.read("user3").latency_s

    assert run(profile_fn()) < run(ec2_profile())
