"""Tests for the closed-loop DES throughput simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import make_store
from repro.bench.runner import (
    estimate_throughput,
    run_workload,
    simulate_closed_loop,
)
from repro.core.config import StoreConfig
from repro.engine.compat import simulate_demands
from repro.sim.closedloop import OpDemand, simulate
from repro.sim.params import HardwareProfile
from repro.workloads import WorkloadSpec


def _profile(**kw):
    return HardwareProfile(**kw)


def test_demand_validation():
    with pytest.raises(ValueError):
        OpDemand(cpu_s=-1, nic_bytes=0, remote_s=0)
    with pytest.raises(ValueError):
        simulate_demands([OpDemand(1e-6, 0, 0)], _profile(), concurrency=0)


def test_empty_demands_zeroed_result():
    """Regression: simulate([]) used to raise; it is a zero-length run."""
    with pytest.warns(DeprecationWarning):
        res = simulate([], _profile())
    assert res == simulate_demands([], _profile())
    assert res.operations == 0
    assert res.makespan_s == 0.0
    assert res.throughput_ops_s == 0.0
    assert res.mean_response_s == 0.0
    assert res.cpu_utilisation == 0.0
    assert res.nic_utilisation == 0.0


def test_simulate_is_deprecated_shim():
    """Direct closedloop.simulate warns; the compat entry point does not,
    and both produce identical results."""
    ops = [OpDemand(cpu_s=1e-6, nic_bytes=4096, remote_s=1e-4)] * 20
    with pytest.warns(DeprecationWarning):
        legacy = simulate(ops, _profile(), concurrency=8)
    via_compat = simulate_demands(ops, _profile(), concurrency=8)
    assert legacy == via_compat


def test_single_client_serialises():
    """C=1: makespan is the sum of op latencies; no overlap."""
    ops = [OpDemand(cpu_s=1e-3, nic_bytes=0, remote_s=2e-3)] * 10
    res = simulate_demands(ops, _profile(), concurrency=1)
    assert res.makespan_s == pytest.approx(10 * 3e-3)
    assert res.throughput_ops_s == pytest.approx(1 / 3e-3, rel=1e-6)
    assert res.mean_response_s == pytest.approx(3e-3)


def test_concurrency_overlaps_remote_time():
    """Remote time overlaps across clients; CPU does not."""
    ops = [OpDemand(cpu_s=1e-3, nic_bytes=0, remote_s=9e-3)] * 100
    serial = simulate_demands(ops, _profile(), concurrency=1)
    parallel = simulate_demands(ops, _profile(), concurrency=10)
    assert parallel.throughput_ops_s > 5 * serial.throughput_ops_s
    # at C=10, CPU is saturated: throughput -> 1/cpu_s
    assert parallel.throughput_ops_s == pytest.approx(1e3, rel=0.1)
    assert parallel.cpu_utilisation > 0.9


def test_nic_bound_regime():
    p = _profile(net_bandwidth_Bps=1e6)
    ops = [OpDemand(cpu_s=0.0, nic_bytes=10_000, remote_s=1e-3)] * 200
    res = simulate_demands(ops, p, concurrency=64)
    # NIC service time = 10ms per op; throughput ~ 100 ops/s
    assert res.throughput_ops_s == pytest.approx(100, rel=0.05)
    assert res.nic_utilisation > 0.95


def test_more_concurrency_never_hurts_throughput():
    ops = [OpDemand(cpu_s=5e-4, nic_bytes=4096, remote_s=4e-3)] * 300
    t = [
        simulate_demands(ops, _profile(), concurrency=c).throughput_ops_s
        for c in (1, 4, 16, 64)
    ]
    assert t == sorted(t)


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=1e-3),
            st.integers(min_value=0, max_value=100_000),
            st.floats(min_value=0, max_value=1e-2),
        ),
        min_size=1,
        max_size=50,
    ),
    st.integers(min_value=1, max_value=32),
)
def test_simulation_invariants(raw, concurrency):
    ops = [OpDemand(cpu_s=c, nic_bytes=b, remote_s=r) for c, b, r in raw]
    res = simulate_demands(ops, _profile(), concurrency=concurrency)
    assert res.operations == len(ops)
    assert res.makespan_s >= max(o.cpu_s + o.remote_s for o in ops) - 1e-12
    assert 0 <= res.cpu_utilisation <= 1
    assert 0 <= res.nic_utilisation <= 1
    assert res.mean_response_s >= 0


# --------------------------------------------------- integration with runner


@pytest.fixture(scope="module")
def recorded_run():
    store = make_store("logecmem", StoreConfig(k=4, r=3, payload_scale=1 / 32))
    spec = WorkloadSpec.read_update("80:20", n_objects=200, n_requests=300, seed=4)
    result = run_workload(store, spec, record_demands=True)
    return store, result


def test_runner_records_one_demand_per_op(recorded_run):
    store, result = recorded_run
    assert len(result.demands) == 300
    assert all(d.nic_bytes > 0 for d in result.demands)


def test_des_throughput_within_resource_bounds(recorded_run):
    """The shared CPU and NIC cap DES throughput; queueing can't exceed them."""
    store, result = recorded_run
    des = simulate_closed_loop(store, result)
    p = store.cfg.profile
    ops = len(result.demands)
    cpu_bound = ops / sum(d.cpu_s for d in result.demands)
    nic_bound = ops / sum(d.nic_bytes / p.net_bandwidth_Bps for d in result.demands)
    assert des.throughput_ops_s <= min(cpu_bound, nic_bound) * 1.001
    # and it's in the same regime as the analytic estimate
    analytic = estimate_throughput(store, result)
    assert 0.3 * analytic < des.throughput_ops_s < 3 * analytic


def test_des_requires_recorded_demands():
    store = make_store("vanilla", StoreConfig(k=4, r=2))
    spec = WorkloadSpec(n_objects=10, n_requests=10, read_ratio=1.0,
                        update_ratio=0.0, seed=1)
    result = run_workload(store, spec)  # no demands recorded
    with pytest.raises(ValueError):
        simulate_closed_loop(store, result)
