"""Reproduce the paper's worked examples bit- and count-exactly.

* Figure 1  -- chunk transfer/storage counts of the four update schemes,
* Figure 2  -- parity logging in a (2,2) code over the stream a, b, a', b',
* Figure 8  -- merge-based buffer logging collapsing three deltas into one,
* Figure 9  -- PLR / PLR-m / PLM disk IO counts for the six-update stream.
"""

import numpy as np
import pytest

from repro.analysis.transfers import (
    direct_reconstruction,
    full_stripe,
    hybrid_pl,
    in_place,
    parity_logging,
    sweep_k,
)
from repro.ec.delta import ParityDelta, apply_parity_delta, merge_parity_deltas
from repro.ec.gf256 import gf_mul_scalar
from repro.ec.rs import RSCode
from repro.logstore import make_scheme
from repro.logstore.records import LogRecord
from repro.sim.disk import DiskModel
from repro.sim.params import HardwareProfile

CHUNK = 64


# ------------------------------------------------------------------ Figure 1


def test_figure1a_in_place():
    cost = in_place(6, 3)
    assert cost.chunk_reads - 1 == 3      # "3 parity reads"
    assert cost.stored_chunks == 9        # "9 stored chunks"


def test_figure1b_full_stripe_update_heavy():
    cost = full_stripe(6, 3, new_chunks_per_stripe=6)
    assert cost.chunk_reads == 0          # "no parity reads"
    assert cost.stored_chunks == 18       # "18 stored chunks"


def test_figure1c_full_stripe_update_light():
    cost = full_stripe(6, 3, new_chunks_per_stripe=1)
    assert cost.chunk_reads == 5          # re-read the 5 unchanged chunks
    assert cost.chunk_writes == 4         # D1' + "3 parity re-computations"
    assert cost.stored_chunks == 13       # "13 stored chunks"


def test_figure1d_parity_logging():
    cost = parity_logging(6, 3)
    assert cost.chunk_reads == 1          # no parity reads, just the old data
    assert cost.stored_chunks == 12       # "12 stored chunks"


def test_full_stripe_m_bounds():
    with pytest.raises(ValueError):
        full_stripe(6, 3, 0)
    with pytest.raises(ValueError):
        full_stripe(6, 3, 7)


def test_wide_stripe_argument():
    """§2.2.1: delta-based schemes are k-invariant; full-stripe GC is not."""
    rows = sweep_k([16, 128], r=4, new_chunks_per_stripe=1)

    def total(k, scheme):
        return next(r["total"] for r in rows if r["k"] == k and r["scheme"] == scheme)

    for scheme in ("in-place", "parity-logging", "hybrid-pl"):
        assert total(16, scheme) == total(128, scheme)
    # full-stripe GC traffic grows linearly in k: (k-1) reads + 1 + r writes
    assert total(16, "full-stripe") == 20
    assert total(128, "full-stripe") == 132
    assert total(128, "direct") > total(128, "in-place")


def test_hybrid_reads_fewer_chunks_than_in_place():
    assert hybrid_pl(10, 4).chunk_reads < in_place(10, 4).chunk_reads
    assert direct_reconstruction(10, 4).chunk_reads == 9


# ------------------------------------------------------------------ Figure 2


def _code22():
    """A (2,2) code shaped like the figure: P1 = a + b, P2 = a + c2*b."""
    code = RSCode(2, 2)
    assert code.coefficient(0, 0) == 1 and code.coefficient(0, 1) == 1
    return code


def test_figure2_parity_logging_stream():
    """Stream a, b, a', b': logged deltas reconstruct both parities."""
    code = _code22()
    rng = np.random.default_rng(0)
    a, b, a2, b2 = (rng.integers(0, 256, CHUNK, dtype=np.uint8) for _ in range(4))
    p = code.encode(np.stack([a, b]))

    # "PL only needs to write dP1, dP2, dP1', dP2' ... without reading P1, P2"
    log: list[ParityDelta] = []
    for j in range(2):
        log.append(ParityDelta(0, j, 0, gf_mul_scalar(code.coefficient(j, 0), a ^ a2)))
    for j in range(2):
        log.append(ParityDelta(0, j, 0, gf_mul_scalar(code.coefficient(j, 1), b ^ b2)))

    # "obtain the up-to-date chunk of the first parity via P1 + dP1 + dP1'"
    expect = code.encode(np.stack([a2, b2]))
    for j in range(2):
        chunk = p[j].copy()
        for d in log:
            if d.parity_index == j:
                apply_parity_delta(chunk, d)
        assert np.array_equal(chunk, expect[j])


def test_figure2_xor_parity_deltas_equal_data_delta():
    """For P1 (coefficients 1), dP1 = a' - a exactly as the figure states."""
    code = _code22()
    rng = np.random.default_rng(1)
    a, a2 = (rng.integers(0, 256, CHUNK, dtype=np.uint8) for _ in range(2))
    assert np.array_equal(code.parity_delta(0, 0, a ^ a2), a ^ a2)


# ------------------------------------------------------------------ Figure 8


def test_figure8_merge_based_buffer_logging():
    """Stream a, b, a', b', a'': three deltas merge into one that equals
    (a'' - a) + c*(b' - b) for the parity a + c*b."""
    code = _code22()
    rng = np.random.default_rng(2)
    a, b, a1, b1, a2 = (rng.integers(0, 256, CHUNK, dtype=np.uint8) for _ in range(5))
    c = code.coefficient(1, 1)
    deltas = [
        ParityDelta(0, 1, 0, gf_mul_scalar(code.coefficient(1, 0), a ^ a1)),
        ParityDelta(0, 1, 0, gf_mul_scalar(c, b ^ b1)),
        ParityDelta(0, 1, 0, gf_mul_scalar(code.coefficient(1, 0), a1 ^ a2)),
    ]
    merged = merge_parity_deltas(deltas)
    assert merged.merged_count == 3
    expect = gf_mul_scalar(code.coefficient(1, 0), a ^ a2) ^ gf_mul_scalar(c, b ^ b1)
    assert np.array_equal(merged.payload, expect)
    # and applying it brings the parity fully up to date
    parity = code.encode(np.stack([a, b]))[1].copy()
    apply_parity_delta(parity, merged)
    assert np.array_equal(parity, code.encode(np.stack([a2, b1]))[1])


# ------------------------------------------------------------------ Figure 9


def _figure9_records():
    """The figure's log-node input: base parities a+2b and c+2d, then deltas
    for the update order a->a', c->c', c'->c'', b->b', a'->a'', b'->b''."""
    code = _code22()
    rng = np.random.default_rng(3)
    a, b, c, d, a1, a2, b1, b2, c1, c2 = (
        rng.integers(0, 256, CHUNK, dtype=np.uint8) for _ in range(10)
    )
    coeff_a = code.coefficient(1, 0)
    coeff_b = code.coefficient(1, 1)
    p_ab = code.encode(np.stack([a, b]))[1]
    p_cd = code.encode(np.stack([c, d]))[1]

    def delta(sid, coeff, old, new):
        return LogRecord.for_delta(
            ParityDelta(sid, 1, 0, gf_mul_scalar(coeff, old ^ new)), CHUNK
        )

    base = [
        LogRecord.for_chunk(0, 1, p_ab, CHUNK),
        LogRecord.for_chunk(1, 1, p_cd, CHUNK),
    ]
    updates = [
        delta(0, coeff_a, a, a1),    # a -> a'
        delta(1, coeff_a, c, c1),    # c -> c'
        delta(1, coeff_a, c1, c2),   # c' -> c''
        delta(0, coeff_b, b, b1),    # b -> b'
        delta(0, coeff_a, a1, a2),   # a' -> a''
        delta(0, coeff_b, b1, b2),   # b' -> b''
    ]
    final = {
        0: code.encode(np.stack([a2, b2]))[1],
        1: code.encode(np.stack([c2, d]))[1],
    }
    return base, updates, final


def _check_final(scheme, final):
    for sid, expect in final.items():
        got = scheme.read_parity(sid, 1, CHUNK, now=1.0)
        assert np.array_equal(got.payload, expect)


def test_figure9a_plr_eight_writes():
    disk = DiskModel(HardwareProfile())
    scheme = make_scheme("plr", disk)
    base, updates, final = _figure9_records()
    for rec in base + updates:
        scheme.flush([rec], now=0.0)
    assert disk.stats.writes == 8        # "8 disk writes"
    _check_final(scheme, final)


def test_figure9b_plrm_five_writes():
    disk = DiskModel(HardwareProfile())
    scheme = make_scheme("plr-m", disk)
    base, updates, final = _figure9_records()
    # the figure's three buffer batches
    scheme.flush([base[0], updates[0], base[1]], now=0.0)   # -> a'+2b, c+2d
    scheme.flush([updates[1], updates[2], updates[3]], now=0.0)  # -> c''-c, 2(b'-b)
    scheme.flush([updates[4], updates[5]], now=0.0)         # -> (a''-a')+2(b''-b')
    assert disk.stats.writes == 5        # "5 disk writes"
    _check_final(scheme, final)


def test_figure9c_plm_three_writes_one_read():
    disk = DiskModel(HardwareProfile())
    scheme = make_scheme("plm", disk)
    scheme.staging_threshold_bytes = 1 << 30  # merge only when told to
    base, updates, final = _figure9_records()
    scheme.flush(base + updates, now=0.0)     # one sequential staging write
    scheme.settle(now=0.0)                    # read back + 2 merged writes
    assert disk.stats.writes == 3        # "3 disk writes"
    assert disk.stats.reads == 1         # "+ 1 disk read"
    _check_final(scheme, final)
