"""Stateful property-based testing of LogECMem.

A hypothesis rule machine drives an arbitrary interleaving of writes,
updates, deletes, node kills/restores (within the code's tolerance), log
flushes, GC and scrubs against a model (a plain dict of expected versions),
checking after every step that:

* every live object reads back its expected bytes (model equivalence),
* the memory accounting invariant holds on every node,
* and at teardown, with all nodes restored, the scrubber finds every parity
  re-derivable.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.core.config import StoreConfig
from repro.core.gc import collect_garbage
from repro.core.logecmem import LogECMem
from repro.core.scrub import scrub
from repro.core.striped import ChunkUnavailableError

KEYS = [f"user{i}" for i in range(12)]


class LogECMemMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.store = LogECMem(
            StoreConfig(k=3, r=3, value_size=1024, payload_scale=1 / 8)
        )
        self.model: dict[str, int] = {}  # key -> version
        self.killed: set[str] = set()

    # ------------------------------------------------------------------ rules

    @rule(key=st.sampled_from(KEYS))
    def write(self, key):
        if key in self.model:
            return
        self.store.write(key)
        self.model[key] = 0

    @rule(key=st.sampled_from(KEYS))
    def update(self, key):
        if key not in self.model:
            return
        try:
            self.store.update(key)
        except ChunkUnavailableError:
            return  # home/XOR node down: correctly refused, model unchanged
        self.model[key] += 1

    @rule(key=st.sampled_from(KEYS))
    def delete(self, key):
        if key not in self.model:
            return
        try:
            self.store.delete(key)
        except ChunkUnavailableError:
            return
        del self.model[key]

    @rule(idx=st.integers(min_value=0, max_value=3))
    def kill_dram(self, idx):
        nid = f"dram{idx}"
        # stay within single-DRAM-failure tolerance so reads always succeed
        # without touching log disks mid-machine
        if self.killed or nid in self.killed:
            return
        self.store.cluster.kill(nid)
        self.killed.add(nid)

    @rule()
    def restore_all(self):
        for nid in list(self.killed):
            self.store.cluster.restore(nid)
        self.killed.clear()

    @rule()
    def settle_logs(self):
        self.store.finalize()

    @precondition(lambda self: not self.killed)
    @rule()
    def run_gc(self):
        collect_garbage(self.store)

    # -------------------------------------------------------------- invariants

    @invariant()
    def reads_match_model(self):
        for key, version in self.model.items():
            res = self.store.read(key)
            expect = self.store.expected_value(key)
            assert np.array_equal(res.value, expect), (key, version)

    @invariant()
    def deleted_keys_absent(self):
        for key in KEYS:
            if key not in self.model:
                try:
                    self.store.read(key)
                except KeyError:
                    continue
                # a never-written key may legitimately be absent from both
                raise AssertionError(f"deleted key {key!r} still readable")

    @invariant()
    def memory_accounting_consistent(self):
        for node in self.store.cluster.dram_nodes.values():
            assert node.table.verify_accounting(), node.node_id

    def teardown(self):
        for nid in list(self.killed):
            self.store.cluster.restore(nid)
        self.store.finalize()
        report = scrub(self.store)
        assert report.clean, report.mismatches


TestLogECMemStateful = LogECMemMachine.TestCase
TestLogECMemStateful.settings = settings(
    max_examples=12, stateful_step_count=25, deadline=None
)
