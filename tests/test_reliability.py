"""Tests for the MTTDL Markov model against Table 2."""

import pytest

from repro.reliability import MarkovModel, mttdl_years, table2

#: every cell of the paper's Table 2 (MTTDL in years)
PAPER_TABLE2 = {
    (6, 3): {1: 1.03e9, 10: 9.76e9, 40: 3.89e10, 100: 9.71e10},
    (10, 4): {1: 6.41e8, 10: 5.88e9, 40: 2.34e10, 100: 5.83e10},
    (12, 4): {1: 5.44e8, 10: 4.91e9, 40: 1.95e10, 100: 4.86e10},
    (15, 3): {1: 4.47e8, 10: 3.94e9, 40: 1.56e10, 100: 3.89e10},
}


@pytest.mark.parametrize("code", sorted(PAPER_TABLE2))
@pytest.mark.parametrize("bandwidth", [1, 10, 40, 100])
def test_table2_reproduced_within_one_percent(code, bandwidth):
    k, r = code
    ours = mttdl_years(k, r, bandwidth)
    paper = PAPER_TABLE2[code][bandwidth]
    assert ours == pytest.approx(paper, rel=0.01)


def test_table2_full_grid():
    grid = table2()
    assert set(grid) == set(PAPER_TABLE2)
    for _code, row in grid.items():
        assert set(row) == {1, 10, 40, 100}


def test_mttdl_increases_with_bandwidth():
    """§3.1's point: single-failure repair rate dominates reliability."""
    values = [mttdl_years(6, 3, b) for b in (1, 10, 40, 100)]
    assert values == sorted(values)
    # B=100 vs B=1 under (6,3): Table 2's own numbers give a 98.9% increase
    # (the text's "94.27%" does not match the published table; we follow the
    # table, which we reproduce cell-for-cell)
    gain = 1 - values[0] / values[-1]
    assert gain == pytest.approx(1 - 1.03e9 / 9.71e10, abs=0.005)


def test_paper_mode_cross_code_ratio_is_6_over_k():
    """The reverse-engineered structure of Table 2."""
    base = mttdl_years(6, 3, 100)
    for k, r in [(10, 4), (12, 4), (15, 3)]:
        assert mttdl_years(k, r, 100) / base == pytest.approx(6 / k, rel=0.01)


def test_exact_mode_rewards_extra_parity():
    """The corrected per-code chain: r=4 codes are far more reliable than the
    paper-mode numbers suggest (the sensitivity analysis of markov.py)."""
    paper = mttdl_years(10, 4, 10, paper_mode=True)
    exact = mttdl_years(10, 4, 10, paper_mode=False)
    assert exact > 10 * paper


def test_exact_mode_matches_paper_for_6_3():
    """(6, 3) is the one code where Figure 4 IS the per-code chain."""
    assert mttdl_years(6, 3, 10, paper_mode=False) == pytest.approx(
        mttdl_years(6, 3, 10, paper_mode=True), rel=1e-9
    )


def test_rates_scale_as_documented():
    m = MarkovModel(k=6, r=3, bandwidth_Gbps=1)
    m2 = MarkovModel(k=6, r=3, bandwidth_Gbps=2)
    assert m2.single_repair_rate == pytest.approx(2 * m.single_repair_rate)
    m_big = MarkovModel(k=12, r=4, bandwidth_Gbps=1)
    assert m_big.single_repair_rate == pytest.approx(m.single_repair_rate / 2)
    assert m.multi_repair_rate == pytest.approx(365.25 * 24 * 2)  # 1/30min in years


def test_mttdl_decreases_with_failure_rate():
    fragile = mttdl_years(6, 3, 10, mttf_years=1)
    sturdy = mttdl_years(6, 3, 10, mttf_years=8)
    assert sturdy > fragile


def test_mttdl_positive_for_all_paper_codes():
    for (_k, _r), row in table2(paper_mode=False).items():
        for _b, v in row.items():
            assert v > 0
