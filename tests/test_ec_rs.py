"""Tests for the (k, r) Reed-Solomon codes (XOR first parity, MDS decode)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec.matrix import gf_matinv
from repro.ec.rs import RSCode, build_parity_matrix

PAPER_CODES = [(6, 3), (10, 4), (12, 4), (15, 3)]
LARGE_CODES = [(16, 4), (32, 4), (64, 4), (128, 4)]


def _stripe(code, length=256, seed=0):
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size=(code.k, length), dtype=np.uint8)
    parity = code.encode(data)
    return data, parity


@pytest.mark.parametrize("k,r", PAPER_CODES + LARGE_CODES)
def test_first_parity_row_is_all_ones(k, r):
    p = build_parity_matrix(k, r)
    assert np.all(p[0] == 1)


@pytest.mark.parametrize("k,r", PAPER_CODES)
def test_xor_parity_matches_row0(k, r):
    code = RSCode(k, r)
    data, parity = _stripe(code)
    assert np.array_equal(code.xor_parity(data), parity[0])
    assert np.array_equal(np.bitwise_xor.reduce(data, axis=0), parity[0])


@pytest.mark.parametrize("k,r", [(4, 2), (6, 3), (10, 4)])
def test_mds_every_survivor_set_decodes(k, r):
    """Any k-subset of generator rows must be invertible (MDS property)."""
    code = RSCode(k, r)
    for rows in itertools.combinations(range(k + r), k):
        gf_matinv(code.generator[list(rows), :])  # must not raise


@pytest.mark.parametrize("k,r", PAPER_CODES)
def test_decode_single_data_failure(k, r):
    code = RSCode(k, r)
    data, parity = _stripe(code, seed=1)
    chunks = {i: data[i] for i in range(k)}
    chunks.update({k + j: parity[j] for j in range(r)})
    lost = 2
    available = {i: c for i, c in chunks.items() if i != lost}
    out = code.decode(available, wanted=[lost])
    assert np.array_equal(out[lost], data[lost])


@pytest.mark.parametrize("k,r", PAPER_CODES)
def test_decode_r_failures(k, r):
    code = RSCode(k, r)
    data, parity = _stripe(code, seed=2)
    chunks = {i: data[i] for i in range(k)}
    chunks.update({k + j: parity[j] for j in range(r)})
    lost = list(range(r))  # drop the first r data chunks
    available = {i: c for i, c in chunks.items() if i not in lost}
    out = code.decode(available, wanted=lost)
    for i in lost:
        assert np.array_equal(out[i], data[i])


def test_decode_reconstructs_parity_chunks():
    code = RSCode(6, 3)
    data, parity = _stripe(code, seed=3)
    available = {i: data[i] for i in range(6)}
    out = code.decode(available, wanted=[6, 7, 8])
    for j in range(3):
        assert np.array_equal(out[6 + j], parity[j])


def test_decode_defaults_to_all_missing():
    code = RSCode(4, 2)
    data, parity = _stripe(code, seed=4)
    available = {0: data[0], 1: data[1], 4: parity[0], 5: parity[1]}
    out = code.decode(available)
    assert set(out) == {2, 3}
    assert np.array_equal(out[2], data[2])
    assert np.array_equal(out[3], data[3])


def test_decode_insufficient_chunks_raises():
    code = RSCode(4, 2)
    data, _ = _stripe(code, seed=5)
    with pytest.raises(ValueError):
        code.decode({0: data[0], 1: data[1], 2: data[2]})


@pytest.mark.parametrize("k,r", PAPER_CODES)
def test_repair_with_xor_fast_path(k, r):
    code = RSCode(k, r)
    data, parity = _stripe(code, seed=6)
    survivors = {i: data[i] for i in range(k)}
    survivors[k] = parity[0]
    for lost in (0, k // 2, k - 1):
        trimmed = {i: c for i, c in survivors.items() if i != lost}
        rebuilt = code.repair_with_xor(lost, trimmed)
        assert np.array_equal(rebuilt, data[lost])


def test_repair_with_xor_missing_chunk_raises():
    code = RSCode(4, 2)
    data, parity = _stripe(code, seed=7)
    survivors = {0: data[0], 1: data[1], 4: parity[0]}  # missing data chunk 3
    with pytest.raises(KeyError):
        code.repair_with_xor(2, survivors)


def test_parity_delta_property1():
    """P'(after update) == P + coefficient * (D' - D) for every parity."""
    code = RSCode(6, 3)
    data, parity = _stripe(code, seed=8)
    new_data = data.copy()
    rng = np.random.default_rng(9)
    new_data[3] = rng.integers(0, 256, size=data.shape[1], dtype=np.uint8)
    new_parity = code.encode(new_data)
    delta = data[3] ^ new_data[3]
    for j in range(3):
        pd = code.parity_delta(j, 3, delta)
        assert np.array_equal(parity[j] ^ pd, new_parity[j])


def test_parity_delta_property2_merging():
    """Two successive updates' parity deltas merge into one (XOR)."""
    code = RSCode(6, 3)
    data, parity = _stripe(code, seed=10)
    rng = np.random.default_rng(11)
    v1 = rng.integers(0, 256, size=data.shape[1], dtype=np.uint8)
    v2 = rng.integers(0, 256, size=data.shape[1], dtype=np.uint8)
    # update chunk 1 to v1, then chunk 4 to v2
    step1 = data.copy()
    step1[1] = v1
    final = step1.copy()
    final[4] = v2
    final_parity = code.encode(final)
    for j in range(3):
        d1 = code.parity_delta(j, 1, data[1] ^ v1)
        d2 = code.parity_delta(j, 4, step1[4] ^ v2)
        merged = d1 ^ d2
        assert np.array_equal(parity[j] ^ merged, final_parity[j])


def test_coefficient_bounds():
    code = RSCode(4, 2)
    with pytest.raises(IndexError):
        code.coefficient(2, 0)
    with pytest.raises(IndexError):
        code.coefficient(0, 4)


def test_encode_shape_check():
    code = RSCode(4, 2)
    with pytest.raises(ValueError):
        code.encode(np.zeros((3, 16), dtype=np.uint8))


def test_build_parity_matrix_bounds():
    with pytest.raises(ValueError):
        build_parity_matrix(0, 3)
    with pytest.raises(ValueError):
        build_parity_matrix(250, 10)


def test_decode_matrix_cache_reused():
    code = RSCode(4, 2)
    data, parity = _stripe(code, seed=12)
    available = {0: data[0], 1: data[1], 2: data[2], 4: parity[0]}
    code.decode(available, wanted=[3])
    assert len(code._decode_cache) == 1
    code.decode(available, wanted=[3])
    assert len(code._decode_cache) == 1


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=2, max_value=10),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_roundtrip_random_codes(k, r, seed):
    code = RSCode(k, r)
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, size=(k, 64), dtype=np.uint8)
    parity = code.encode(data)
    # drop r random chunks
    drop = rng.choice(k + r, size=r, replace=False)
    chunks = {i: data[i] for i in range(k)}
    chunks.update({k + j: parity[j] for j in range(r)})
    available = {i: c for i, c in chunks.items() if i not in set(int(d) for d in drop)}
    out = code.decode(available)
    for i in drop:
        i = int(i)
        expect = data[i] if i < k else parity[i - k]
        assert np.array_equal(out[i], expect)
