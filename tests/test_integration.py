"""Cross-system integration and property tests.

Differential testing: all five stores must agree on every read under the
same operation sequence.  Fuzzing: random op/failure sequences must leave
LogECMem scrubbable (all parities re-derivable) and every object readable as
long as no stripe lost more than r chunks.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import make_store
from repro.core.config import StoreConfig
from repro.core.logecmem import LogECMem
from repro.core.scrub import scrub
from repro.workloads import WorkloadSpec, generate_requests, load_keys
from repro.bench.runner import run_requests


def _cfg(**kw):
    defaults = dict(k=4, r=3, value_size=4096, payload_scale=1 / 32)
    defaults.update(kw)
    return StoreConfig(**defaults)


ALL_STORES = ("vanilla", "replication", "ipmem", "fsmem", "logecmem")


# ------------------------------------------------------------ differential


@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["read", "update", "delete", "write_new"]),
            st.integers(min_value=0, max_value=19),
        ),
        max_size=30,
    )
)
def test_all_stores_agree_on_values(ops):
    """Same op sequence -> same visible values on every system."""
    stores = [make_store(name, _cfg()) for name in ALL_STORES]
    for s in stores:
        for i in range(20):
            s.write(f"user{i}")
    alive = set(f"user{i}" for i in range(20))
    extra = 0
    for op, idx in ops:
        key = f"user{idx}"
        if op == "write_new":
            key = f"extra{extra}"
            extra += 1
            for s in stores:
                s.write(key)
            alive.add(key)
        elif key not in alive:
            continue
        elif op == "read":
            values = [s.read(key).value for s in stores]
            for v in values[1:]:
                assert np.array_equal(v, values[0])
        elif op == "update":
            for s in stores:
                s.update(key)
        elif op == "delete":
            for s in stores:
                s.delete(key)
            alive.discard(key)
    # final sweep: every surviving key readable and identical everywhere
    for key in sorted(alive):
        values = [s.read(key).value for s in stores]
        for v in values[1:]:
            assert np.array_equal(v, values[0])


def test_all_stores_complete_a_real_workload():
    spec = WorkloadSpec.read_update("80:20", n_objects=120, n_requests=200, seed=3)
    for name in ALL_STORES:
        store = make_store(name, _cfg())
        for key in load_keys(spec):
            store.write(key)
        result = run_requests(store, generate_requests(spec), spec)
        assert result.op_count("read") + result.op_count("update") == 200
        assert result.memory_bytes > 0


# ----------------------------------------------------------------- fuzzing


def _restore_all(store, killed):
    """Bring killed nodes back the way the system would: a log node that was
    down while updates flowed has stale parities (the deltas were dropped and
    it is marked ``needs_recovery``), so it re-enters via recover_log_node;
    DRAM nodes restore directly (their chunks were never erased)."""
    from repro.core.recovery import recover_log_node

    for nid in sorted(killed):
        if nid in store.cluster.log_nodes:
            recover_log_node(store, nid)
        else:
            store.cluster.restore(nid)
    killed.clear()


@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    st.lists(
        st.one_of(
            st.tuples(st.just("update"), st.integers(min_value=0, max_value=23)),
            st.tuples(st.just("delete"), st.integers(min_value=0, max_value=23)),
            st.tuples(st.just("kill_dram"), st.integers(min_value=0, max_value=4)),
            st.tuples(st.just("kill_log"), st.integers(min_value=0, max_value=1)),
            st.tuples(st.just("restore_all"), st.just(0)),
            st.tuples(st.just("settle"), st.just(0)),
        ),
        max_size=25,
    )
)
def test_fuzz_logecmem_stays_consistent(ops):
    """Random updates/deletes/failures never corrupt parity state."""
    store = LogECMem(_cfg())
    for i in range(24):
        store.write(f"user{i}")
    deleted = set()
    killed = set()
    from repro.core.striped import ChunkUnavailableError

    for op, arg in ops:
        if op == "update":
            key = f"user{arg}"
            if key not in deleted:
                try:
                    store.update(key)
                except ChunkUnavailableError:
                    pass  # home node down: update correctly refused
        elif op == "delete":
            key = f"user{arg}"
            if key not in deleted:
                try:
                    store.delete(key)
                    deleted.add(key)
                except ChunkUnavailableError:
                    pass
        elif op == "kill_dram":
            nid = f"dram{arg}"
            if len(killed) < store.cfg.r - 1:  # stay within tolerance
                store.cluster.kill(nid)
                killed.add(nid)
        elif op == "kill_log":
            nid = f"log{arg}"
            if len(killed) < store.cfg.r - 1:
                store.cluster.kill(nid)
                killed.add(nid)
        elif op == "restore_all":
            _restore_all(store, killed)
        elif op == "settle":
            store.finalize()
    # restore everything, then the oracle: scrub + every live object readable
    _restore_all(store, killed)
    store.finalize()
    assert scrub(store).clean
    for i in range(24):
        key = f"user{i}"
        if key in deleted:
            continue
        res = store.read(key)
        assert np.array_equal(res.value, store.expected_value(key)), key


@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.data())
def test_fuzz_reads_under_failures_within_tolerance(data):
    """With at most r chunks of any stripe down, every object stays readable."""
    store = LogECMem(_cfg(k=4, r=3))
    for i in range(24):
        store.write(f"user{i}")
    for i in range(10):
        store.update(f"user{i}")
    store.finalize()
    # kill up to 2 DRAM nodes (every stripe loses <= 2 of its k+1 DRAM chunks)
    # plus optionally 1 log node: total unavailable <= r = 3 per stripe
    n_dram_kill = data.draw(st.integers(min_value=0, max_value=2))
    dram_ids = store.cluster.dram_ids()
    for nid in data.draw(
        st.permutations(dram_ids)
    )[:n_dram_kill]:
        store.cluster.kill(nid)
    if data.draw(st.booleans()):
        store.cluster.kill(store.cluster.log_ids()[0])
    for i in range(24):
        key = f"user{i}"
        res = store.read(key)
        assert np.array_equal(res.value, store.expected_value(key)), key


def test_clock_monotone_across_mixed_ops():
    store = LogECMem(_cfg())
    clock = store.cluster.clock
    last = clock.now
    for i in range(12):
        store.write(f"user{i}")
        clock.advance(0.0)
        assert clock.now >= last
        last = clock.now
    store.update("user0")
    store.degraded_read("user0")
    assert clock.now >= last


def test_counters_consistent_with_ops():
    spec = WorkloadSpec.read_update("50:50", n_objects=100, n_requests=100, seed=5)
    store = LogECMem(_cfg())
    for key in load_keys(spec):
        store.write(key)
    result = run_requests(store, generate_requests(spec), spec)
    c = result.counters
    assert c["op_read"] == result.op_count("read")
    assert c["op_update"] == result.op_count("update")
    assert c["op_write"] == spec.n_objects
    # every update to a sealed stripe ships r-1 deltas
    assert c["parity_deltas_sent"] <= c["op_update"] * (store.cfg.r - 1)
