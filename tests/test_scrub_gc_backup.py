"""Tests for the scrubber, tombstone GC (§4.1) and proxy metadata backup (§3.2)."""

import json

import numpy as np
import pytest

from repro.baselines import make_store
from repro.core.backup import failover, restore_metadata, snapshot_bytes, snapshot_metadata
from repro.core.config import StoreConfig
from repro.core.gc import collect_garbage
from repro.core.logecmem import LogECMem
from repro.core.scrub import scrub


def _cfg(**kw):
    defaults = dict(k=4, r=3, value_size=4096, payload_scale=1 / 16)
    defaults.update(kw)
    return StoreConfig(**defaults)


def _loaded(n=32, updates=(), cfg=None):
    store = LogECMem(cfg or _cfg())
    for i in range(n):
        store.write(f"user{i}")
    for key in updates:
        store.update(key)
    return store


# --------------------------------------------------------------------- scrub


def test_scrub_clean_store():
    store = _loaded(updates=["user3", "user7", "user3"])
    report = scrub(store)
    assert report.clean
    assert report.stripes_checked == len(store.stripe_index)
    assert report.parities_checked == report.stripes_checked * store.cfg.r


def test_scrub_detects_corruption():
    store = _loaded()
    sid = next(iter(store.stripe_index.stripe_ids()))
    store.parity_chunks[(sid, 0)][0] ^= 0xFF  # bit rot
    report = scrub(store)
    assert not report.clean
    assert (sid, 0) in report.mismatches


def test_scrub_detects_logged_parity_corruption():
    store = _loaded(updates=["user3"])
    store.finalize()
    sid = store.object_index.lookup("user3").stripe_id
    rec = store.stripe_index.get(sid)
    node = store.cluster.log_nodes[rec.chunk_nodes[store.cfg.k + 1]]
    region = node.scheme.region(sid, 1)
    region.base[0] ^= 0xFF
    report = scrub(store)
    assert (sid, 1) in report.mismatches


def test_scrub_skips_failed_nodes():
    store = _loaded()
    store.cluster.kill("log0")
    report = scrub(store)
    assert report.skipped_unavailable > 0
    assert report.clean  # nothing reachable is wrong


def test_scrub_can_exclude_logged():
    store = _loaded()
    report = scrub(store, include_logged=False)
    assert report.parities_checked == report.stripes_checked  # XOR only


def test_scrub_works_on_ipmem():
    store = make_store("ipmem", _cfg())
    for i in range(16):
        store.write(f"user{i}")
    store.update("user3")
    report = scrub(store)
    assert report.clean


# ------------------------------------------------------------------------ gc


def test_delete_leaves_tombstone_until_gc():
    store = _loaded()
    before = store.memory_logical_bytes
    store.delete("user5")
    assert store.memory_logical_bytes == before  # zero-bytes space not reclaimed


def test_gc_reclaims_tombstones():
    store = _loaded(n=32)
    victims = ["user5", "user9", "user13"]
    for key in victims:
        store.delete(key)
    report = collect_garbage(store)
    assert report.tombstones_reclaimed == 3
    assert report.stripes_collected >= 1
    assert report.bytes_reclaimed >= 3 * store.cfg.value_size
    for key in victims:
        with pytest.raises(KeyError):
            store.read(key)


def test_gc_preserves_live_objects_and_consistency():
    store = _loaded(n=32, updates=["user3", "user8"])
    live_before = {
        f"user{i}": store.expected_value(f"user{i}") for i in range(32) if i != 5
    }
    store.delete("user5")
    collect_garbage(store)
    for key, expect in live_before.items():
        assert np.array_equal(store.read(key).value, expect), key
    assert scrub(store).clean


def test_gc_rewritten_objects_survive_degraded_reads():
    store = _loaded(n=32)
    store.delete("user5")
    report = collect_garbage(store)
    assert report.objects_rewritten > 0
    # every remaining object still reconstructs
    for i in range(32):
        if i == 5:
            continue
        res = store.degraded_read(f"user{i}")
        assert np.array_equal(res.value, store.expected_value(f"user{i}"))


def test_gc_noop_without_tombstones():
    store = _loaded()
    report = collect_garbage(store)
    assert report.stripes_collected == 0
    assert report.bytes_reclaimed == 0


def test_gc_drops_log_node_state():
    store = _loaded(n=32, updates=["user5", "user5"])
    store.finalize()
    sid = store.object_index.lookup("user5").stripe_id
    rec = store.stripe_index.get(sid)
    log_node = store.cluster.log_nodes[rec.chunk_nodes[store.cfg.k + 1]]
    assert (sid, 1) in log_node.scheme.regions
    store.delete("user5")
    collect_garbage(store)
    assert (sid, 1) not in log_node.scheme.regions


def test_gc_counts_costs():
    store = _loaded(n=32)
    store.delete("user5")
    report = collect_garbage(store)
    assert report.duration_s > 0


# -------------------------------------------------------------------- backup


def test_snapshot_roundtrips_through_json():
    store = _loaded(updates=["user3"])
    snap = snapshot_metadata(store)
    snap2 = json.loads(json.dumps(snap))
    other = _loaded(n=0)
    restore_metadata(other, snap2)
    assert len(other.stripe_index) == len(store.stripe_index)
    assert other.versions == store.versions
    assert other._next_stripe_id == store._next_stripe_id


def test_snapshot_bytes_positive():
    store = _loaded()
    assert snapshot_bytes(snapshot_metadata(store)) > 100


def test_failover_restores_service():
    store = _loaded(n=32, updates=["user3", "user7"])
    expect = {f"user{i}": store.expected_value(f"user{i}") for i in range(32)}
    snap = snapshot_metadata(store)
    takeover_s = failover(store, snap)
    assert takeover_s > 0
    for key, value in expect.items():
        assert np.array_equal(store.read(key).value, value)
    # updates and degraded reads keep working on the restored metadata
    store.update("user3")
    res = store.degraded_read("user3")
    assert np.array_equal(res.value, store.expected_value("user3"))
    assert scrub(store).clean


def test_failover_counts():
    store = _loaded()
    failover(store, snapshot_metadata(store))
    assert store.counters["proxy_failovers"] == 1
