"""Determinism regression: identical seeds must yield byte-identical request
streams and identical closed-loop results for every store.

Everything downstream (experiments, the chaos harness's reproducible
fingerprints) leans on this; a nondeterministic iteration order or an
unseeded RNG anywhere in the stack shows up here first.
"""

import pytest

from repro.baselines import make_store
from repro.bench.runner import run_workload, simulate_closed_loop
from repro.core import StoreConfig
from repro.workloads import WorkloadSpec, generate_requests

STORES = ["vanilla", "replication", "ipmem", "fsmem", "logecmem"]


def spec(seed=17):
    return WorkloadSpec(
        n_objects=80, n_requests=120, seed=seed, value_size=1024,
        read_ratio=0.5, update_ratio=0.4, write_ratio=0.1,
    )


def test_request_stream_byte_identical_per_seed():
    a = generate_requests(spec())
    b = generate_requests(spec())
    assert a == b  # frozen dataclasses: op + key equality is byte equality
    assert "\n".join(f"{r.op.value} {r.key}" for r in a) == "\n".join(
        f"{r.op.value} {r.key}" for r in b
    )
    assert generate_requests(spec(seed=18)) != a


@pytest.mark.parametrize("name", STORES)
def test_closed_loop_result_identical_per_seed(name):
    results = []
    for _ in range(2):
        store = make_store(name, StoreConfig(k=3, r=3, value_size=1024, scheme="plm"))
        wl = run_workload(store, spec(), record_demands=True)
        results.append(simulate_closed_loop(store, wl))
    assert results[0] == results[1]  # ClosedLoopResult is equality-comparable


@pytest.mark.parametrize("name", STORES)
def test_latency_streams_identical_per_seed(name):
    streams = []
    for _ in range(2):
        store = make_store(name, StoreConfig(k=3, r=3, value_size=1024, scheme="plm"))
        wl = run_workload(store, spec())
        streams.append(wl.latencies_s)
    assert streams[0] == streams[1]


def test_engine_load_curve_byte_identical_per_seed():
    """The concurrent engine's load JSON -- job derivation, queueing, fault
    schedule, chaos attribution -- is byte-stable for a fixed seed."""
    from repro.engine.load import load_json, run_load

    docs = [
        load_json(run_load(n_objects=100, n_requests=100, seed=23,
                           concurrencies=(1, 8), expected_faults=2.0))
        for _ in range(2)
    ]
    assert docs[0] == docs[1]
    assert docs[0] != load_json(
        run_load(n_objects=100, n_requests=100, seed=24, concurrencies=(1, 8),
                 expected_faults=2.0)
    )
