"""Tests for the concurrent discrete-event engine (repro.engine)."""

import dataclasses
import json

import pytest

from repro.analysis.timeline import fault_windows
from repro.chaos.schedule import FaultEvent, FaultKind
from repro.engine import (
    AdmissionConfig,
    AdmissionGate,
    Engine,
    EngineConfig,
    JobSpec,
    LogBufferModel,
    Stage,
    Station,
    build_jobs,
    exact_quantile,
    job_from_span,
    knee_summary,
    render_load,
    run_load,
    run_point,
)
from repro.engine.jobs import JobTrace, classify_phase
from repro.engine.load import load_json
from repro.obs.span import Span
from repro.sim.params import HardwareProfile


def _profile(**kw):
    return HardwareProfile(**kw)


def _cpu_job(cpu_s=1e-4, delay_s=2e-4, op="read"):
    return JobSpec(op=op, stages=(Stage("proxy_cpu", cpu_s), Stage("delay", delay_s)))


def _run(jobs, profile=None, **cfg_kw):
    faults = cfg_kw.pop("faults", None)
    engine = Engine(jobs, profile or _profile(), EngineConfig(**cfg_kw),
                    faults=faults)
    return engine.run()


# ------------------------------------------------------------------ helpers


def test_exact_quantile():
    vals = [1.0, 2.0, 3.0, 4.0]
    assert exact_quantile([], 0.99) == 0.0
    assert exact_quantile(vals, 0.0) == 1.0
    assert exact_quantile(vals, 0.5) == 2.0
    assert exact_quantile(vals, 0.99) == 4.0
    assert exact_quantile(vals, 1.0) == 4.0


def test_stage_rejects_negative_demand():
    with pytest.raises(ValueError):
        Stage("proxy_cpu", -1e-6)


def test_engine_config_validation():
    with pytest.raises(ValueError):
        EngineConfig(concurrency=0)
    with pytest.raises(ValueError):
        EngineConfig(think_s=-1e-6)
    with pytest.raises(ValueError):
        AdmissionConfig(window=0)


# -------------------------------------------------------- span -> job stages


def test_classify_phase_maps_stations():
    root = Span("update", 0.0)
    assert classify_phase(root.child("encode_delta", 1e-5))[0].station == "proxy_cpu"
    assert classify_phase(root.child("ship_delta", 1e-5))[0].station == "proxy_nic"
    assert classify_phase(root.child("client_hop", 1e-5))[0].station == "delay"
    read = root.child("read_old", 1e-5, node="m3")
    assert classify_phase(read)[0].station == "nic:m3"
    # zero-duration phases vanish rather than producing empty stages
    assert classify_phase(root.child("decode", 0.0)) == []


def test_classify_phase_splits_multi_node_reads():
    root = Span("update", 0.0)
    xor = root.child("read_old_xor", 4e-5, node="m1", xor_node="m2")
    stages = classify_phase(xor)
    assert [s.station for s in stages] == ["nic:m1", "nic:m2"]
    assert sum(s.service_s for s in stages) == pytest.approx(4e-5)


def test_job_from_span_is_exact():
    """Stage total == root latency: the residual becomes a delay stage."""
    root = Span("update", 0.0)
    root.child("encode_delta", 1e-5)
    root.child("ship_delta", 3e-5)
    root.finish(9e-5)  # 5e-5 uncovered
    job = job_from_span(root)
    assert job.service_s == pytest.approx(9e-5)
    assert job.stages[-1].station == "delay"
    assert job.stages[-1].service_s == pytest.approx(5e-5)


# ----------------------------------------------------------------- stations


def test_station_fifo_waits():
    st = Station("proxy_cpu")
    w0, d0 = st.submit(0.0, 1e-3)
    w1, d1 = st.submit(0.0, 1e-3)
    assert (w0, d0) == (0.0, 1e-3)
    assert w1 == pytest.approx(1e-3)  # queued behind the first
    assert d1 == pytest.approx(2e-3)
    st.depart()
    st.depart()
    assert st.pending == 0
    stats = st.stats(elapsed_s=2e-3)
    assert stats["jobs"] == 2
    assert stats["utilisation"] == pytest.approx(1.0)
    assert stats["max_queue_depth"] == 2


def test_station_slowdown_scales_arrivals():
    st = Station("nic:m0")
    st.set_slowdown(4.0)
    _, done = st.submit(0.0, 1e-3)
    assert done == pytest.approx(4e-3)
    st.clear_slowdown()
    _, done = st.submit(4e-3, 1e-3)
    assert done == pytest.approx(5e-3)
    with pytest.raises(ValueError):
        st.set_slowdown(0.5)


def test_station_stall_freezes_device():
    st = Station("disk:l0")
    st.stall(5e-3)
    st.stall(1e-3)  # never shrinks
    w, done = st.submit(0.0, 1e-3)
    assert w == pytest.approx(5e-3)
    assert done == pytest.approx(6e-3)
    assert st.backlog_s(0.0) == pytest.approx(6e-3)


# ------------------------------------------------------------ admission gate


def test_admission_gate_admit_queue_reject():
    gate = AdmissionGate(AdmissionConfig(window=2, queue_cap=1))
    traces = [JobTrace(spec=_cpu_job(), client=i, issued_s=float(i)) for i in range(4)]
    verdicts = [gate.offer(t) for t in traces]
    assert verdicts == ["admit", "admit", "queue", "reject"]
    released = gate.release(now=10.0)
    assert released is traces[2]
    assert released.admission_wait_s == pytest.approx(8.0)
    stats = gate.stats()
    assert stats["admitted"] == 3
    assert stats["queued"] == 1
    assert stats["rejected"] == 1
    assert stats["max_inflight"] == 2


def test_admission_gate_unbounded_window():
    gate = AdmissionGate(AdmissionConfig(window=None))
    for i in range(50):
        assert gate.offer(JobTrace(spec=_cpu_job(), client=i, issued_s=0.0)) == "admit"
    assert gate.stats()["rejected"] == 0


# ----------------------------------------------------------- log buffer model


def test_log_buffer_pressure_edges():
    p = _profile()
    buf = LogBufferModel(
        "l0",
        dataclasses.replace(p, log_buffer_bytes=1000,
                            log_flush_threshold_bytes=400),
    )
    assert buf.high_water_bytes == int(1000 * p.log_high_water_fraction)
    buf.append(300)
    assert not buf.should_flush()  # below the flush threshold
    assert not buf.pressured
    buf.append(700)
    assert buf.pressured
    assert buf.high_water_crossings == 1
    assert buf.should_flush()
    buf.flush_inflight = True
    assert not buf.should_flush()  # one flush at a time
    buf.drained(1000)
    assert buf.nbytes == 0
    assert not buf.pressured
    assert buf.stats()["peak_bytes"] == 1000


# ------------------------------------------------------------- engine: C = 1


def test_single_client_reproduces_sequential_costs():
    """C=1, no faults: every response equals the job's service demand and
    the makespan is the serial sum -- the engine adds nothing to the store's
    own cost model."""
    jobs = [
        JobSpec("read", (Stage("nic:m0", 2e-4), Stage("delay", 1e-4))),
        JobSpec("update", (Stage("proxy_cpu", 1e-4), Stage("proxy_nic", 3e-4))),
        JobSpec("read", (Stage("delay", 5e-4),)),
    ] * 5
    res = _run(jobs, concurrency=1)
    assert res.jobs_completed == len(jobs)
    assert res.jobs_rejected == 0
    for (_, response, _), spec in zip(res.samples, jobs):
        assert response == pytest.approx(spec.service_s, rel=1e-12)
    assert res.makespan_s == pytest.approx(sum(j.service_s for j in jobs))


def test_derived_jobs_single_client_exactness():
    """Real store jobs through the engine at C=1 match the measured
    latencies byte-for-byte (the decomposition is exact by construction)."""
    jobs, profile, _, _ = build_jobs(n_objects=80, n_requests=80, seed=7)
    res = run_point(jobs, profile, concurrency=1)
    assert res.jobs_completed == len(jobs)
    for (_, response, _), spec in zip(res.samples, jobs):
        assert response == pytest.approx(spec.service_s, rel=1e-12)


# ------------------------------------------------- engine: contention effects


def test_concurrency_raises_throughput_and_tail():
    jobs = [_cpu_job(cpu_s=1e-4, delay_s=9e-4)] * 400
    r1 = _run(jobs, concurrency=1)
    r8 = _run(jobs, concurrency=8)
    r32 = _run(jobs, concurrency=32)
    assert r8.throughput_ops_s > 4 * r1.throughput_ops_s
    assert r32.throughput_ops_s >= r8.throughput_ops_s * 0.99
    # at C=32 the CPU is the bottleneck: ~1/cpu_s ops/s and a queue builds
    assert r32.throughput_ops_s == pytest.approx(1e4, rel=0.1)
    assert r32.overall["p99_us"] > 3 * r1.overall["p99_us"]
    assert r32.stations["proxy_cpu"]["utilisation"] > 0.9
    assert r32.counters["engine_station_wait_s"] > 0


def test_think_time_lowers_offered_load():
    jobs = [_cpu_job()] * 200
    busy = _run(jobs, concurrency=16, think_s=0.0)
    idle = _run(jobs, concurrency=16, think_s=5e-3)
    assert idle.throughput_ops_s < busy.throughput_ops_s
    assert idle.overall["p99_us"] <= busy.overall["p99_us"]


def test_admission_window_bounds_inflight_and_rejects():
    jobs = [_cpu_job()] * 120
    res = _run(jobs, concurrency=16,
               admission=AdmissionConfig(window=2, queue_cap=2))
    assert res.admission["max_inflight"] <= 2
    assert res.jobs_rejected > 0
    # every job in the stream is accounted for: the run always terminates
    assert res.jobs_completed + res.jobs_rejected == len(jobs)
    assert res.counters["engine_jobs_rejected"] == res.jobs_rejected
    assert any(ev["kind"] == "engine_reject" for ev in res.events)


def test_admission_queue_charges_wait():
    jobs = [_cpu_job(cpu_s=5e-4, delay_s=0.0)] * 60
    res = _run(jobs, concurrency=8,
               admission=AdmissionConfig(window=1, queue_cap=128))
    assert res.jobs_rejected == 0
    assert res.admission["queued"] > 0
    assert res.counters["engine_admission_wait_s"] > 0


# --------------------------------------------------- engine: log backpressure


def _tight_log_profile(**kw):
    """Shrink buffers so a short job stream hits high water and slow the
    disk so flushes pile up."""
    defaults = dict(
        log_buffer_bytes=32 << 10,
        log_flush_threshold_bytes=8 << 10,
        disk_seq_bandwidth_Bps=20e6,
    )
    defaults.update(kw)
    return dataclasses.replace(_profile(), **defaults)


def _update_jobs(n, log_bytes=4096, nodes=("l0", "l1")):
    return [
        JobSpec(
            "update",
            (Stage("proxy_cpu", 2e-5), Stage("delay", 1e-4)),
            log_bytes=log_bytes,
            log_nodes=nodes,
        )
        for _ in range(n)
    ]


def test_backpressure_parks_writes_and_charges_wait():
    res = _run(_update_jobs(300), profile=_tight_log_profile(), concurrency=32)
    bp = res.backpressure
    assert set(bp) == {"l0", "l1"}
    assert all(b["flushes"] > 0 for b in bp.values())
    assert sum(b["write_stalls"] for b in bp.values()) > 0
    assert sum(b["high_water_crossings"] for b in bp.values()) > 0
    assert res.counters["engine_backpressure_stalls"] > 0
    assert res.counters["engine_backpressure_wait_s"] > 0
    kinds = {ev["kind"] for ev in res.events}
    assert {"engine_backpressure_on", "engine_flush",
            "engine_backpressure_off"} <= kinds
    # parked writes are always eventually woken: nothing is lost
    assert res.jobs_completed == 300
    # the stalled runs are slower than an unconstrained buffer
    free = _run(_update_jobs(300), profile=_profile(), concurrency=32)
    assert res.makespan_s > free.makespan_s


def test_flush_deferral_under_disk_backlog():
    """A stalled log disk pushes its backlog past ``max_disk_backlog_s``;
    flushes defer (bounded crash-consistency) instead of queueing blindly."""
    profile = _tight_log_profile(max_disk_backlog_s=1e-4)
    stall = FaultEvent(time_s=1e-4, kind=FaultKind.STALL, node_id="l0",
                       duration_s=2e-2)
    res = _run(_update_jobs(200, nodes=("l0",)), profile=profile,
               concurrency=32, faults=[stall])
    assert res.counters["engine_flush_deferrals"] > 0
    assert res.backpressure["l0"]["flush_deferrals"] > 0
    assert res.jobs_completed == 200


def test_flush_bytes_conserved():
    res = _run(_update_jobs(100), profile=_tight_log_profile(), concurrency=8)
    appended = 100 * (4096 // 2)  # per-node share
    for b in res.backpressure.values():
        assert 0 < b["flushed_bytes"] <= appended
        assert b["peak_bytes"] <= appended
        assert b["peak_occupancy"] == pytest.approx(
            b["peak_bytes"] / (32 << 10), abs=1e-6
        )


# ------------------------------------------------------------ engine: faults


def test_slow_fault_raises_in_window_latency():
    jobs = [JobSpec("read", (Stage("nic:m0", 2e-4),))] * 300
    fault = FaultEvent(time_s=5e-3, kind=FaultKind.SLOW, node_id="m0",
                       duration_s=1e-2, magnitude=8.0)
    res = _run(jobs, concurrency=4, faults=[fault])
    kinds = [ev["kind"] for ev in res.events]
    assert "fault_inject" in kinds
    assert "fault_heal" in kinds
    windows = fault_windows(res.events, run_end_s=res.makespan_s)
    assert len(windows) == 1
    w = windows[0]
    in_lats = [lat for at, lat, _ in res.samples if w.contains(at)]
    out_lats = [lat for at, lat, _ in res.samples if not w.contains(at)]
    assert in_lats and out_lats
    assert max(in_lats) > max(out_lats)


def test_stall_fault_freezes_node_station():
    jobs = [JobSpec("read", (Stage("nic:m0", 1e-4),))] * 100
    fault = FaultEvent(time_s=2e-3, kind=FaultKind.STALL, node_id="m0",
                       duration_s=5e-3)
    res = _run(jobs, concurrency=2, faults=[fault])
    clean = _run(jobs, concurrency=2)
    assert res.makespan_s >= clean.makespan_s + 4e-3
    # stall windows close by duration (no heal event), per the timeline table
    assert not any(ev["kind"] == "fault_heal" for ev in res.events)
    assert fault_windows(res.events, run_end_s=res.makespan_s)


def test_crash_fault_heals_after_repair_delay():
    jobs = [JobSpec("read", (Stage("nic:m0", 1e-4),))] * 50
    fault = FaultEvent(time_s=1e-3, kind=FaultKind.CRASH, node_id="m0")
    res = _run(jobs, concurrency=2, repair_delay_s=2e-3, faults=[fault])
    heal = [ev for ev in res.events if ev["kind"] == "fault_heal"]
    assert len(heal) == 1
    assert heal[0]["t_s"] == pytest.approx(3e-3)


# ------------------------------------------------------------ engine: output


def test_trace_jobs_capture_span_taxonomy():
    jobs = [_cpu_job()] * 20
    res = _run(jobs, concurrency=8, trace_jobs=3)
    assert len(res.spans) == 3
    root = res.spans[0]
    names = [c.name for c in root.children]
    assert "serve:proxy_cpu" in names
    assert "serve:delay" in names
    assert root.duration_s == pytest.approx(
        res.samples[0][1], rel=1e-12
    )


def test_result_dict_is_deterministic():
    jobs = _update_jobs(80) + [_cpu_job()] * 40
    docs = []
    for _ in range(2):
        res = _run(jobs, profile=_tight_log_profile(), concurrency=16)
        docs.append(json.dumps(res.to_dict(include_events=True), sort_keys=True))
    assert docs[0] == docs[1]


def test_empty_job_stream():
    res = _run([], concurrency=4)
    assert res.jobs_completed == 0
    assert res.makespan_s == 0.0
    assert res.throughput_ops_s == 0.0
    assert res.overall == {"count": 0}


# ------------------------------------------------------------------ load curve


@pytest.fixture(scope="module")
def small_load_doc():
    return run_load(n_objects=150, n_requests=150, seed=11,
                    concurrencies=(1, 8, 32), expected_faults=2.0)


def test_load_curve_shows_saturation_knee(small_load_doc):
    knee = small_load_doc["knee"]
    assert knee["c_lo"] == 1 and knee["c_hi"] == 32
    assert knee["throughput_hi_ops_s"] > knee["throughput_lo_ops_s"]
    assert knee["p99_amplification"] > 1.0
    assert 0 < knee["hi_over_peak"] <= 1.0


def test_load_curve_chaos_attribution(small_load_doc):
    chaos = small_load_doc["curve"][-1]["chaos"]
    assert chaos["faults"] > 0
    assert chaos["attribution"]  # per-window rows from analysis.timeline
    assert chaos["in_window"]["count"] + chaos["out_window"]["count"] == 150
    for row in chaos["attribution"]:
        assert {"kind", "node", "ops_in_window"} <= set(row)


def test_load_json_byte_identical_across_runs(small_load_doc):
    again = run_load(n_objects=150, n_requests=150, seed=11,
                     concurrencies=(1, 8, 32), expected_faults=2.0)
    assert load_json(again) == load_json(small_load_doc)


def test_render_load_summarises(small_load_doc):
    text = render_load(small_load_doc)
    assert "hottest station" in text
    assert "knee:" in text
    assert "chaos:" in text


def test_knee_summary_empty_curve():
    assert knee_summary([]) == {}
