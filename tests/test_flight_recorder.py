"""Tests for the flight recorder: the event journal, per-layer emissions,
byte-determinism of the JSONL/Prometheus exports, fault-window timeline
attribution, and the ``inspect`` CLI subcommand."""

import json
import math

import pytest

from repro.analysis.timeline import attribute_latency, event_timeline, fault_windows
from repro.baselines import make_store
from repro.bench.runner import load_store, run_requests
from repro.chaos import run_chaos
from repro.cli import main
from repro.core.config import StoreConfig
from repro.core.repair import repair_node
from repro.obs import EVENT_KINDS, EventJournal, NULL_JOURNAL, prometheus_text
from repro.sim.clock import SimClock
from repro.sim.resources import Counters
from repro.workloads import WorkloadSpec, generate_requests


def _spec(n_objects=120, n_requests=160, seed=7):
    return WorkloadSpec(
        n_objects=n_objects, n_requests=n_requests, value_size=512, seed=seed,
        read_ratio=0.5, update_ratio=0.5,
    )


def _store(**cfg):
    cfg.setdefault("payload_scale", 1 / 16)
    return make_store("logecmem", StoreConfig(k=4, r=3, value_size=512, **cfg))


# -------------------------------------------------------------- journal core


def test_emit_stamps_clock_and_counts():
    clock = SimClock()
    counters = Counters()
    journal = EventJournal(clock, counters)
    clock.advance(1.5)
    ev = journal.emit("gc_pass", stripes_collected=3)
    assert ev.t_s == 1.5
    assert ev.attrs["stripes_collected"] == 3
    assert journal.counts["gc_pass"] == 1
    assert counters.get("events_gc_pass") == 1


def test_emit_rejects_unknown_kind():
    journal = EventJournal(SimClock())
    with pytest.raises(ValueError):
        journal.emit("not_a_kind")  # simlint: disable=SIM004


def test_ring_bounded_counts_survive_eviction():
    journal = EventJournal(SimClock(), capacity=4)
    for _ in range(10):
        journal.emit("retry")
    assert len(journal.events()) == 4
    assert journal.dropped == 6
    assert journal.counts["retry"] == 10  # totals outlive the ring


def test_attrs_may_carry_their_own_kind_key():
    # fault events have a fault `kind` attr distinct from the event kind
    journal = EventJournal(SimClock())
    ev = journal.emit("fault_inject", kind="blip", node="log0")
    assert ev.kind == "fault_inject"
    assert ev.attrs["kind"] == "blip"


def test_null_journal_records_nothing():
    NULL_JOURNAL.emit("retry", op="read")
    assert NULL_JOURNAL.events() == []
    assert NULL_JOURNAL.counts == {}


def test_jsonl_lines_parse_and_kinds_are_valid():
    store = _store()
    spec = _spec()
    load_store(store, spec)
    run_requests(store, generate_requests(spec), spec)
    text = store.cluster.journal.to_jsonl()
    lines = text.splitlines()
    assert lines, "a workload run must journal events"
    for line in lines:
        doc = json.loads(line)
        assert doc["kind"] in EVENT_KINDS
        assert set(doc) == {"t_s", "kind", "attrs"}


# -------------------------------------------------------- per-layer emission


def test_log_flush_and_lazy_merge_journaled_for_plm():
    store = _store(scheme="plm")
    spec = _spec()
    load_store(store, spec)
    run_requests(store, generate_requests(spec), spec)
    journal = store.cluster.journal
    flushes = journal.of_kind("log_flush")
    assert flushes and all(e.attrs["scheme"] == "plm" for e in flushes)
    assert sum(e.attrs["records"] for e in flushes) == store.cluster.counters.get(
        "log_flush_records"
    )
    assert journal.counts.get("lazy_merge", 0) == store.cluster.counters.get(
        "log_lazy_merges"
    )


def test_buffer_merge_journaled_when_merging_enabled():
    store = _store(scheme="pl", merge_buffer=True)
    spec = _spec()
    load_store(store, spec)
    # hammer one key: repeated deltas for the same (stripe, parity) coalesce
    key = "user" + "0" * 15 + "0"
    for _ in range(6):
        store.update(key)
    journal = store.cluster.journal
    merges = journal.of_kind("buffer_merge")
    assert merges, "duplicate (stripe, parity) appends must journal merges"
    assert store.cluster.counters.get("log_buffer_merges") == len(merges)


def test_repair_events_bracket_the_repair():
    store = _store()
    spec = _spec()
    load_store(store, spec)
    store.finalize()
    victim = "dram1"
    store.cluster.dram_nodes[victim].fail(store.cluster.clock.now)
    result = repair_node(store, victim)
    journal = store.cluster.journal
    (start,) = journal.of_kind("repair_start")
    (done,) = journal.of_kind("repair_done")
    assert start.attrs["node"] == done.attrs["node"] == victim
    assert done.attrs["repair_time_s"] == pytest.approx(result.repair_time_s)
    assert done.t_s >= start.t_s


def test_chaos_run_journals_faults_and_attribution():
    report = run_chaos(_store(), _spec(seed=11), expected_faults=4.0)
    kinds = {e["kind"] for e in report.events}
    assert "fault_inject" in kinds
    injected = [e for e in report.events if e["kind"] == "fault_inject"]
    assert len(injected) == sum(report.faults_fired.values())
    windows = fault_windows(report.events)
    assert len(windows) == len(injected)
    for row in report.fault_attribution:
        assert row["ops_in_window"] >= 0
        assert row["kind"] in ("crash", "blip", "slow", "partition", "stall")


# ------------------------------------------------------------- determinism


def test_same_seed_runs_byte_identical_journal_and_exporter():
    def one():
        store = _store(scheme="plm")
        spec = _spec()
        load_store(store, spec)
        run_requests(store, generate_requests(spec), spec)
        return (
            store.cluster.journal.to_jsonl(),
            prometheus_text(store.metrics, store.cluster.journal),
        )

    assert one() == one()


def test_same_seed_chaos_byte_identical_journal():
    a = run_chaos(_store(), _spec(seed=5), expected_faults=3.0)
    b = run_chaos(_store(), _spec(seed=5), expected_faults=3.0)
    assert json.dumps(a.events, sort_keys=True) == json.dumps(b.events, sort_keys=True)
    assert a.fault_attribution == b.fault_attribution


def test_prometheus_families_present():
    store = _store()
    spec = _spec()
    load_store(store, spec)
    run_requests(store, generate_requests(spec), spec)
    text = prometheus_text(store.metrics, store.cluster.journal)
    assert text.endswith("\n")
    assert "# TYPE repro_counter_total counter" in text
    assert "# TYPE repro_events_total counter" in text
    assert "# TYPE repro_op_latency_seconds summary" in text
    assert 'repro_op_latency_seconds{op="read"' in text


# ----------------------------------------------------------------- timeline


def _ev(t_s, kind, /, **attrs):
    return {"t_s": t_s, "kind": kind, "attrs": attrs}


def test_fault_windows_pair_with_closers():
    events = [
        _ev(1.0, "fault_inject", kind="crash", node="dram0", duration_s=0.0),
        _ev(1.2, "fault_inject", kind="blip", node="log1", duration_s=0.5),
        _ev(1.5, "repair_done", node="dram0", repair_time_s=0.5),
        _ev(1.7, "fault_heal", kind="blip", node="log1"),
    ]
    w = fault_windows(events)
    assert [(x.kind, x.node_id, x.start_s, x.end_s) for x in w] == [
        ("crash", "dram0", 1.0, 1.5),
        ("blip", "log1", 1.2, 1.7),
    ]


def test_stall_window_closes_by_duration_and_unhealed_stays_open():
    events = [
        _ev(2.0, "fault_inject", kind="stall", node="log0", duration_s=0.25),
        _ev(3.0, "fault_inject", kind="crash", node="dram1", duration_s=0.0),
    ]
    stall, crash = fault_windows(events)
    assert stall.end_s == 2.25 and stall.closed
    assert not crash.closed
    assert crash.contains(99.0)
    assert crash.to_dict()["end_s"] is None


def test_open_fault_window_clamps_to_run_end():
    """Regression: an unhealed fault used to stay open at inf (or fall out of
    MTTR entirely); with a horizon it clamps to run end and stays counted."""
    from repro.analysis import mttr_s

    events = [_ev(1.0, "fault_inject", kind="crash", node="dram0", duration_s=0.0)]
    (w,) = fault_windows(events, run_end_s=3.5)
    assert not w.healed and w.closed
    assert w.end_s == 3.5 and w.duration_s == 2.5
    assert w.to_dict() == {
        "kind": "crash", "node": "dram0", "start_s": 1.0,
        "end_s": 3.5, "healed": False,
    }
    assert mttr_s([w]) == 2.5
    # without a horizon the window stays open at inf -- never dropped
    (w2,) = fault_windows(events)
    assert not w2.healed and not w2.closed
    assert mttr_s([w2]) == math.inf
    # a horizon before the fault start clamps to zero, never negative
    (w3,) = fault_windows(events, run_end_s=0.5)
    assert w3.duration_s == 0.0
    # healed windows are untouched by the horizon, and MTTR averages them
    closed = fault_windows(
        events + [_ev(2.0, "repair_done", node="dram0", repair_time_s=1.0)],
        run_end_s=3.5,
    )
    assert closed[0].healed and closed[0].end_s == 2.0
    assert mttr_s([]) == 0.0


def test_attribute_latency_shift():
    windows = fault_windows(
        [_ev(1.0, "fault_inject", kind="stall", node="log0", duration_s=1.0)]
    )
    samples = [(0.5, 100e-6, "read"), (1.5, 400e-6, "read"), (2.5, 100e-6, "read")]
    (row,) = attribute_latency(windows, samples)
    assert row["ops_in_window"] == 1
    assert row["mean_in_us"] == pytest.approx(400.0)
    assert row["mean_baseline_us"] == pytest.approx(100.0)
    assert row["shift_pct"] == pytest.approx(300.0)


def test_event_timeline_sparklines():
    events = [_ev(float(i), "retry", op="read") for i in range(10)]
    out = event_timeline(events, width=20)
    assert "retry" in out


# ---------------------------------------------------------------- CLI smoke


def _run(argv):
    lines: list[str] = []
    rc = main(argv, out=lambda text: lines.append(str(text)))
    return rc, "\n".join(lines)


def test_inspect_command(tmp_path):
    out_path = tmp_path / "journal.jsonl"
    rc, out = _run(["inspect", "--objects", "120", "--requests", "160",
                    "--tail", "3", "--journal-out", str(out_path)])
    assert rc == 0
    assert "node" in out and "log_flush" in out
    dumped = out_path.read_text().splitlines()
    assert dumped and all(json.loads(line)["kind"] in EVENT_KINDS for line in dumped)


def test_inspect_chaos_command():
    rc, out = _run(["inspect", "--objects", "120", "--requests", "160",
                    "--chaos", "--tail", "2", "--timeline"])
    assert rc == 0
    assert "faults" in out


def test_inspect_prometheus_flag():
    rc, out = _run(["inspect", "--objects", "100", "--requests", "100",
                    "--prometheus"])
    assert rc == 0
    assert "repro_counter_total" in out
