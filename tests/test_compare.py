"""Tests for the perf regression gate (bench/compare)."""

import copy
import json

from repro.bench.compare import compare_profiles, main, render_verdict


def _profile():
    return {
        "meta": {"objects": 600, "requests": 600, "seed": 42},
        "experiments": {
            "exp1": {
                "logecmem": {
                    "ops": {
                        "update": {
                            "count": 300,
                            "mean_us": 450.0,
                            "p50_us": 420.0,
                            "p99_us": 900.0,
                        }
                    },
                    "phases": {"update": {"encode": 12.5, "network": 300.0}},
                    "counters": {"parity_deltas_sent": 600, "rpc_messages": 1800.0},
                    "spans_digest": "abc123",
                }
            },
            "exp6": {"logecmem": {"repair_time_s": 1.25}},
        },
    }


def test_identical_profiles_pass():
    verdict = compare_profiles(_profile(), _profile())
    assert verdict["status"] == "pass"
    assert verdict["compared"] > 0
    assert verdict["regressions"] == [] and verdict["improvements"] == []
    assert "PASS" in render_verdict(verdict)


def test_float_regression_beyond_threshold_fails():
    cand = _profile()
    cand["experiments"]["exp1"]["logecmem"]["ops"]["update"]["p99_us"] = 900.0 * 1.5
    verdict = compare_profiles(_profile(), cand)
    assert verdict["status"] == "fail"
    (reg,) = verdict["regressions"]
    assert reg["path"].endswith("p99_us")
    assert "worse by 50.00%" in reg["reason"]


def test_float_drift_within_threshold_passes():
    cand = _profile()
    cand["experiments"]["exp1"]["logecmem"]["ops"]["update"]["p99_us"] = 900.0 * 1.05
    assert compare_profiles(_profile(), cand)["status"] == "pass"


def test_improvement_recorded_not_failed():
    cand = _profile()
    cand["experiments"]["exp1"]["logecmem"]["ops"]["update"]["mean_us"] = 450.0 * 0.5
    verdict = compare_profiles(_profile(), cand)
    assert verdict["status"] == "pass"
    (imp,) = verdict["improvements"]
    assert imp["path"].endswith("mean_us")


def test_integer_drift_fails_exactly():
    cand = _profile()
    cand["experiments"]["exp1"]["logecmem"]["counters"]["parity_deltas_sent"] = 601
    verdict = compare_profiles(_profile(), cand)
    assert verdict["status"] == "fail"
    assert "exactly" in verdict["regressions"][0]["reason"]


def test_meta_mismatch_fails_outright():
    cand = _profile()
    cand["meta"]["seed"] = 43
    verdict = compare_profiles(_profile(), cand)
    assert verdict["status"] == "fail"
    assert verdict["compared"] == 0
    assert "not comparable" in verdict["regressions"][0]["reason"]


def test_appeared_from_zero_is_regression():
    base = _profile()
    base["experiments"]["exp6"]["logecmem"]["repair_time_s"] = 0.0
    verdict = compare_profiles(base, _profile())
    assert verdict["status"] == "fail"
    assert verdict["regressions"][0]["relative"] is None  # infinite drift


def test_string_and_missing_leaves_become_notes():
    cand = _profile()
    cand["experiments"]["exp1"]["logecmem"]["spans_digest"] = "def456"
    cand["experiments"]["exp1"]["logecmem"]["counters"]["new_counter"] = 1
    del cand["experiments"]["exp6"]
    verdict = compare_profiles(_profile(), cand)
    assert verdict["status"] == "pass"
    notes = "\n".join(verdict["notes"])
    assert "span tree changed" in notes
    assert "new in candidate" in notes
    assert "only in baseline" in notes


def test_experiment_filter_restricts_comparison():
    cand = _profile()
    cand["experiments"]["exp6"]["logecmem"]["repair_time_s"] = 99.0
    assert compare_profiles(_profile(), cand)["status"] == "fail"
    assert compare_profiles(_profile(), cand, experiments=["exp1"])["status"] == "pass"


def test_threshold_override():
    cand = _profile()
    cand["experiments"]["exp1"]["logecmem"]["ops"]["update"]["p99_us"] = 900.0 * 1.5
    verdict = compare_profiles(_profile(), cand, thresholds={"p99_us": 0.6})
    assert verdict["status"] == "pass"


def test_verdict_is_deterministic():
    cand = _profile()
    cand["experiments"]["exp1"]["logecmem"]["ops"]["update"]["p99_us"] = 1400.0
    cand["experiments"]["exp1"]["logecmem"]["ops"]["update"]["mean_us"] = 100.0
    a = compare_profiles(_profile(), cand)
    b = compare_profiles(_profile(), copy.deepcopy(cand))
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


def test_main_exit_codes_and_verdict_file(tmp_path, capsys):
    base_path = tmp_path / "base.json"
    cand_path = tmp_path / "cand.json"
    out_path = tmp_path / "verdict.json"
    base_path.write_text(json.dumps(_profile()))
    cand = _profile()
    cand_path.write_text(json.dumps(cand))
    assert main([str(base_path), str(cand_path), "--out", str(out_path)]) == 0
    assert json.loads(out_path.read_text())["status"] == "pass"

    cand["experiments"]["exp1"]["logecmem"]["ops"]["update"]["p99_us"] = 9000.0
    cand_path.write_text(json.dumps(cand))
    assert main([str(base_path), str(cand_path)]) == 1
    assert main([str(base_path), str(cand_path), "--threshold", "p99_us=20"]) == 0
    capsys.readouterr()
