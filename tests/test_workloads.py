"""Tests for the Zipfian generators and YCSB-style workload specs."""

import numpy as np
import pytest

from repro.workloads import (
    Operation,
    ScrambledZipfian,
    WorkloadSpec,
    ZipfianGenerator,
    generate_requests,
    load_keys,
)
from repro.workloads.ycsb import object_key, update_trace
from repro.workloads.zipf import fnv1a_64, zeta


# ---------------------------------------------------------------------- zipf


def test_zeta_small_values():
    assert zeta(1, 0.99) == pytest.approx(1.0)
    assert zeta(2, 0.5) == pytest.approx(1 + 1 / 2**0.5)
    assert zeta(0, 0.99) == 0.0


def test_zipfian_range_and_skew():
    gen = ZipfianGenerator(1000, seed=1)
    draws = gen.sample(20_000)
    assert draws.min() >= 0
    assert draws.max() < 1000
    # rank 0 must dominate: with theta=0.99 it gets ~13% of the mass
    share0 = np.mean(draws == 0)
    assert share0 > 0.08
    # and the tail is long: at least 100 distinct items appear
    assert len(np.unique(draws)) > 100


def test_zipfian_next_matches_sample_distribution():
    gen_a = ZipfianGenerator(100, seed=7)
    gen_b = ZipfianGenerator(100, seed=7)
    singles = np.array([gen_a.next() for _ in range(2000)])
    batch = gen_b.sample(2000)
    # same RNG stream, same transformation -> identical draws
    assert np.array_equal(singles, batch)


def test_zipfian_validation():
    with pytest.raises(ValueError):
        ZipfianGenerator(0)
    with pytest.raises(ValueError):
        ZipfianGenerator(10, theta=1.5)


def test_fnv_hash_deterministic_and_spreading():
    assert fnv1a_64(12345) == fnv1a_64(12345)
    hashes = {fnv1a_64(i) % 1000 for i in range(100)}
    assert len(hashes) > 90  # near-injective over small ranges


def test_scrambled_zipfian_spreads_hot_keys():
    plain = ZipfianGenerator(1000, seed=3).sample(5000)
    scrambled = ScrambledZipfian(1000, seed=3).sample(5000)
    # same skew (top item share), different identity of the hot key
    top_plain = np.bincount(plain).argmax()
    top_scrambled = np.bincount(scrambled, minlength=1000).argmax()
    assert top_plain == 0
    assert top_scrambled != 0
    assert scrambled.min() >= 0 and scrambled.max() < 1000


def test_scrambled_deterministic_per_seed():
    a = ScrambledZipfian(500, seed=9).sample(100)
    b = ScrambledZipfian(500, seed=9).sample(100)
    c = ScrambledZipfian(500, seed=10).sample(100)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)


# ---------------------------------------------------------------------- ycsb


def test_spec_ratio_parsers():
    ru = WorkloadSpec.read_update("80:20")
    assert ru.read_ratio == 0.8 and ru.update_ratio == 0.2 and ru.write_ratio == 0.0
    rw = WorkloadSpec.read_write("95:5")
    assert rw.read_ratio == 0.95 and rw.write_ratio == 0.05 and rw.update_ratio == 0.0


def test_spec_validates_ratios():
    with pytest.raises(ValueError):
        WorkloadSpec(read_ratio=0.5, update_ratio=0.2, write_ratio=0.2)
    with pytest.raises(ValueError):
        WorkloadSpec(n_objects=0)


def test_load_keys_fifo_order():
    spec = WorkloadSpec(n_objects=10)
    keys = load_keys(spec)
    assert keys[0] == object_key(0)
    assert keys == sorted(keys)
    assert len(set(keys)) == 10
    assert all(len(k) == 20 for k in keys)  # ~20-byte keys as in the paper


def test_generate_requests_respects_mix():
    spec = WorkloadSpec(
        n_objects=1000, n_requests=5000, read_ratio=0.7, update_ratio=0.3, seed=5
    )
    reqs = generate_requests(spec)
    assert len(reqs) == 5000
    ops = [r.op for r in reqs]
    read_share = ops.count(Operation.READ) / len(ops)
    assert 0.67 < read_share < 0.73
    assert Operation.WRITE not in ops


def test_generate_requests_writes_insert_fresh_keys():
    spec = WorkloadSpec(
        n_objects=100, n_requests=200, read_ratio=0.5, update_ratio=0.0,
        write_ratio=0.5, seed=6,
    )
    reqs = generate_requests(spec)
    loaded = set(load_keys(spec))
    for r in reqs:
        if r.op is Operation.WRITE:
            assert r.key not in loaded
        else:
            assert r.key in loaded
    write_keys = [r.key for r in reqs if r.op is Operation.WRITE]
    assert len(set(write_keys)) == len(write_keys)  # inserts never collide


def test_generate_requests_deterministic():
    spec = WorkloadSpec(n_objects=100, n_requests=100, seed=11)
    assert generate_requests(spec) == generate_requests(spec)


def test_update_trace_matches_request_stream():
    spec = WorkloadSpec(n_objects=500, n_requests=2000, read_ratio=0.5,
                        update_ratio=0.5, seed=13)
    trace = update_trace(spec)
    reqs = generate_requests(spec)
    from_reqs = [int(r.key[4:]) for r in reqs if r.op is Operation.UPDATE]
    assert list(trace) == from_reqs


def test_update_trace_zipf_skew():
    spec = WorkloadSpec(n_objects=10_000, n_requests=20_000, read_ratio=0.5,
                        update_ratio=0.5, seed=17)
    trace = update_trace(spec)
    counts = np.bincount(trace, minlength=spec.n_objects)
    # heavy skew: the hottest object gets far more than uniform share
    assert counts.max() > 20 * trace.size / spec.n_objects
