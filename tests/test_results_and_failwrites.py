"""Tests for result persistence, workload distributions, and writes under
node failures."""

import numpy as np
import pytest

from repro.bench import results
from repro.core.config import StoreConfig
from repro.core.logecmem import LogECMem
from repro.core.scrub import scrub
from repro.workloads import (
    HotspotGenerator,
    UniformGenerator,
    WorkloadSpec,
    generate_requests,
)


# ------------------------------------------------------------------- results


def _rows():
    return [
        {"store": "logecmem", "k": 6, "update_latency_us": 469.4, "assisted": True},
        {"store": "ipmem", "k": 6, "update_latency_us": 668.0, "assisted": False},
    ]


def test_json_roundtrip(tmp_path):
    path = results.save(_rows(), tmp_path / "run.json", meta={"seed": 42})
    assert results.load(path) == _rows()
    rows, meta = results.from_json(path.read_text())
    assert meta == {"seed": 42}


def test_csv_roundtrip(tmp_path):
    path = results.save(_rows(), tmp_path / "run.csv")
    back = results.load(path)
    assert back == _rows()  # ints/floats/bools restored


def test_csv_union_of_keys():
    rows = [{"a": 1}, {"a": 2, "b": "x"}]
    text = results.to_csv(rows)
    assert text.splitlines()[0] == "a,b"
    assert results.from_csv(text)[0]["b"] is None  # missing cell, not ""


def test_csv_mixed_type_roundtrip():
    rows = [
        {
            "s": "plain",
            "b_true": True,
            "b_false": False,
            "none": None,
            "i": -3,
            "f": 2.5,
            "empty": "",
            "numlike": "42",
            "floatlike": "6.02e23",
            "boolword": "True",
            "quoted": '"already"',
        }
    ]
    assert results.from_csv(results.to_csv(rows)) == rows


def test_csv_legacy_booleans_decode():
    # files written before the lowercase convention used repr(bool)
    assert results.from_csv("ok\nTrue\n") == [{"ok": True}]
    assert results.from_csv("ok\nFalse\n") == [{"ok": False}]


def test_empty_csv():
    assert results.to_csv([]) == ""
    assert results.from_csv("") == []


def test_bad_suffix_rejected(tmp_path):
    with pytest.raises(ValueError):
        results.save(_rows(), tmp_path / "run.txt")
    with pytest.raises(ValueError):
        results.load(tmp_path / "run.txt")


def test_from_json_validates():
    with pytest.raises(ValueError):
        results.from_json("[1, 2, 3]")


# ------------------------------------------------------------- distributions


def test_uniform_generator_flat():
    draws = UniformGenerator(1000, seed=1).sample(20_000)
    counts = np.bincount(draws, minlength=1000)
    assert counts.max() < 3 * counts.mean()


def test_hotspot_generator_skew():
    gen = HotspotGenerator(1000, hot_set_fraction=0.1, hot_op_fraction=0.9, seed=2)
    draws = gen.sample(20_000)
    hot_share = np.mean(draws < 100)
    assert 0.85 < hot_share < 0.95


def test_hotspot_validation():
    with pytest.raises(ValueError):
        HotspotGenerator(0)
    with pytest.raises(ValueError):
        HotspotGenerator(10, hot_set_fraction=1.5)


def test_spec_distribution_plumbs_through():
    for dist in ("uniform", "hotspot", "zipfian"):
        spec = WorkloadSpec(
            n_objects=200, n_requests=400, read_ratio=0.5, update_ratio=0.5,
            distribution=dist, seed=3,
        )
        reqs = generate_requests(spec)
        assert len(reqs) == 400
    with pytest.raises(ValueError):
        WorkloadSpec(read_ratio=1.0, update_ratio=0.0, distribution="bogus")


def test_uniform_spreads_updates_over_stripes():
    z = WorkloadSpec(n_objects=5000, n_requests=5000, read_ratio=0.5,
                     update_ratio=0.5, seed=4)
    u = WorkloadSpec(n_objects=5000, n_requests=5000, read_ratio=0.5,
                     update_ratio=0.5, distribution="uniform", seed=4)
    from repro.workloads.ycsb import update_trace

    z_updates = update_trace(z)
    u_updates = update_trace(u)
    assert len(np.unique(u_updates)) > len(np.unique(z_updates))


# --------------------------------------------------------- writes under fail


def _loaded(n=16):
    store = LogECMem(StoreConfig(k=4, r=3, payload_scale=1 / 16))
    for i in range(n):
        store.write(f"user{i}")
    return store


def test_writes_buffer_while_placement_impossible():
    """k+1 DRAM nodes with one dead cannot place a new stripe: writes keep
    succeeding, objects wait in the (replicated) proxy buffers."""
    store = _loaded()
    sealed_before = len(store.stripe_index)
    store.cluster.kill("dram0")
    for i in range(16, 56):
        store.write(f"user{i}")
    assert len(store.stripe_index) == sealed_before  # nothing placeable sealed
    assert len(store._pending) >= 40
    assert scrub(store).clean


def test_reads_of_new_writes_during_failure():
    store = _loaded()
    store.cluster.kill("dram1")
    for i in range(16, 40):
        store.write(f"user{i}")
    for i in range(16, 40):
        key = f"user{i}"
        assert np.array_equal(store.read(key).value, store.expected_value(key))


def test_sealing_resumes_after_restore():
    store = _loaded(n=4)
    store.cluster.kill("dram2")
    before = len(store.stripe_index)
    for i in range(4, 24):
        store.write(f"user{i}")
    during = len(store.stripe_index)
    store.cluster.restore("dram2")
    for i in range(24, 40):
        store.write(f"user{i}")
    assert len(store.stripe_index) > during >= before
    assert scrub(store).clean


def test_all_dram_dead_rejects_writes():
    store = _loaded(n=4)
    for nid in store.cluster.dram_ids():
        store.cluster.kill(nid)
    with pytest.raises(RuntimeError):
        store.write("newkey")


def test_log_node_failure_blocks_new_stripes_gracefully():
    store = _loaded()
    sealed_before = len(store.stripe_index)
    for nid in store.cluster.log_ids():
        store.cluster.kill(nid)
    for i in range(16, 40):
        store.write(f"user{i}")  # must not raise
    assert len(store.stripe_index) == sealed_before
    store.cluster.restore("log0")
    for i in range(40, 60):
        store.write(f"user{i}")
    assert len(store.stripe_index) > sealed_before  # sealing resumed