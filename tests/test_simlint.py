"""simlint rule engine: per-rule fixtures, suppression/allowlist paths,
baseline round-trip, id stability, and the meta-test that the repo's own
tree is clean (which is what lets CI gate on the linter at all)."""

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.devtools.simlint import (
    Finding,
    LintConfig,
    Registry,
    lint_paths,
    load_baseline,
    load_registry,
    run_rules,
    stale_baseline_ids,
    write_baseline,
)
from repro.devtools.simlint.engine import lint_file
from repro.devtools.simlint.findings import assign_ids
from repro.obs.events import EVENT_KINDS
from repro.sim.resources import COUNTER_NAMES, COUNTER_PREFIXES

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURE = REPO_ROOT / "tests" / "testdata" / "simlint" / "all_rules.py"

REGISTRY = Registry(
    event_kinds=frozenset({"log_flush", "repair_done"}),
    counter_names=frozenset({"net_rpcs"}),
    counter_prefixes=("events_",),
    incident_kinds=frozenset({"node_crash", "disk_stall"}),
    action_kinds=frozenset({"repair_node", "observe"}),
    station_names=frozenset({"delay", "proxy_cpu"}),
    station_prefixes=("disk:", "nic:"),
)


def lint_source(source, relpath="mod.py", **config_kw):
    config = LintConfig(root=Path("."), **config_kw)
    return run_rules(relpath, textwrap.dedent(source), config, REGISTRY)


def rules_of(findings):
    return [f.rule for f in findings]


# ------------------------------------------------------------ rule positives


def test_sim001_wall_clock_variants():
    src = """\
        import time
        from time import perf_counter
        from datetime import datetime

        def f():
            a = time.time()
            b = perf_counter()
            c = datetime.now()
            return a, b, c
        """
    assert rules_of(lint_source(src)) == ["SIM001", "SIM001", "SIM001"]


def test_sim001_allowlisted_file_is_exempt():
    src = "import time\n\ndef f():\n    return time.time()\n"
    assert lint_source(src, relpath="bench/host_timer.py",
                       wallclock_allow=("bench/*.py",)) == []


def test_sim001_ignores_unrelated_time_attribute():
    # a local object named ``time`` is not the stdlib module
    src = "def f(time):\n    return time.time()\n"
    assert lint_source(src) == []


def test_sim002_global_random_flagged_seeded_generator_allowed():
    src = """\
        import random
        import numpy as np

        def bad():
            return random.random() + np.random.rand()

        def good(seed):
            rng = np.random.default_rng(seed)
            r = random.Random(seed)
            return rng.random() + r.random()
        """
    assert rules_of(lint_source(src)) == ["SIM002", "SIM002"]


def test_sim002_from_import_and_seed_call():
    src = """\
        from random import shuffle
        import numpy.random

        def f(xs):
            numpy.random.seed(0)
            shuffle(xs)
        """
    assert rules_of(lint_source(src)) == ["SIM002", "SIM002"]


def test_sim003_iteration_pop_and_aggregation():
    src = """\
        def f(xs):
            out = [x for x in set(xs)]
            for x in {1, 2}:
                out.append(x)
            victims = set(xs)
            victims.pop()
            return min(set(xs)), out
        """
    assert rules_of(lint_source(src)) == ["SIM003"] * 4


def test_sim003_sorted_set_is_the_sanctioned_form():
    src = """\
        def f(xs):
            for x in sorted(set(xs)):
                pass
            return sum(sorted(set(xs))) + max(xs) + (3 in set(xs))
        """
    assert lint_source(src) == []


def test_sim003_pop_on_reassigned_name_not_flagged():
    src = """\
        def f(xs):
            victims = set(xs)
            victims = list(xs)
            victims.pop()
        """
    assert lint_source(src) == []


def test_sim004_event_and_counter_literals():
    src = """\
        def f(self):
            self.journal.emit("log_flush", node="n1")      # declared
            self.journal.emit("made_up_kind")              # not declared
            self.counters.add("net_rpcs")                  # declared
            self.counters.add("events_repair_done")        # prefix family
            self.counters.add("made_up_counter", 2)        # not declared
            self.counters.add(dynamic_name)                # non-literal: skipped
        """
    assert rules_of(lint_source(src)) == ["SIM004", "SIM004"]


def test_sim004_skipped_without_registry():
    empty = Registry()
    config = LintConfig(root=Path("."))
    src = 'def f(j):\n    j.journal.emit("anything")\n'
    assert run_rules("m.py", src, config, empty) == []


def test_sim005_clock_mutation_and_negative_advance():
    src = """\
        def f(store):
            store.clock.now = 5.0
            store.cluster.clock.now += 1.0
            store.clock.advance(-2.0)
            store.clock.advance(2.0)
            store.clock.advance_to(9.0)
        """
    assert rules_of(lint_source(src)) == ["SIM005"] * 3


def test_sim005_clock_module_itself_is_exempt():
    src = "class SimClock:\n    def reset(clock):\n        clock.now = 0.0\n"
    assert lint_source(src, relpath="src/repro/sim/clock.py") == []


def test_sim006_defaults_and_field_default():
    src = """\
        from dataclasses import dataclass, field

        def f(a=[], b={}, *, c=set(), d=None):
            return a, b, c, d

        @dataclass
        class R:
            tags: list = field(default=[])
            safe: list = field(default_factory=list)
        """
    assert rules_of(lint_source(src)) == ["SIM006"] * 4


def test_sim007_accumulation_over_known_set_var():
    src = """\
        def f(xs):
            weights = set(xs)
            total = 0.0
            for w in weights:
                total += w
            return total + sum(v for v in weights) + sum(weights)
        """
    assert rules_of(lint_source(src)) == ["SIM007"] * 3


def test_sim007_ordered_or_unproven_iterables_are_clean():
    src = """\
        def f(xs, mystery):
            weights = sorted(set(xs))
            total = 0.0
            for w in weights:
                total += w
            for m in mystery:        # type unknown: never guessed
                total += m
            return total + sum(weights)
        """
    assert lint_source(src) == []


def test_sim007_nested_set_loops_report_each_accumulation_once():
    src = """\
        def f(xs, ys):
            a = set(xs)
            b = set(ys)
            total = 0.0
            for x in a:
                for y in b:
                    total += x * y
        """
    assert rules_of(lint_source(src)) == ["SIM007"]


def test_sim008_constructor_literals_checked_against_taxonomies():
    src = """\
        def f(Incident, Action, Station, Stage):
            Incident(kind="node_crash", node_id="n0")     # declared
            Incident(kind="gremlin", node_id="n0")        # not declared
            Action("observe", node_id="n0")               # declared
            Action("reboot_universe", node_id="n0")       # not declared
            Station("proxy_cpu")                          # declared
            Station(name="warp_core")                     # not declared
            Stage("disk:l0", 1e-4)                        # prefix family
            Stage("teleporter", 1e-4)                     # not declared
            Stage(kind_var, 1e-4)                         # non-literal: skipped
        """
    assert rules_of(lint_source(src)) == ["SIM008"] * 4


def test_sim008_skipped_without_registry():
    config = LintConfig(root=Path("."))
    src = 'def f(Incident):\n    Incident(kind="anything")\n'
    assert run_rules("m.py", src, config, Registry()) == []


def test_sim009_scheduled_lambda_capturing_loop_var():
    src = """\
        def f(queue, events):
            for ev in events:
                queue.schedule(0.1, lambda t: ev.fire(t))
            for a, b in pairs:
                queue.schedule(0.2, callback=lambda t: handle(a, b))
        """
    assert rules_of(lint_source(src)) == ["SIM009"] * 2


def test_sim009_default_bound_lambda_is_the_sanctioned_form():
    src = """\
        def f(queue, events, fixed):
            for ev in events:
                queue.schedule(0.1, lambda t, e=ev: e.fire(t))
                queue.schedule(0.1, lambda t: handle(fixed))
            queue.schedule(0.2, lambda t: handle(ev_like))
        """
    assert lint_source(src) == []


# ------------------------------------------------- suppressions and baseline


def test_inline_suppression_and_all(tmp_path):
    mod = tmp_path / "m.py"
    mod.write_text(
        "def f(xs):\n"
        "    for x in set(xs):  # simlint: disable=SIM003\n"
        "        pass\n"
        "    for y in set(xs):  # simlint: disable=all\n"
        "        pass\n"
        "    for z in set(xs):  # simlint: disable=SIM001\n"
        "        pass\n"
    )
    config = LintConfig(root=tmp_path)
    kept, suppressed = lint_file(mod, config, REGISTRY)
    assert suppressed == 2
    assert rules_of(kept) == ["SIM003"] and kept[0].line == 6


def _fixture_tree(tmp_path):
    (tmp_path / "src").mkdir()
    (tmp_path / "src" / "bad.py").write_text(
        "def f(xs):\n    for x in set(xs):\n        pass\n"
    )
    return tmp_path


def test_baseline_round_trip(tmp_path):
    root = _fixture_tree(tmp_path)
    config = LintConfig(root=root)
    result = lint_paths(None, config)
    assert rules_of(result.findings) == ["SIM003"] and result.exit_code == 1

    baseline = root / "simlint-baseline.json"
    write_baseline(baseline, result)
    ids = load_baseline(baseline)
    assert ids == frozenset(f.finding_id for f in result.findings)

    again = lint_paths(None, config, baseline_ids=ids)
    assert again.exit_code == 0
    assert not again.findings and rules_of(again.baselined) == ["SIM003"]


def test_finding_ids_survive_line_drift():
    src = "def f(xs):\n    for x in set(xs):\n        pass\n"
    shifted = "# a new comment line\n\n" + src
    [a] = assign_ids(lint_source(src))
    [b] = assign_ids(lint_source(shifted))
    assert a.line != b.line
    assert a.finding_id == b.finding_id


def test_identical_lines_get_distinct_stable_ids():
    src = "def f(xs):\n    s = set(xs)\n    t = set(xs)\n    s.pop()\n    t.pop()\n"
    found = assign_ids(lint_source(src))
    assert len(found) == 2
    assert len({f.finding_id for f in found}) == 2


def test_registry_extraction_matches_runtime_declarations():
    from repro.engine.stations import STATION_NAMES, STATION_PREFIXES
    from repro.heal.incidents import ACTION_KINDS, INCIDENT_KINDS

    reg = load_registry(
        REPO_ROOT,
        "src/repro/obs/events.py",
        "src/repro/sim/resources.py",
        incidents_module="src/repro/heal/incidents.py",
        stations_module="src/repro/engine/stations.py",
    )
    assert reg.event_kinds == EVENT_KINDS
    assert reg.counter_names == COUNTER_NAMES
    assert reg.counter_prefixes == COUNTER_PREFIXES
    assert reg.incident_kinds == frozenset(INCIDENT_KINDS)
    assert reg.action_kinds == frozenset(ACTION_KINDS)
    assert reg.station_names == STATION_NAMES
    assert reg.station_prefixes == STATION_PREFIXES


def test_registry_missing_optional_modules_disable_their_checks():
    reg = load_registry(
        REPO_ROOT, "src/repro/obs/events.py", "src/repro/sim/resources.py"
    )
    assert reg.incident_kinds is None
    assert reg.action_kinds is None
    assert reg.station_names is None
    assert reg.station_prefixes == ()


# --------------------------------------------------------------- whole tree


def _run_lint_cli(args, hashseed=None, cwd=REPO_ROOT):
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    if hashseed is not None:
        env["PYTHONHASHSEED"] = str(hashseed)
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *args],
        capture_output=True, cwd=cwd, env=env,
    )


def test_meta_repo_tree_is_clean():
    proc = _run_lint_cli([])
    assert proc.returncode == 0, proc.stdout.decode() + proc.stderr.decode()
    assert b"0 finding(s)" in proc.stdout


def test_all_rules_fixture_fails_and_covers_every_rule():
    proc = _run_lint_cli([str(FIXTURE), "--format", "json"])
    assert proc.returncode == 1
    doc = json.loads(proc.stdout)
    fired = {f["rule"] for f in doc["findings"]}
    assert fired == {f"SIM00{i}" for i in range(1, 10)}


@pytest.mark.parametrize("fmt", ["text", "json"])
def test_output_byte_identical_across_runs_and_hash_seeds(fmt):
    outs = {
        _run_lint_cli([str(FIXTURE), "--format", fmt], hashseed=seed).stdout
        for seed in (0, 42, 0)
    }
    assert len(outs) == 1


def test_check_baseline_flags_stale_ids(tmp_path):
    root = _fixture_tree(tmp_path)
    config = LintConfig(root=root)
    result = lint_paths(None, config)
    baseline = root / "simlint-baseline.json"
    write_baseline(baseline, result)

    assert stale_baseline_ids(result, load_baseline(baseline)) == []
    stale = stale_baseline_ids(result, frozenset({"deadbeefdead"}))
    assert stale == ["deadbeefdead"]


def test_cli_check_baseline_passes_clean_and_fails_stale(tmp_path):
    proc = _run_lint_cli(["--check-baseline"])
    assert proc.returncode == 0, proc.stdout.decode() + proc.stderr.decode()
    assert b"baseline ok" in proc.stdout

    root = _fixture_tree(tmp_path)
    result = lint_paths(None, LintConfig(root=root))
    real_ids = [f.finding_id for f in result.findings]
    (root / "simlint-baseline.json").write_text(
        json.dumps({"version": 1, "ids": [*real_ids, "deadbeefdead"]})
    )
    proc = _run_lint_cli(["--check-baseline", "src"], cwd=root)
    assert proc.returncode == 1
    assert b"stale baseline id deadbeefdead" in proc.stdout


def test_exit_code_2_on_missing_path_and_syntax_error(tmp_path):
    proc = _run_lint_cli(["does/not/exist.py"])
    assert proc.returncode == 2
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    proc = _run_lint_cli([str(bad)])
    assert proc.returncode == 2
    assert b"syntax error" in proc.stdout


def test_rules_catalogue_flag():
    proc = _run_lint_cli(["--rules"])
    assert proc.returncode == 0
    for rule in (b"SIM001", b"SIM006"):
        assert rule in proc.stdout


def test_findings_render_and_dict_shape():
    [f] = assign_ids(lint_source("def f(xs):\n    for x in set(xs):\n        pass\n"))
    assert isinstance(f, Finding)
    assert f.to_dict()["rule"] == "SIM003"
    assert f.render().startswith("mod.py:2:")
