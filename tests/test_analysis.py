"""Tests for the observation analytics, tradeoff ranking and report helpers."""

import pytest

from repro.analysis import (
    format_table,
    fmt_scientific,
    gib,
    memory_overhead_model,
    observation2_table,
    stripe_update_histogram,
    table3,
    tradeoff_points,
)
from repro.analysis.observations import measured_full_stripe_overhead
from repro.workloads import WorkloadSpec


def _spec(ratio: str, n=20_000, reqs=20_000, seed=42):
    return WorkloadSpec.read_update(ratio, n_objects=n, n_requests=reqs, seed=seed)


# ------------------------------------------------------------- observation 1


def test_histogram_counts_updated_stripes():
    hist = stripe_update_histogram(6, _spec("95:5"))
    assert hist  # some stripes were updated
    assert all(1 <= b <= 6 for b in hist)
    total_updated_stripes = sum(hist.values())
    assert 0 < total_updated_stripes <= 20_000 // 6 + 1


def test_update_light_stripes_have_single_new_chunk():
    """Figure 3's key observation: at 95:5 most updated stripes hold 1 new chunk."""
    hist = stripe_update_histogram(6, _spec("95:5"))
    assert hist[1] > 0.8 * sum(hist.values())


def test_update_heavy_stripes_have_more_new_chunks():
    light = stripe_update_histogram(6, _spec("95:5"))
    heavy = stripe_update_histogram(6, _spec("50:50"))
    frac_multi_light = 1 - light.get(1, 0) / sum(light.values())
    frac_multi_heavy = 1 - heavy.get(1, 0) / sum(heavy.values())
    assert frac_multi_heavy > frac_multi_light


def test_histogram_larger_k_fewer_stripes():
    """Wide stripes: the same updates touch fewer, wider stripes."""
    h6 = stripe_update_histogram(6, _spec("50:50"))
    h15 = stripe_update_histogram(15, _spec("50:50"))
    assert sum(h15.values()) < sum(h6.values())


def test_histogram_empty_when_no_updates():
    assert stripe_update_histogram(6, _spec("100:0")) == {}


# ------------------------------------------------------------- observation 2


def test_memory_overhead_model_table1():
    """Table 1's exact row: M, 1.05M, 1.2M, 1.3M, 1.5M."""
    table = observation2_table()
    assert table["95:5"]["in-place"] == 1.0
    assert table["95:5"]["full-stripe"] == pytest.approx(1.05)
    assert table["80:20"]["full-stripe"] == pytest.approx(1.2)
    assert table["70:30"]["full-stripe"] == pytest.approx(1.3)
    assert table["50:50"]["full-stripe"] == pytest.approx(1.5)


def test_memory_overhead_model_validation():
    with pytest.raises(ValueError):
        memory_overhead_model(1.5)


def test_measured_overhead_close_to_model():
    measured = measured_full_stripe_overhead(6, _spec("50:50"))
    assert measured == pytest.approx(1.5, abs=0.02)


# ------------------------------------------------------------------ tradeoff


def _rows():
    return [
        {"store": "ipmem", "k": 6, "r": 3, "ratio": "95:5",
         "update_latency_us": 700.0, "memory_GiB": 6.0},
        {"store": "fsmem", "k": 6, "r": 3, "ratio": "95:5",
         "update_latency_us": 1100.0, "memory_GiB": 6.3},
        {"store": "logecmem", "k": 6, "r": 3, "ratio": "95:5",
         "update_latency_us": 470.0, "memory_GiB": 4.7},
    ]


def test_tradeoff_points_roundtrip():
    pts = tradeoff_points(_rows())
    assert len(pts) == 3
    assert pts[2].store == "logecmem"
    assert pts[2].memory_GiB == 4.7


def test_table3_rankings_match_paper_for_update_light():
    """k=6, 95:5 row of Table 3: IPMem low(low), FSMem high(high),
    LogECMem best(best)."""
    cells = table3(_rows())
    row = cells[(6, "95:5")]
    assert row["logecmem"] == "best (best)"
    assert row["ipmem"] == "low (low)"
    assert row["fsmem"] == "high (high)"


def test_table3_skips_incomplete_groups():
    rows = _rows()[:2]
    assert table3(rows) == {}


# -------------------------------------------------------------------- report


def test_fmt_scientific():
    assert fmt_scientific(1.03e9) == "1.03e+09"


def test_gib():
    assert gib(1 << 30) == 1.0


def test_format_table_alignment():
    out = format_table(["a", "bbb"], [["x", 1], ["yy", 22]], title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bbb" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    assert len(lines) == 5
