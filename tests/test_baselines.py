"""Tests for the four baseline stores (§6.1)."""

import numpy as np
import pytest

from repro.baselines import FSMem, IPMem, ReplicatedStore, VanillaMemcached, make_store
from repro.core.config import StoreConfig
from repro.core.interface import DataLossError


def _cfg(**kw):
    defaults = dict(k=4, r=3, value_size=4096, payload_scale=1 / 16)
    defaults.update(kw)
    return StoreConfig(**defaults)


def _load(store, n=32):
    for i in range(n):
        store.write(f"user{i}")
    return store


def test_make_store_registry():
    for name in ("vanilla", "replication", "ipmem", "fsmem", "logecmem"):
        assert make_store(name, _cfg()).name == name
    with pytest.raises(ValueError):
        make_store("bogus", _cfg())


# ------------------------------------------------------------------- vanilla


def test_vanilla_roundtrip():
    s = _load(VanillaMemcached(_cfg()))
    assert np.array_equal(s.read("user3").value, s.expected_value("user3"))
    s.update("user3")
    assert np.array_equal(s.read("user3").value, s.expected_value("user3"))
    s.delete("user3")
    with pytest.raises(KeyError):
        s.read("user3")


def test_vanilla_has_no_degraded_path():
    s = _load(VanillaMemcached(_cfg()))
    with pytest.raises(DataLossError):
        s.degraded_read("user3")


def test_vanilla_loses_data_on_failure():
    s = _load(VanillaMemcached(_cfg()))
    s.cluster.kill(s.placement["user3"])
    with pytest.raises(DataLossError):
        s.read("user3")


def test_vanilla_duplicate_and_missing_keys():
    s = _load(VanillaMemcached(_cfg()), n=2)
    with pytest.raises(KeyError):
        s.write("user0")
    with pytest.raises(KeyError):
        s.update("ghost")
    with pytest.raises(KeyError):
        s.delete("ghost")


# --------------------------------------------------------------- replication


def test_replication_stores_r_plus_1_copies():
    cfg = _cfg()
    s = _load(ReplicatedStore(cfg))
    v = VanillaMemcached(_cfg())
    _load(v)
    ratio = s.memory_logical_bytes / v.memory_logical_bytes
    assert ratio == pytest.approx(cfg.r + 1, rel=0.01)


def test_replication_survives_r_failures():
    s = _load(ReplicatedStore(_cfg()))
    nodes = s.placement["user3"]
    for nid in nodes[:3]:  # kill r = 3 of the 4 replicas
        s.cluster.kill(nid)
    res = s.read("user3")
    assert res.degraded
    assert np.array_equal(res.value, s.expected_value("user3"))


def test_replication_all_replicas_down_is_loss():
    s = _load(ReplicatedStore(_cfg()))
    for nid in s.placement["user3"]:
        s.cluster.kill(nid)
    with pytest.raises(DataLossError):
        s.read("user3")


def test_replication_degraded_read_is_cheap():
    """The paper: degraded read = read another replica, no decoding."""
    s = _load(ReplicatedStore(_cfg()))
    normal = s.read("user3").latency_s
    degraded = s.degraded_read("user3").latency_s
    assert degraded < 2.5 * normal


def test_replication_write_slower_than_vanilla():
    rep = ReplicatedStore(_cfg())
    van = VanillaMemcached(_cfg())
    assert rep.write("k").latency_s > van.write("k").latency_s


def test_replication_copy_count_tracks_r():
    for r in (2, 3, 4):
        s = ReplicatedStore(StoreConfig(k=4, r=r))
        assert s.copies == r + 1


# --------------------------------------------------------------------- ipmem


def test_ipmem_update_consistency():
    s = _load(IPMem(_cfg()))
    for key in ("user3", "user3", "user9"):
        s.update(key)
    for sid in s.stripe_index.stripe_ids():
        assert s.verify_stripe(sid)
    assert np.array_equal(s.read("user3").value, s.expected_value("user3"))


def test_ipmem_degraded_read_all_parities_in_dram():
    s = _load(IPMem(_cfg()), n=32)
    s.update("user3")
    res = s.degraded_read("user3")
    assert np.array_equal(res.value, s.expected_value("user3"))


def test_ipmem_survives_r_dram_failures():
    s = _load(IPMem(_cfg()), n=32)
    for nid in ("dram0", "dram1", "dram2"):
        s.cluster.kill(nid)
    for i in range(8):
        res = s.read(f"user{i}")
        assert np.array_equal(res.value, s.expected_value(f"user{i}"))


# --------------------------------------------------------------------- fsmem


def test_fsmem_update_moves_object_to_new_stripe():
    s = _load(FSMem(_cfg()))
    old_sid = s.object_index.lookup("user3").stripe_id
    s.update("user3")
    # force sealing of the new stripe by updating more objects
    for i in range(8):
        s.update(f"user{i + 10}")
    new_sid = s.object_index.lookup("user3").stripe_id
    assert new_sid != old_sid
    assert np.array_equal(s.read("user3").value, s.expected_value("user3"))


def test_fsmem_update_issues_no_parity_reads():
    s = _load(FSMem(_cfg()))
    s.update("user3")
    assert s.counters["parity_chunk_reads"] == 0


def test_fsmem_stale_memory_accumulates():
    s = _load(FSMem(_cfg()))
    before = s.memory_logical_bytes
    for i in range(8):
        s.update(f"user{i}")
    after = s.memory_logical_bytes
    assert after >= before + 8 * s.cfg.value_size


def test_fsmem_deferred_gc_charges_cost():
    s = _load(FSMem(_cfg()))
    for i in range(6):
        s.update(f"user{i}")
    assert s.gc_total_s == 0.0
    s.finalize()
    assert s.gc_total_s > 0.0
    assert s.gc_deferred_s == s.gc_total_s
    assert s.gc_chunk_reads > 0


def test_fsmem_inline_gc_threshold():
    cfg = _cfg(fsmem_gc_stale_threshold=4)
    s = _load(FSMem(cfg))
    for i in range(8):
        s.update(f"user{i}")
    assert s.gc_rounds >= 1
    assert s.gc_deferred_s == 0.0 or s.gc_deferred_s < s.gc_total_s


def test_fsmem_reclaim_frees_stale_versions():
    s = _load(FSMem(_cfg()))
    for i in range(8):
        s.update(f"user{i}")
    before = s.memory_logical_bytes
    freed = s.reclaim()
    assert freed > 0
    assert s.memory_logical_bytes == before - freed
    # current versions still readable
    assert np.array_equal(s.read("user3").value, s.expected_value("user3"))


def test_fsmem_reclaim_victim_order_is_pinned():
    """GC victims fall in memtable insertion order (oldest stale version
    first, per node), identically on every run -- the reclaim scan must not
    regress to a hash-order walk."""

    def run_once():
        s = _load(FSMem(_cfg()))
        for key in ("user5", "user2", "user5", "user9", "user2"):
            s.update(key)
        expected = []
        for node in s.cluster.dram_nodes.values():
            for skey in node.table.keys():
                if "@v" not in skey:
                    continue
                base, _, ver = skey.rpartition("@v")
                if int(ver) != s.versions.get(base, -1):
                    expected.append(skey)
        deleted = []
        for node in s.cluster.dram_nodes.values():
            real_delete = node.table.delete

            def spy(key, _real=real_delete):
                deleted.append(key)
                return _real(key)

            node.table.delete = spy
        s.reclaim()
        stale_deleted = [k for k in deleted if "@v" in k]
        return expected, stale_deleted

    expected, stale_deleted = run_once()
    assert expected  # the workload really produced superseded versions
    assert stale_deleted == expected
    assert run_once()[1] == stale_deleted  # byte-identical victim sequence


def test_fsmem_fully_replaced_stripe_needs_no_gc_reads():
    """Figure 1(b): a stripe whose chunks are all replaced releases for free."""
    cfg = _cfg(k=4)
    s = _load(FSMem(cfg), n=8)
    sid = s.object_index.lookup("user0").stripe_id
    rec = s.stripe_index.get(sid)
    victims = [keys[0] for keys in rec.chunk_keys]
    for key in victims:
        s.update(key)
    s.finalize()
    # that one stripe was fully stale -> zero chunk reads for it; the other
    # stripe was untouched -> no GC reads at all
    assert s.gc_chunk_reads == 0


def test_fsmem_degraded_read_current_version():
    s = _load(FSMem(_cfg()))
    s.update("user3")
    res = s.degraded_read("user3")
    assert np.array_equal(res.value, s.expected_value("user3"))
