"""Tests for the chaos subsystem: schedules, injection, policy, harness."""

import numpy as np
import pytest

from repro.baselines import make_store
from repro.chaos import (
    ChaosReport,
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultSchedule,
    RetryPolicy,
    RobustProxy,
    check_durability,
    check_store,
    run_chaos,
)
from repro.bench.runner import load_store
from repro.cluster import UnknownNodeError
from repro.core import StoreConfig
from repro.sim.events import EventQueue
from repro.sim.network import LinkDownError, NetworkModel
from repro.sim.params import HardwareProfile
from repro.workloads import WorkloadSpec

CFG = dict(k=3, r=3, value_size=1024, scheme="plm")


def small_store(name="logecmem", **kw):
    return make_store(name, StoreConfig(**{**CFG, **kw}))


def small_spec(**kw):
    base = dict(n_objects=90, n_requests=150, seed=11,
                read_ratio=0.5, update_ratio=0.5, value_size=1024)
    base.update(kw)
    return WorkloadSpec(**base)


# ------------------------------------------------------------------ schedule


def test_schedule_deterministic_per_seed():
    kw = dict(horizon_s=1.0, mttf_s=0.2, seed=5)
    a = FaultSchedule.poisson(["dram0", "dram1"], ["log0"], **kw)
    b = FaultSchedule.poisson(["dram0", "dram1"], ["log0"], **kw)
    assert a.events == b.events
    c = FaultSchedule.poisson(["dram0", "dram1"], ["log0"], **{**kw, "seed": 6})
    assert a.events != c.events


def test_schedule_is_time_sorted():
    sched = FaultSchedule.poisson(
        [f"dram{i}" for i in range(4)], ["log0"], horizon_s=1.0, mttf_s=0.1, seed=0
    )
    times = [ev.time_s for ev in sched]
    assert times == sorted(times)
    assert all(0 <= t < 1.0 for t in times)


def test_schedule_stall_only_on_log_nodes():
    sched = FaultSchedule.poisson(
        ["dram0"], [], horizon_s=5.0, mttf_s=0.05, seed=1,
        weights={FaultKind.STALL: 1.0},
    )
    assert len(sched) > 0
    # stalls drawn for a DRAM node must have fallen back to blips
    assert all(ev.kind is FaultKind.BLIP for ev in sched)


def test_schedule_expected_faults_scaling():
    counts = [
        len(FaultSchedule.with_expected_faults(
            ["dram0", "dram1", "dram2"], ["log0"],
            horizon_s=1.0, expected_faults=6.0, seed=s,
        ))
        for s in range(40)
    ]
    assert 4.0 < sum(counts) / len(counts) < 8.0  # Poisson mean ~6


def test_schedule_from_mttf_years_runs():
    sched = FaultSchedule.from_mttf_years(
        ["dram0", "dram1"], ["log0"], horizon_s=0.5, acceleration=1e9, seed=3
    )
    assert isinstance(len(sched), int)  # just: generates without error
    assert sched.kinds() == {} or sum(sched.kinds().values()) == len(sched)


def test_fault_event_validation():
    with pytest.raises(ValueError):
        FaultEvent(-1.0, FaultKind.CRASH, "dram0")
    with pytest.raises(ValueError):
        FaultEvent(0.0, FaultKind.BLIP, "dram0")  # transient needs duration
    with pytest.raises(ValueError):
        FaultEvent(0.0, FaultKind.SLOW, "dram0", duration_s=1.0, magnitude=0.5)
    ev = FaultEvent(1.0, FaultKind.PARTITION, "dram0", duration_s=0.25)
    assert ev.end_s == 1.25
    assert "partition" in ev.describe()


def test_schedule_generator_validation():
    with pytest.raises(ValueError):
        FaultSchedule.poisson(["a"], horizon_s=0, mttf_s=1)
    with pytest.raises(ValueError):
        FaultSchedule.poisson(["a"], horizon_s=1, mttf_s=0)
    with pytest.raises(ValueError):
        FaultSchedule.with_expected_faults(["a"], horizon_s=1, expected_faults=0)


# ------------------------------------------------------------------ injector


def test_injector_crash_and_blip():
    store = small_store()
    inj = FaultInjector(store.cluster)
    q = EventQueue()
    inj.apply(FaultEvent(1.0, FaultKind.CRASH, "dram0"), 1.0, q)
    assert not store.cluster.dram_nodes["dram0"].alive
    inj.apply(FaultEvent(2.0, FaultKind.BLIP, "dram1", duration_s=0.5), 2.0, q)
    assert not store.cluster.dram_nodes["dram1"].alive
    q.run_until(2.5)
    assert store.cluster.dram_nodes["dram1"].alive   # blip healed itself
    assert not store.cluster.dram_nodes["dram0"].alive  # crash did not
    assert inj.applied == {"crash": 1, "blip": 1}
    assert len(inj.timeline) == 3


def test_injector_slow_and_partition_heal():
    store = small_store()
    inj = FaultInjector(store.cluster)
    q = EventQueue()
    inj.apply(FaultEvent(0.0, FaultKind.SLOW, "dram0", duration_s=1.0,
                         magnitude=8.0), 0.0, q)
    inj.apply(FaultEvent(0.0, FaultKind.PARTITION, "dram1", duration_s=2.0), 0.0, q)
    net = store.net
    assert net.node_slowdown("dram0") == 8.0
    assert net.link_down("dram1") and not net.reachable("dram1")
    q.run_until(1.0)
    assert net.node_slowdown("dram0") == 1.0
    assert net.link_down("dram1")
    q.run_until(2.0)
    assert net.reachable("dram1")


def test_injector_stall_hits_log_disk():
    store = small_store()
    inj = FaultInjector(store.cluster)
    q = EventQueue()
    inj.apply(FaultEvent(0.0, FaultKind.STALL, "log0", duration_s=0.05), 0.0, q)
    disk = store.cluster.log_nodes["log0"].disk
    assert disk.stall_windows == 1
    assert disk.stalled_s == pytest.approx(0.05)
    assert disk.backlog_s(0.0) >= 0.05  # busy time propagates as backpressure
    with pytest.raises(ValueError):
        inj.apply(FaultEvent(0.0, FaultKind.STALL, "dram0", duration_s=0.05), 0.0, q)


def test_injector_unknown_node():
    store = small_store()
    inj = FaultInjector(store.cluster)
    with pytest.raises(UnknownNodeError):
        inj.apply(FaultEvent(0.0, FaultKind.CRASH, "dram99"), 0.0, EventQueue())


# --------------------------------------------------------- network primitives


def test_network_degradation_primitives():
    net = NetworkModel(HardwareProfile())
    assert net.node_slowdown("n1") == 1.0 and net.reachable("n1")
    net.set_node_slowdown("n1", 4.0)
    assert net.node_slowdown("n1") == 4.0
    net.set_node_slowdown("n1", 1.0)  # factor 1 clears the entry
    assert net.node_slowdown("n1") == 1.0
    with pytest.raises(ValueError):
        net.set_node_slowdown("n1", 0.5)
    net.set_link_down("n2")
    with pytest.raises(LinkDownError):
        net.rpc_to("n2", 64, 64)
    net.restore_link("n2")
    base = net.rpc_to("n2", 64, 64)
    net.set_node_slowdown("n2", 3.0)
    assert net.rpc_to("n2", 64, 64) == pytest.approx(3.0 * base)


# -------------------------------------------------------------------- policy


def test_backoff_exponential_and_capped():
    p = RetryPolicy(backoff_base_s=1e-3, backoff_cap_s=4e-3, jitter_fraction=0.0)
    assert p.backoff_s(0) == pytest.approx(1e-3)
    assert p.backoff_s(1) == pytest.approx(2e-3)
    assert p.backoff_s(2) == pytest.approx(4e-3)
    assert p.backoff_s(5) == pytest.approx(4e-3)  # capped


def test_backoff_jitter_bounded_and_seeded():
    a = RetryPolicy(jitter_fraction=0.25, seed=9)
    b = RetryPolicy(jitter_fraction=0.25, seed=9)
    seq_a = [a.backoff_s(i) for i in range(6)]
    seq_b = [b.backoff_s(i) for i in range(6)]
    assert seq_a == seq_b  # same seed, same jitter stream
    for i, s in enumerate(seq_a):
        nominal = min(1e-3 * 2**i, 16e-3)
        assert 0.75 * nominal <= s <= 1.25 * nominal


def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(jitter_fraction=1.5)


def test_proxy_retries_through_a_blip():
    """An update hits a dead node; the blip heals during backoff and the op
    lands -- acked with retries > 0, no failure."""
    store = small_store()
    spec = small_spec()
    load_store(store, spec)
    key = "user0000000000000000"
    sid, seq, node_id, _, _ = store._locate(key)
    assert sid is not None
    store.cluster.kill(node_id)

    healed = {"done": False}

    def wait(dt):
        if not healed["done"]:
            store.cluster.restore(node_id)
            healed["done"] = True

    proxy = RobustProxy(store, RetryPolicy(jitter_fraction=0.0), wait=wait)
    from repro.workloads.ycsb import Operation, Request

    outcome = proxy.execute(Request(Operation.UPDATE, key))
    assert outcome.acked
    assert outcome.retries >= 1
    assert proxy.retries >= 1
    assert proxy.failed_ops == 0


def test_proxy_exhausts_retries_on_permanent_failure():
    store = small_store()
    spec = small_spec()
    load_store(store, spec)
    key = "user0000000000000000"
    _, _, node_id, _, _ = store._locate(key)
    store.cluster.kill(node_id)
    proxy = RobustProxy(store, RetryPolicy(max_retries=2, jitter_fraction=0.0))
    from repro.workloads.ycsb import Operation, Request

    outcome = proxy.execute(Request(Operation.UPDATE, key))
    assert not outcome.acked
    assert outcome.retries == 2
    assert outcome.error is not None
    assert proxy.failed_ops == 1
    # the READ still succeeds -- served degraded
    read = proxy.execute(Request(Operation.READ, key))
    assert read.acked and read.degraded
    assert read.degraded_reason == "node_down"


# ------------------------------------------------------------------- harness


def test_run_chaos_zero_violations():
    store = small_store()
    report = run_chaos(store, small_spec())
    assert isinstance(report, ChaosReport)
    assert report.violations == 0
    assert report.ops_acked == report.ops_attempted
    assert report.invariants["objects_checked"] == 90
    assert report.availability <= 1.0


def test_run_chaos_same_seed_identical_report():
    reports = [run_chaos(small_store(), small_spec()) for _ in range(2)]
    assert reports[0].to_dict() == reports[1].to_dict()
    assert reports[0].fingerprint() == reports[1].fingerprint()
    other = run_chaos(small_store(), small_spec(seed=12))
    assert other.fingerprint() != reports[0].fingerprint()


def test_degraded_read_during_outage_acked_and_durable():
    """The acceptance drill: a node crashes mid-run with repair disabled, so
    reads of its objects are served degraded (and acked); the invariant sweep
    afterwards proves every acked object still reconstructs bit-exactly."""
    store = small_store()
    spec = small_spec(read_ratio=1.0, update_ratio=0.0, n_requests=120)
    schedule = FaultSchedule([FaultEvent(0.0, FaultKind.CRASH, "dram0")])
    report = run_chaos(store, spec, schedule=schedule, repair=False)
    assert report.degraded_reads > 0
    assert report.ops_acked == report.ops_attempted  # reads never fail over this
    assert not store.cluster.dram_nodes["dram0"].alive  # outage persisted
    assert report.violations == 0  # ...yet everything acked is decodable
    # spot-check durability explicitly for the keys on the dead node
    dead_keys = [
        key for key in sorted(store.versions)
        if store._locate(key)[2] == "dram0"
    ]
    assert dead_keys
    checked, violations = check_durability(store, dead_keys)
    assert checked == len(dead_keys)
    assert violations == []


def test_dram_crash_triggers_repair():
    store = small_store()
    schedule = FaultSchedule([FaultEvent(0.0, FaultKind.CRASH, "dram1")])
    report = run_chaos(store, small_spec(), schedule=schedule)
    assert len(report.repairs) == 1
    assert report.repairs[0]["node"] == "dram1"
    assert report.repairs[0]["chunks"] > 0
    assert store.cluster.dram_nodes["dram1"].alive  # back in service
    assert report.violations == 0


def test_log_node_crash_recovers_consistently():
    """Crash a log node mid-run (buffer lost, §3.3.2); recovery must rebuild
    its parities so the log-replay invariant holds at the end."""
    store = small_store()
    schedule = FaultSchedule([FaultEvent(0.0, FaultKind.CRASH, "log0")])
    report = run_chaos(store, small_spec(), schedule=schedule)
    assert any(rec["node"] == "log0" for rec in report.recoveries)
    node = store.cluster.log_nodes["log0"]
    assert node.alive and not node.needs_recovery
    assert report.violations == 0
    assert report.invariants["logged_parities_checked"] > 0


def test_log_partition_marks_and_recovers_stale_parities():
    """Updates during a log-node partition cannot deliver deltas; the node is
    marked stale and recovered once the link heals."""
    store = small_store()
    schedule = FaultSchedule(
        [FaultEvent(0.0, FaultKind.PARTITION, "log0", duration_s=0.05)]
    )
    report = run_chaos(
        store, small_spec(read_ratio=0.0, update_ratio=1.0), schedule=schedule
    )
    assert store.counters["parity_deltas_skipped"] > 0
    assert any(rec["node"] == "log0" for rec in report.recoveries)
    assert not store.cluster.log_nodes["log0"].needs_recovery
    assert report.violations == 0


def test_run_chaos_all_stores():
    for name in ("vanilla", "replication", "ipmem", "fsmem", "logecmem"):
        store = small_store(name)
        report = run_chaos(store, small_spec(n_objects=60, n_requests=80))
        assert report.violations == 0, name
        assert report.ops_attempted == 80, name


def test_check_store_on_healthy_store():
    store = small_store()
    load_store(store, small_spec())
    store.finalize()
    report = check_store(store)
    assert report.ok
    assert report.objects_checked == 90
    assert report.stripes_checked > 0


def test_report_fingerprint_tracks_content():
    r = ChaosReport(store="s", scheme="plm", seed=1, n_objects=1, n_requests=1)
    fp = r.fingerprint()
    r.ops_acked = 1
    assert r.fingerprint() != fp
    assert "ChaosReport" in r.summary()


def test_cli_chaos_subcommand():
    from repro.cli import main

    lines = []
    rc = main(
        ["chaos", "--store", "logecmem", "--scheme", "plm",
         "--objects", "60", "--requests", "80", "--code", "3,3"],
        out=lines.append,
    )
    assert rc == 0
    text = "\n".join(str(x) for x in lines)
    assert "ChaosReport" in text
    assert "0 violations" in text
    assert "fingerprint" in text


# --------------------------------------------------- substrate extensions


def test_striped_read_degrades_on_slow_node():
    store = small_store()
    spec = small_spec()
    load_store(store, spec)
    key = "user0000000000000000"
    _, _, node_id, _, _ = store._locate(key)
    # tolerably slow: normal path, inflated latency
    base = store.read(key).latency_s
    store.net.set_node_slowdown(node_id, 2.0)
    slow = store.read(key)
    assert not slow.degraded
    assert slow.latency_s > base
    # past the threshold: degraded path wins over waiting on the straggler
    store.net.set_node_slowdown(node_id, 100.0)
    res = store.read(key)
    assert res.degraded
    assert res.info["degraded_reason"] == "slow_node"
    assert np.array_equal(res.value, store.expected_value(key))


def test_striped_read_degrades_on_partition():
    store = small_store()
    load_store(store, small_spec())
    key = "user0000000000000001"
    _, _, node_id, _, _ = store._locate(key)
    store.net.set_link_down(node_id)
    res = store.read(key)
    assert res.degraded
    assert res.info["degraded_reason"] == "link_down"
    assert np.array_equal(res.value, store.expected_value(key))


def test_degraded_read_never_uses_stale_partitioned_parity():
    """Regression: updates during a log-node partition leave that node's
    persisted parity stale; a concurrent multi-failure degraded read must
    fetch the fresh parity from the *other* log node (skipping the
    partitioned/stale one), so the acked read returns the right bytes."""
    store = small_store()
    load_store(store, small_spec())
    store.net.set_link_down("log0")
    # a sealed key whose stripe logs parity 1 on log0 -- the parity the old
    # fetch loop would have read first
    key = next(
        k
        for k in sorted(store.versions)
        if (sid := store._locate(k)[0]) is not None
        and store.stripe_index.get(sid).chunk_nodes[CFG["k"] + 1] == "log0"
    )
    store.update(key)  # log0 misses the delta and is marked stale
    assert store.cluster.log_nodes["log0"].needs_recovery
    sid, seq, home, _, _ = store._locate(key)
    rec = store.stripe_index.get(sid)
    store.cluster.kill(home)
    store.cluster.kill(rec.chunk_nodes[CFG["k"]])  # XOR node: 2 DRAM chunks gone
    before = store.counters["logged_parity_reads"]
    res = store.read(key)
    assert res.degraded
    assert store.counters["logged_parity_reads"] == before + 1  # log1 only
    assert np.array_equal(res.value, store.expected_value(key))


def test_proxy_reports_backoff_waits_separately():
    """The driver advances the clock during each backoff via the wait hook,
    so the outcome must expose waited_s apart from the client latency --
    otherwise the harness would advance the waits a second time."""
    store = small_store()
    load_store(store, small_spec())
    key = "user0000000000000000"
    _, _, node_id, _, _ = store._locate(key)
    store.cluster.kill(node_id)
    healed = {"done": False}

    def wait(dt):
        if not healed["done"]:
            store.cluster.restore(node_id)
            healed["done"] = True

    proxy = RobustProxy(store, RetryPolicy(jitter_fraction=0.0), wait=wait)
    from repro.workloads.ycsb import Operation, Request

    outcome = proxy.execute(Request(Operation.UPDATE, key))
    assert outcome.acked
    assert outcome.waited_s == pytest.approx(1e-3)  # one backoff at the base
    assert outcome.service_s == pytest.approx(outcome.latency_s - outcome.waited_s)
    assert outcome.service_s > 0


def test_proxy_only_retries_unavailability_errors():
    """Only unavailability-family errors are retryable; a workload bug
    (KeyError) or an arbitrary internal RuntimeError must surface."""
    store = small_store()
    load_store(store, small_spec())
    proxy = RobustProxy(store, RetryPolicy(max_retries=3, jitter_fraction=0.0))
    from repro.workloads.ycsb import Operation, Request

    with pytest.raises(KeyError):
        proxy.execute(Request(Operation.READ, "user9999999999999999"))

    def boom(key):
        raise RuntimeError("internal bug")

    store.read = boom
    with pytest.raises(RuntimeError):
        proxy.execute(Request(Operation.READ, "user0000000000000000"))
    assert proxy.retries == 0
    assert proxy.failed_ops == 0


def test_repair_restore_includes_repair_window():
    """A repaired node rejoins at when + repair_time_s, so its downtime is
    the detection delay plus the repair itself."""
    store = small_store()
    schedule = FaultSchedule([FaultEvent(0.0, FaultKind.CRASH, "dram1")])
    report = run_chaos(store, small_spec(), schedule=schedule)
    rec = report.repairs[0]
    assert rec["node"] == "dram1" and rec["repair_time_s"] > 0
    node = store.cluster.dram_nodes["dram1"]
    assert node.downtime_s == pytest.approx(5e-3 + rec["repair_time_s"])


def test_update_skips_unreachable_log_node_and_marks_stale():
    store = small_store()
    load_store(store, small_spec())
    store.net.set_link_down("log0")
    before = store.counters["parity_deltas_skipped"]
    # update a sealed object whose stripe logs to log0 (every stripe logs to
    # both log nodes with r=3, so any sealed key works)
    key = next(k for k in sorted(store.versions) if store._locate(k)[0] is not None)
    store.update(key)
    assert store.counters["parity_deltas_skipped"] > before
    assert store.cluster.log_nodes["log0"].needs_recovery
    # recovery clears the marker and restores consistency
    from repro.core.recovery import recover_log_node

    store.net.restore_link("log0")
    recover_log_node(store, "log0")
    assert not store.cluster.log_nodes["log0"].needs_recovery
    assert check_store(store).ok
