"""Tests for the command-line reproduction driver."""

import pytest

from repro.cli import build_parser, main


def _run(argv):
    lines: list[str] = []
    rc = main(argv, out=lambda text: lines.append(str(text)))
    return rc, "\n".join(lines)


def test_table2_command():
    rc, out = _run(["table2"])
    assert rc == 0
    assert "1.03e+09" in out
    assert "(15,3)" in out


def test_observation1_command():
    rc, out = _run(["observation1", "--code", "6,3", "--ratio", "50:50",
                    "--objects", "3000", "--requests", "3000"])
    assert rc == 0
    assert "# updated stripes" in out


def test_observation2_command():
    rc, out = _run(["observation2"])
    assert rc == 0
    assert "1.50M" in out


def test_run_command_ratio():
    rc, out = _run(["run", "--store", "logecmem", "--ratio", "80:20",
                    "--objects", "200", "--requests", "200"])
    assert rc == 0
    assert "update" in out
    assert "memory:" in out


def test_run_command_preset():
    rc, out = _run(["run", "--store", "fsmem", "--preset", "B",
                    "--objects", "150", "--requests", "150"])
    assert rc == 0
    assert "YCSB-B" in out


def test_run_command_scheme_choice():
    rc, out = _run(["run", "--scheme", "plr", "--objects", "150",
                    "--requests", "150"])
    assert rc == 0


def test_exp2_command_small():
    rc, out = _run(["exp2", "--objects", "240", "--requests", "240"])
    assert rc == 0
    assert "logecmem" in out
    assert "update_latency_us" in out


def test_exp7_command_small():
    rc, out = _run(["exp7", "--objects", "240", "--requests", "120"])
    assert rc == 0
    assert "throughput_GiB_per_min" in out


def test_exp7_out_saves_rows(tmp_path):
    from repro.bench import results

    path = tmp_path / "exp7.csv"
    rc, out = _run(["exp7", "--objects", "240", "--requests", "120",
                    "--out", str(path)])
    assert rc == 0
    assert "saved" in out
    rows = results.load(path)
    assert len(rows) == 8  # 4 codes x (with/without log-assist)
    assert {"k", "log_assist", "throughput_GiB_per_min"} <= set(rows[0])


def test_tradeoff_command_small():
    rc, out = _run(["tradeoff", "--objects", "300", "--requests", "300"])
    assert rc == 0
    assert "Table 3 rankings" in out
    assert "best" in out


def test_report_command_writes_everything(tmp_path):
    rc, out = _run(["report", "--dir", str(tmp_path), "--objects", "200",
                    "--requests", "200"])
    assert rc == 0
    report = (tmp_path / "REPORT.txt").read_text()
    for heading in ("Table 2", "Observation 1", "Experiment 7", "Table 3"):
        assert heading in report
    assert len(list(tmp_path.glob("exp*.json"))) == 7


def test_load_command_writes_curve(tmp_path):
    import json

    path = tmp_path / "load.json"
    rc, out = _run(["load", "--objects", "120", "--requests", "120",
                    "--concurrency", "1,8", "--out", str(path)])
    assert rc == 0
    assert "hottest station" in out
    assert "knee:" in out
    doc = json.loads(path.read_text())
    assert {"meta", "jobs", "curve", "knee"} <= set(doc)
    assert [pt["concurrency"] for pt in doc["curve"]] == [1, 8]


def test_load_command_chaos_flag():
    rc, out = _run(["load", "--objects", "100", "--requests", "100",
                    "--concurrency", "8", "--chaos", "--faults", "2"])
    assert rc == 0
    assert "chaos:" in out


def test_load_command_rejects_bad_concurrency():
    with pytest.raises(SystemExit):
        _run(["load", "--concurrency", "1,two"])
    with pytest.raises(SystemExit):
        _run(["load", "--concurrency", "0"])


def test_bad_code_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--code", "six-three"])


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
