"""Tests for seeded network jitter and variance reporting."""

import pytest

from repro.baselines import make_store
from repro.bench.runner import run_workload
from repro.core.config import StoreConfig
from repro.sim.network import NetworkModel
from repro.sim.params import HardwareProfile
from repro.workloads import WorkloadSpec


def test_default_profile_is_deterministic():
    net = NetworkModel(HardwareProfile())
    assert net.rpc(64, 4096) == net.rpc(64, 4096)
    assert net._jitter_rng is None


def test_jitter_varies_latencies():
    net = NetworkModel(HardwareProfile(jitter_fraction=0.1, jitter_seed=1))
    samples = {net.rpc(64, 4096) for _ in range(20)}
    assert len(samples) > 10


def test_jitter_reproducible_per_seed():
    a = NetworkModel(HardwareProfile(jitter_fraction=0.1, jitter_seed=7))
    b = NetworkModel(HardwareProfile(jitter_fraction=0.1, jitter_seed=7))
    c = NetworkModel(HardwareProfile(jitter_fraction=0.1, jitter_seed=8))
    sa = [a.rpc(64, 4096) for _ in range(10)]
    sb = [b.rpc(64, 4096) for _ in range(10)]
    sc = [c.rpc(64, 4096) for _ in range(10)]
    assert sa == sb
    assert sa != sc


def test_jitter_bounded_below():
    """Extreme negative draws never produce near-zero or negative time."""
    net = NetworkModel(HardwareProfile(jitter_fraction=5.0, jitter_seed=2))
    nominal = HardwareProfile().rtt_s
    for _ in range(200):
        assert net.rpc(0, 0) >= 0.2 * nominal * 0.9


def test_jitter_mean_close_to_nominal():
    p = HardwareProfile(jitter_fraction=0.05, jitter_seed=3)
    net = NetworkModel(p)
    nominal = NetworkModel(HardwareProfile()).rpc(64, 4096)
    mean = sum(net.rpc(64, 4096) for _ in range(500)) / 500
    assert mean == pytest.approx(nominal, rel=0.02)


def test_workload_variance_reported():
    spec = WorkloadSpec.read_update("95:5", n_objects=200, n_requests=300, seed=5)
    deterministic = make_store("logecmem", StoreConfig(k=4, r=3, payload_scale=1 / 32))
    res_det = run_workload(deterministic, spec)
    assert res_det.std_latency_us("read") == pytest.approx(0.0, abs=1e-9)

    cfg = StoreConfig(k=4, r=3, payload_scale=1 / 32)
    cfg.profile.jitter_fraction = 0.08
    jittery = make_store("logecmem", cfg)
    res_jit = run_workload(jittery, spec)
    assert res_jit.std_latency_us("read") > 1.0  # microseconds of spread
    # the mean survives the jitter
    assert res_jit.mean_latency_us("read") == pytest.approx(
        res_det.mean_latency_us("read"), rel=0.05
    )
