"""Tests for the memcached text-protocol codec and server."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kvstore.protocol import (
    Command,
    MemcachedServer,
    ProtocolError,
    encode_command,
    encode_value_response,
    parse_command,
    parse_value_response,
)


# --------------------------------------------------------------------- codec


def test_set_roundtrip():
    cmd = Command(verb="set", key="user7", flags=3, value=b"hello world")
    parsed, rest = parse_command(encode_command(cmd))
    assert parsed == cmd
    assert rest == b""


def test_get_delete_roundtrip():
    for verb in ("get", "gets", "delete"):
        cmd = Command(verb=verb, key="k1")
        parsed, rest = parse_command(encode_command(cmd))
        assert parsed.verb == verb and parsed.key == "k1"
        assert rest == b""


def test_cas_roundtrip():
    cmd = Command(verb="cas", key="k", flags=0, value=b"v", cas_token=42)
    parsed, _ = parse_command(encode_command(cmd))
    assert parsed.cas_token == 42


def test_cas_requires_token():
    with pytest.raises(ProtocolError):
        encode_command(Command(verb="cas", key="k", value=b"v"))


def test_pipelined_commands_parse_sequentially():
    data = encode_command(Command("set", "a", 0, b"1")) + encode_command(
        Command("get", "a")
    )
    first, rest = parse_command(data)
    second, rest = parse_command(rest)
    assert first.verb == "set" and second.verb == "get"
    assert rest == b""


def test_value_may_contain_crlf():
    cmd = Command(verb="set", key="k", value=b"a\r\nb\r\nc")
    parsed, rest = parse_command(encode_command(cmd))
    assert parsed.value == b"a\r\nb\r\nc"
    assert rest == b""


@pytest.mark.parametrize(
    "bad",
    [
        b"get\r\n",
        b"get a b\r\n",
        b"set k 0 0\r\n",
        b"set k 0 0 x\r\nvalue\r\n",
        b"bogus k\r\n",
        b"set k 0 0 5\r\nab\r\n",  # truncated value
        b"no newline at all",
    ],
)
def test_malformed_commands_raise(bad):
    with pytest.raises(ProtocolError):
        parse_command(bad)


def test_illegal_keys_rejected():
    for key in ("", "a b", "x" * 251, "line\nbreak"):
        with pytest.raises(ProtocolError):
            encode_command(Command("get", key))


def test_value_response_roundtrip():
    data = encode_value_response("k", 7, b"payload", cas=9)
    key, flags, value, cas = parse_value_response(data)
    assert (key, flags, value, cas) == ("k", 7, b"payload", 9)


def test_miss_response():
    assert parse_value_response(b"END\r\n") is None


def test_malformed_response_raises():
    with pytest.raises(ProtocolError):
        parse_value_response(b"VALUE broken\r\n")


@settings(max_examples=40)
@given(
    st.text(alphabet=st.characters(min_codepoint=33, max_codepoint=126), min_size=1, max_size=40),
    st.integers(min_value=0, max_value=65535),
    st.binary(max_size=200),
)
def test_roundtrip_property(key, flags, value):
    cmd = Command(verb="set", key=key, flags=flags, value=value)
    parsed, rest = parse_command(encode_command(cmd))
    assert parsed == cmd and rest == b""


# -------------------------------------------------------------------- server


def test_server_set_get():
    s = MemcachedServer()
    assert s.execute(Command("set", "k", 5, b"hello")) == b"STORED\r\n"
    out = s.execute(Command("get", "k"))
    assert parse_value_response(out) == ("k", 5, b"hello", None)


def test_server_miss():
    assert MemcachedServer().execute(Command("get", "nope")) == b"END\r\n"


def test_server_delete():
    s = MemcachedServer()
    s.execute(Command("set", "k", 0, b"v"))
    assert s.execute(Command("delete", "k")) == b"DELETED\r\n"
    assert s.execute(Command("delete", "k")) == b"NOT_FOUND\r\n"


def test_server_cas_semantics():
    s = MemcachedServer()
    s.execute(Command("set", "k", 0, b"v1"))
    out = s.execute(Command("gets", "k"))
    _, _, _, token = parse_value_response(out)
    # stale token after an interleaved set
    s.execute(Command("set", "k", 0, b"v2"))
    assert s.execute(Command("cas", "k", 0, b"v3", cas_token=token)) == b"EXISTS\r\n"
    # fresh token wins
    _, _, _, token2 = parse_value_response(s.execute(Command("gets", "k")))
    assert s.execute(Command("cas", "k", 0, b"v3", cas_token=token2)) == b"STORED\r\n"
    assert parse_value_response(s.execute(Command("get", "k")))[2] == b"v3"


def test_server_cas_on_missing_key():
    s = MemcachedServer()
    assert s.execute(Command("cas", "k", 0, b"v", cas_token=1)) == b"NOT_FOUND\r\n"


def test_server_handle_pipelined_stream():
    s = MemcachedServer()
    stream = (
        encode_command(Command("set", "a", 0, b"1"))
        + encode_command(Command("set", "b", 0, b"2"))
        + encode_command(Command("get", "a"))
        + encode_command(Command("delete", "b"))
    )
    out = s.handle(stream)
    assert out.count(b"STORED\r\n") == 2
    assert b"VALUE a" in out
    assert out.endswith(b"DELETED\r\n")


def test_server_memory_accounting_via_memtable():
    s = MemcachedServer()
    s.execute(Command("set", "k", 0, b"x" * 100))
    assert s.table.logical_bytes > 100
    s.execute(Command("delete", "k"))
    assert s.table.logical_bytes == 0
