"""Tests for GF(2^8) matrix algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ec.matrix import SingularMatrixError, gf_matinv, gf_matmul, gf_matvec


def _random_matrix(rng, m, n):
    return rng.integers(0, 256, size=(m, n), dtype=np.uint8)


def test_matmul_identity():
    rng = np.random.default_rng(0)
    a = _random_matrix(rng, 5, 5)
    eye = np.eye(5, dtype=np.uint8)
    assert np.array_equal(gf_matmul(a, eye), a)
    assert np.array_equal(gf_matmul(eye, a), a)


def test_matmul_shape_check():
    with pytest.raises(ValueError):
        gf_matmul(np.zeros((2, 3), dtype=np.uint8), np.zeros((2, 3), dtype=np.uint8))


def test_matmul_associative():
    rng = np.random.default_rng(1)
    a = _random_matrix(rng, 3, 4)
    b = _random_matrix(rng, 4, 5)
    c = _random_matrix(rng, 5, 2)
    assert np.array_equal(gf_matmul(gf_matmul(a, b), c), gf_matmul(a, gf_matmul(b, c)))


def test_matmul_matches_scalar_definition():
    rng = np.random.default_rng(2)
    a = _random_matrix(rng, 3, 3)
    b = _random_matrix(rng, 3, 3)
    out = gf_matmul(a, b)
    from repro.ec.gf256 import gf_mul

    for i in range(3):
        for j in range(3):
            acc = 0
            for t in range(3):
                acc ^= int(gf_mul(a[i, t], b[t, j]))
            assert int(out[i, j]) == acc


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=8), st.integers(min_value=0, max_value=2**31 - 1))
def test_inverse_roundtrip(n, seed):
    rng = np.random.default_rng(seed)
    # rejection-sample an invertible matrix
    for _ in range(50):
        m = _random_matrix(rng, n, n)
        try:
            inv = gf_matinv(m)
        except SingularMatrixError:
            continue
        eye = np.eye(n, dtype=np.uint8)
        assert np.array_equal(gf_matmul(m, inv), eye)
        assert np.array_equal(gf_matmul(inv, m), eye)
        return
    pytest.skip("no invertible sample found (vanishingly unlikely)")


def test_singular_raises():
    m = np.array([[1, 2], [1, 2]], dtype=np.uint8)
    with pytest.raises(SingularMatrixError):
        gf_matinv(m)


def test_zero_matrix_singular():
    with pytest.raises(SingularMatrixError):
        gf_matinv(np.zeros((3, 3), dtype=np.uint8))


def test_matinv_requires_square():
    with pytest.raises(ValueError):
        gf_matinv(np.zeros((2, 3), dtype=np.uint8))


def test_matinv_does_not_mutate_input():
    m = np.array([[1, 1], [1, 2]], dtype=np.uint8)
    snapshot = m.copy()
    gf_matinv(m)
    assert np.array_equal(m, snapshot)


def test_matvec_encodes_buffers():
    rng = np.random.default_rng(3)
    mat = _random_matrix(rng, 2, 4)
    bufs = rng.integers(0, 256, size=(4, 128), dtype=np.uint8)
    out = gf_matvec(mat, bufs)
    assert out.shape == (2, 128)
    assert np.array_equal(out, gf_matmul(mat, bufs))
