"""Tests for the simsan determinism sanitizer (repro.devtools.simsan).

Covers the runtime access checks (each positive *and* its clean negative),
the fingerprint primitive, mode comparison on clean vs order-sensitive
scenarios, the planted fixtures under ``tests/testdata/simsan/``, and the
``python -m repro sanitize`` front end's exit-code contract.
"""

from pathlib import Path

import pytest

from repro.cli import main
from repro.devtools.simsan import runner, runtime
from repro.devtools.simsan.fingerprint import COMPONENTS, fingerprint, fingerprint_state
from repro.sim.events import EventQueue

FIXTURES = Path(__file__).parent / "testdata" / "simsan"


def _run_cli(argv):
    lines: list[str] = []
    rc = main(argv, out=lambda text: lines.append(str(text)))
    return rc, "\n".join(lines)


# --------------------------------------------------------------- runtime checks


def test_station_balanced_holds_are_clean():
    san = runtime.Sanitizer()
    san.on_acquire("proxy_cpu", 0.0)
    san.on_acquire("proxy_cpu", 1e-4)
    san.on_release("proxy_cpu")
    san.on_release("proxy_cpu")
    san.on_drained("test")
    assert san.ok


def test_release_without_hold_flags_negative_occupancy():
    san = runtime.Sanitizer()
    san.on_release("proxy_cpu")
    assert [v.check for v in san.violations] == ["negative_occupancy"]


def test_submit_time_regression_flags():
    san = runtime.Sanitizer()
    san.on_acquire("delay", 2e-3)
    san.on_acquire("delay", 1e-3)  # earlier than the previous submit
    assert [v.check for v in san.violations] == ["time_regression"]
    # equal times are fine (that is exactly what tie-breaking is for)
    san2 = runtime.Sanitizer()
    san2.on_acquire("delay", 1e-3)
    san2.on_acquire("delay", 1e-3)
    assert san2.ok


def test_double_flush_flags_and_sequential_flushes_do_not():
    san = runtime.Sanitizer()
    san.on_flush_begin("l0")
    san.on_flush_end("l0")
    san.on_flush_begin("l0")
    assert san.ok
    san.on_flush_begin("l0")
    assert [v.check for v in san.violations] == ["double_acquire"]


def test_buffer_overdrain_flags():
    san = runtime.Sanitizer()
    san.on_buffer_drain("l0", 4096, 4096)
    assert san.ok
    san.on_buffer_drain("l0", 4096, 1024)
    assert [v.check for v in san.violations] == ["negative_occupancy"]


def test_negative_counter_total_flags_once_per_floor():
    san = runtime.Sanitizer()
    san.on_counter("net_bytes", 10.0)
    san.on_counter("net_bytes", -5.0)
    san.on_counter("net_bytes", -5.0)  # no deeper: not re-flagged
    san.on_counter("net_bytes", -8.0)  # deeper: flagged again
    assert [v.check for v in san.violations] == ["negative_occupancy"] * 2


def test_generation_checks():
    san = runtime.Sanitizer()
    san.on_write_gen("k", 1, 0)
    san.on_write_gen("k", 2, 1)
    san.on_seal("k", 2, 2, applied=True)   # live seal: clean
    san.on_seal("k", 1, 2, applied=False)  # skipped stale slot: clean
    assert san.ok
    san.on_write_gen("k", 2, 2)            # stamp does not advance
    san.on_seal("k", 1, 2, applied=True)   # stale slot applied
    san.on_seal("k", 9, 2, applied=False)  # seal ahead of any stamp
    assert [v.check for v in san.violations] == [
        "generation_regression",
        "stale_apply",
        "future_generation",
    ]


def test_leaked_hold_reported_at_drain():
    san = runtime.Sanitizer()
    san.on_acquire("proxy_nic", 0.0)
    san.on_flush_begin("l1")
    san.on_drained("test")
    assert sorted(v.check for v in san.violations) == ["leaked_hold", "leaked_hold"]
    assert {v.subject for v in san.violations} == {"proxy_nic", "l1"}


def test_activate_restores_previous_sanitizer():
    assert runtime.ACTIVE is None
    outer = runtime.Sanitizer()
    with runtime.activate(outer):
        assert runtime.ACTIVE is outer
        with runtime.activate(runtime.Sanitizer()):
            assert runtime.ACTIVE is not outer
        assert runtime.ACTIVE is outer
    assert runtime.ACTIVE is None


# ----------------------------------------------------------------- fingerprints


def test_fingerprint_is_order_insensitive_in_keys_only():
    a = fingerprint({"x": 1, "y": 2})
    b = fingerprint({"y": 2, "x": 1})
    assert a == b
    assert a != fingerprint({"x": 1, "y": 3})
    assert len(a) == 16


def test_fingerprint_state_components():
    fps = fingerprint_state({"r": 1}, {"c": 2.0}, {"k": 3})
    assert tuple(sorted(fps)) == tuple(sorted(COMPONENTS))


# ---------------------------------------------------------------- compare_modes


def test_compare_modes_clean_scenario_is_ok():
    def build(mode):
        q = EventQueue()
        seen = {}
        for tag in ("a", "b", "c"):
            q.schedule(1e-3, lambda t, tag=tag: seen.__setitem__(tag, t))
        q.drain()
        return {"seen": dict(sorted(seen.items()))}

    outcome = runner.compare_modes(build)
    assert outcome["ok"]
    assert outcome["order_sensitive"] == []
    fps = outcome["fingerprints"]
    assert len({fps[m]["result"] for m in runner.MODES}) == 1


def test_compare_modes_flags_order_sensitive_result():
    def build(mode):
        q = EventQueue()
        order = []
        q.schedule(1e-3, lambda t: order.append("a"))
        q.schedule(1e-3, lambda t: order.append("b"))
        q.drain()
        return {"order": order}

    outcome = runner.compare_modes(build)
    assert not outcome["ok"]
    assert outcome["order_sensitive"] == ["result"]


def test_compare_modes_surfaces_runtime_violations():
    def build(mode):
        san = runtime.ACTIVE
        san.on_release("proxy_cpu")
        return {"constant": True}

    outcome = runner.compare_modes(build)
    assert not outcome["ok"]
    assert outcome["order_sensitive"] == []  # fingerprints agree; checks fired
    for mode in runner.MODES:
        assert outcome["sanitizer"][mode]["counts"] == {"negative_occupancy": 1}


# --------------------------------------------------------------------- fixtures


@pytest.mark.parametrize(
    "name,expect",
    [
        ("tie_ambiguity.py", "order_sensitive"),
        ("double_acquire.py", "violations"),
        ("stale_generation.py", "violations"),
    ],
)
def test_planted_fixtures_flag(name, expect):
    outcome = runner.run_fixture(FIXTURES / name)
    assert not outcome["ok"]
    if expect == "order_sensitive":
        assert "result" in outcome["order_sensitive"]
    else:
        assert outcome["order_sensitive"] == []
        assert any(
            outcome["sanitizer"][m]["violations"] for m in runner.MODES
        )


def test_stale_generation_fixture_reports_stale_apply():
    outcome = runner.run_fixture(FIXTURES / "stale_generation.py")
    checks = {
        v["check"]
        for m in runner.MODES
        for v in outcome["sanitizer"][m]["violations"]
    }
    assert checks == {"stale_apply"}


# ------------------------------------------------------------------- run + CLI


def test_run_sanitize_report_shape_and_determinism():
    fixture = str(FIXTURES / "tie_ambiguity.py")
    r1 = runner.run_sanitize(slices=(), fixtures=(fixture,))
    r2 = runner.run_sanitize(slices=(), fixtures=(fixture,))
    assert runner.render_json(r1) == runner.render_json(r2)
    assert not r1["ok"]
    assert r1["counters"]["sanitize_runs"] == 1.0
    assert r1["counters"]["sanitize_hazards"] >= 1.0
    assert r1["journal_kinds"]["sanitize_fixture"] == 1
    assert r1["journal_kinds"]["sanitize_hazard"] == 1


def test_run_sanitize_rejects_unknown_slice():
    with pytest.raises(ValueError, match="unknown slice"):
        runner.run_sanitize(slices=("warp",))


def test_cli_sanitize_engine_slice_clean():
    rc, out = _run_cli(
        ["sanitize", "--slices", "engine", "--objects", "40", "--requests", "40"]
    )
    assert rc == 0
    assert "result: clean" in out
    assert "slice engine: ok" in out


def test_cli_sanitize_flags_each_planted_fixture():
    for name in ("tie_ambiguity.py", "double_acquire.py", "stale_generation.py"):
        with pytest.raises(SystemExit) as exc:
            _run_cli(["sanitize", "--fixtures-only",
                      "--fixture", str(FIXTURES / name)])
        assert exc.value.code == 1


def test_cli_sanitize_writes_json_report(tmp_path):
    out_path = tmp_path / "sanitize.json"
    rc, out = _run_cli(
        ["sanitize", "--slices", "engine", "--objects", "40",
         "--requests", "40", "--json", "--out", str(out_path)]
    )
    assert rc == 0
    doc = out_path.read_text()
    assert '"ok": true' in doc
    assert doc.rstrip("\n") == out.rstrip("\n")


def test_sanitizer_off_leaves_outputs_untouched():
    """With no sanitizer active the hooks are no-ops: an engine run produces
    byte-identical results whether or not simsan was ever imported."""
    from repro.engine.core import Engine, EngineConfig
    from repro.engine.load import build_jobs

    def run_once():
        jobs, profile, _dram, _log = build_jobs(n_objects=40, n_requests=40, seed=7)
        return Engine(jobs, profile, EngineConfig(concurrency=4)).run().to_dict()

    assert runtime.ACTIVE is None
    first = run_once()
    san = runtime.Sanitizer()
    with runtime.activate(san):
        run_once()
    assert run_once() == first  # post-sanitize runs unchanged too
