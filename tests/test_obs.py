"""Tests for the observability subsystem (spans + metrics) and the PR-3
bugfixes: degradation-aware batch network paths, consistent client-hop
accounting, growing "latest" distributions, and O(1) log-buffer drops."""

import math

import numpy as np
import pytest

from repro.analysis.breakdown import aggregate_span_phases, span_shares
from repro.baselines.replication import ReplicatedStore
from repro.baselines.vanilla import VanillaMemcached
from repro.bench.profile import run_profile, serialise_profile
from repro.core.config import StoreConfig
from repro.core.logecmem import LogECMem
from repro.core.repair import repair_node
from repro.logstore.buffer import LogBuffer
from repro.logstore.records import LogRecord
from repro.obs.metrics import LatencyHistogram, MetricsRegistry
from repro.obs.span import NULL_SPAN, Span, Tracer
from repro.sim.clock import SimClock
from repro.sim.network import LinkDownError, NetworkModel
from repro.sim.params import HardwareProfile
from repro.workloads.zipf import LatestGenerator, ZipfianGenerator, zeta


def _loaded(n=24, **cfg):
    store = LogECMem(StoreConfig(k=4, r=3, payload_scale=1 / 16, **cfg))
    for i in range(n):
        store.write(f"user{i}")
    return store


# --------------------------------------------------------------------- spans


def test_span_children_laid_out_sequentially():
    root = Span("op", start_s=1.0)
    a = root.child("a", 0.25)
    b = root.child("b", 0.5)
    assert a.start_s == 1.0 and a.end_s == 1.25
    assert b.start_s == 1.25 and b.end_s == 1.75
    assert root.phase_seconds() == {"a": 0.25, "b": 0.5}


def test_disabled_tracer_hands_out_null_span():
    tracer = Tracer(SimClock(), enabled=False)
    span = tracer.start("op")
    assert span is NULL_SPAN
    assert span.child("x", 1.0) is NULL_SPAN
    tracer.finish(span, 1.0)
    assert tracer.last is None


def test_every_op_span_root_equals_reported_latency():
    store = _loaded()
    key = "user3"
    for op in (store.read, store.update, store.degraded_read):
        res = op(key)
        root = store.tracer.last
        assert root is not None
        assert root.duration_s == pytest.approx(res.latency_s)
        assert root.children, f"{root.name} span has no phases"


def test_update_span_phases_match_breakdown():
    store = _loaded()
    res = store.update("user5")
    phases = store.tracer.last.phase_seconds()
    parts = res.info["breakdown"]
    assert phases["client_hop"] == pytest.approx(parts["client"])
    assert phases["read_old_xor"] == pytest.approx(parts["reads"])
    assert phases["encode_delta"] == pytest.approx(parts["compute"])
    assert phases["ship_delta"] == pytest.approx(parts["writes"])
    assert phases["log_ack"] == pytest.approx(parts["log_stall"])


def test_repair_span_root_equals_repair_time():
    store = _loaded(n=48)
    victim = store.cluster.dram_ids()[0]
    store.cluster.kill(victim)
    result = repair_node(store, victim)
    root = store.tracer.last
    assert root.name == "repair"
    assert root.duration_s == pytest.approx(result.repair_time_s)
    assert sum(c.duration_s for c in root.children) == pytest.approx(
        result.repair_time_s
    )


def test_baseline_ops_emit_spans():
    for cls in (VanillaMemcached, ReplicatedStore):
        store = cls(StoreConfig(k=4, r=3, payload_scale=1 / 16))
        store.write("a")
        assert store.tracer.last.name == "write"
        store.read("a")
        assert store.tracer.last.name == "read"
        store.update("a")
        assert store.tracer.last.name == "update"


def test_span_aggregation_feeds_breakdown_analysis():
    store = _loaded()
    for i in range(6):
        store.update(f"user{i}")
    spans = store.tracer.drain()
    means = aggregate_span_phases(spans)
    assert "read_old_xor" in means["update"]
    shares = span_shares(spans)
    assert sum(shares["update"].values()) == pytest.approx(1.0)


# ------------------------------------------------------------------- metrics


def test_histogram_quantiles_are_deterministic_and_bounded():
    h = LatencyHistogram()
    values = [i * 1e-5 for i in range(1, 101)]
    for v in values:
        h.observe(v)
    assert h.count == 100
    assert h.min_s == pytest.approx(1e-5)
    assert h.max_s == pytest.approx(1e-3)
    assert h.min_s <= h.quantile(0.5) <= h.max_s
    # bin resolution: 1/32 decade => <= ~7.5% relative error at the median
    assert h.quantile(0.5) == pytest.approx(5e-4, rel=0.08)
    h2 = LatencyHistogram()
    for v in values:
        h2.observe(v)
    assert h2.summary() == h.summary()


def test_metrics_registry_wraps_counters_and_ingests_spans():
    from repro.sim.resources import Counters

    counters = Counters()
    reg = MetricsRegistry(counters, store="test")
    reg.add("x", 2)
    assert counters.get("x") == 2  # same bag, not a copy
    counters.add("x")  # simlint: disable=SIM004 -- ad-hoc name, generic-bag test
    assert reg["x"] == 3
    span = Span("update", 0.0)
    span.child("read_old_xor", 0.3)
    span.child("ship_delta", 0.2)
    span.finish(0.5)
    reg.observe_span(span)
    assert reg.op_latency["update"].count == 1
    assert reg.phase_breakdown("update") == {
        "read_old_xor": pytest.approx(0.3),
        "ship_delta": pytest.approx(0.2),
    }


def test_store_metrics_collect_per_op_histograms():
    store = _loaded()
    for i in range(8):
        store.read(f"user{i}")
    store.update("user1")
    snap = store.metrics.snapshot()
    assert snap["ops"]["read"]["count"] >= 8
    assert snap["ops"]["update"]["count"] == 1
    assert "read_old_xor" in snap["phases"]["update"]


# -------------------------------------------- degradation-aware batch paths


def _net():
    return NetworkModel(HardwareProfile())


def test_sequential_gets_honours_node_slowdown():
    net = _net()
    base = net.sequential_gets([4096], node_ids=["n0"])
    net.set_node_slowdown("n0", 3.0)
    assert net.sequential_gets([4096], node_ids=["n0"]) == pytest.approx(3 * base)
    # only the slowed element stretches
    two = net.sequential_gets([4096, 4096], node_ids=["n0", "n1"])
    assert two == pytest.approx(3 * base + base)


def test_parallel_puts_critical_path_is_slowest_target():
    net = _net()
    base = net.parallel_puts([4096, 4096], node_ids=["n0", "n1"])
    net.set_node_slowdown("n1", 2.5)
    assert net.parallel_puts([4096, 4096], node_ids=["n0", "n1"]) == pytest.approx(
        2.5 * base
    )


def test_batch_paths_raise_for_partitioned_links():
    net = _net()
    net.set_link_down("n1")
    with pytest.raises(LinkDownError):
        net.sequential_gets([64, 64], node_ids=["n0", "n1"])
    with pytest.raises(LinkDownError):
        net.parallel_puts([64], node_ids=["n1"])
    with pytest.raises(LinkDownError):
        net.parallel_gets([64], node_ids=["n1"])
    # without node ids the primitives stay degradation-blind by design
    assert net.sequential_gets([64]) > 0


def test_node_ids_must_match_sizes():
    with pytest.raises(ValueError):
        _net().sequential_gets([64, 64], node_ids=["n0"])


def test_slow_fault_on_data_node_lengthens_reads():
    """Regression (the chaos-exposed bug): a `slow` fault on a DRAM node
    must lengthen reads that go through the batch network paths."""
    store = _loaded()
    key = "user3"
    node_id = store._locate(key)[2]
    healthy = store.read(key).latency_s
    store.net.set_node_slowdown(node_id, 2.0)  # below degraded threshold
    slowed = store.read(key)
    assert not slowed.degraded
    assert slowed.latency_s > healthy * 1.4
    store.net.clear_node_slowdown(node_id)
    assert store.read(key).latency_s == pytest.approx(healthy)


def test_slow_xor_node_lengthens_updates():
    store = _loaded()
    key = "user3"
    sid = store._locate(key)[0]
    xor_node = store.stripe_index.get(sid).chunk_nodes[store.cfg.k]
    healthy = store.update(key).latency_s
    store.net.set_node_slowdown(xor_node, 4.0)
    assert store.update(key).latency_s > healthy


# ------------------------------------------------------ client_hop accounting


def test_client_hop_counts_rpc_and_pays_overhead():
    net = _net()
    p = net.profile
    latency = net.client_hop(1000)
    assert net.counters["net_rpcs"] == 1
    assert net.counters["net_messages"] == 2
    assert latency == pytest.approx(p.rtt_s + p.transfer_s(1000) + p.rpc_overhead_s)


# ------------------------------------------------------- latest distribution


def test_zipf_grow_matches_recompute():
    g = ZipfianGenerator(100, seed=1)
    g.grow(57)
    fresh = ZipfianGenerator(157, seed=1)
    assert g.n == 157
    assert g.zetan == pytest.approx(zeta(157, g.theta), rel=1e-12)
    assert g.eta == pytest.approx(fresh.eta, rel=1e-12)


def test_latest_hottest_key_tracks_newest_insert():
    gen = LatestGenerator(50, seed=7)
    for _ in range(300):
        gen.grow()
    assert gen.n == 350
    assert gen._zipf.n == 350  # underlying age distribution grew too
    draws = [gen.next() for _ in range(4000)]
    counts = {}
    for d in draws:
        counts[d] = counts.get(d, 0) + 1
    hottest = max(counts, key=lambda k: (counts[k], k))
    assert hottest == 349  # the newest item
    # recency skew: the newest decile dominates
    newest_decile = sum(1 for d in draws if d >= 315)
    assert newest_decile > len(draws) * 0.5


def test_latest_stale_state_regression():
    """Without growing zetan, item n-1 of the grown population would be hit
    with the *initial* population's skew; the grown generator must spread
    ages over the larger range."""
    gen = LatestGenerator(10, seed=3)
    gen.grow(990)
    ages = [gen.n - 1 - gen.next() for _ in range(2000)]
    assert max(ages) > 50  # frozen zetan would keep ages inside ~10


# ----------------------------------------------------------- log buffer drop


def _rec(sid, j, seq=0):
    from repro.ec.delta import ParityDelta

    delta = ParityDelta(
        stripe_id=sid, parity_index=j, offset=0,
        payload=np.ones(16, dtype=np.uint8), seq=seq,
    )
    return LogRecord.for_delta(delta, 16)


def test_buffer_drop_is_order_preserving():
    buf = LogBuffer(capacity_bytes=10_000, flush_threshold_bytes=5_000, merge=True)
    for sid in range(6):
        buf.add(_rec(sid, 1))
    assert buf.drop(2, 1) == 1
    assert buf.drop(2, 1) == 0  # already gone
    assert [r.stripe_id for r in buf.peek()] == [0, 1, 3, 4, 5]
    assert buf.logical_bytes == 5 * 16
    buf.add(_rec(2, 1))  # re-added records go to the back (FIFO)
    assert [r.stripe_id for r in buf.peek()] == [0, 1, 3, 4, 5, 2]


def test_buffer_merge_keeps_arrival_order():
    buf = LogBuffer(capacity_bytes=10_000, flush_threshold_bytes=5_000, merge=True)
    buf.add(_rec(0, 1, seq=0))
    buf.add(_rec(1, 1, seq=0))
    buf.add(_rec(0, 1, seq=1))  # merges into the first slot, no reorder
    assert buf.merges == 1
    assert [r.stripe_id for r in buf.peek()] == [0, 1]


# ----------------------------------------------------- profile determinism


def test_profile_two_runs_byte_identical_and_span_trees_equal():
    kwargs = dict(n_objects=120, n_requests=120, seed=9)
    a = run_profile(["exp2"], **kwargs)
    b = run_profile(["exp2"], **kwargs)
    assert serialise_profile(a) == serialise_profile(b)
    # span trees compare equal too (digests cover structure + durations)
    for store in a["experiments"]["exp2"]:
        assert (
            a["experiments"]["exp2"][store]["spans_digest"]
            == b["experiments"]["exp2"][store]["spans_digest"]
        )


def test_profile_snapshot_shape():
    doc = run_profile(["exp7"], n_objects=120, n_requests=120, seed=9)
    exp = doc["experiments"]["exp7"]
    assert exp["logecmem+assist"]["repair_time_s"] > 0
    assert exp["logecmem-noassist"]["repair_time_s"] >= exp[
        "logecmem+assist"
    ]["repair_time_s"]
    assert exp["logecmem"]["ops"]["repair"]["count"] == 2


def test_same_seed_stores_emit_identical_span_trees():
    trees = []
    for _ in range(2):
        store = _loaded()
        for i in range(6):
            store.read(f"user{i}")
            store.update(f"user{i}")
        trees.append("\n".join(s.render() for s in store.tracer.drain()))
    assert trees[0] == trees[1]


def test_chaos_report_carries_metrics():
    from repro.chaos import run_chaos
    from repro.workloads.ycsb import WorkloadSpec

    store = _loaded(n=0)
    spec = WorkloadSpec.read_update("50:50", n_objects=40, n_requests=40, seed=5)
    report = run_chaos(store, spec, expected_faults=1.0)
    assert "ops" in report.metrics
    assert report.metrics["ops"]  # at least one op type recorded
    assert "metrics" in report.to_dict()


# ------------------------------------------------------------ numeric sanity


def test_histogram_underflow_and_overflow_bins():
    h = LatencyHistogram()
    h.observe(0.0)
    h.observe(1e9)
    assert h.count == 2
    # underflow: conservative upper edge of the first bin (100 ns)
    assert h.quantile(0.0) == pytest.approx(1e-7)
    # overflow: clamped to the exact observed max
    assert h.quantile(1.0) == pytest.approx(1e9)
    assert not math.isinf(h.mean_s)
    with pytest.raises(ValueError):
        h.observe(-1.0)
