"""IPMem: Memcached + erasure coding with in-place parity updates (§6.1).

All k+r chunks of a stripe live on DRAM nodes.  An update reads the old data
chunk *and all r old parity chunks*, computes the parity deltas at the proxy
(Property 1), and writes everything back in place.  Those r parity reads are
exactly what LogECMem eliminates for the non-XOR parities.
"""

from __future__ import annotations

import numpy as np

from repro.core.interface import OpResult
from repro.core.striped import StripedStoreBase
from repro.ec.gf256 import gf_mul_scalar


class IPMem(StripedStoreBase):
    """In-place erasure-coded update baseline."""

    name = "ipmem"
    parity_in_dram = True

    def _update_impl(self, key: str, tombstone: bool) -> OpResult:
        cfg = self.cfg
        sid, seq, node_id, chunk, slot = self._locate(key)
        if not self._dram_reachable(node_id):
            from repro.core.striped import ChunkUnavailableError

            raise ChunkUnavailableError(
                f"cannot update {key!r}: its node {node_id} is down or "
                f"unreachable (repair first)"
            )
        new_version = self.versions[key] + 1
        new_value = (
            np.zeros(slot.phys_length, dtype=np.uint8)
            if tombstone
            else self._new_value(key, new_version)
        )
        span = self.tracer.start("update", key=key)
        latency = self.net.client_hop(64 + cfg.value_size)
        span.child("client_hop", latency)
        if sid is None:
            chunk.write_slot(slot, new_value)
            self.versions[key] = new_version
            get_s = self.net.sequential_gets([cfg.value_size], node_ids=[node_id])
            span.child("read_old", get_s, node=node_id)
            put_s = self.net.parallel_puts([cfg.value_size], node_ids=[node_id])
            span.child("put_object", put_s, node=node_id)
            latency += get_s + put_s
            self.tracer.finish(span, latency)
            return OpResult(latency_s=latency)

        client_s = latency
        rec = self.stripe_index.get(sid)
        parity_nodes = rec.chunk_nodes[cfg.k :]

        # read old data chunk object and ALL r old parity chunks
        old = chunk.read_slot(slot).copy()
        reads_s = self.net.sequential_gets(
            [cfg.value_size] + [cfg.chunk_size] * cfg.r,
            node_ids=[node_id] + parity_nodes,
        )
        span.child("read_old_parities", reads_s, node=node_id)
        self.counters.add("parity_chunk_reads", cfg.r)

        # deltas for every parity at the proxy, then in-place writes
        delta = old ^ new_value
        compute_s = cfg.profile.encode_s((1 + cfg.r) * cfg.value_size)
        span.child("encode_delta", compute_s)
        chunk.write_slot(slot, new_value)
        self._set_checksum(sid, seq, chunk.buffer)
        for j in range(cfg.r):
            parity = self.parity_chunks[(sid, j)]
            coeff = self.code.coefficient(j, seq)
            parity[slot.phys_offset : slot.phys_end] ^= gf_mul_scalar(coeff, delta)
            self._set_checksum(sid, cfg.k + j, parity)
        writes_s = self.net.parallel_puts(
            [cfg.value_size] + [cfg.chunk_size] * cfg.r,
            node_ids=[node_id] + parity_nodes,
        )
        span.child("ship_delta", writes_s, fanout=1 + cfg.r)
        self.versions[key] = new_version
        self.tracer.finish(span, client_s + reads_s + compute_s + writes_s)
        return OpResult(
            latency_s=client_s + reads_s + compute_s + writes_s,
            info={
                "breakdown": {
                    "client": client_s,
                    "reads": reads_s,
                    "compute": compute_s,
                    "writes": writes_s,
                    "log_stall": 0.0,
                }
            },
        )
