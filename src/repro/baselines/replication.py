"""(r+1)-way replication (§6.1).

Tolerates r failures like a (k, r) code but stores r+1 full copies.  Writes
and updates fan out to every replica; degraded reads just try the next
replica, which is why the paper shows replication with the lowest degraded
latency and by far the highest memory overhead.
"""

from __future__ import annotations

from repro.cluster.topology import Cluster
from repro.core.config import StoreConfig
from repro.core.interface import DataLossError, KVStore, OpResult
from repro.kvstore.chunk import make_value
from repro.obs import init_observability


class ReplicatedStore(KVStore):
    """Full-copy replication across r+1 nodes chosen on the hash ring."""

    name = "replication"

    def __init__(self, config: StoreConfig):
        self.cfg = config
        self.copies = config.r + 1
        self.cluster = Cluster(profile=config.profile, n_dram=config.n, n_log=0)
        if self.copies > config.n:
            raise ValueError(
                f"{self.copies}-way replication needs at least {self.copies} nodes"
            )
        self.net = self.cluster.network
        self.counters = self.cluster.counters
        self.versions: dict[str, int] = {}
        self.placement: dict[str, list[str]] = {}
        init_observability(self)

    def _phys_len(self) -> int:
        return max(1, round(self.cfg.value_size * self.cfg.payload_scale))

    def _replicate(self, key: str) -> list[str]:
        nodes = self.placement.get(key)
        if nodes is None:
            nodes = self.cluster.ring.lookup_many(key, self.copies)
            self.placement[key] = nodes
        return nodes

    def write(self, key: str) -> OpResult:
        if key in self.versions:
            raise KeyError(f"object {key!r} already exists; use update()")
        self.versions[key] = 0
        replicas = self._replicate(key)
        for nid in replicas:
            self.cluster.dram_nodes[nid].table.set(key, self.cfg.value_size)
        span = self.tracer.start("write", key=key)
        client_s = self.net.client_hop(64 + self.cfg.value_size)
        span.child("client_hop", client_s)
        put_s = self.net.parallel_puts(
            [self.cfg.value_size] * self.copies, node_ids=replicas
        )
        span.child("put_replicas", put_s, fanout=self.copies)
        self.counters.add("op_write")
        self.tracer.finish(span, client_s + put_s)
        return OpResult(latency_s=client_s + put_s)

    def read(self, key: str) -> OpResult:
        if key not in self.versions:
            raise KeyError(f"object {key!r} does not exist")
        primary = self._replicate(key)[0]
        if not self.cluster.dram_nodes[primary].alive or not self.net.reachable(
            primary
        ):
            result = self.degraded_read(key)
            result.degraded = True
            return result
        span = self.tracer.start("read", key=key)
        client_s = self.net.client_hop(64 + self.cfg.value_size)
        span.child("client_hop", client_s)
        get_s = self.net.sequential_gets([self.cfg.value_size], node_ids=[primary])
        span.child("fetch_object", get_s, node=primary)
        self.counters.add("op_read")
        self.tracer.finish(span, client_s + get_s)
        return OpResult(latency_s=client_s + get_s, value=self.expected_value(key))

    def update(self, key: str) -> OpResult:
        if key not in self.versions:
            raise KeyError(f"object {key!r} does not exist")
        self.versions[key] += 1
        replicas = self._replicate(key)
        for nid in replicas:
            self.cluster.dram_nodes[nid].table.set(key, self.cfg.value_size)
        span = self.tracer.start("update", key=key)
        client_s = self.net.client_hop(64 + self.cfg.value_size)
        span.child("client_hop", client_s)
        put_s = self.net.parallel_puts(
            [self.cfg.value_size] * self.copies, node_ids=replicas
        )
        span.child("put_replicas", put_s, fanout=self.copies)
        self.counters.add("op_update")
        self.tracer.finish(span, client_s + put_s)
        return OpResult(latency_s=client_s + put_s)

    def delete(self, key: str) -> OpResult:
        if key not in self.versions:
            raise KeyError(f"object {key!r} does not exist")
        replicas = self._replicate(key)
        for nid in replicas:
            self.cluster.dram_nodes[nid].table.delete(key)
        del self.versions[key]
        del self.placement[key]
        latency = self.net.client_hop(64) + self.net.parallel_puts(
            [64] * self.copies, node_ids=replicas
        )
        self.counters.add("op_delete")
        return OpResult(latency_s=latency)

    def degraded_read(self, key: str) -> OpResult:
        """Failed GET on the primary, then a plain read from the next live
        replica -- no decoding, hence the paper's low degraded latency."""
        if key not in self.versions:
            raise KeyError(f"object {key!r} does not exist")
        span = self.tracer.start("degraded_read", key=key)
        latency = self.net.client_hop(64 + self.cfg.value_size)
        span.child("client_hop", latency)
        failed_s = self.net.rpc(64, 0)  # the failed attempt
        span.child("failed_attempt", failed_s)
        latency += failed_s
        for nid in self._replicate(key)[1:]:
            if self.cluster.dram_nodes[nid].alive and self.net.reachable(nid):
                get_s = self.net.sequential_gets(
                    [self.cfg.value_size], node_ids=[nid]
                )
                span.child("fetch_replica", get_s, node=nid)
                latency += get_s
                self.counters.add("op_degraded_read")
                self.tracer.finish(span, latency)
                return OpResult(
                    latency_s=latency, value=self.expected_value(key), degraded=True
                )
            failed_s = self.net.rpc(64, 0)
            span.child("failed_attempt", failed_s)
            latency += failed_s
        raise DataLossError(f"all {self.copies} replicas of {key!r} are down")

    @property
    def memory_logical_bytes(self) -> int:
        return self.cluster.dram_logical_bytes

    def expected_value(self, key: str):
        return make_value(key, self.versions[key], self._phys_len())
