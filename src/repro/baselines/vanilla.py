"""Vanilla Memcached: single-copy, no reliability assurance (§6.1).

The paper's lower-bound baseline: fastest basic I/O because nothing is
encoded or replicated, but a failed node simply loses data.
"""

from __future__ import annotations

from repro.cluster.topology import Cluster
from repro.core.config import StoreConfig
from repro.core.interface import DataLossError, KVStore, OpResult
from repro.kvstore.chunk import make_value


class VanillaMemcached(KVStore):
    """One copy per object, spread by consistent hashing."""

    name = "vanilla"

    def __init__(self, config: StoreConfig):
        self.cfg = config
        self.cluster = Cluster(profile=config.profile, n_dram=config.n, n_log=0)
        self.net = self.cluster.network
        self.counters = self.cluster.counters
        self.versions: dict[str, int] = {}
        self.placement: dict[str, str] = {}

    def _phys_len(self) -> int:
        return max(1, round(self.cfg.value_size * self.cfg.payload_scale))

    def write(self, key: str) -> OpResult:
        if key in self.versions:
            raise KeyError(f"object {key!r} already exists; use update()")
        node_id = self.cluster.ring.lookup(key)
        self.placement[key] = node_id
        self.versions[key] = 0
        self.cluster.dram_nodes[node_id].table.set(key, self.cfg.value_size)
        latency = self.net.client_hop(64 + self.cfg.value_size)
        latency += self.net.parallel_puts([self.cfg.value_size])
        self.counters.add("op_write")
        return OpResult(latency_s=latency)

    def read(self, key: str) -> OpResult:
        if key not in self.versions:
            raise KeyError(f"object {key!r} does not exist")
        node = self.cluster.dram_nodes[self.placement[key]]
        if not node.alive:
            raise DataLossError(f"vanilla store lost {key!r} (no redundancy)")
        latency = self.net.client_hop(64 + self.cfg.value_size)
        latency += self.net.sequential_gets([self.cfg.value_size])
        self.counters.add("op_read")
        return OpResult(latency_s=latency, value=self.expected_value(key))

    def update(self, key: str) -> OpResult:
        if key not in self.versions:
            raise KeyError(f"object {key!r} does not exist")
        self.versions[key] += 1
        node = self.cluster.dram_nodes[self.placement[key]]
        node.table.set(key, self.cfg.value_size)  # in-place replace
        latency = self.net.client_hop(64 + self.cfg.value_size)
        latency += self.net.parallel_puts([self.cfg.value_size])
        self.counters.add("op_update")
        return OpResult(latency_s=latency)

    def delete(self, key: str) -> OpResult:
        if key not in self.versions:
            raise KeyError(f"object {key!r} does not exist")
        node = self.cluster.dram_nodes[self.placement.pop(key)]
        node.table.delete(key)
        del self.versions[key]
        latency = self.net.client_hop(64) + self.net.parallel_puts([64])
        self.counters.add("op_delete")
        return OpResult(latency_s=latency)

    def degraded_read(self, key: str) -> OpResult:
        raise DataLossError("vanilla Memcached has no redundancy to read from")

    @property
    def memory_logical_bytes(self) -> int:
        return self.cluster.dram_logical_bytes

    def expected_value(self, key: str):
        return make_value(key, self.versions[key], self._phys_len())
