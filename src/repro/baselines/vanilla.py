"""Vanilla Memcached: single-copy, no reliability assurance (§6.1).

The paper's lower-bound baseline: fastest basic I/O because nothing is
encoded or replicated, but a failed node simply loses data.
"""

from __future__ import annotations

from repro.cluster.topology import Cluster
from repro.core.config import StoreConfig
from repro.core.interface import DataLossError, KVStore, OpResult
from repro.kvstore.chunk import make_value
from repro.obs import init_observability


class VanillaMemcached(KVStore):
    """One copy per object, spread by consistent hashing."""

    name = "vanilla"

    def __init__(self, config: StoreConfig):
        self.cfg = config
        self.cluster = Cluster(profile=config.profile, n_dram=config.n, n_log=0)
        self.net = self.cluster.network
        self.counters = self.cluster.counters
        self.versions: dict[str, int] = {}
        self.placement: dict[str, str] = {}
        init_observability(self)

    def _phys_len(self) -> int:
        return max(1, round(self.cfg.value_size * self.cfg.payload_scale))

    def write(self, key: str) -> OpResult:
        if key in self.versions:
            raise KeyError(f"object {key!r} already exists; use update()")
        node_id = self.cluster.ring.lookup(key)
        self.placement[key] = node_id
        self.versions[key] = 0
        self.cluster.dram_nodes[node_id].table.set(key, self.cfg.value_size)
        span = self.tracer.start("write", key=key)
        client_s = self.net.client_hop(64 + self.cfg.value_size)
        span.child("client_hop", client_s)
        put_s = self.net.parallel_puts([self.cfg.value_size], node_ids=[node_id])
        span.child("put_object", put_s, node=node_id)
        self.counters.add("op_write")
        self.tracer.finish(span, client_s + put_s)
        return OpResult(latency_s=client_s + put_s)

    def read(self, key: str) -> OpResult:
        if key not in self.versions:
            raise KeyError(f"object {key!r} does not exist")
        node_id = self.placement[key]
        if not self.cluster.dram_nodes[node_id].alive:
            raise DataLossError(f"vanilla store lost {key!r} (no redundancy)")
        span = self.tracer.start("read", key=key)
        client_s = self.net.client_hop(64 + self.cfg.value_size)
        span.child("client_hop", client_s)
        get_s = self.net.sequential_gets([self.cfg.value_size], node_ids=[node_id])
        span.child("fetch_object", get_s, node=node_id)
        self.counters.add("op_read")
        self.tracer.finish(span, client_s + get_s)
        return OpResult(latency_s=client_s + get_s, value=self.expected_value(key))

    def update(self, key: str) -> OpResult:
        if key not in self.versions:
            raise KeyError(f"object {key!r} does not exist")
        self.versions[key] += 1
        node_id = self.placement[key]
        self.cluster.dram_nodes[node_id].table.set(key, self.cfg.value_size)
        span = self.tracer.start("update", key=key)
        client_s = self.net.client_hop(64 + self.cfg.value_size)
        span.child("client_hop", client_s)
        put_s = self.net.parallel_puts([self.cfg.value_size], node_ids=[node_id])
        span.child("put_object", put_s, node=node_id)
        self.counters.add("op_update")
        self.tracer.finish(span, client_s + put_s)
        return OpResult(latency_s=client_s + put_s)

    def delete(self, key: str) -> OpResult:
        if key not in self.versions:
            raise KeyError(f"object {key!r} does not exist")
        node_id = self.placement.pop(key)
        self.cluster.dram_nodes[node_id].table.delete(key)
        del self.versions[key]
        span = self.tracer.start("delete", key=key)
        client_s = self.net.client_hop(64)
        span.child("client_hop", client_s)
        put_s = self.net.parallel_puts([64], node_ids=[node_id])
        span.child("put_tombstone", put_s, node=node_id)
        self.counters.add("op_delete")
        self.tracer.finish(span, client_s + put_s)
        return OpResult(latency_s=client_s + put_s)

    def degraded_read(self, key: str) -> OpResult:
        raise DataLossError("vanilla Memcached has no redundancy to read from")

    @property
    def memory_logical_bytes(self) -> int:
        return self.cluster.dram_logical_bytes

    def expected_value(self, key: str):
        return make_value(key, self.versions[key], self._phys_len())
