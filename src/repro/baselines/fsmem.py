"""FSMem: Memcached + full-stripe updates with deferred GC (§2.2, §6.1).

An update never reads or patches parities: the new value is appended to the
encoding queues and becomes part of a brand-new stripe (BCStore-style).  The
costs show up elsewhere, exactly as the paper observes:

* **memory** -- the old versions (data *and* their stripes' parities) linger
  as stale items until garbage collection, so resident bytes grow with the
  update ratio (Table 1 / Figure 12);
* **GC re-computation** -- reclaiming a stripe with m updated chunks means
  reading its k-m still-active chunks and re-encoding (Figure 1(c)); with a
  large k and update-light workloads that dominates the amortised update
  cost (Figures 11 and 13).

GC runs deferred (once, at :meth:`FSMem.finalize`) by default, matching the
measured regime; ``StoreConfig.fsmem_gc_stale_threshold`` switches to inline
GC every time that many chunks are stale.  GC *cost* is always charged; space
reclamation is modelled separately by :meth:`FSMem.reclaim` because memcached
slabs hold freed items until reuse.
"""

from __future__ import annotations

import numpy as np

from repro.core.interface import OpResult
from repro.core.striped import StripedStoreBase


class FSMem(StripedStoreBase):
    """Full-stripe-update baseline with deferred garbage collection."""

    name = "fsmem"
    parity_in_dram = True

    def __init__(self, config):
        super().__init__(config)
        #: stripe id -> set of data chunk seq numbers replaced by updates
        self.stale_chunks: dict[int, set[int]] = {}
        self._stale_chunk_count = 0
        self._stale_version_bytes = 0  # every superseded version until reclaim
        self.gc_total_s = 0.0
        self.gc_deferred_s = 0.0  # the finalize-time share (amortised by the harness)
        self.gc_rounds = 0
        self.gc_chunk_reads = 0
        self._update_counter = 0

    # ------------------------------------------------------------------ update

    def _update_impl(self, key: str, tombstone: bool) -> OpResult:
        cfg = self.cfg
        sid, seq, node_id, chunk, slot = self._locate(key)
        new_version = self.versions[key] + 1
        new_value = (
            np.zeros(self._phys_value_len(), dtype=np.uint8)
            if tombstone
            else self._new_value(key, new_version)
        )
        span = self.tracer.start("update", key=key)
        latency = self.net.client_hop(64 + cfg.value_size)
        span.child("client_hop", latency)
        if sid is None:
            # object not sealed yet: replace it inside the open unit
            chunk.write_slot(slot, new_value)
            self.versions[key] = new_version
            put_s = self.net.parallel_puts([cfg.value_size], node_ids=[node_id])
            span.child("put_object", put_s, node=node_id)
            latency += put_s
            self.tracer.finish(span, latency)
            return OpResult(latency_s=latency)

        # full-stripe path: the new version enqueues toward a NEW stripe; the
        # old chunk is marked stale (and its bytes stay resident until GC)
        self.versions[key] = new_version
        new_node = self._select_queue(f"{key}#v{new_version}")
        latency += self._enqueue(key, new_node, new_value)
        self.cluster.dram_nodes[new_node].table.set(
            f"{key}@v{new_version}", cfg.value_size
        )
        put_s = self.net.parallel_puts([cfg.value_size], node_ids=[new_node])
        span.child("put_object", put_s, node=new_node)
        latency += put_s
        stale = self.stale_chunks.setdefault(sid, set())
        if seq not in stale:
            stale.add(seq)
            self._stale_chunk_count += 1
        self._stale_version_bytes += cfg.value_size
        seal_s = self._maybe_seal()
        if seal_s > 0:
            span.child("seal_stripe", seal_s)
        latency += seal_s
        self._update_counter += 1
        if (
            cfg.fsmem_gc_stale_threshold is not None
            and self._stale_chunk_count >= cfg.fsmem_gc_stale_threshold
        ):
            gc_s = self._run_gc()
            span.child("gc", gc_s)
            latency += gc_s
        self.tracer.finish(span, latency)
        return OpResult(latency_s=latency)

    # ---------------------------------------------------------------------- GC

    def _run_gc(self) -> float:
        """Re-encode every stripe holding stale chunks (Figure 1(b)/(c)).

        A stripe with m stale data chunks needs its k-m active chunks read
        back and a fresh parity set computed; a fully-replaced stripe is
        released without any reads.  Returns total GC seconds."""
        cfg = self.cfg
        total = 0.0
        for _sid, stale in sorted(self.stale_chunks.items()):
            m = len(stale)
            active = cfg.k - m
            if active > 0:
                # log-structured reclamation: read the live chunks back to the
                # proxy, re-encode, write the fresh parity set (live data
                # chunks are re-referenced into the new stripe node-locally)
                total += self.net.sequential_gets([cfg.chunk_size] * active)
                self.gc_chunk_reads += active
                total += cfg.profile.encode_s(cfg.k * cfg.chunk_size)
                total += self.net.parallel_puts([cfg.chunk_size] * cfg.r)
            self.counters.add("gc_stripes")
        self.stale_chunks.clear()
        self._stale_chunk_count = 0
        self.gc_total_s += total
        self.gc_rounds += 1
        return total

    def finalize(self) -> None:
        """Deferred GC: charge the whole-run re-computation cost (space is
        reclaimed separately via :meth:`reclaim`)."""
        if self.stale_chunks:
            self.gc_deferred_s += self._run_gc()
        super().finalize()

    def reclaim(self) -> int:
        """Release stale items from the memtables (post-GC slab reuse).

        Returns logical bytes freed.  Kept separate from :meth:`finalize` so
        experiments can measure memory in the paper's pre-reclamation regime
        and the ablation can measure the reclaimed one."""
        freed = 0
        for node in self.cluster.dram_nodes.values():
            # one pass in the memtable's insertion order (dict order is the
            # arrival order, so GC victims are selected oldest-first and the
            # victim sequence is identical across runs and hash seeds); only
            # the *latest* version of each object must survive
            victims = []
            for skey in node.table.keys():
                if "@v" not in skey:
                    continue
                base, _, ver = skey.rpartition("@v")
                if int(ver) != self.versions.get(base, -1):
                    victims.append(skey)
            for skey in victims:
                freed += node.table.get(skey).footprint
                node.table.delete(skey)
        # stale original-version items (objects that were updated at least once)
        for key, version in self.versions.items():
            if version > 0 and key not in self.deleted:
                for node in self.cluster.dram_nodes.values():
                    item = node.table.get(key)
                    if item is not None:
                        freed += item.footprint
                        node.table.delete(key)
                        break
        return freed

    # ------------------------------------------------------------------ metrics

    @property
    def stale_logical_bytes(self) -> int:
        """Bytes held by superseded object versions (Table 1's overhead).

        Every sealed update leaves its previous version resident until
        reclaim, so this equals (#sealed updates) * value_size."""
        return self._stale_version_bytes
