"""Baseline stores the paper compares against (§6.1).

* :class:`repro.baselines.vanilla.VanillaMemcached` -- no redundancy.
* :class:`repro.baselines.replication.ReplicatedStore` -- (r+1)-way replication.
* :class:`repro.baselines.ipmem.IPMem` -- Memcached + erasure coding with
  in-place parity updates.
* :class:`repro.baselines.fsmem.FSMem` -- Memcached + full-stripe updates
  with deferred GC (BCStore-style).
"""

from repro.baselines.vanilla import VanillaMemcached
from repro.baselines.replication import ReplicatedStore
from repro.baselines.ipmem import IPMem
from repro.baselines.fsmem import FSMem

__all__ = ["FSMem", "IPMem", "ReplicatedStore", "VanillaMemcached"]


def make_store(name: str, config):
    """Instantiate any system under test by its paper name."""
    from repro.core.logecmem import LogECMem

    registry = {
        "vanilla": VanillaMemcached,
        "replication": ReplicatedStore,
        "ipmem": IPMem,
        "fsmem": FSMem,
        "logecmem": LogECMem,
    }
    try:
        cls = registry[name.lower()]
    except KeyError:
        raise ValueError(f"unknown store {name!r}; choose from {sorted(registry)}") from None
    return cls(config)
