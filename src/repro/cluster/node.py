"""Storage nodes: DRAM nodes (memcached instances) and disk-backed log nodes.

A :class:`DRAMNode` is a memcached stand-in holding data chunks and XOR
parity chunks as items in a :class:`~repro.kvstore.memtable.MemTable`.

A :class:`LogNode` implements buffer logging (§3.3.2): incoming records land
in a DRAM buffer and are acknowledged immediately; the buffer flushes to disk
through a pluggable log scheme (PL/PLR/PLR-m/PLM) asynchronously, unless the
buffer is full, in which case the flush becomes synchronous backpressure on
the caller's critical path.
"""

from __future__ import annotations

from repro.kvstore.memtable import MemTable
from repro.logstore import make_scheme
from repro.logstore.base import ParityReadResult
from repro.logstore.buffer import LogBuffer
from repro.logstore.records import LogRecord
from repro.obs.events import NULL_JOURNAL, EventJournal
from repro.sim.disk import DiskModel
from repro.sim.params import HardwareProfile
from repro.sim.resources import Counters


class Node:
    """Base node: identity, alive/failed state and downtime accounting.

    ``fail``/``restore`` take the simulated time of the transition so that
    per-node downtime (and cluster availability) can be reported; both are
    idempotent and return whether the state actually changed, so callers can
    distinguish a real transition from a repeated fault on an already-down
    node (the chaos injector relies on this).
    """

    kind = "node"

    def __init__(self, node_id: str):
        self.node_id = node_id
        self.alive = True
        self.failed_at: float | None = None
        self.downtime_s = 0.0
        self.fail_count = 0
        self.restore_count = 0

    def fail(self, now: float = 0.0) -> bool:
        if not self.alive:
            return False
        self.alive = False
        self.failed_at = now
        self.fail_count += 1
        return True

    def restore(self, now: float = 0.0) -> bool:
        if self.alive:
            return False
        if self.failed_at is not None:
            self.downtime_s += max(0.0, now - self.failed_at)
        self.alive = True
        self.failed_at = None
        self.restore_count += 1
        return True

    def downtime_until(self, now: float) -> float:
        """Accumulated downtime including the currently-open outage, if any."""
        total = self.downtime_s
        if not self.alive and self.failed_at is not None:
            total += max(0.0, now - self.failed_at)
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "up" if self.alive else "DOWN"
        return f"{type(self).__name__}({self.node_id!r}, {state})"


class DRAMNode(Node):
    """One memcached instance: data chunks + XOR parity chunks in DRAM."""

    kind = "dram"

    def __init__(self, node_id: str):
        super().__init__(node_id)
        self.table = MemTable(name=node_id)

    @property
    def logical_bytes(self) -> int:
        return self.table.logical_bytes


class LogNode(Node):
    """One log node: DRAM delta buffer + disk with a log-layout scheme."""

    kind = "log"

    def __init__(
        self,
        node_id: str,
        profile: HardwareProfile,
        scheme: str = "plm",
        bytes_scale: float = 1.0,
        merge_buffer: bool = True,
        journal: EventJournal | None = None,
        counters: Counters | None = None,
    ):
        super().__init__(node_id)
        self.profile = profile
        self.journal = journal if journal is not None else NULL_JOURNAL
        self.counters = counters if counters is not None else Counters()
        self.disk = DiskModel(profile, name=f"{node_id}:disk")
        self.scheme = make_scheme(
            scheme,
            self.disk,
            bytes_scale=bytes_scale,
            journal=self.journal,
            counters=self.counters,
            node_id=node_id,
        )
        self.buffer = LogBuffer(
            capacity_bytes=profile.log_buffer_bytes,
            flush_threshold_bytes=profile.log_flush_threshold_bytes,
            merge=merge_buffer,
        )
        self.sync_flush_stalls = 0
        #: set when parity deltas could not be delivered (node down or link
        #: partitioned during an update): the persisted parity is stale and
        #: must be rebuilt via recover_log_node before it is read again
        self.needs_recovery = False

    @property
    def high_water_bytes(self) -> int:
        """Occupancy (bytes) past which this node signals backpressure."""
        return int(self.profile.log_buffer_bytes * self.profile.log_high_water_fraction)

    def backpressure(self, now: float) -> dict:
        """The occupancy signal exported upstream (engine / admission gate).

        ``above_high_water`` is the write-stall trigger; ``disk_backlog_s``
        the flush-stall trigger (``append`` already enforces the latter on
        the critical path).  Both are pure reads -- exporting the signal
        never perturbs the state being measured."""
        return {
            "buffered_bytes": self.buffer.logical_bytes,
            "occupancy": self.buffer.occupancy(),
            "above_high_water": self.buffer.logical_bytes >= self.high_water_bytes,
            "disk_backlog_s": self.disk.backlog_s(now),
        }

    # -- write path -----------------------------------------------------------

    def append(self, record: LogRecord, now: float) -> float:
        """Buffer one record; returns critical-path seconds.

        Normally 0: buffer logging acknowledges as soon as the record is in
        DRAM.  If the disk has fallen more than ``max_disk_backlog_s`` behind
        its flush queue, the write stalls until the backlog drains below the
        bound (the crash-consistency window must stay bounded)."""
        stall = 0.0
        backlog = self.disk.backlog_s(now)
        if backlog > self.profile.max_disk_backlog_s:
            self.sync_flush_stalls += 1
            self.counters.add("log_sync_stalls")
            stall = backlog - self.profile.max_disk_backlog_s
        merges_before = self.buffer.merges
        self.buffer.add(record)
        self.counters.add("log_buffer_appends")
        if self.buffer.merges > merges_before:
            self.counters.add("log_buffer_merges")
            self.journal.emit(
                "buffer_merge",
                node=self.node_id,
                stripe=record.stripe_id,
                parity=record.parity_index,
            )
        if self.buffer.should_flush():
            self._flush(now)  # asynchronous: occupies the disk, not the caller
        return stall

    def _flush(self, now: float) -> float:
        records = self.buffer.drain()
        if not records:
            return 0.0
        return self.scheme.flush(records, now)

    def settle(self, now: float) -> float:
        """Flush everything and finish lazy merges (end of run / pre-repair)."""
        dur = self._flush(now)
        dur += self.scheme.settle(now)
        return dur

    def switch_scheme(self, name: str, now: float) -> float:
        """Migrate the on-disk log to a different layout scheme.

        The node settles first (buffer drained, lazy merges finished) so all
        live state sits in the scheme's reserved regions; those regions are
        then read back sequentially and replayed through the new scheme's
        flush path, paying the new layout's write pattern.  The persisted
        parity bytes are identical before and after (the verifier's log-replay
        check holds across a switch).  Returns the migration's IO seconds;
        a no-op (same scheme) costs nothing.
        """
        old = self.scheme
        if name == old.name:
            return 0.0
        duration = self.settle(now)
        migrated = max(1, old.disk_logical_bytes)
        duration += self.disk.read(migrated, sequential=True, now=now + duration)
        records: list[LogRecord] = []
        for (sid, j), region in sorted(old.regions.items()):
            if region.base is not None:
                records.append(
                    LogRecord.for_chunk(sid, j, region.base, region.base_logical)
                )
            for delta, logical in zip(region.deltas, region.delta_logical):
                records.append(LogRecord.for_delta(delta, logical))
        new_scheme = make_scheme(
            name,
            self.disk,
            bytes_scale=old.bytes_scale,
            journal=self.journal,
            counters=self.counters,
            node_id=self.node_id,
        )
        if records:
            duration += new_scheme.flush(records, now + duration)
            duration += new_scheme.settle(now + duration)
        self.scheme = new_scheme
        self.counters.add("log_scheme_switches")
        self.journal.emit(
            "scheme_switch",
            node=self.node_id,
            old=old.name,
            new=new_scheme.name,
            regions=len(old.regions),
            nbytes=migrated,
            duration_s=duration,
        )
        return duration

    def drop_stripe_parity(self, stripe_id: int, parity_index: int) -> None:
        """Release everything held for one (stripe, parity): buffered records
        and the persisted reserved region (used by stripe GC)."""
        dropped = self.buffer.drop(stripe_id, parity_index)
        if dropped:
            self.counters.add("log_buffer_drops", dropped)
            self.journal.emit(
                "buffer_drop",
                node=self.node_id,
                stripe=stripe_id,
                parity=parity_index,
                records=dropped,
            )
        self.scheme.drop(stripe_id, parity_index)

    # -- repair path ----------------------------------------------------------

    def read_uptodate_parity(
        self, stripe_id: int, parity_index: int, phys_size: int, now: float
    ) -> ParityReadResult:
        """Up-to-date parity = persisted state + records still in the buffer."""
        result = self.scheme.read_parity(stripe_id, parity_index, phys_size, now)
        payload = result.payload
        has_base = result.has_base
        for rec in self.buffer.records_for(stripe_id, parity_index):
            if rec.is_chunk:
                payload = rec.chunk.copy()
                has_base = True
            else:
                payload[rec.delta.offset : rec.delta.end] ^= rec.delta.payload
        if not has_base:
            raise KeyError(
                f"log node {self.node_id}: no base parity for stripe {stripe_id} "
                f"parity {parity_index}"
            )
        return ParityReadResult(
            duration_s=result.duration_s,
            payload=payload,
            disk_reads=result.disk_reads,
            logical_bytes_read=result.logical_bytes_read,
            has_base=True,
        )
