"""Cluster assembly and failure injection.

A :class:`Cluster` owns the simulated machines of one experiment run: DRAM
nodes, log nodes, the shared clock, the network model and the global
counters.  Stores (LogECMem and the baselines) build their placement on top
of it; experiments inject failures through :meth:`Cluster.kill`.
"""

from __future__ import annotations

from repro.cluster.hashring import ConsistentHashRing
from repro.cluster.node import DRAMNode, LogNode, Node
from repro.obs.events import EventJournal
from repro.sim.clock import SimClock
from repro.sim.disk import DiskStats
from repro.sim.network import NetworkModel
from repro.sim.params import HardwareProfile
from repro.sim.resources import Counters


class UnknownNodeError(KeyError):
    """Lookup of a node id the cluster does not contain."""


class Cluster:
    """The simulated testbed for one run."""

    def __init__(
        self,
        profile: HardwareProfile | None = None,
        n_dram: int = 1,
        n_log: int = 0,
        scheme: str = "plm",
        bytes_scale: float = 1.0,
        merge_buffer: bool = True,
    ):
        if n_dram < 1:
            raise ValueError("need at least one DRAM node")
        self.profile = profile or HardwareProfile()
        self.clock = SimClock()
        self.counters = Counters()
        #: cluster-wide flight recorder, stamped from this cluster's clock
        self.journal = EventJournal(self.clock, self.counters)
        self.network = NetworkModel(self.profile, self.counters)
        self.dram_nodes: dict[str, DRAMNode] = {}
        self.log_nodes: dict[str, LogNode] = {}
        for i in range(n_dram):
            nid = f"dram{i}"
            self.dram_nodes[nid] = DRAMNode(nid)
        for i in range(n_log):
            nid = f"log{i}"
            self.log_nodes[nid] = LogNode(
                nid,
                self.profile,
                scheme=scheme,
                bytes_scale=bytes_scale,
                merge_buffer=merge_buffer,
                journal=self.journal,
                counters=self.counters,
            )
        self.ring = ConsistentHashRing(sorted(self.dram_nodes))

    # -- lookup ----------------------------------------------------------------

    def node(self, node_id: str) -> Node:
        if node_id in self.dram_nodes:
            return self.dram_nodes[node_id]
        if node_id in self.log_nodes:
            return self.log_nodes[node_id]
        known = self.dram_ids() + self.log_ids()
        raise UnknownNodeError(f"unknown node {node_id!r}; cluster has {known}")

    def dram_ids(self) -> list[str]:
        return sorted(self.dram_nodes)

    def log_ids(self) -> list[str]:
        return sorted(self.log_nodes)

    def alive_dram_ids(self) -> list[str]:
        return [nid for nid in self.dram_ids() if self.dram_nodes[nid].alive]

    def alive_log_ids(self) -> list[str]:
        return [nid for nid in self.log_ids() if self.log_nodes[nid].alive]

    # -- failure injection -------------------------------------------------------

    def kill(self, node_id: str, now: float | None = None) -> bool:
        """Fail a node (contents become unavailable, not erased -- the repair
        paths must not peek at them; tests enforce this via the alive flag).

        The transition is stamped with ``now`` (default: the cluster clock)
        for downtime accounting; returns False if the node was already down.
        """
        return self.node(node_id).fail(self.clock.now if now is None else now)

    def restore(self, node_id: str, now: float | None = None) -> bool:
        """Bring a node back; stamps the transition for downtime accounting.

        Returns False if the node was already alive."""
        return self.node(node_id).restore(self.clock.now if now is None else now)

    def downtime_s(self, node_id: str, now: float | None = None) -> float:
        """Accumulated downtime of one node, open outage included."""
        return self.node(node_id).downtime_until(
            self.clock.now if now is None else now
        )

    def availability(self, now: float | None = None) -> float:
        """Fraction of node-seconds the cluster spent alive over [0, now]."""
        t = self.clock.now if now is None else now
        if t <= 0:
            return 1.0
        nodes = list(self.dram_nodes.values()) + list(self.log_nodes.values())
        down = sum(n.downtime_until(t) for n in nodes)
        return max(0.0, 1.0 - down / (len(nodes) * t))

    # -- aggregate metrics ---------------------------------------------------------

    @property
    def dram_logical_bytes(self) -> int:
        """Total DRAM footprint across DRAM nodes (the paper's memory metric)."""
        return sum(n.logical_bytes for n in self.dram_nodes.values())

    def disk_stats(self) -> DiskStats:
        """Merged disk statistics across log nodes."""
        total = DiskStats()
        for node in self.log_nodes.values():
            s = node.disk.stats
            total.reads += s.reads
            total.writes += s.writes
            total.seeks += s.seeks
            total.read_bytes += s.read_bytes
            total.write_bytes += s.write_bytes
        return total

    def log_disk_logical_bytes(self) -> int:
        """Total live logical bytes on log-node disks across the cluster."""
        return sum(n.scheme.disk_logical_bytes for n in self.log_nodes.values())

    def settle_logs(self) -> None:
        """Flush all log buffers and finish lazy merges (pre-repair barrier)."""
        for node in self.log_nodes.values():
            node.settle(self.clock.now)
