"""Cluster substrate: nodes, placement, topology and failure injection.

Mirrors the paper's testbed shape (§6.2): for a (k, r) code there are
``k + 1`` DRAM nodes (all data chunks + the XOR parity), ``r - 1`` log nodes
(the remaining parities plus their delta logs), one proxy and one client.
Placement of keys to DRAM nodes uses consistent hashing, as the prototype
does via libmemcached.
"""

from repro.cluster.hashring import ConsistentHashRing
from repro.cluster.node import DRAMNode, LogNode, Node
from repro.cluster.topology import Cluster, UnknownNodeError

__all__ = [
    "Cluster",
    "ConsistentHashRing",
    "DRAMNode",
    "LogNode",
    "Node",
    "UnknownNodeError",
]
