"""Consistent hashing ring (Karger et al.), as used by libmemcached.

Maps keys to node ids with virtual nodes for smoothing.  Node removal only
remaps the removed node's arc, which is why the prototype (and ECHash before
it) relies on it for even distribution with minimal churn.
"""

from __future__ import annotations

import bisect
import hashlib


def _hash64(s: str) -> int:
    """Stable 64-bit hash (Python's builtin hash() is salted per process)."""
    return int.from_bytes(hashlib.md5(s.encode()).digest()[:8], "little")


class ConsistentHashRing:
    """Sorted-ring consistent hashing with virtual nodes."""

    def __init__(self, nodes: list[str] | None = None, vnodes: int = 64):
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._points: list[int] = []
        self._owners: dict[int, str] = {}
        self._nodes: set[str] = set()
        for node in nodes or []:
            self.add_node(node)

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> set[str]:
        return set(self._nodes)

    def add_node(self, node_id: str) -> None:
        if node_id in self._nodes:
            raise ValueError(f"node {node_id!r} already on the ring")
        self._nodes.add(node_id)
        for v in range(self.vnodes):
            point = _hash64(f"{node_id}#{v}")
            # extremely unlikely collision: nudge deterministically
            while point in self._owners:
                point = (point + 1) & 0xFFFFFFFFFFFFFFFF
            self._owners[point] = node_id
            bisect.insort(self._points, point)

    def remove_node(self, node_id: str) -> None:
        if node_id not in self._nodes:
            raise KeyError(f"node {node_id!r} not on the ring")
        self._nodes.discard(node_id)
        dead = [p for p, owner in self._owners.items() if owner == node_id]
        for p in dead:
            del self._owners[p]
        self._points = sorted(self._owners)

    def lookup(self, key: str) -> str:
        """Owning node for ``key`` (first ring point clockwise)."""
        if not self._points:
            raise LookupError("hash ring is empty")
        h = _hash64(key)
        idx = bisect.bisect(self._points, h)
        if idx == len(self._points):
            idx = 0
        return self._owners[self._points[idx]]

    def lookup_many(self, key: str, count: int) -> list[str]:
        """First ``count`` distinct nodes clockwise from ``key`` (replica sets)."""
        if count > len(self._nodes):
            raise ValueError(f"asked for {count} nodes, ring has {len(self._nodes)}")
        h = _hash64(key)
        idx = bisect.bisect(self._points, h)
        out: list[str] = []
        seen: set[str] = set()
        n = len(self._points)
        for step in range(n):
            owner = self._owners[self._points[(idx + step) % n]]
            if owner not in seen:
                seen.add(owner)
                out.append(owner)
                if len(out) == count:
                    break
        return out
