"""In-memory key-value substrate (the Memcached stand-in).

* :mod:`repro.kvstore.memtable` -- a hash-table KV store with per-item and
  aggregate memory accounting (logical bytes, i.e. what a real memcached
  instance would consume, independent of the scaled physical payloads).
* :mod:`repro.kvstore.chunk` -- fixed-size data/parity chunk buffers with a
  logical/physical byte split and first-fit object packing (§4.1's encoding
  queues gather small objects into 4 KiB units).
* :mod:`repro.kvstore.object_index` / :mod:`repro.kvstore.stripe_index` --
  the proxy metadata structures of §3.2.
"""

from repro.kvstore.memtable import MemTable, StoredItem
from repro.kvstore.chunk import Chunk, ChunkSlot
from repro.kvstore.object_index import ObjectIndex, ObjectLocation
from repro.kvstore.stripe_index import StripeIndex, StripeRecord

__all__ = [
    "Chunk",
    "ChunkSlot",
    "MemTable",
    "ObjectIndex",
    "ObjectLocation",
    "StoredItem",
    "StripeIndex",
    "StripeRecord",
]
