"""The proxy's Stripe Index (§3.2, §4.1).

For each stripe it records, in order, where all k data chunks and r parity
chunks live (node ids), and the object keys packed into each data chunk --
everything a degraded read or repair needs to gather the survivors.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class StripeRecord:
    """Placement and content metadata for one stripe.

    ``chunk_nodes[i]`` is the node id holding global chunk index ``i``
    (0..k-1 data, k the XOR parity, k+1..k+r-1 logged parities).
    ``chunk_keys[i]`` lists the object keys packed into data chunk ``i``.
    """

    stripe_id: int
    k: int
    r: int
    chunk_nodes: list[str]
    chunk_keys: list[list[str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.chunk_nodes) != self.k + self.r:
            raise ValueError(
                f"stripe {self.stripe_id}: expected {self.k + self.r} chunk "
                f"placements, got {len(self.chunk_nodes)}"
            )
        if not self.chunk_keys:
            self.chunk_keys = [[] for _ in range(self.k)]

    @property
    def n(self) -> int:
        return self.k + self.r

    def data_nodes(self) -> list[str]:
        return self.chunk_nodes[: self.k]

    def xor_parity_node(self) -> str:
        return self.chunk_nodes[self.k]

    def logged_parity_nodes(self) -> list[str]:
        return self.chunk_nodes[self.k + 1 :]

    def chunks_on_node(self, node_id: str) -> list[int]:
        """Global chunk indices of this stripe stored on ``node_id``."""
        return [i for i, nid in enumerate(self.chunk_nodes) if nid == node_id]


class StripeIndex:
    """stripe_id -> StripeRecord plus reverse node -> stripes map."""

    def __init__(self) -> None:
        self._stripes: dict[int, StripeRecord] = {}
        self._by_node: dict[str, set[int]] = {}

    def __len__(self) -> int:
        return len(self._stripes)

    def __contains__(self, stripe_id: int) -> bool:
        return stripe_id in self._stripes

    def put(self, record: StripeRecord) -> None:
        self._stripes[record.stripe_id] = record
        for nid in sorted(set(record.chunk_nodes)):
            self._by_node.setdefault(nid, set()).add(record.stripe_id)

    def get(self, stripe_id: int) -> StripeRecord:
        rec = self._stripes.get(stripe_id)
        if rec is None:
            raise KeyError(f"stripe {stripe_id} is not indexed")
        return rec

    def stripes_on_node(self, node_id: str) -> list[int]:
        """All stripe ids with at least one chunk on ``node_id`` (sorted for
        deterministic repair order)."""
        return sorted(self._by_node.get(node_id, ()))

    def remove(self, stripe_id: int) -> None:
        """Forget a stripe (used when GC re-forms it into new stripes)."""
        rec = self._stripes.pop(stripe_id, None)
        if rec is None:
            raise KeyError(f"stripe {stripe_id} is not indexed")
        for nid in sorted(set(rec.chunk_nodes)):
            bucket = self._by_node.get(nid)
            if bucket is not None:
                bucket.discard(stripe_id)
                if not bucket:
                    del self._by_node[nid]

    def stripe_ids(self):
        return self._stripes.keys()
