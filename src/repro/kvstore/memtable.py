"""Hash-table KV store with memory accounting.

Stands in for one memcached v1.4 instance.  Each item tracks both the
*logical* size (what the paper's memory-overhead plots measure: the item's
value bytes at full scale plus key and item-header overhead) and an optional
*physical* payload (the scaled-down bytes actually kept for erasure-coding
correctness).  All aggregate accounting uses logical bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Per-item metadata overhead of a memcached item header + pointers (bytes).
ITEM_OVERHEAD = 56


@dataclass
class StoredItem:
    """One stored KV item."""

    key: str
    logical_size: int
    payload: np.ndarray | None = None
    version: int = 0

    @property
    def footprint(self) -> int:
        """Logical DRAM footprint: value + key + item header."""
        return self.logical_size + len(self.key) + ITEM_OVERHEAD


class MemTable:
    """One node's in-memory store with O(1) get/set/delete and live accounting."""

    def __init__(self, name: str = "memtable"):
        self.name = name
        self._items: dict[str, StoredItem] = {}
        self._logical_bytes = 0

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, key: str) -> bool:
        return key in self._items

    def set(
        self,
        key: str,
        logical_size: int,
        payload: np.ndarray | None = None,
        version: int = 0,
    ) -> StoredItem:
        """Insert or replace an item; accounting stays consistent on replace."""
        if logical_size < 0:
            raise ValueError(f"negative logical_size {logical_size}")
        old = self._items.get(key)
        if old is not None:
            self._logical_bytes -= old.footprint
        item = StoredItem(key=key, logical_size=logical_size, payload=payload, version=version)
        self._items[key] = item
        self._logical_bytes += item.footprint
        return item

    def get(self, key: str) -> StoredItem | None:
        return self._items.get(key)

    def delete(self, key: str) -> bool:
        """Remove an item; returns False if it was absent."""
        item = self._items.pop(key, None)
        if item is None:
            return False
        self._logical_bytes -= item.footprint
        return True

    def keys(self):
        return self._items.keys()

    def items(self):
        return self._items.items()

    @property
    def logical_bytes(self) -> int:
        """Total logical DRAM footprint of this node."""
        return self._logical_bytes

    def clear(self) -> None:
        self._items.clear()
        self._logical_bytes = 0

    def verify_accounting(self) -> bool:
        """Invariant check used by tests: running total == recomputed total."""
        return self._logical_bytes == sum(i.footprint for i in self._items.values())
