"""Memcached text protocol (the wire format the prototype builds on, §6.1).

Implements the classic ASCII protocol subset LogECMem's proxy exercises
through libmemcached: ``set``, ``get``/``gets``, ``delete``, ``cas``,
``touch``-free expiry semantics omitted (the paper's store never expires).

Two halves:

* codec functions (:func:`encode_command`, :func:`parse_command`,
  :func:`encode_response`, :func:`parse_response`) -- pure byte-level
  round-trippable encoders/decoders,
* :class:`MemcachedServer` -- a command interpreter over a
  :class:`~repro.kvstore.memtable.MemTable`, with CAS token semantics.

This layer is deliberately independent of the simulation: it operates on
real bytes and is what a socket front-end would speak.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kvstore.memtable import MemTable

CRLF = b"\r\n"
MAX_KEY_LEN = 250


class ProtocolError(ValueError):
    """Malformed command or response line."""


@dataclass(frozen=True)
class Command:
    """One parsed client command."""

    verb: str
    key: str
    flags: int = 0
    value: bytes = b""
    cas_token: int | None = None


def _check_key(key: str) -> str:
    if not key or len(key) > MAX_KEY_LEN or any(c in key for c in " \r\n\t"):
        raise ProtocolError(f"illegal key {key!r}")
    return key


def encode_command(cmd: Command) -> bytes:
    """Serialise a command to protocol bytes."""
    _check_key(cmd.key)
    if cmd.verb == "set":
        head = f"set {cmd.key} {cmd.flags} 0 {len(cmd.value)}".encode()
        return head + CRLF + cmd.value + CRLF
    if cmd.verb == "cas":
        if cmd.cas_token is None:
            raise ProtocolError("cas needs a token")
        head = f"cas {cmd.key} {cmd.flags} 0 {len(cmd.value)} {cmd.cas_token}".encode()
        return head + CRLF + cmd.value + CRLF
    if cmd.verb in ("get", "gets"):
        return f"{cmd.verb} {cmd.key}".encode() + CRLF
    if cmd.verb == "delete":
        return f"delete {cmd.key}".encode() + CRLF
    raise ProtocolError(f"unknown verb {cmd.verb!r}")


def parse_command(data: bytes) -> tuple[Command, bytes]:
    """Parse one command off the front of ``data``; returns (command, rest)."""
    nl = data.find(CRLF)
    if nl < 0:
        raise ProtocolError("no complete command line")
    line = data[:nl].decode("ascii", errors="strict")
    rest = data[nl + 2 :]
    parts = line.split(" ")
    verb = parts[0]
    if verb in ("get", "gets", "delete"):
        if len(parts) != 2:
            raise ProtocolError(f"bad {verb} line: {line!r}")
        return Command(verb=verb, key=_check_key(parts[1])), rest
    if verb in ("set", "cas"):
        want = 5 if verb == "set" else 6
        if len(parts) != want:
            raise ProtocolError(f"bad {verb} line: {line!r}")
        key = _check_key(parts[1])
        try:
            flags, _exptime, nbytes = int(parts[2]), int(parts[3]), int(parts[4])
            token = int(parts[5]) if verb == "cas" else None
        except ValueError as exc:
            raise ProtocolError(f"bad numeric field in {line!r}") from exc
        if len(rest) < nbytes + 2 or rest[nbytes : nbytes + 2] != CRLF:
            raise ProtocolError("value block truncated or unterminated")
        value = rest[:nbytes]
        return (
            Command(verb=verb, key=key, flags=flags, value=value, cas_token=token),
            rest[nbytes + 2 :],
        )
    raise ProtocolError(f"unknown verb {verb!r}")


def encode_value_response(key: str, flags: int, value: bytes, cas: int | None = None) -> bytes:
    """A VALUE block followed by END."""
    if cas is None:
        head = f"VALUE {key} {flags} {len(value)}".encode()
    else:
        head = f"VALUE {key} {flags} {len(value)} {cas}".encode()
    return head + CRLF + value + CRLF + b"END" + CRLF


def parse_value_response(data: bytes) -> tuple[str, int, bytes, int | None] | None:
    """Parse a VALUE/END response; None for a bare END (miss)."""
    if data == b"END" + CRLF:
        return None
    nl = data.find(CRLF)
    if nl < 0 or not data.startswith(b"VALUE "):
        raise ProtocolError("malformed value response")
    parts = data[:nl].decode().split(" ")
    if len(parts) not in (4, 5):
        raise ProtocolError("malformed VALUE header")
    key, flags, nbytes = parts[1], int(parts[2]), int(parts[3])
    cas = int(parts[4]) if len(parts) == 5 else None
    body = data[nl + 2 :]
    if body[nbytes : nbytes + 2] != CRLF or not body.endswith(b"END" + CRLF):
        raise ProtocolError("malformed value body")
    return key, flags, body[:nbytes], cas


class MemcachedServer:
    """Command interpreter over one MemTable, with CAS tokens."""

    def __init__(self, table: MemTable | None = None):
        self.table = table if table is not None else MemTable()
        self._flags: dict[str, int] = {}
        self._cas: dict[str, int] = {}
        self._next_cas = 1

    def execute(self, cmd: Command) -> bytes:
        """Run one command; returns the protocol response bytes."""
        handler = getattr(self, f"_do_{cmd.verb}", None)
        if handler is None:
            return b"ERROR" + CRLF
        return handler(cmd)

    def handle(self, data: bytes) -> bytes:
        """Parse-and-run every command in ``data``; concatenated responses."""
        out = b""
        while data:
            cmd, data = parse_command(data)
            out += self.execute(cmd)
        return out

    # -- verbs ------------------------------------------------------------

    def _store(self, cmd: Command) -> None:
        self.table.set(cmd.key, len(cmd.value), payload=cmd.value)
        self._flags[cmd.key] = cmd.flags
        self._cas[cmd.key] = self._next_cas
        self._next_cas += 1

    def _do_set(self, cmd: Command) -> bytes:
        self._store(cmd)
        return b"STORED" + CRLF

    def _do_cas(self, cmd: Command) -> bytes:
        if cmd.key not in self.table:
            return b"NOT_FOUND" + CRLF
        if self._cas.get(cmd.key) != cmd.cas_token:
            return b"EXISTS" + CRLF
        self._store(cmd)
        return b"STORED" + CRLF

    def _do_get(self, cmd: Command) -> bytes:
        item = self.table.get(cmd.key)
        if item is None:
            return b"END" + CRLF
        return encode_value_response(
            cmd.key, self._flags.get(cmd.key, 0), bytes(item.payload)
        )

    def _do_gets(self, cmd: Command) -> bytes:
        item = self.table.get(cmd.key)
        if item is None:
            return b"END" + CRLF
        return encode_value_response(
            cmd.key, self._flags.get(cmd.key, 0), bytes(item.payload),
            cas=self._cas.get(cmd.key, 0),
        )

    def _do_delete(self, cmd: Command) -> bytes:
        if self.table.delete(cmd.key):
            self._flags.pop(cmd.key, None)
            self._cas.pop(cmd.key, None)
            return b"DELETED" + CRLF
        return b"NOT_FOUND" + CRLF
