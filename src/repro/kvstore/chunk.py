"""Fixed-size chunk buffers with logical/physical byte split.

The proxy's encoding queues (§4.1) gather object values into fixed-size units
(default 4 KiB) that become data chunks.  To keep paper-scale experiments
laptop-sized, a chunk has

* a **logical size** -- the real chunk size used for every byte of cost and
  memory accounting, and
* a **physical buffer** -- ``logical_size * payload_scale`` actual bytes on
  which all erasure-coding arithmetic runs.

Objects are packed first-come-first-serve; each object occupies a contiguous
slot addressed by (logical offset, logical length) with a parallel physical
slot.  With ``payload_scale == 1`` the two coincide exactly.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ChunkSlot:
    """Placement of one object inside a chunk, in both address spaces."""

    key: str
    offset: int          # logical offset within the chunk
    length: int          # logical length
    phys_offset: int
    phys_length: int

    @property
    def end(self) -> int:
        return self.offset + self.length

    @property
    def phys_end(self) -> int:
        return self.phys_offset + self.phys_length


class Chunk:
    """A fixed-size data or parity chunk with FCFS object packing."""

    def __init__(self, logical_size: int, payload_scale: float = 1.0):
        if logical_size <= 0:
            raise ValueError(f"logical_size must be positive, got {logical_size}")
        if not 0 < payload_scale <= 1:
            raise ValueError(f"payload_scale must be in (0, 1], got {payload_scale}")
        self.logical_size = int(logical_size)
        self.payload_scale = float(payload_scale)
        self.physical_size = max(1, round(logical_size * payload_scale))
        self.buffer = np.zeros(self.physical_size, dtype=np.uint8)
        self.slots: list[ChunkSlot] = []
        self._cursor = 0       # next free logical byte
        self._phys_cursor = 0  # next free physical byte

    # ----------------------------------------------------------------- packing

    def free_logical(self) -> int:
        return self.logical_size - self._cursor

    def _phys_len(self, logical_len: int) -> int:
        return max(1, round(logical_len * self.payload_scale))

    def fits(self, logical_len: int) -> bool:
        return (
            logical_len <= self.free_logical()
            and self._phys_len(logical_len) <= self.physical_size - self._phys_cursor
        )

    def append(self, key: str, logical_len: int, value: np.ndarray) -> ChunkSlot:
        """Pack one object value at the end of the chunk (FCFS).

        ``value`` must already be scaled to the physical length for this
        logical length.
        """
        if not self.fits(logical_len):
            raise ValueError(
                f"object of {logical_len} logical bytes does not fit "
                f"(free={self.free_logical()})"
            )
        plen = self._phys_len(logical_len)
        value = np.asarray(value, dtype=np.uint8)
        if value.size != plen:
            raise ValueError(f"physical value must be {plen} bytes, got {value.size}")
        slot = ChunkSlot(
            key=key,
            offset=self._cursor,
            length=logical_len,
            phys_offset=self._phys_cursor,
            phys_length=plen,
        )
        self.buffer[slot.phys_offset : slot.phys_end] = value
        self.slots.append(slot)
        self._cursor += logical_len
        self._phys_cursor += plen
        return slot

    # ----------------------------------------------------------------- access

    def read_slot(self, slot: ChunkSlot) -> np.ndarray:
        """Physical bytes of one object (a view, not a copy)."""
        return self.buffer[slot.phys_offset : slot.phys_end]

    def write_slot(self, slot: ChunkSlot, value: np.ndarray) -> None:
        """Overwrite one object's physical bytes in place (in-place update)."""
        value = np.asarray(value, dtype=np.uint8)
        if value.size != slot.phys_length:
            raise ValueError(
                f"value must be {slot.phys_length} physical bytes, got {value.size}"
            )
        self.buffer[slot.phys_offset : slot.phys_end] = value

    def slot_for(self, key: str) -> ChunkSlot | None:
        # newest first: a delete-then-rewrite can pack the same key twice
        # into one chunk, and only the latest slot holds live bytes
        for slot in reversed(self.slots):
            if slot.key == key:
                return slot
        return None

    @property
    def object_count(self) -> int:
        return len(self.slots)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Chunk(logical={self.logical_size}, physical={self.physical_size}, "
            f"objects={len(self.slots)}, used={self._cursor})"
        )


def make_value(key: str, version: int, phys_length: int) -> np.ndarray:
    """Deterministic physical value bytes for (key, version).

    Used by stores and tests so that reconstruction correctness (degraded
    reads, repairs) can be verified bit-exactly without storing a golden
    copy.  The seed is a stable hash (not Python's salted ``hash()``) so
    values are identical across processes and runs.
    """
    seed = zlib.crc32(f"{key}\x00{version}".encode()) or 1
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=phys_length, dtype=np.uint8)
