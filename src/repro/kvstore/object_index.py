"""The proxy's Object Index (§3.2, §4.1).

Maps an object's key to its stripe, its data chunk's sequence number within
the stripe, and the (offset, length) of the object inside that chunk.  This
is exactly the metadata the update and degraded-read workflows look up first.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ObjectLocation:
    """Where one object lives."""

    stripe_id: int
    seq_no: int      # data chunk index within the stripe, 0 <= seq_no < k
    offset: int      # logical offset within the data chunk
    length: int      # logical length

    @property
    def end(self) -> int:
        return self.offset + self.length


class ObjectIndex:
    """key -> ObjectLocation with O(1) lookup."""

    def __init__(self) -> None:
        self._index: dict[str, ObjectLocation] = {}

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: str) -> bool:
        return key in self._index

    def put(self, key: str, location: ObjectLocation) -> None:
        self._index[key] = location

    def get(self, key: str) -> ObjectLocation | None:
        return self._index.get(key)

    def lookup(self, key: str) -> ObjectLocation:
        loc = self._index.get(key)
        if loc is None:
            raise KeyError(f"object {key!r} is not indexed")
        return loc

    def remove(self, key: str) -> bool:
        return self._index.pop(key, None) is not None

    def keys(self):
        return self._index.keys()
