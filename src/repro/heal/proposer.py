"""Stage 2: map classified incidents to remediation action plans.

The mapping encodes the repair playbook the harness previously hard-wired,
plus the adaptive pieces this subsystem adds:

* ``node_crash``     -> ``repair_node`` (log-assisted rebuild, §5.3);
* ``node_blip``      -> ``observe`` after a grace period -- a blip restores
  itself; if the node is still down when the grace expires, the observation
  escalates to a ``repair_node``;
* ``stale_parity``   -> ``recover_log`` (re-encode from DRAM, §3.3.2);
* ``straggler`` / ``partition`` -> ``traffic_backoff`` (widen the proxy's
  retry knobs, reversible); resolution proposes the matching
  ``release_backoff``;
* ``disk_stall``     -> ``scheme_switch`` once the stall window has passed,
  target layout chosen by :func:`repro.core.adaptive.choose_log_scheme`;
* ``buffer_overrun`` -> ``flush_logs`` (settle the buffer so backpressure
  drains off the write path).
"""

from __future__ import annotations

from repro.heal.incidents import Action, Incident


class Proposer:
    """Incident -> ordered action plan; owns the global action sequence."""

    def __init__(self, blip_grace_s: float = 2e-3):
        self.blip_grace_s = blip_grace_s
        self._seq = 0
        self.proposed: list[Action] = []

    def _action(self, kind: str, incident: Incident, **kwargs) -> Action:
        action = Action(
            kind=kind,
            node_id=incident.node_id,
            seq=self._seq,
            incident_kind=incident.kind,
            **kwargs,
        )
        self._seq += 1
        self.proposed.append(action)
        return action

    def propose(self, incident: Incident, now: float) -> list[Action]:
        kind = incident.kind
        if kind == "node_crash":
            return [self._action("repair_node", incident)]
        if kind == "node_blip":
            return [
                self._action(
                    "observe", incident, not_before_s=now + self.blip_grace_s
                )
            ]
        if kind == "stale_parity":
            return [self._action("recover_log", incident)]
        if kind in ("straggler", "partition", "slo_burn"):
            # slo_burn shares the backoff playbook: shedding pressure at the
            # proxy is the only reversible lever against pure degradation
            return [self._action("traffic_backoff", incident, reversible=True)]
        if kind == "disk_stall":
            # switching layouts mid-stall would pay the stall itself; wait
            # for the injected window to pass, then migrate
            delay = incident.details.get("duration_s", 0.0)
            return [
                self._action("scheme_switch", incident, not_before_s=now + delay)
            ]
        if kind == "buffer_overrun":
            return [self._action("flush_logs", incident)]
        raise ValueError(f"unhandled incident kind {kind!r}")  # pragma: no cover

    def on_resolved(self, incident: Incident, now: float) -> list[Action]:
        """Follow-up actions once an incident's fault healed."""
        if incident.kind in ("straggler", "partition", "slo_burn"):
            return [self._action("release_backoff", incident, reversible=True)]
        return []

    def escalate(self, action: Action) -> list[Action]:
        """What a failed/expired action escalates to (may be nothing)."""
        if action.kind == "observe":
            follow = Action(
                kind="repair_node",
                node_id=action.node_id,
                seq=self._seq,
                incident_kind=action.incident_kind,
            )
            self._seq += 1
            self.proposed.append(follow)
            return [follow]
        return []
