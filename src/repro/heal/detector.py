"""Stage 1: classify journal events + counter movement into incidents.

The detector is a *pure observer* of the flight recorder: it keeps a cursor
over the cluster journal (robust to ring eviction -- per-kind counts survive,
so the cursor is maintained in total-emitted space) and, each poll, folds the
fresh events into typed :class:`~repro.heal.incidents.Incident`\\ s:

* ``fault_inject`` events map per fault kind -- a DRAM ``crash``/``blip``
  becomes ``node_crash``/``node_blip``; the same faults on a *log* node
  become ``stale_parity`` (the buffer is lost, the persisted log is stale);
  ``slow`` -> ``straggler``, ``partition`` -> ``partition``,
  ``stall`` -> ``disk_stall``;
* ``stale_mark`` with reason ``missed_delta`` (an update could not reach a
  log node) also raises ``stale_parity``;
* log-node ``sync_flush_stalls`` counter movement between polls raises
  ``buffer_overrun`` -- a degradation no single journal event announces.

Closer events (``fault_heal``, ``repair_done``, ``stale_recover``) resolve
matching open incidents; duplicates of an open incident are suppressed (one
incident per (kind, node) at a time), counted under
``heal_incidents_suppressed``.
"""

from __future__ import annotations

from repro.cluster.topology import Cluster
from repro.heal.incidents import Incident

#: fault_inject attrs["kind"] -> incident kind, for DRAM-node targets
_DRAM_FAULT_INCIDENTS = {
    "crash": "node_crash",
    "blip": "node_blip",
    "slow": "straggler",
    "partition": "partition",
    "stall": "disk_stall",
}

#: fault heal kind -> incident kinds it resolves
_HEAL_RESOLVES = {
    "blip": ("node_blip", "stale_parity"),
    "slow": ("straggler",),
    "partition": ("partition",),
}


class Detector:
    """Folds fresh journal events and counter deltas into typed incidents."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self.journal = cluster.journal
        self.counters = cluster.counters
        #: cursor in total-emitted-event space (survives ring eviction)
        self._seen = sum(self.journal.counts.values())
        #: last-seen sync_flush_stalls per log node (crash resets the field)
        self._stall_marks = {
            nid: node.sync_flush_stalls for nid, node in cluster.log_nodes.items()
        }
        self._seq = 0
        self.open: dict[tuple[str, str], Incident] = {}
        self.incidents: list[Incident] = []
        self.suppressed = 0

    # ------------------------------------------------------------------ polling

    def _fresh_events(self):
        """Journal events emitted since the last poll (heal_* excluded --
        the plane must not classify its own pipeline traffic)."""
        total = sum(self.journal.counts.values())
        new = total - self._seen
        self._seen = total
        if new <= 0:
            return []
        retained = self.journal.events()
        return [
            ev
            for ev in retained[max(0, len(retained) - new) :]
            if not ev.kind.startswith("heal_")
        ]

    def _raise_incident(self, kind: str, node: str, now: float, **details):
        existing = self.open.get((kind, node))
        if existing is not None and not existing.resolved:
            self.suppressed += 1
            self.counters.add("heal_incidents_suppressed")
            return None
        inc = Incident(
            kind=kind, node_id=node, detected_s=now, seq=self._seq, details=details
        )
        self._seq += 1
        self.open[inc.key] = inc
        self.incidents.append(inc)
        self.counters.add("heal_incidents")
        return inc

    def _resolve(self, kinds: tuple[str, ...], node: str, now: float):
        resolved = []
        for kind in kinds:
            inc = self.open.get((kind, node))
            if inc is not None and not inc.resolved:
                inc.resolved = True
                inc.resolved_s = now
                resolved.append(inc)
        return resolved

    def poll(self, now: float) -> tuple[list[Incident], list[Incident]]:
        """Classify everything new; returns (fresh incidents, resolutions)."""
        fresh: list[Incident] = []
        resolved: list[Incident] = []
        for ev in self._fresh_events():
            kind, attrs = ev.kind, ev.attrs
            if kind == "fault_inject":
                node = attrs["node"]
                fkind = attrs["kind"]
                if node in self.cluster.log_nodes and fkind in ("crash", "blip"):
                    ikind = "stale_parity"
                else:
                    ikind = _DRAM_FAULT_INCIDENTS[fkind]
                inc = self._raise_incident(
                    ikind,
                    node,
                    now,
                    fault=fkind,
                    at_s=ev.t_s,
                    duration_s=attrs.get("duration_s", 0.0),
                    magnitude=attrs.get("magnitude", 0.0),
                )
                if inc is not None:
                    fresh.append(inc)
            elif kind == "stale_mark" and attrs.get("reason") == "missed_delta":
                inc = self._raise_incident(
                    "stale_parity", attrs["node"], now, fault="missed_delta",
                    at_s=ev.t_s,
                )
                if inc is not None:
                    fresh.append(inc)
            elif kind == "fault_heal":
                resolved += self._resolve(
                    _HEAL_RESOLVES.get(attrs.get("kind"), ()), attrs["node"], now
                )
            elif kind == "repair_done":
                resolved += self._resolve(
                    ("node_crash", "node_blip"), attrs["node"], now
                )
            elif kind == "stale_recover":
                resolved += self._resolve(("stale_parity",), attrs["node"], now)
            elif kind == "telemetry_slo_burn":
                # telemetry-derived: the latency SLO's error budget is
                # burning faster than it accrues (cluster-wide signal)
                inc = self._raise_incident(
                    "slo_burn",
                    attrs.get("node", "_cluster"),
                    now,
                    burn_rate=attrs.get("burn_rate", 0.0),
                    at_s=ev.t_s,
                )
                if inc is not None:
                    fresh.append(inc)
            elif kind == "telemetry_slo_ok":
                resolved += self._resolve(
                    ("slo_burn",), attrs.get("node", "_cluster"), now
                )

        # counter-derived detection: backpressure stalls between polls
        for nid in sorted(self.cluster.log_nodes):
            node = self.cluster.log_nodes[nid]
            last = self._stall_marks.get(nid, 0)
            cur = node.sync_flush_stalls
            self._stall_marks[nid] = cur
            if cur > last:
                inc = self._raise_incident(
                    "buffer_overrun", nid, now, stalls=cur - last
                )
                if inc is not None:
                    fresh.append(inc)
        return fresh, resolved
