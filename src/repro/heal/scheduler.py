"""Stage 4: rate-limited action scheduling that cannot starve the workload.

The scheduler holds proposed actions in global proposal order (``seq``) and
releases at most one per ``min_gap_s`` of simulated time, so remediation IO
interleaves with foreground requests instead of monopolising the clock.  Two
ordering guarantees hold no matter how actions are deferred or delayed:

* **per-node FIFO** -- an action for node N never runs before an earlier
  (lower-seq) still-queued action for N.  ``next_ready`` scans in seq order
  and *blocks* a node the moment it passes over one of its actions, so a
  later same-node action can never overtake (the hypothesis property test
  drives this);
* **deferral keeps the slot** -- a deferred action re-enters at its original
  seq with a later ``not_before_s``, so deferral delays a node's plan without
  reordering it.
"""

from __future__ import annotations

import math
from bisect import insort

from repro.heal.incidents import Action


class ActionScheduler:
    """Seq-ordered queue with a minimum simulated-time gap between releases."""

    def __init__(self, min_gap_s: float = 5e-4, max_defers: int = 8):
        if min_gap_s < 0:
            raise ValueError(f"min_gap_s must be >= 0, got {min_gap_s}")
        self.min_gap_s = min_gap_s
        self.max_defers = max_defers
        self._queue: list[tuple[int, Action]] = []  # kept sorted by seq
        self._last_release_s = -math.inf
        self.released = 0
        self.deferred = 0

    def __len__(self) -> int:
        return len(self._queue)

    def pending(self) -> list[Action]:
        return [a for _, a in self._queue]

    def push(self, action: Action) -> None:
        insort(self._queue, (action.seq, action))

    def next_ready(self, now: float) -> Action | None:
        """Pop the first runnable action, or None.

        Runnable = its ``not_before_s`` has passed, the rate gap since the
        last release has elapsed, and no earlier action for the same node is
        still queued ahead of it."""
        if now - self._last_release_s < self.min_gap_s:
            return None
        blocked: set[str] = set()
        for i, (_, action) in enumerate(self._queue):
            if action.node_id in blocked:
                continue
            if action.not_before_s <= now:
                del self._queue[i]
                self._last_release_s = now
                self.released += 1
                return action
            blocked.add(action.node_id)
        return None

    def defer(self, action: Action, until_s: float) -> bool:
        """Re-queue at the original seq with a later release time.

        Returns False once the action has exhausted ``max_defers`` -- the
        caller must escalate instead of queueing it again."""
        action.defers += 1
        self.deferred += 1
        if action.defers > self.max_defers:
            return False
        action.not_before_s = until_s
        self.push(action)
        return True

    def next_release_s(self, now: float) -> float:
        """Earliest simulated time anything could become runnable (for the
        end-of-run quiesce loop); ``inf`` when the queue is empty."""
        if not self._queue:
            return math.inf
        earliest = min(a.not_before_s for _, a in self._queue)
        return max(earliest, self._last_release_s + self.min_gap_s, now)
