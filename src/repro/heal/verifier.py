"""Stage 3: invariant gating around every executed action.

Each action is bracketed by two *scoped* invariant sweeps built from the
checkers in :mod:`repro.chaos.invariants` -- scoped because the full sweep
reconstructs every object and verifies every stripe, which would dwarf the
action being verified.  A :class:`Verification` samples:

* durability on the first ``max_keys`` live keys (degraded reconstruction
  end to end);
* parity consistency on the first ``max_stripes`` stripes;
* log replay on up to ``max_parities`` logged parities *of the acted-on
  node* (only for log-affecting actions).

The gate compares violation *sets*: an action fails verification only if the
post-check shows violations the pre-check did not -- pre-existing damage
(e.g. the very incident being repaired) never blocks its own remediation.
The checkers reuse the stores' real read machinery and so perturb cost
counters; that perturbation is deterministic and is part of the seeded run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.chaos.invariants import check_durability
from repro.heal.incidents import Action

#: action kinds whose verification includes the log-replay check
_LOG_ACTIONS = ("flush_logs", "recover_log", "scheme_switch")


@dataclass
class Verification:
    """One scoped invariant sweep around an action."""

    stage: str  # "pre" | "post"
    objects_checked: int = 0
    stripes_checked: int = 0
    parities_checked: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "stage": self.stage,
            "objects_checked": self.objects_checked,
            "stripes_checked": self.stripes_checked,
            "parities_checked": self.parities_checked,
            "violations": sorted(self.violations),
        }


class Verifier:
    """Scoped pre/post invariant checks with a new-violation gate."""

    def __init__(
        self, max_keys: int = 6, max_stripes: int = 6, max_parities: int = 6
    ):
        self.max_keys = max_keys
        self.max_stripes = max_stripes
        self.max_parities = max_parities

    def check(self, store, action: Action, stage: str) -> Verification:
        v = Verification(stage=stage)
        if not hasattr(store, "stripe_index"):
            return v  # baselines without striped machinery: nothing checkable
        keys = sorted(k for k in store.versions if k not in store.deleted)
        keys = keys[: self.max_keys]
        v.objects_checked, violations = check_durability(store, keys)
        v.violations = [x.describe() for x in violations]
        for sid in sorted(store.stripe_index.stripe_ids())[: self.max_stripes]:
            v.stripes_checked += 1
            if not store.verify_stripe(sid):
                v.violations.append(
                    f"[parity_inconsistent] stripe {sid}: "
                    "DRAM parity != encode(data chunks)"
                )
        if action.kind in _LOG_ACTIONS:
            self._check_node_log_replay(store, action.node_id, v)
        return v

    def _check_node_log_replay(self, store, node_id: str, v: Verification) -> None:
        """Replay up to ``max_parities`` of this node's logged parities."""
        if not hasattr(store, "uptodate_logged_parity"):
            return
        node = store.cluster.log_nodes.get(node_id)
        if node is None or not node.alive:
            return  # a down log node has nothing to replay
        cfg = store.cfg
        for sid in sorted(store.stripe_index.stripes_on_node(node_id)):
            if v.parities_checked >= self.max_parities:
                return
            rec = store.stripe_index.get(sid)
            data = np.stack(
                [store.data_chunks[(sid, i)].buffer for i in range(cfg.k)]
            )
            fresh = store.code.encode(data)
            for j in range(1, cfg.r):
                if rec.chunk_nodes[cfg.k + j] != node_id:
                    continue
                if v.parities_checked >= self.max_parities:
                    return
                v.parities_checked += 1
                try:
                    replayed = store.uptodate_logged_parity(sid, j)
                except Exception as exc:
                    v.violations.append(
                        f"[log_replay] stripe {sid} parity {j}: "
                        f"replay failed: {type(exc).__name__}: {exc}"
                    )
                    continue
                if not np.array_equal(replayed, fresh[j]):
                    v.violations.append(
                        f"[log_replay] stripe {sid} parity {j}: "
                        "replayed parity != encode(data chunks)"
                    )

    @staticmethod
    def new_violations(pre: Verification, post: Verification) -> list[str]:
        """Violations the action *introduced* (present post, absent pre)."""
        before = set(pre.violations)
        return sorted(x for x in post.violations if x not in before)
