"""Closed-loop resilience experiment: the same seeded chaos run, with and
without the control plane.

The *open-loop* arm runs the chaos harness with automatic repair disabled --
faults land, transients heal on their own schedule, but crashes stay down
and stale parities stay stale: the state of the reproduction before this
subsystem, where a human wires detection to repair.  The *closed-loop* arm
runs the identical store/workload/schedule with a :class:`ControlPlane`
attached.  Both arms share the seed, so the fault schedules are identical
and the MTTR/availability deltas are attributable to the plane alone.
"""

from __future__ import annotations

import math

from repro.baselines import make_store
from repro.chaos.harness import ChaosReport, run_chaos
from repro.core.config import StoreConfig
from repro.heal.plane import ControlPlane
from repro.workloads import WorkloadSpec


def _arm_summary(report: ChaosReport) -> dict:
    return {
        "mttr_ms": round(report.mttr_s * 1e3, 6),
        "availability_pct": round(report.availability * 100.0, 6),
        "violations": report.violations,
        "ops_acked": report.ops_acked,
        "ops_failed": report.ops_failed,
        "degraded_reads": report.degraded_reads,
        "faults_fired": dict(sorted(report.faults_fired.items())),
        "makespan_ms": round(report.makespan_s * 1e3, 6),
        "fingerprint": report.fingerprint(),
    }


def run_heal_experiment(
    store_name: str = "logecmem",
    scheme: str = "plm",
    k: int = 6,
    r: int = 3,
    value_size: int = 4096,
    ratio: str = "50:50",
    n_objects: int = 600,
    n_requests: int = 600,
    seed: int = 42,
    expected_faults: float = 6.0,
    plane: ControlPlane | None = None,
) -> dict:
    """Run both arms and return a deterministic comparison document.

    ``expected_faults`` defaults higher than the plain chaos command so a
    typical seed draws at least one crash -- the fault family whose window
    never closes open-loop, which is what MTTR/availability separate on.
    """
    reports: dict[str, ChaosReport] = {}
    for arm in ("disabled", "enabled"):
        config = StoreConfig(k=k, r=r, value_size=value_size, scheme=scheme)
        store = make_store(store_name, config)
        spec = WorkloadSpec.read_update(
            ratio,
            n_objects=n_objects,
            n_requests=n_requests,
            value_size=value_size,
            seed=seed,
        )
        control_plane = (plane or ControlPlane()) if arm == "enabled" else None
        if arm == "enabled" and plane is not None and plane.store is not None:
            raise ValueError("pass a fresh (unattached) ControlPlane")
        reports[arm] = run_chaos(
            store,
            spec,
            expected_faults=expected_faults,
            repair=False,
            control_plane=control_plane,
        )
    disabled, enabled = reports["disabled"], reports["enabled"]
    doc = {
        "meta": {
            "store": store_name,
            "scheme": scheme,
            "k": k,
            "r": r,
            "ratio": ratio,
            "objects": n_objects,
            "requests": n_requests,
            "seed": seed,
            "expected_faults": expected_faults,
        },
        "disabled": _arm_summary(disabled),
        "enabled": _arm_summary(enabled),
        "heal": enabled.heal,
        "mttr_improvement_ms": round((disabled.mttr_s - enabled.mttr_s) * 1e3, 6),
        "availability_gain_pct": round(
            (enabled.availability - disabled.availability) * 100.0, 6
        ),
    }
    doc["reports"] = reports  # not serialised; CLI/tests read the full reports
    return doc


def experiment_ok(doc: dict) -> list[str]:
    """Acceptance checks for one experiment document; returns problems.

    The enabled arm must hold its invariants, report a finite MTTR, and
    strictly beat the open-loop arm on both MTTR and availability whenever a
    crash actually fired (without one, both arms see only self-healing
    transients and the plane has nothing durable to win on).
    """
    problems: list[str] = []
    enabled, disabled = doc["enabled"], doc["disabled"]
    if enabled["violations"]:
        problems.append(f"enabled arm has {enabled['violations']} invariant violations")
    if not math.isfinite(enabled["mttr_ms"]):
        problems.append("enabled arm MTTR is not finite")
    crashes = disabled["faults_fired"].get("crash", 0)
    if crashes:
        if not enabled["mttr_ms"] < disabled["mttr_ms"]:
            problems.append(
                f"MTTR not improved: enabled {enabled['mttr_ms']}ms "
                f">= disabled {disabled['mttr_ms']}ms"
            )
        if not enabled["availability_pct"] > disabled["availability_pct"]:
            problems.append(
                f"availability not improved: enabled {enabled['availability_pct']}% "
                f"<= disabled {disabled['availability_pct']}%"
            )
    return problems
