"""Self-healing control plane: detect -> propose -> verify -> execute.

The four stages run on the simulated clock against the flight recorder and
counter bag (never the fault schedule), turning chaos runs into closed-loop
resilience experiments:

* :mod:`repro.heal.detector`  -- journal/counter movement -> typed incidents;
* :mod:`repro.heal.proposer`  -- incidents -> remediation action plans;
* :mod:`repro.heal.verifier`  -- scoped invariant checks bracketing actions;
* :mod:`repro.heal.scheduler` -- rate-limited, per-node-FIFO action queue;
* :mod:`repro.heal.plane`     -- the loop tying the stages together;
* :mod:`repro.heal.experiment` -- the with/without-plane comparison behind
  ``python -m repro heal``.
"""

from repro.heal.detector import Detector
from repro.heal.experiment import experiment_ok, run_heal_experiment
from repro.heal.incidents import ACTION_KINDS, INCIDENT_KINDS, Action, Incident
from repro.heal.plane import ControlPlane
from repro.heal.proposer import Proposer
from repro.heal.scheduler import ActionScheduler
from repro.heal.verifier import Verification, Verifier

__all__ = [
    "ACTION_KINDS",
    "Action",
    "ActionScheduler",
    "ControlPlane",
    "Detector",
    "INCIDENT_KINDS",
    "Incident",
    "Proposer",
    "Verification",
    "Verifier",
    "experiment_ok",
    "run_heal_experiment",
]
