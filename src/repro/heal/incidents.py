"""Typed incident and action taxonomies for the self-healing control plane.

An :class:`Incident` is a *classified degradation*: the detector reduces raw
journal events and counter movements to one of :data:`INCIDENT_KINDS`.  An
:class:`Action` is one *remediation step* the proposer derived from an
incident; the scheduler orders actions and the plane executes them under
invariant verification.  Both taxonomies are closed tuples (like
``EVENT_KINDS``): constructors reject unknown kinds so a typo in the
detector or proposer is a test failure, not a silently-new category.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: every degradation the detector can classify, one per fault family the
#: chaos schedule can produce (plus counter-derived buffer overruns)
INCIDENT_KINDS = (
    "buffer_overrun",   # log node hit sync-flush backpressure stalls
    "disk_stall",       # injected disk stall window on a log node
    "node_blip",        # transient DRAM node unavailability
    "node_crash",       # DRAM node down, contents unavailable
    "partition",        # node link unreachable
    "slo_burn",         # telemetry: latency SLO error budget burning
    "stale_parity",     # logged parity stale (log crash/blip or missed delta)
    "straggler",        # node exchanges slowed by a factor
)

#: every remediation step the proposer can emit
ACTION_KINDS = (
    "flush_logs",       # settle a log node's buffer + lazy merges
    "observe",          # wait out a grace period, escalate if still down
    "recover_log",      # rebuild stale logged parities from DRAM state
    "release_backoff",  # undo traffic_backoff once the fault healed
    "repair_node",      # rebuild a failed DRAM node's chunks
    "scheme_switch",    # migrate a log node's on-disk layout
    "traffic_backoff",  # widen proxy retry/timeout knobs (reversible)
)


@dataclass
class Incident:
    """One classified degradation, keyed by (kind, node) for deduplication."""

    kind: str
    node_id: str
    detected_s: float
    seq: int
    details: dict = field(default_factory=dict)
    resolved: bool = False
    resolved_s: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in INCIDENT_KINDS:
            raise ValueError(
                f"unknown incident kind {self.kind!r}; taxonomy: {INCIDENT_KINDS}"
            )

    @property
    def key(self) -> tuple[str, str]:
        return (self.kind, self.node_id)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "node": self.node_id,
            "detected_s": round(self.detected_s, 9),
            "seq": self.seq,
            "details": {
                k: round(v, 9) if isinstance(v, float) else v
                for k, v in sorted(self.details.items())
            },
            "resolved": self.resolved,
            "resolved_s": (
                round(self.resolved_s, 9) if self.resolved_s is not None else None
            ),
        }


@dataclass
class Action:
    """One remediation step; ``seq`` is the global proposal order the
    scheduler must preserve per node."""

    kind: str
    node_id: str
    seq: int
    incident_kind: str = ""
    not_before_s: float = 0.0
    reversible: bool = False
    details: dict = field(default_factory=dict)
    defers: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ACTION_KINDS:
            raise ValueError(
                f"unknown action kind {self.kind!r}; taxonomy: {ACTION_KINDS}"
            )

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "node": self.node_id,
            "seq": self.seq,
            "incident": self.incident_kind,
            "not_before_s": round(self.not_before_s, 9),
            "reversible": self.reversible,
            "defers": self.defers,
            "details": {
                k: round(v, 9) if isinstance(v, float) else v
                for k, v in sorted(self.details.items())
            },
        }
