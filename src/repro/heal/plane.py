"""The control plane: detect -> propose -> verify -> execute on the sim clock.

:class:`ControlPlane` wires the four stages together and is the only piece
that mutates cluster state.  The chaos harness polls it from its event pump
(every clock advance), so the plane observes faults with the same visibility
a real sidecar daemon would have: the flight recorder, the counter bag and
the node/link state -- never the fault schedule itself.

Execution protocol (what the journal shows for every action, matched by
``seq``)::

    heal_detect -> heal_propose -> heal_verify(pre) -> heal_execute
                                   -> heal_verify(post) [-> heal_rollback]

The verifier gates on *new* violations: a reversible action (traffic
backoff) is undone on failure (``heal_rollback`` mode ``revert``); an
irreversible one escalates (mode ``escalate``).  Actions whose preconditions
are not met (e.g. recovering a log node behind a still-open partition) are
deferred at their original queue position; exhausted deferrals are abandoned
(mode ``abandon``).  Everything the plane does lands in the shared counter
bag (``heal_*``), so same-seed runs are byte-identical.
"""

from __future__ import annotations

import math

from repro.chaos.policy import RetryPolicy
from repro.core.adaptive import choose_log_scheme
from repro.core.interface import DataLossError, KVStore
from repro.heal.detector import Detector
from repro.heal.incidents import Action
from repro.heal.proposer import Proposer
from repro.heal.scheduler import ActionScheduler
from repro.heal.verifier import Verifier


class ControlPlane:
    """Autonomous remediation loop over one store's cluster."""

    def __init__(
        self,
        min_gap_s: float = 5e-4,
        blip_grace_s: float = 2e-3,
        defer_backoff_s: float = 2e-3,
        max_defers: int = 8,
        backoff_factor: float = 2.0,
        verify_keys: int = 6,
        verify_stripes: int = 6,
        verify_parities: int = 6,
    ):
        self.min_gap_s = min_gap_s
        self.defer_backoff_s = defer_backoff_s
        self.backoff_factor = backoff_factor
        self.proposer = Proposer(blip_grace_s=blip_grace_s)
        self.scheduler = ActionScheduler(min_gap_s=min_gap_s, max_defers=max_defers)
        self.verifier = Verifier(
            max_keys=verify_keys,
            max_stripes=verify_stripes,
            max_parities=verify_parities,
        )
        self.store: KVStore | None = None
        self.detector: Detector | None = None
        self.policy: RetryPolicy | None = None
        self._note = lambda when, text: None
        self._busy = False
        self._backoffs: dict[str, float] = {}
        self.executed: list[dict] = []
        self.rollbacks = 0
        self.escalations = 0

    # ------------------------------------------------------------------ wiring

    def attach(self, store: KVStore, policy: RetryPolicy | None = None, note=None):
        """Bind to a store's cluster (once, before the run starts)."""
        if self.store is not None:
            raise RuntimeError("control plane is already attached")
        self.store = store
        self.detector = Detector(store.cluster)
        self.policy = policy
        if note is not None:
            self._note = note
        return self

    @property
    def clock(self):
        return self.store.cluster.clock

    @property
    def journal(self):
        return self.store.cluster.journal

    @property
    def counters(self):
        return self.store.cluster.counters

    @property
    def pending(self) -> int:
        return len(self.scheduler)

    # ------------------------------------------------------------------- loop

    def poll(self, now: float) -> None:
        """One control-plane tick: classify, plan, and run what is due."""
        if self.store is None or self._busy:
            return
        self._busy = True
        try:
            fresh, resolved = self.detector.poll(now)
            for inc in fresh:
                self.journal.emit(
                    "heal_detect", kind=inc.kind, node=inc.node_id, seq=inc.seq
                )
                self._note(now, f"heal: detected {inc.kind} on {inc.node_id}")
                for action in self.proposer.propose(inc, now):
                    self._propose(action)
            for inc in resolved:
                for action in self.proposer.on_resolved(inc, now):
                    self._propose(action)
            while True:
                action = self.scheduler.next_ready(self.clock.now)
                if action is None:
                    break
                self._execute(action, self.clock.now)
        finally:
            self._busy = False

    def quiesce(self, wait, max_steps: int = 256) -> bool:
        """Drain the action queue after the workload ends.

        ``wait(dt)`` must advance the simulated clock and re-poll the plane
        (the harness's ``_wait`` does).  Returns True once the queue is
        empty; the step bound keeps a pathological queue from spinning."""
        for _ in range(max_steps):
            if not self.pending:
                return True
            target = self.scheduler.next_release_s(self.clock.now)
            if not math.isfinite(target):
                return True
            wait(max(target - self.clock.now, self.min_gap_s, 1e-9))
        return not self.pending

    # ------------------------------------------------------------ the pipeline

    def _propose(self, action: Action) -> None:
        self.journal.emit(
            "heal_propose",
            action=action.kind,
            node=action.node_id,
            seq=action.seq,
            incident=action.incident_kind,
            not_before_s=action.not_before_s,
        )
        self.scheduler.push(action)

    def _execute(self, action: Action, now: float) -> None:
        if self._defer_needed(action):
            self.counters.add("heal_actions_deferred")
            if not self.scheduler.defer(action, now + self.defer_backoff_s):
                self._abandon(action, now)
            return
        pre = self.verifier.check(self.store, action, "pre")
        self.journal.emit(
            "heal_verify",
            action=action.kind,
            node=action.node_id,
            seq=action.seq,
            stage="pre",
            ok=pre.ok,
            violations=len(pre.violations),
        )
        result = self._perform(action, now)
        self.counters.add("heal_actions_executed")
        self.journal.emit(
            "heal_execute",
            action=action.kind,
            node=action.node_id,
            seq=action.seq,
            **result,
        )
        post = self.verifier.check(self.store, action, "post")
        new = self.verifier.new_violations(pre, post)
        self.journal.emit(
            "heal_verify",
            action=action.kind,
            node=action.node_id,
            seq=action.seq,
            stage="post",
            ok=not new,
            violations=len(post.violations),
        )
        if new:
            self._rollback(action, new)
        if result.get("status") == "escalate":
            for follow in self.proposer.escalate(action):
                self._propose(follow)
        self.executed.append(
            {
                "action": action.to_dict(),
                "result": result,
                "pre": pre.to_dict(),
                "post": post.to_dict(),
                "new_violations": new,
            }
        )

    def _abandon(self, action: Action, now: float) -> None:
        self.escalations += 1
        self.counters.add("heal_escalations")
        self.journal.emit(
            "heal_rollback",
            action=action.kind,
            node=action.node_id,
            seq=action.seq,
            mode="abandon",
        )
        self._note(
            now, f"heal: abandoned {action.kind} on {action.node_id} "
            f"after {action.defers} deferrals"
        )

    def _rollback(self, action: Action, new_violations: list[str]) -> None:
        if action.reversible:
            self._undo(action)
            self.rollbacks += 1
            self.counters.add("heal_rollbacks")
            mode = "revert"
        else:
            self.escalations += 1
            self.counters.add("heal_escalations")
            mode = "escalate"
        self.journal.emit(
            "heal_rollback",
            action=action.kind,
            node=action.node_id,
            seq=action.seq,
            mode=mode,
            new_violations=len(new_violations),
        )

    # -------------------------------------------------------------- executors

    def _defer_needed(self, action: Action) -> bool:
        cluster = self.store.cluster
        if action.kind == "recover_log":
            # recovery re-encodes over the network; an open partition on the
            # target makes that impossible -- wait for the link to heal
            return not cluster.network.reachable(action.node_id)
        if action.kind in ("scheme_switch", "flush_logs"):
            node = cluster.log_nodes.get(action.node_id)
            return node is not None and not node.alive
        return False

    def _perform(self, action: Action, now: float) -> dict:
        handler = getattr(self, f"_do_{action.kind}")
        return handler(action, now)

    def _do_repair_node(self, action: Action, now: float) -> dict:
        cluster = self.store.cluster
        node = cluster.dram_nodes.get(action.node_id)
        if node is None or node.alive:
            return {"status": "noop"}
        if hasattr(self.store, "uptodate_logged_parity"):
            from repro.core.repair import repair_node

            try:
                result = repair_node(self.store, action.node_id, log_assist=True)
            except DataLossError as exc:
                self._note(now, f"heal: repair {action.node_id} FAILED: {exc}")
                return {"status": "failed", "error": type(exc).__name__}
            cluster.restore(action.node_id, now=self.clock.now)
            self._note(
                now,
                f"heal: repaired {action.node_id} "
                f"({result.chunks_repaired} chunks in "
                f"{result.repair_time_s * 1e3:.2f}ms)",
            )
            return {
                "status": "done",
                "duration_s": result.repair_time_s,
                "chunks": result.chunks_repaired,
                "log_assisted": result.log_assisted_stripes,
            }
        # baselines: a replacement node comes online with re-synced state
        cluster.restore(action.node_id, now=now)
        self._note(now, f"heal: replaced {action.node_id}")
        return {"status": "done", "duration_s": 0.0}

    def _do_recover_log(self, action: Action, now: float) -> dict:
        if not hasattr(self.store, "uptodate_logged_parity"):
            return {"status": "noop"}
        node = self.store.cluster.log_nodes.get(action.node_id)
        if node is None or (node.alive and not node.needs_recovery):
            return {"status": "noop"}
        from repro.core.recovery import recover_log_node

        report = recover_log_node(self.store, action.node_id)
        self._note(
            now,
            f"heal: recovered {action.node_id} "
            f"({report.parities_rebuilt} parities rebuilt)",
        )
        return {
            "status": "done",
            "duration_s": report.duration_s,
            "parities": report.parities_rebuilt,
        }

    def _do_observe(self, action: Action, now: float) -> dict:
        cluster = self.store.cluster
        node = cluster.dram_nodes.get(action.node_id) or cluster.log_nodes.get(
            action.node_id
        )
        if node is not None and not node.alive:
            # the grace period expired and the blip did not restore itself
            self._note(
                now, f"heal: {action.node_id} still down after grace; escalating"
            )
            return {"status": "escalate"}
        return {"status": "done"}

    def _do_traffic_backoff(self, action: Action, now: float) -> dict:
        if self.policy is None or action.node_id in self._backoffs:
            return {"status": "noop"}
        f = self.backoff_factor
        self.policy.timeout_s *= f
        self.policy.backoff_base_s *= f
        self._backoffs[action.node_id] = f
        self._note(now, f"heal: traffic backoff x{f:g} for {action.node_id}")
        return {"status": "done", "factor": f}

    def _do_release_backoff(self, action: Action, now: float) -> dict:
        f = self._backoffs.pop(action.node_id, None)
        if f is None or self.policy is None:
            return {"status": "noop"}
        self.policy.timeout_s /= f
        self.policy.backoff_base_s /= f
        self._note(now, f"heal: traffic backoff released for {action.node_id}")
        return {"status": "done", "factor": f}

    def _do_scheme_switch(self, action: Action, now: float) -> dict:
        node = self.store.cluster.log_nodes.get(action.node_id)
        if node is None or not node.alive:
            return {"status": "noop"}
        counters = self.counters
        target = choose_log_scheme(
            node.scheme.name,
            sync_stalls=node.sync_flush_stalls,
            random_writes=counters["log_random_writes"],
            flush_records=counters["log_flush_records"],
        )
        if target == node.scheme.name:
            return {"status": "noop"}
        source = node.scheme.name
        duration = node.switch_scheme(target, self.clock.now)
        self._note(
            now, f"heal: {action.node_id} switched {source}->{target} "
            f"in {duration * 1e3:.2f}ms"
        )
        return {"status": "done", "duration_s": duration, "to": target}

    def _do_flush_logs(self, action: Action, now: float) -> dict:
        node = self.store.cluster.log_nodes.get(action.node_id)
        if node is None or not node.alive:
            return {"status": "noop"}
        duration = node.settle(self.clock.now)
        return {"status": "done", "duration_s": duration}

    # -------------------------------------------------------------- undo paths

    def _undo(self, action: Action) -> None:
        if action.kind == "traffic_backoff":
            f = self._backoffs.pop(action.node_id, None)
            if f is not None and self.policy is not None:
                self.policy.timeout_s /= f
                self.policy.backoff_base_s /= f
        elif action.kind == "release_backoff":
            if self.policy is not None and action.node_id not in self._backoffs:
                f = self.backoff_factor
                self.policy.timeout_s *= f
                self.policy.backoff_base_s *= f
                self._backoffs[action.node_id] = f

    # --------------------------------------------------------------- reporting

    def report(self) -> dict:
        """Deterministic summary of everything the plane did this run."""
        detector = self.detector
        return {
            "incidents": [i.to_dict() for i in (detector.incidents if detector else [])],
            "incidents_suppressed": detector.suppressed if detector else 0,
            "actions_proposed": len(self.proposer.proposed),
            "actions_executed": len(self.executed),
            "actions_deferred": self.scheduler.deferred,
            "rollbacks": self.rollbacks,
            "escalations": self.escalations,
            "backoffs_active": sorted(self._backoffs),
            "executed": self.executed,
        }
