"""Developer tooling that treats the repo's own source as data.

Nothing in here is imported by the simulation; these modules back
``python -m repro lint`` and CI hygiene jobs.
"""
