"""The SIM rule set: one AST pass per file.

Every rule is deliberately *syntactic and precise* rather than clever: a
rule fires only on shapes it can prove (a call it resolved through the
file's own imports, a literal ``set(...)`` display, a string literal
argument).  Anything type-dependent it cannot prove is skipped, never
guessed -- false positives in a gating linter cost more than misses.

Rules
-----
SIM001  wall-clock reads (``time.time``/``perf_counter``/``datetime.now``)
SIM002  global or unseeded randomness (``random.*``, ``numpy.random.*``)
SIM003  order-dependent consumption of unordered sets
SIM004  event/counter string literals not in the declared registries
SIM005  sim-clock misuse (state mutation, negative ``advance``)
SIM006  mutable default arguments
SIM007  order-dependent ``+=`` accumulation over an unordered container
SIM008  incident/action/station string literals not in the declared taxonomies
SIM009  event callback (lambda passed to ``.schedule``) capturing a loop variable
"""

from __future__ import annotations

import ast

from repro.devtools.simlint.config import LintConfig
from repro.devtools.simlint.findings import Finding, normalise_snippet
from repro.devtools.simlint.registry import Registry

#: one-line summary per rule (rendered by ``lint --rules`` and the docs)
RULE_DOCS = {
    "SIM001": "wall-clock call (time.time/perf_counter/datetime.now) outside the allowlist",
    "SIM002": "process-global or unseeded randomness (random.*, numpy.random.*)",
    "SIM003": "order-dependent consumption of an unordered set (iterate/sum/min/max/pop)",
    "SIM004": "event/counter string literal not declared in EVENT_KINDS / COUNTER_NAMES",
    "SIM005": "sim-clock misuse: direct state mutation or negative advance()",
    "SIM006": "mutable default argument (def f(x=[]) / field(default={...}))",
    "SIM007": "order-dependent accumulation (+= / sum) over an unordered set",
    "SIM008": "incident/action/station literal not declared in its taxonomy",
    "SIM009": "lambda scheduled in a loop captures the loop variable by reference",
}

#: canonical dotted names whose call result depends on the host's clock
WALLCLOCK_BANNED = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: ``random.<name>`` calls that construct an *injectable* generator rather
#: than touching the module-global one
RANDOM_MODULE_ALLOWED = frozenset({"random.Random"})

#: ``numpy.random.<name>`` constructors for seeded, injectable generators
NUMPY_RANDOM_ALLOWED = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

#: builtin constructors whose result is mutable (SIM006)
MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "bytearray", "deque", "defaultdict", "Counter", "OrderedDict"}
)

_AGGREGATORS = frozenset({"sum", "min", "max"})


def _dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` as a string, or None if the chain roots in a non-Name."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _is_set_display(node: ast.expr) -> bool:
    """A bare unordered-set expression: ``{a, b}``, ``set(...)``,
    ``frozenset(...)`` or a set comprehension."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _target_names(target: ast.expr) -> set[str]:
    """Every plain name bound by a for-loop target (handles tuple unpacking)."""
    if isinstance(target, ast.Name):
        return {target.id}
    if isinstance(target, ast.Starred):
        return _target_names(target.value)
    if isinstance(target, (ast.Tuple, ast.List)):
        out: set[str] = set()
        for elt in target.elts:
            out |= _target_names(elt)
        return out
    return set()


def _callee_tail(func: ast.expr) -> str | None:
    """The final identifier of a call target: ``Stage`` for both ``Stage(...)``
    and ``jobs.Stage(...)``."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _literal_arg(node: ast.Call, position: int, keyword: str) -> ast.Constant | None:
    """The string-literal argument at ``position`` or keyword ``keyword``,
    else None (variables and f-strings are skipped, never guessed)."""
    candidates: list[ast.expr] = []
    if len(node.args) > position:
        candidates.append(node.args[position])
    candidates.extend(kw.value for kw in node.keywords if kw.arg == keyword)
    for cand in candidates:
        if isinstance(cand, ast.Constant) and isinstance(cand.value, str):
            return cand
    return None


def _receiver_tail(func: ast.Attribute) -> str | None:
    """The last identifier of a method call's receiver: ``x`` in ``x.emit``,
    ``journal`` in ``self.cluster.journal.emit``."""
    value = func.value
    if isinstance(value, ast.Name):
        return value.id
    if isinstance(value, ast.Attribute):
        return value.attr
    return None


class RuleVisitor(ast.NodeVisitor):
    """Single-file pass collecting findings for every SIM rule."""

    def __init__(
        self,
        relpath: str,
        source_lines: list[str],
        config: LintConfig,
        registry: Registry,
    ):
        self.relpath = relpath
        self.source_lines = source_lines
        self.config = config
        self.registry = registry
        self.findings: list[Finding] = []
        #: local alias -> canonical module path ("np" -> "numpy")
        self.aliases: dict[str, str] = {}
        #: stack of {name -> is-known-set} scopes for set.pop() tracking
        self._set_vars: list[dict[str, bool]] = [{}]
        #: stack of enclosing for-loop target name sets (SIM009)
        self._loop_targets: list[frozenset[str]] = []
        #: AugAssign nodes already reported by SIM007 (nested set-loops
        #: would otherwise report the same accumulation once per level)
        self._sim007_seen: set[int] = set()
        self._wallclock_ok = config.wallclock_allowed(relpath)
        self._clock_module = config.is_clock_module(relpath)

    # ------------------------------------------------------------- reporting

    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        raw = self.source_lines[line - 1] if line <= len(self.source_lines) else ""
        self.findings.append(
            Finding(
                rule=rule,
                path=self.relpath,
                line=line,
                col=col + 1,
                message=message,
                snippet=normalise_snippet(raw),
            )
        )

    # --------------------------------------------------------------- imports

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            self.aliases[local] = alias.name if alias.asname else local
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                local = alias.asname or alias.name
                self.aliases[local] = f"{node.module}.{alias.name}"
        self.generic_visit(node)

    def _canonical(self, dotted: str) -> str | None:
        """Resolve ``np.random.rand`` -> ``numpy.random.rand`` through this
        file's imports; None if the head is not an imported name."""
        head, _, rest = dotted.partition(".")
        base = self.aliases.get(head)
        if base is None:
            return None
        return f"{base}.{rest}" if rest else base

    # ------------------------------------------------------------ set scopes

    def _push_scope(self) -> None:
        self._set_vars.append({})

    def _pop_scope(self) -> None:
        self._set_vars.pop()

    def _mark_set_var(self, name: str, is_set: bool) -> None:
        self._set_vars[-1][name] = is_set

    def _is_set_var(self, name: str) -> bool:
        for scope in reversed(self._set_vars):
            if name in scope:
                return scope[name]
        return False

    # ----------------------------------------------------------- definitions

    def _check_defaults(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        for default in [*node.args.defaults, *node.args.kw_defaults]:
            if default is not None and self._is_mutable_expr(default):
                self._report(
                    default,
                    "SIM006",
                    f"mutable default argument in {node.name}(); shared across "
                    "calls -- default to None (or field(default_factory=...))",
                )

    def _is_mutable_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in MUTABLE_CONSTRUCTORS
        )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self._push_scope()
        self.generic_visit(node)
        self._pop_scope()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self._push_scope()
        self.generic_visit(node)
        self._pop_scope()

    # ------------------------------------------------------------ statements

    def visit_Assign(self, node: ast.Assign) -> None:
        # SIM005: clock state must only move through advance()/advance_to()
        for target in node.targets:
            self._check_clock_mutation(target)
            if isinstance(target, ast.Name):
                self._mark_set_var(target.id, _is_set_display(node.value))
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_clock_mutation(node.target)
        if isinstance(node.target, ast.Name) and node.value is not None:
            self._mark_set_var(node.target.id, _is_set_display(node.value))
        # SIM006 for dataclass-style ``x: set = field(default={...})`` is
        # caught through the field() call check in visit_Call
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_clock_mutation(node.target)
        self.generic_visit(node)

    def _check_clock_mutation(self, target: ast.expr) -> None:
        if self._clock_module:
            return
        if (
            isinstance(target, ast.Attribute)
            and target.attr == "now"
            and (_receiver_tail(target) or "").lower().endswith("clock")
        ):
            self._report(
                target,
                "SIM005",
                "direct mutation of sim-clock state; use clock.advance()/"
                "advance_to() so time stays monotone",
            )

    # ----------------------------------------------------------------- loops

    def _check_iter(self, iter_node: ast.expr) -> None:
        if _is_set_display(iter_node):
            self._report(
                iter_node,
                "SIM003",
                "iteration over an unordered set; order depends on "
                "PYTHONHASHSEED -- iterate sorted(...) instead",
            )

    def _visit_loop(self, node: ast.For | ast.AsyncFor) -> None:
        self._check_iter(node.iter)
        self._check_set_accumulation(node)
        self._loop_targets.append(frozenset(_target_names(node.target)))
        self.generic_visit(node)
        self._loop_targets.pop()

    visit_For = _visit_loop
    visit_AsyncFor = _visit_loop

    def _check_set_accumulation(self, node: ast.For | ast.AsyncFor) -> None:
        """SIM007: ``x += ...`` inside ``for _ in <known set>`` -- float
        accumulation folds in hash-seed order, so the rounded total drifts
        with PYTHONHASHSEED."""
        it = node.iter
        if not (isinstance(it, ast.Name) and self._is_set_var(it.id)):
            return
        for stmt in node.body:
            for sub in ast.walk(stmt):
                if (
                    isinstance(sub, ast.AugAssign)
                    and isinstance(sub.op, ast.Add)
                    and id(sub) not in self._sim007_seen
                ):
                    self._sim007_seen.add(id(sub))
                    self._report(
                        sub,
                        "SIM007",
                        f"accumulation over unordered set {it.id!r}; float "
                        "+= folds in hash-seed order -- iterate "
                        f"sorted({it.id}) instead",
                    )

    def _visit_comprehension(self, node) -> None:
        for gen in node.generators:
            self._check_iter(gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    # ----------------------------------------------------------------- calls

    def visit_Call(self, node: ast.Call) -> None:
        self._check_wallclock_and_random(node)
        self._check_set_aggregation(node)
        self._check_set_pop(node)
        self._check_registry_literals(node)
        self._check_kind_literals(node)
        self._check_schedule_lambda(node)
        self._check_clock_advance(node)
        self._check_field_default(node)
        self.generic_visit(node)

    def _check_wallclock_and_random(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        if dotted is None:
            return
        canonical = self._canonical(dotted)
        if canonical is None:
            return
        if canonical in WALLCLOCK_BANNED and not self._wallclock_ok:
            self._report(
                node,
                "SIM001",
                f"wall-clock call {canonical}(); sim results must come from "
                "SimClock (allowlist the file if host timing is intended)",
            )
            return
        if canonical == "random" or canonical.startswith("random."):
            if canonical not in RANDOM_MODULE_ALLOWED and canonical != "random":
                self._report(
                    node,
                    "SIM002",
                    f"{canonical}() uses process-global RNG state; inject a "
                    "seeded random.Random / numpy default_rng instead",
                )
            return
        if canonical.startswith("numpy.random."):
            tail = canonical.rsplit(".", 1)[1]
            if tail not in NUMPY_RANDOM_ALLOWED:
                self._report(
                    node,
                    "SIM002",
                    f"{canonical}() draws from numpy's global RNG; use an "
                    "injected np.random.default_rng(seed) generator",
                )

    def _check_set_aggregation(self, node: ast.Call) -> None:
        if not (isinstance(node.func, ast.Name) and node.func.id in _AGGREGATORS and node.args):
            return
        arg0 = node.args[0]
        if _is_set_display(arg0):
            # min/max over a set are value-deterministic only for total
            # orders; float NaNs and custom keys make them seed-dependent,
            # and sum's float accumulation is order-dependent outright
            self._report(
                node,
                "SIM003",
                f"{node.func.id}() over an unordered set; aggregate over "
                "sorted(...) so the reduction order is fixed",
            )
            return
        # SIM007: sum() folding a variable this file *proved* is a set
        # (displays are SIM003's; variables need the scope tracking)
        if node.func.id != "sum":
            return
        src = arg0
        if isinstance(src, (ast.GeneratorExp, ast.ListComp)) and src.generators:
            src = src.generators[0].iter
        if isinstance(src, ast.Name) and self._is_set_var(src.id):
            self._report(
                node,
                "SIM007",
                f"sum() over unordered set {src.id!r}; float accumulation "
                f"folds in hash-seed order -- sum(sorted({src.id})) instead",
            )

    def _check_set_pop(self, node: ast.Call) -> None:
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr == "pop"
            and not node.args
            and not node.keywords
        ):
            return
        recv = func.value
        if _is_set_display(recv) or (
            isinstance(recv, ast.Name) and self._is_set_var(recv.id)
        ):
            self._report(
                node,
                "SIM003",
                "set.pop() removes a hash-seed-dependent element; pop from "
                "sorted(...) or use an ordered structure",
            )

    def _check_registry_literals(self, node: ast.Call) -> None:
        func = node.func
        if not isinstance(func, ast.Attribute) or not node.args:
            return
        arg0 = node.args[0]
        if not (isinstance(arg0, ast.Constant) and isinstance(arg0.value, str)):
            return
        tail = (_receiver_tail(func) or "").lower()
        if func.attr == "emit" and "journal" in tail:
            kinds = self.registry.event_kinds
            if kinds is not None and arg0.value not in kinds:
                self._report(
                    arg0,
                    "SIM004",
                    f"event kind {arg0.value!r} is not in the declared "
                    "EVENT_KINDS taxonomy",
                )
        elif func.attr in ("add", "inc") and "counter" in tail:
            names = self.registry.counter_names
            if names is None:
                return
            name = arg0.value
            if name in names:
                return
            if any(name.startswith(p) for p in self.registry.counter_prefixes):
                return
            self._report(
                arg0,
                "SIM004",
                f"counter {name!r} is not in the declared COUNTER_NAMES "
                "registry (sim/resources.py)",
            )

    #: SIM008 constructor -> (keyword carrying the literal, registry field,
    #: declaring module hint).  Only string *literals* are checked; a
    #: variable or f-string argument is the constructor's own __post_init__
    #: problem, not the linter's.
    _KIND_CONSTRUCTORS = {
        "Incident": ("kind", "incident_kinds", "INCIDENT_KINDS (heal/incidents.py)"),
        "Action": ("kind", "action_kinds", "ACTION_KINDS (heal/incidents.py)"),
        "Station": ("name", "station_names", "STATION_NAMES (engine/stations.py)"),
        "Stage": ("station", "station_names", "STATION_NAMES (engine/stations.py)"),
    }

    def _check_kind_literals(self, node: ast.Call) -> None:
        """SIM008: closed-taxonomy literals passed to the heal/engine
        constructors must be declared -- same contract SIM004 enforces for
        journal events and counters, resolved against the parsed registries."""
        spec = self._KIND_CONSTRUCTORS.get(_callee_tail(node.func) or "")
        if spec is None:
            return
        keyword, registry_field, declared_in = spec
        declared = getattr(self.registry, registry_field)
        if declared is None:
            return
        lit = _literal_arg(node, 0, keyword)
        if lit is None or lit.value in declared:
            return
        if registry_field == "station_names" and any(
            lit.value.startswith(p) for p in self.registry.station_prefixes
        ):
            return
        self._report(
            lit,
            "SIM008",
            f"{keyword} {lit.value!r} is not in the declared taxonomy "
            f"{declared_in}",
        )

    def _check_schedule_lambda(self, node: ast.Call) -> None:
        """SIM009: a lambda handed to ``.schedule(...)`` inside a for loop
        that reads the loop variable captures it *by reference* -- every
        queued callback sees the final iteration's value when it fires.
        The sanctioned fix binds a default: ``lambda t, e=ev: ...``."""
        if not self._loop_targets:
            return
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "schedule"):
            return
        live = frozenset().union(*self._loop_targets)
        values = [*node.args, *(kw.value for kw in node.keywords)]
        for arg in values:
            if not isinstance(arg, ast.Lambda):
                continue
            a = arg.args
            params = {p.arg for p in [*a.posonlyargs, *a.args, *a.kwonlyargs]}
            if a.vararg:
                params.add(a.vararg.arg)
            if a.kwarg:
                params.add(a.kwarg.arg)
            free = {
                n.id
                for n in ast.walk(arg.body)
                if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
            }
            captured = sorted((free - params) & live)
            if captured:
                names = ", ".join(captured)
                self._report(
                    arg,
                    "SIM009",
                    f"scheduled lambda captures loop variable(s) {names} by "
                    "reference; bind with a default argument "
                    f"(lambda t, {captured[0]}={captured[0]}: ...)",
                )

    def _check_clock_advance(self, node: ast.Call) -> None:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "advance" and node.args):
            return
        arg0 = node.args[0]
        negative = (
            isinstance(arg0, ast.UnaryOp)
            and isinstance(arg0.op, ast.USub)
            and isinstance(arg0.operand, ast.Constant)
            and isinstance(arg0.operand.value, (int, float))
        ) or (
            isinstance(arg0, ast.Constant)
            and isinstance(arg0.value, (int, float))
            and not isinstance(arg0.value, bool)
            and arg0.value < 0
        )
        if negative:
            self._report(
                node,
                "SIM005",
                "advance() by a negative constant would move simulated time "
                "backwards",
            )

    def _check_field_default(self, node: ast.Call) -> None:
        if not (isinstance(node.func, ast.Name) and node.func.id == "field"):
            return
        for kw in node.keywords:
            if kw.arg == "default" and self._is_mutable_expr(kw.value):
                self._report(
                    kw.value,
                    "SIM006",
                    "field(default=<mutable>) shares one object across "
                    "instances; use field(default_factory=...)",
                )


def run_rules(
    relpath: str,
    source: str,
    config: LintConfig,
    registry: Registry,
) -> list[Finding]:
    """All findings for one file's source text (unsuppressed, unbaselined)."""
    tree = ast.parse(source)
    visitor = RuleVisitor(relpath, source.splitlines(), config, registry)
    visitor.visit(tree)
    return visitor.findings
