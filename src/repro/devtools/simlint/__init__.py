"""simlint: AST-based determinism & sim-hygiene analysis for this repo.

Every reported number depends on the simulation being byte-deterministic;
simlint enforces that contract mechanically (see docs/INTERNALS.md, "The
determinism contract").  Run it as ``python -m repro lint``.
"""

from repro.devtools.simlint.config import DEFAULT_SCAN_PATHS, LintConfig
from repro.devtools.simlint.engine import (
    LintError,
    LintResult,
    lint_paths,
    load_baseline,
    render_json,
    render_text,
    run_lint,
    stale_baseline_ids,
    write_baseline,
)
from repro.devtools.simlint.findings import Finding
from repro.devtools.simlint.registry import Registry, load_registry
from repro.devtools.simlint.rules import RULE_DOCS, run_rules

__all__ = [
    "DEFAULT_SCAN_PATHS",
    "Finding",
    "LintConfig",
    "LintError",
    "LintResult",
    "Registry",
    "RULE_DOCS",
    "lint_paths",
    "load_baseline",
    "load_registry",
    "render_json",
    "render_text",
    "run_lint",
    "run_rules",
    "stale_baseline_ids",
    "write_baseline",
]
