"""Cross-module name resolution for SIM004 and SIM008.

The event taxonomy (``EVENT_KINDS`` in ``repro/obs/events.py``), the counter
registry (``COUNTER_NAMES`` / ``COUNTER_PREFIXES`` in
``repro/sim/resources.py``), the self-healing taxonomies
(``INCIDENT_KINDS`` / ``ACTION_KINDS`` in ``repro/heal/incidents.py``) and
the engine station namespace (``STATION_NAMES`` / ``STATION_PREFIXES`` in
``repro/engine/stations.py``) are *parsed out of their defining modules'
ASTs*, never imported -- linting must not execute repo code, and must work
on a tree that currently fails to import.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path


@dataclass(frozen=True)
class Registry:
    """Declared names SIM004/SIM008 resolve literals against.

    ``None`` means the declaration could not be found; the corresponding
    check is skipped (never spuriously fired) in that case.
    """

    event_kinds: frozenset[str] | None = None
    counter_names: frozenset[str] | None = None
    counter_prefixes: tuple[str, ...] = ()
    incident_kinds: frozenset[str] | None = None
    action_kinds: frozenset[str] | None = None
    station_names: frozenset[str] | None = None
    station_prefixes: tuple[str, ...] = ()


def _assigned_value(tree: ast.Module, name: str) -> ast.expr | None:
    """The value expression of a module-level ``name = ...`` statement."""
    for node in tree.body:
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        for t in targets:
            if isinstance(t, ast.Name) and t.id == name:
                return node.value
    return None


def _string_elts(value: ast.expr | None) -> list[str] | None:
    """String constants inside a set/tuple/list display or a ``frozenset``/
    ``set``/``tuple`` call wrapping one."""
    if value is None:
        return None
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id in ("frozenset", "set", "tuple")
        and len(value.args) == 1
    ):
        value = value.args[0]
    if isinstance(value, (ast.Set, ast.Tuple, ast.List)):
        out = []
        for elt in value.elts:
            if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
                return None
            out.append(elt.value)
        return out
    return None


def _parse(path: Path) -> ast.Module | None:
    try:
        return ast.parse(path.read_text(encoding="utf-8"))
    except (OSError, SyntaxError):
        return None


def _names_from(root: Path, module: str, name: str) -> frozenset[str] | None:
    tree = _parse(root / module)
    if tree is None:
        return None
    elts = _string_elts(_assigned_value(tree, name))
    return frozenset(elts) if elts is not None else None


def load_registry(
    root: Path,
    events_module: str,
    counters_module: str,
    incidents_module: str | None = None,
    stations_module: str | None = None,
) -> Registry:
    """Extract the declared taxonomies from the registry modules."""
    counter_prefixes: tuple[str, ...] = ()
    station_prefixes: tuple[str, ...] = ()

    event_kinds = _names_from(root, events_module, "EVENT_KINDS")
    counter_names = _names_from(root, counters_module, "COUNTER_NAMES")
    tree = _parse(root / counters_module)
    if tree is not None:
        prefixes = _string_elts(_assigned_value(tree, "COUNTER_PREFIXES"))
        if prefixes is not None:
            counter_prefixes = tuple(prefixes)

    incident_kinds = action_kinds = station_names = None
    if incidents_module is not None:
        incident_kinds = _names_from(root, incidents_module, "INCIDENT_KINDS")
        action_kinds = _names_from(root, incidents_module, "ACTION_KINDS")
    if stations_module is not None:
        station_names = _names_from(root, stations_module, "STATION_NAMES")
        tree = _parse(root / stations_module)
        if tree is not None:
            prefixes = _string_elts(_assigned_value(tree, "STATION_PREFIXES"))
            if prefixes is not None:
                station_prefixes = tuple(prefixes)

    return Registry(
        event_kinds=event_kinds,
        counter_names=counter_names,
        counter_prefixes=counter_prefixes,
        incident_kinds=incident_kinds,
        action_kinds=action_kinds,
        station_names=station_names,
        station_prefixes=station_prefixes,
    )
