"""simlint configuration: what to scan, what is exempt, where registries live.

The defaults encode this repository's layout; tests construct ad-hoc configs
pointing at fixture trees.  All paths are POSIX-style and relative to
``root`` so findings (and their stable ids) are machine-independent.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatch
from pathlib import Path

#: directory names never descended into when expanding scan paths
DEFAULT_EXCLUDE_DIRS = ("__pycache__", ".git", "testdata")

#: scan targets when ``python -m repro lint`` is given no paths
DEFAULT_SCAN_PATHS = ("src", "tests")


@dataclass(frozen=True)
class LintConfig:
    """Immutable per-run configuration.

    ``wallclock_allow`` lists relpath globs where SIM001 (wall-clock calls)
    is permitted -- e.g. a benchmark that times a real kernel.  The registry
    modules are parsed (never imported) to resolve SIM004 names
    cross-module; a missing module simply disables the corresponding half
    of SIM004.
    """

    root: Path
    wallclock_allow: tuple[str, ...] = ()
    clock_modules: tuple[str, ...] = ("src/repro/sim/clock.py",)
    events_module: str = "src/repro/obs/events.py"
    counters_module: str = "src/repro/sim/resources.py"
    incidents_module: str = "src/repro/heal/incidents.py"
    stations_module: str = "src/repro/engine/stations.py"
    exclude_dirs: tuple[str, ...] = DEFAULT_EXCLUDE_DIRS

    def relpath(self, path: Path) -> str:
        """``path`` as a POSIX string relative to ``root`` (or as given)."""
        try:
            return path.resolve().relative_to(self.root.resolve()).as_posix()
        except ValueError:
            return path.as_posix()

    def wallclock_allowed(self, relpath: str) -> bool:
        return any(fnmatch(relpath, pat) for pat in self.wallclock_allow)

    def is_clock_module(self, relpath: str) -> bool:
        return relpath in self.clock_modules
