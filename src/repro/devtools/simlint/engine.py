"""simlint driver: file collection, suppressions, baseline, rendering.

Output determinism is part of the contract (the linter polices determinism,
so it must exhibit it): files are walked in sorted order, findings sorted by
(path, line, col, rule), ids content-hashed, and JSON dumped with sorted
keys -- byte-identical across runs and ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.devtools.simlint.config import DEFAULT_SCAN_PATHS, LintConfig
from repro.devtools.simlint.findings import Finding, assign_ids
from repro.devtools.simlint.registry import Registry, load_registry
from repro.devtools.simlint.rules import run_rules

#: per-line suppression: ``# simlint: disable=SIM003`` / ``=SIM003,SIM004``
#: / ``=all`` on the finding's reported line
_SUPPRESS_RE = re.compile(r"#\s*simlint:\s*disable=([A-Za-z0-9_,\s]+)")

BASELINE_VERSION = 1
OUTPUT_VERSION = 1


class LintError(Exception):
    """Unscannable input (missing path, syntax error): exit code 2."""


@dataclass
class LintResult:
    """Everything one lint run produced, pre-rendering."""

    findings: list[Finding] = field(default_factory=list)  # actionable
    baselined: list[Finding] = field(default_factory=list)  # known, tolerated
    suppressed: int = 0
    files_scanned: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0


def collect_files(paths: list[Path], config: LintConfig) -> list[Path]:
    """Expand scan targets to a sorted list of .py files.

    Excluded directory names (fixtures, caches) are skipped during directory
    walks only -- a file passed explicitly is always linted, which is how CI
    points the linter at a planted-violation fixture.
    """
    out: set[Path] = set()
    for path in paths:
        if not path.exists():
            raise LintError(f"no such path: {path}")
        if path.is_file():
            out.add(path.resolve())
            continue
        for sub in path.rglob("*.py"):
            rel_parts = sub.relative_to(path).parts
            if any(part in config.exclude_dirs for part in rel_parts):
                continue
            out.add(sub.resolve())
    return sorted(out)


def _suppressed_rules(line: str) -> set[str]:
    m = _SUPPRESS_RE.search(line)
    if not m:
        return set()
    rules = {token.strip().upper() for token in m.group(1).split(",") if token.strip()}
    return {"ALL"} if "ALL" in rules else rules


def lint_file(path: Path, config: LintConfig, registry: Registry) -> tuple[list[Finding], int]:
    """(kept findings, suppressed count) for one file."""
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise LintError(f"cannot read {path}: {exc}") from exc
    relpath = config.relpath(path)
    try:
        raw = run_rules(relpath, source, config, registry)
    except SyntaxError as exc:
        raise LintError(
            f"{relpath}: syntax error at line {exc.lineno}: {exc.msg}"
        ) from exc
    lines = source.splitlines()
    kept: list[Finding] = []
    suppressed = 0
    for f in raw:
        line_text = lines[f.line - 1] if f.line <= len(lines) else ""
        rules = _suppressed_rules(line_text)
        if "ALL" in rules or f.rule in rules:
            suppressed += 1
        else:
            kept.append(f)
    return kept, suppressed


def lint_paths(
    paths: list[Path] | None,
    config: LintConfig,
    baseline_ids: frozenset[str] = frozenset(),
) -> LintResult:
    """Lint files/trees and split findings against the baseline."""
    if not paths:
        paths = [config.root / p for p in DEFAULT_SCAN_PATHS if (config.root / p).exists()]
        if not paths:
            raise LintError(
                f"no default scan paths ({'/'.join(DEFAULT_SCAN_PATHS)}) under {config.root}"
            )
    registry = load_registry(
        config.root,
        config.events_module,
        config.counters_module,
        incidents_module=config.incidents_module,
        stations_module=config.stations_module,
    )
    result = LintResult()
    all_findings: list[Finding] = []
    for path in collect_files(paths, config):
        kept, suppressed = lint_file(path, config, registry)
        all_findings.extend(kept)
        result.suppressed += suppressed
        result.files_scanned += 1
    for f in assign_ids(all_findings):
        (result.baselined if f.finding_id in baseline_ids else result.findings).append(f)
    return result


# ------------------------------------------------------------------ baseline


def load_baseline(path: Path) -> frozenset[str]:
    """Finding ids grandfathered by the committed baseline (empty if absent)."""
    if not path.exists():
        return frozenset()
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise LintError(f"unreadable baseline {path}: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("version") != BASELINE_VERSION:
        raise LintError(f"baseline {path} has unsupported format")
    ids = doc.get("ids", [])
    if not isinstance(ids, list) or not all(isinstance(i, str) for i in ids):
        raise LintError(f"baseline {path}: 'ids' must be a list of strings")
    return frozenset(ids)


def write_baseline(path: Path, result: LintResult) -> None:
    """Persist every current finding id (active + already-baselined)."""
    ids = sorted(f.finding_id for f in [*result.findings, *result.baselined])
    doc = {"version": BASELINE_VERSION, "ids": ids}
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8")


# ----------------------------------------------------------------- rendering


def render_text(result: LintResult) -> str:
    lines = [f.render() for f in result.findings]
    lines.append(
        f"simlint: {len(result.findings)} finding(s), "
        f"{len(result.baselined)} baselined, {result.suppressed} suppressed "
        f"in {result.files_scanned} file(s)"
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    doc = {
        "version": OUTPUT_VERSION,
        "findings": [f.to_dict() for f in result.findings],
        "baselined": [f.to_dict() for f in result.baselined],
        "counts": {
            "findings": len(result.findings),
            "baselined": len(result.baselined),
            "suppressed": result.suppressed,
            "files_scanned": result.files_scanned,
        },
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


# ----------------------------------------------------------------- front end


def stale_baseline_ids(result: LintResult, baseline_ids: frozenset[str]) -> list[str]:
    """Baseline ids that no longer resolve to any finding in the tree.

    A stale id means the offending code was fixed (or the snippet changed,
    re-hashing the id) but the baseline entry was never pruned; left alone it
    could silently grandfather a *future* regression that happens to hash to
    the same id.  CI runs ``lint --check-baseline`` to keep the file honest.
    """
    current = {f.finding_id for f in [*result.findings, *result.baselined]}
    return sorted(baseline_ids - current)


def run_lint(
    paths: list[str] | None,
    root: Path,
    fmt: str = "text",
    baseline_path: Path | None = None,
    update_baseline: bool = False,
    check_baseline: bool = False,
    wallclock_allow: tuple[str, ...] = (),
    out=print,
) -> int:
    """The ``python -m repro lint`` entry: returns the process exit code."""
    config = LintConfig(root=root, wallclock_allow=wallclock_allow)
    if baseline_path is None:
        baseline_path = root / "simlint-baseline.json"
    try:
        baseline_ids = load_baseline(baseline_path)
        result = lint_paths([Path(p) for p in paths] if paths else None, config, baseline_ids)
    except LintError as exc:
        out(f"simlint: error: {exc}")
        return 2
    if update_baseline:
        write_baseline(baseline_path, result)
        out(f"simlint: baseline with {len(result.findings) + len(result.baselined)} "
            f"id(s) written to {baseline_path}")
        return 0
    out(render_json(result) if fmt == "json" else render_text(result))
    if check_baseline:
        stale = stale_baseline_ids(result, baseline_ids)
        if stale:
            for finding_id in stale:
                out(f"simlint: stale baseline id {finding_id} "
                    f"(no current finding resolves to it)")
            return 1
        out(f"simlint: baseline ok ({len(baseline_ids)} id(s), none stale)")
    return result.exit_code
