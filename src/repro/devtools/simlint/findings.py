"""Finding records and their stable ids.

A finding id must survive unrelated edits (line-number drift, neighbouring
hunks) so the committed baseline does not churn: it hashes the rule, the
file, the *normalised text* of the offending line, and an occurrence index
among identical (rule, path, text) triples -- never the line number.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # POSIX, relative to the lint root
    line: int
    col: int
    message: str
    snippet: str  # the offending physical line, whitespace-normalised
    finding_id: str = field(default="", compare=False)

    def to_dict(self) -> dict:
        return {
            "id": self.finding_id,
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "snippet": self.snippet,
        }

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: {self.rule} "
            f"{self.message} [{self.finding_id}]"
        )


def normalise_snippet(source_line: str) -> str:
    """Collapse runs of whitespace so pure reformatting keeps ids stable."""
    return " ".join(source_line.split())


def assign_ids(findings: list[Finding]) -> list[Finding]:
    """Return findings with deterministic ids, input order preserved.

    The occurrence index disambiguates identical lines (two ``x.pop()`` on
    textually equal lines in one file get distinct ids), counted in source
    order so inserting an unrelated line does not renumber them.
    """
    seen: dict[tuple[str, str, str], int] = {}
    out: list[Finding] = []
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule)):
        key = (f.rule, f.path, f.snippet)
        nth = seen.get(key, 0)
        seen[key] = nth + 1
        digest = hashlib.sha256(
            f"{f.rule}|{f.path}|{f.snippet}|{nth}".encode()
        ).hexdigest()[:12]
        out.append(
            Finding(
                rule=f.rule,
                path=f.path,
                line=f.line,
                col=f.col,
                message=f.message,
                snippet=f.snippet,
                finding_id=digest,
            )
        )
    return out
