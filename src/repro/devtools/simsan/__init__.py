"""simsan: a determinism race detector for the event engine.

Static analysis (simlint) proves the *code* avoids non-deterministic
constructs; simsan checks the *runs*.  It re-executes a scenario under
permuted event-queue tie-breaking (``sim.events.tiebreak``) and diffs
byte-stable state fingerprints -- any divergence means some handler's result
depends on the order of equal-timestamp events, exactly the hazard the FIFO
sequence number silently masks.  While scenarios run it also tracks resource
accesses (double-acquire, negative occupancy, leaked holds) and the
striped-store write-generation invariant (the PR 8 stale-slot bug class).

Entry point: ``python -m repro sanitize`` (see ``runner.run_sanitize``).

Import discipline: ``runtime`` is a leaf (no ``repro.*`` imports) so
instrumented modules can import it without cycles; ``runner`` imports the
whole simulator and must only ever be imported lazily (the CLI does).
"""

from repro.devtools.simsan.fingerprint import fingerprint, fingerprint_state
from repro.devtools.simsan.runtime import ACTIVE, Sanitizer, Violation, activate

__all__ = [
    "ACTIVE",
    "Sanitizer",
    "Violation",
    "activate",
    "fingerprint",
    "fingerprint_state",
]
