"""Byte-stable state fingerprints for sanitizer comparisons.

A fingerprint is the first 16 hex digits of the sha256 of the canonical JSON
encoding (sorted keys, compact separators) -- the same construction
``ChaosReport.fingerprint`` uses, so fingerprints are comparable across
tools and independent of ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import hashlib
import json

#: components every slice fingerprints, in report order
COMPONENTS = ("result", "counters", "journal_kinds")


def fingerprint(doc) -> str:
    """Canonical-JSON sha256 prefix of any JSON-serialisable document."""
    payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def fingerprint_state(result_doc, counters: dict, journal_kinds: dict) -> dict:
    """Fingerprint the three observables the sanitizer diffs across modes:
    the slice's result JSON, its counter bag, and journal kind-totals."""
    return {
        "result": fingerprint(result_doc),
        "counters": fingerprint({k: counters[k] for k in sorted(counters)}),
        "journal_kinds": fingerprint(
            {k: journal_kinds[k] for k in sorted(journal_kinds)}
        ),
    }
