"""simsan runner: execute scenarios under permuted tie-breaking and diff.

Each *slice* is one self-contained scenario (engine replay, chaos run, chaos
run under the self-healing control plane).  The runner executes it once per
tie-break mode -- FIFO, reversed, seeded shuffle (``sim.events.tiebreak``) --
with a fresh :class:`~repro.devtools.simsan.runtime.Sanitizer` active, then
diffs the byte-stable state fingerprints (result JSON, counter bag, journal
kind-totals).  A component whose fingerprint differs across modes marks the
scenario order-sensitive: some handler's result depends on the order of
equal-timestamp events, which the default FIFO sequence number silently
masks.  Runtime access violations (double-acquire, negative occupancy,
leaked holds, generation hazards) are reported alongside.

The engine slice is pinned at ``concurrency=1``.  At higher concurrency the
engine is *known* order-sensitive: every client issues at t=0 and same-cost
first hops complete simultaneously, so jobs of different op types arrive at
one FIFO station in tie order and their waits swap under permutation.  That
ambiguity is physical (real servers race there too); the FIFO tie-break is
the documented canonical order, and docs/INTERNALS.md records it as the
hazard class this tool exists to surface.  At concurrency 1 -- where flush
completions, telemetry and job events still interleave asynchronously -- the
engine must be (and is) tie-robust.

Fixture files (``tests/testdata/simsan/``) are executed the same way: the
file is exec'd fresh per mode and must define ``scenario()`` returning a
JSON-serialisable document (or a ``(result, counters, journal_kinds)``
triple).  A fixture flags by diverging across modes or by tripping a runtime
check.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.devtools.simsan import runtime
from repro.devtools.simsan.fingerprint import COMPONENTS, fingerprint_state
from repro.sim import events as sim_events

#: tie-break modes every scenario runs under, in execution order
MODES = sim_events.TIEBREAK_MODES

#: slices `python -m repro sanitize` runs by default, in execution order
DEFAULT_SLICES = ("engine", "chaos", "heal")

DEFAULT_SHUFFLE_SEED = 0x51345


# --------------------------------------------------------------------- slices


def _store_and_spec(n_objects: int, n_requests: int, seed: int):
    from repro.baselines import make_store
    from repro.core import StoreConfig
    from repro.workloads import WorkloadSpec

    config = StoreConfig(k=6, r=3, value_size=4096, scheme="plm")
    store = make_store("logecmem", config)
    spec = WorkloadSpec.read_update(
        "50:50",
        n_objects=n_objects,
        n_requests=n_requests,
        value_size=config.value_size,
        seed=seed,
    )
    return store, spec


def _engine_slice(n_objects: int, n_requests: int, seed: int):
    from repro.engine.core import Engine, EngineConfig
    from repro.engine.load import build_jobs

    jobs, profile, _dram, _log = build_jobs(
        n_objects=n_objects, n_requests=n_requests, seed=seed
    )
    engine = Engine(jobs, profile, EngineConfig(concurrency=1))
    result = engine.run()
    return result.to_dict(), engine.counters.as_dict(), dict(engine.journal.counts)


def _chaos_slice(n_objects: int, n_requests: int, seed: int):
    from repro.chaos.harness import run_chaos

    store, spec = _store_and_spec(n_objects, n_requests, seed)
    report = run_chaos(store, spec, expected_faults=2.0)
    return (
        report.to_dict(),
        store.counters.as_dict(),
        dict(store.cluster.journal.counts),
    )


def _heal_slice(n_objects: int, n_requests: int, seed: int):
    from repro.chaos.harness import run_chaos
    from repro.heal import ControlPlane

    store, spec = _store_and_spec(n_objects, n_requests, seed)
    plane = ControlPlane()
    report = run_chaos(store, spec, expected_faults=4.0, control_plane=plane)
    return (
        report.to_dict(),
        store.counters.as_dict(),
        dict(store.cluster.journal.counts),
    )


_SLICES = {
    "engine": _engine_slice,
    "chaos": _chaos_slice,
    "heal": _heal_slice,
}


# ------------------------------------------------------------------ execution


def _normalise_state(value):
    """Accept ``doc`` or ``(doc, counters, journal_kinds)`` from a builder."""
    if isinstance(value, tuple) and len(value) == 3:
        return value
    return value, {}, {}


def compare_modes(build, shuffle_seed: int = DEFAULT_SHUFFLE_SEED) -> dict:
    """Run ``build()`` once per tie-break mode under an active sanitizer and
    diff the state fingerprints; the core simsan primitive."""
    fingerprints: dict[str, dict] = {}
    sanitizers: dict[str, dict] = {}
    for mode in MODES:
        san = runtime.Sanitizer()
        with sim_events.tiebreak(mode, shuffle_seed), runtime.activate(san):
            result_doc, counters, journal_kinds = _normalise_state(build(mode))
        fingerprints[mode] = fingerprint_state(result_doc, counters, journal_kinds)
        sanitizers[mode] = san.to_dict()
    order_sensitive = [
        comp
        for comp in COMPONENTS
        if len({fingerprints[m][comp] for m in MODES}) > 1
    ]
    ok = not order_sensitive and all(sanitizers[m]["ok"] for m in MODES)
    return {
        "ok": ok,
        "order_sensitive": order_sensitive,
        "fingerprints": fingerprints,
        "sanitizer": sanitizers,
    }


def run_fixture(path: str | Path, shuffle_seed: int = DEFAULT_SHUFFLE_SEED) -> dict:
    """Execute one planted-fixture file under the sanitizer.

    The file is exec'd in a fresh namespace per mode (so module-level state
    cannot leak across modes) and must define ``scenario()``.
    """
    path = Path(path)
    code = compile(path.read_text(encoding="utf-8"), str(path), "exec")

    def build(mode: str):
        namespace = {"__name__": "simsan_fixture", "__file__": str(path)}
        exec(code, namespace)
        scenario = namespace.get("scenario")
        if not callable(scenario):
            raise ValueError(f"fixture {path} does not define scenario()")
        return scenario()

    return compare_modes(build, shuffle_seed)


def run_sanitize(
    slices: tuple[str, ...] = DEFAULT_SLICES,
    fixtures: tuple[str, ...] = (),
    n_objects: int = 200,
    n_requests: int = 200,
    seed: int = 42,
    shuffle_seed: int = DEFAULT_SHUFFLE_SEED,
) -> dict:
    """Run the requested slices and fixtures; returns the report document."""
    from repro.obs.events import EventJournal
    from repro.sim.clock import SimClock
    from repro.sim.resources import Counters

    counters = Counters()
    journal = EventJournal(SimClock(), counters, capacity=1024)

    report: dict = {
        "version": 1,
        "modes": list(MODES),
        "shuffle_seed": shuffle_seed,
        "scale": {"n_objects": n_objects, "n_requests": n_requests, "seed": seed},
        "slices": {},
        "fixtures": {},
    }

    def _note(kind: str, outcome: dict, **attrs) -> None:
        journal.emit(kind, ok=outcome["ok"], **attrs)
        counters.add("sanitize_runs")
        if outcome["order_sensitive"]:
            counters.add("sanitize_hazards", len(outcome["order_sensitive"]))
            journal.emit(
                "sanitize_hazard",
                components=",".join(outcome["order_sensitive"]),
                **attrs,
            )
        for mode in MODES:
            for violation in outcome["sanitizer"][mode]["violations"]:
                counters.add("sanitize_violations")
                journal.emit(
                    "sanitize_violation",
                    mode=mode,
                    check=violation["check"],
                    subject=violation["subject"],
                    **attrs,
                )

    for name in slices:
        if name not in _SLICES:
            raise ValueError(
                f"unknown slice {name!r}; expected one of {sorted(_SLICES)}"
            )
        builder = _SLICES[name]
        outcome = compare_modes(
            lambda mode: builder(n_objects, n_requests, seed), shuffle_seed
        )
        report["slices"][name] = outcome
        _note("sanitize_slice", outcome, slice=name)

    for fixture in fixtures:
        rel = str(fixture)
        outcome = run_fixture(fixture, shuffle_seed)
        report["fixtures"][rel] = outcome
        _note("sanitize_fixture", outcome, fixture=rel)

    outcomes = list(report["slices"].values()) + list(report["fixtures"].values())
    report["ok"] = all(o["ok"] for o in outcomes)
    report["counters"] = {
        k: v for k, v in sorted(counters.as_dict().items())
    }
    report["journal_kinds"] = dict(journal.counts)
    return report


# ------------------------------------------------------------------ rendering


def render_json(report: dict) -> str:
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def render_text(report: dict) -> str:
    """Deterministic human-readable report (stable across hash seeds)."""
    lines = [
        f"simsan: tie-break modes {', '.join(report['modes'])} "
        f"(shuffle seed {report['shuffle_seed']})"
    ]
    for section in ("slices", "fixtures"):
        for name, outcome in report[section].items():
            status = "ok" if outcome["ok"] else "ORDER-SENSITIVE/VIOLATION"
            lines.append(f"  {section[:-1]} {name}: {status}")
            for comp in COMPONENTS:
                fps = [outcome["fingerprints"][m][comp] for m in report["modes"]]
                marker = "==" if len(set(fps)) == 1 else "!="
                lines.append(f"    {comp:13s} {marker} {' '.join(fps)}")
            for mode in report["modes"]:
                for violation in outcome["sanitizer"][mode]["violations"]:
                    lines.append(
                        f"    [{mode}] {violation['check']}: "
                        f"{violation['subject']} -- {violation['detail']}"
                    )
    lines.append(f"result: {'clean' if report['ok'] else 'FLAGGED'}")
    return "\n".join(lines) + "\n"
