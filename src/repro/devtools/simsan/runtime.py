"""simsan runtime: access tracking + happens-before checks for live runs.

This module is the dynamic half of the determinism contract (the static half
is simlint).  Instrumented call sites in the simulator -- station submits and
departs, log-buffer flush begin/end and drains, resource reservations, and
striped-store write-generation stamping/sealing -- report through the
module-level :data:`ACTIVE` sanitizer.  When no sanitizer is active (the
default, and every production run) each hook is a single global load and
``is None`` test; behaviour and outputs are untouched.

Checks
------
``negative_occupancy``   a release/depart with no matching hold, a buffer
                         drain of more bytes than it holds (the ``max(0, ..)``
                         clamp in the model would silently mask it), or a
                         metric counter tally crossing below zero
``double_acquire``       a second flush begun on a node whose previous flush
                         has not completed
``leaked_hold``          holds still open when the event queue drains
``time_regression``      a station submit at an earlier sim time than a
                         previous submit on the same station (the engine's
                         event loop fires in time order, so station arrival
                         times must be non-decreasing)
``generation_regression``a striped-store write stamped with a generation that
                         does not advance the key's live generation
``stale_apply``          a seal applying a slot whose stamped generation is
                         not the key's live generation (the PR 8
                         delete-then-rewrite staleness bug, generalised into
                         a continuously-checked invariant)
``future_generation``    a sealed slot stamped *ahead* of the live generation
                         (a happens-before violation: the stamp must precede
                         the seal)

IMPORTANT: this module must stay free of ``repro.*`` imports.  The engine,
core store and sim layers import it for their hooks; importing back into any
of them would cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Violation:
    """One sanitizer finding, in detection order."""

    check: str     # e.g. "negative_occupancy"
    subject: str   # station / node / resource / key the check fired on
    detail: str    # human-readable specifics (deterministic text)

    def to_dict(self) -> dict:
        return {"check": self.check, "subject": self.subject, "detail": self.detail}


@dataclass
class Sanitizer:
    """Collects access-tracking state and violations for one scenario run."""

    violations: list[Violation] = field(default_factory=list)
    counts: dict[str, int] = field(default_factory=dict)
    _holds: dict[str, int] = field(default_factory=dict)
    _flushes: dict[str, bool] = field(default_factory=dict)
    _reserve_now: dict[str, float] = field(default_factory=dict)
    _counter_floor: dict[str, float] = field(default_factory=dict)
    _live_gen: dict[str, int] = field(default_factory=dict)

    # -- reporting ---------------------------------------------------------
    def _flag(self, check: str, subject: str, detail: str) -> None:
        self.violations.append(Violation(check, subject, detail))
        self.counts[check] = self.counts.get(check, 0) + 1

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "counts": {k: self.counts[k] for k in sorted(self.counts)},
            "violations": [v.to_dict() for v in self.violations],
        }

    # -- station occupancy (engine/stations.py) ----------------------------
    def on_acquire(self, station: str, now: float) -> None:
        """A job reserved a station slot (Station.submit)."""
        last = self._reserve_now.get(station)
        if last is not None and now < last:
            self._flag(
                "time_regression",
                station,
                f"submit at t={now:.9f} after one at t={last:.9f}",
            )
        if last is None or now > last:
            self._reserve_now[station] = now
        self._holds[station] = self._holds.get(station, 0) + 1

    def on_release(self, station: str) -> None:
        """A job left a station (Station.depart)."""
        depth = self._holds.get(station, 0)
        if depth <= 0:
            self._flag(
                "negative_occupancy",
                station,
                "depart with no outstanding submit (occupancy would go negative)",
            )
            return
        self._holds[station] = depth - 1

    # -- log-buffer flushes (engine/backpressure.py via engine/core.py) ----
    def on_flush_begin(self, node: str) -> None:
        if self._flushes.get(node, False):
            self._flag(
                "double_acquire",
                node,
                "flush begun while a previous flush is still in flight",
            )
        self._flushes[node] = True

    def on_flush_end(self, node: str) -> None:
        self._flushes[node] = False

    def on_buffer_drain(self, node: str, nbytes: int, held: int) -> None:
        """``nbytes`` drained from a buffer currently holding ``held``."""
        if nbytes > held:
            self._flag(
                "negative_occupancy",
                node,
                f"drained {nbytes} bytes from a buffer holding {held}",
            )

    # -- metric counters (sim/resources.py) --------------------------------
    def on_counter(self, name: str, value_after: float) -> None:
        """Counter tallies are occupancy-like: the total must stay >= 0."""
        if value_after < 0 and value_after - self._counter_floor.get(name, 0.0) < 0:
            self._counter_floor[name] = value_after
            self._flag(
                "negative_occupancy",
                name,
                f"counter total went negative ({value_after:g})",
            )

    # -- write generations (core/striped.py) -------------------------------
    def on_write_gen(self, key: str, gen: int, live: int) -> None:
        """A pending write stamped ``gen``; ``live`` was the key's prior gen."""
        if gen <= live:
            self._flag(
                "generation_regression",
                key,
                f"write stamped gen {gen} does not advance live gen {live}",
            )
        self._live_gen[key] = max(gen, live)

    def on_seal(self, key: str, gen: int | None, live: int | None, applied: bool) -> None:
        """A seal considered a slot stamped ``gen`` while the key's live
        generation is ``live``; ``applied`` says it updated the index."""
        if gen is None or live is None:
            return
        if gen > live:
            self._flag(
                "future_generation",
                key,
                f"sealed slot stamped gen {gen} ahead of live gen {live}",
            )
        elif applied and gen != live:
            self._flag(
                "stale_apply",
                key,
                f"seal applied superseded gen {gen} over live gen {live}",
            )

    # -- end-of-run --------------------------------------------------------
    def on_drained(self, context: str) -> None:
        """The scenario's event queue drained; every hold must be closed."""
        for station in sorted(self._holds):
            depth = self._holds[station]
            if depth > 0:
                self._flag(
                    "leaked_hold",
                    station,
                    f"{depth} hold(s) still open at {context} drain",
                )
        for node in sorted(self._flushes):
            if self._flushes[node]:
                self._flag(
                    "leaked_hold",
                    node,
                    f"flush still in flight at {context} drain",
                )


#: the active sanitizer; ``None`` (the default) disables every hook.
ACTIVE: Sanitizer | None = None


class activate:
    """Context manager installing ``sanitizer`` as :data:`ACTIVE`."""

    def __init__(self, sanitizer: Sanitizer):
        self._sanitizer = sanitizer
        self._previous: Sanitizer | None = None

    def __enter__(self) -> Sanitizer:
        global ACTIVE
        self._previous = ACTIVE
        ACTIVE = self._sanitizer
        return self._sanitizer

    def __exit__(self, *exc) -> None:
        global ACTIVE
        ACTIVE = self._previous
