"""Zipfian request choosers, matching YCSB's generators.

:class:`ZipfianGenerator` implements the rejection-free inverse-CDF
approximation of Gray et al. (SIGMOD '94) that YCSB uses, with the standard
skew constant theta = 0.99.  Item 0 is the most popular.

:class:`ScrambledZipfian` composes it with an FNV-1a hash so popular items
are spread uniformly over the key space -- this is YCSB's default request
chooser and what the paper's workloads use.
"""

from __future__ import annotations

import numpy as np

ZIPFIAN_CONSTANT = 0.99

FNV_OFFSET_64 = 0xCBF29CE484222325
FNV_PRIME_64 = 0x100000001B3


def fnv1a_64(value: int) -> int:
    """FNV-1a hash of an integer's 8 little-endian bytes (YCSB's scrambler)."""
    h = FNV_OFFSET_64
    for _ in range(8):
        octet = value & 0xFF
        value >>= 8
        h ^= octet
        h = (h * FNV_PRIME_64) & 0xFFFFFFFFFFFFFFFF
    return h


def zeta(n: int, theta: float) -> float:
    """Generalised harmonic number sum_{i=1..n} 1/i^theta (vectorised)."""
    if n <= 0:
        return 0.0
    return float(np.sum(1.0 / np.arange(1, n + 1, dtype=np.float64) ** theta))


class ZipfianGenerator:
    """Zipf-distributed integers in [0, n), rank 0 most popular."""

    def __init__(self, n: int, theta: float = ZIPFIAN_CONSTANT, seed: int = 0):
        if n < 1:
            raise ValueError(f"need at least one item, got n={n}")
        if not 0 < theta < 1:
            raise ValueError(f"theta must be in (0, 1), got {theta}")
        self.n = n
        self.theta = theta
        self._rng = np.random.default_rng(seed)
        self.zetan = zeta(n, theta)
        self.zeta2 = zeta(2, theta)
        self.alpha = 1.0 / (1.0 - theta)
        self.eta = self._eta()

    def _eta(self) -> float:
        return (1 - (2.0 / self.n) ** (1 - self.theta)) / (1 - self.zeta2 / self.zetan)

    def grow(self, count: int = 1) -> None:
        """Extend the population by ``count`` items (YCSB-style incremental
        zeta): add the new terms to ``zetan`` and recompute ``eta`` so the
        distribution tracks the enlarged item set instead of staying frozen
        at the initial population."""
        if count <= 0:
            return
        new_n = self.n + count
        self.zetan += float(
            np.sum(1.0 / np.arange(self.n + 1, new_n + 1, dtype=np.float64) ** self.theta)
        )
        self.n = new_n
        self.eta = self._eta()

    def next(self) -> int:
        u = self._rng.random()
        uz = u * self.zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5**self.theta:
            return 1
        return int(self.n * (self.eta * u - self.eta + 1.0) ** self.alpha)

    def sample(self, count: int) -> np.ndarray:
        """Vectorised batch of ``count`` draws (same distribution as next())."""
        u = self._rng.random(count)
        uz = u * self.zetan
        out = (self.n * (self.eta * u - self.eta + 1.0) ** self.alpha).astype(np.int64)
        out[uz < 1.0 + 0.5**self.theta] = 1
        out[uz < 1.0] = 0
        np.clip(out, 0, self.n - 1, out=out)
        return out


class UniformGenerator:
    """Uniform key chooser (YCSB's uniform distribution)."""

    def __init__(self, n: int, seed: int = 0):
        if n < 1:
            raise ValueError(f"need at least one item, got n={n}")
        self.n = n
        self._rng = np.random.default_rng(seed)

    def next(self) -> int:
        return int(self._rng.integers(0, self.n))

    def sample(self, count: int) -> np.ndarray:
        return self._rng.integers(0, self.n, size=count, dtype=np.int64)


class HotspotGenerator:
    """YCSB's hotspot chooser: ``hot_op_fraction`` of requests hit a
    contiguous ``hot_set_fraction`` of the key space; the rest are uniform
    over the cold set."""

    def __init__(
        self,
        n: int,
        hot_set_fraction: float = 0.2,
        hot_op_fraction: float = 0.8,
        seed: int = 0,
    ):
        if n < 1:
            raise ValueError(f"need at least one item, got n={n}")
        if not 0 < hot_set_fraction < 1 or not 0 <= hot_op_fraction <= 1:
            raise ValueError("fractions must be in (0,1) / [0,1]")
        self.n = n
        self.hot_count = max(1, int(n * hot_set_fraction))
        self.hot_op_fraction = hot_op_fraction
        self._rng = np.random.default_rng(seed)

    def next(self) -> int:
        if self._rng.random() < self.hot_op_fraction:
            return int(self._rng.integers(0, self.hot_count))
        return int(self._rng.integers(self.hot_count, self.n))

    def sample(self, count: int) -> np.ndarray:
        hot = self._rng.random(count) < self.hot_op_fraction
        out = self._rng.integers(self.hot_count, self.n, size=count, dtype=np.int64)
        hot_draws = self._rng.integers(0, self.hot_count, size=count, dtype=np.int64)
        out[hot] = hot_draws[hot]
        return out


class LatestGenerator:
    """YCSB's "latest" chooser: recency-skewed popularity.

    Draws a Zipf-distributed *age* and subtracts it from the newest item, so
    recently-inserted items are hottest (workload D's distribution).  Call
    :meth:`grow` when an insert extends the population.
    """

    def __init__(self, n: int, theta: float = ZIPFIAN_CONSTANT, seed: int = 0):
        if n < 1:
            raise ValueError(f"need at least one item, got n={n}")
        self.n = n
        self._zipf = ZipfianGenerator(n, theta=theta, seed=seed)

    def grow(self, count: int = 1) -> None:
        """The population grew by ``count`` items (newest id = n - 1).

        The underlying age distribution grows with it -- otherwise zetan/eta
        would stay frozen at the initial population and the recency skew
        would drift from YCSB's semantics as inserts accumulate."""
        self.n += count
        self._zipf.grow(count)

    def next(self) -> int:
        age = self._zipf.next()
        return max(0, self.n - 1 - age)

    def sample(self, count: int) -> np.ndarray:
        ages = self._zipf.sample(count)
        return np.maximum(0, self.n - 1 - ages)


class ScrambledZipfian:
    """Zipfian popularity spread over the key space by FNV hashing."""

    def __init__(self, n: int, theta: float = ZIPFIAN_CONSTANT, seed: int = 0):
        self.n = n
        self._zipf = ZipfianGenerator(n, theta=theta, seed=seed)

    def next(self) -> int:
        return fnv1a_64(self._zipf.next()) % self.n

    def sample(self, count: int) -> np.ndarray:
        ranks = self._zipf.sample(count)
        # hash each rank; vectorising FNV over arbitrary ints is awkward, so
        # memoise instead: the rank distribution is heavily skewed and only a
        # small set of distinct ranks appears in practice.
        uniq, inverse = np.unique(ranks, return_inverse=True)
        hashed = np.array([fnv1a_64(int(v)) % self.n for v in uniq], dtype=np.int64)
        return hashed[inverse]
