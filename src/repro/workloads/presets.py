"""Standard YCSB core workloads as presets.

The paper parameterises YCSB by raw read:update / read:write ratios; users of
this library often want the named core workloads instead:

=====  ==========================  =========================
name   mix                         distribution
=====  ==========================  =========================
A      50% read / 50% update       zipfian
B      95% read / 5% update        zipfian
C      100% read                   zipfian
D      95% read / 5% insert        latest
E      (scan-based; approximated   zipfian
       here as 95% read / 5% insert)
F      50% read / 50% RMW          zipfian
=====  ==========================  =========================

Workload F's read-modify-write is expressed through
:func:`generate_preset_requests`, which emits a READ immediately followed by
an UPDATE of the same key.  Workload E's scans have no KV-store equivalent in
this codebase (LogECMem has no range queries), so E is approximated as an
insert-heavy mix; this substitution is documented here and in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.ycsb import Operation, Request, WorkloadSpec, object_key
from repro.workloads.zipf import LatestGenerator, ScrambledZipfian


@dataclass(frozen=True)
class PresetDef:
    read: float
    update: float
    insert: float
    rmw: float
    distribution: str  # "zipfian" | "latest"


PRESETS: dict[str, PresetDef] = {
    "A": PresetDef(read=0.5, update=0.5, insert=0.0, rmw=0.0, distribution="zipfian"),
    "B": PresetDef(read=0.95, update=0.05, insert=0.0, rmw=0.0, distribution="zipfian"),
    "C": PresetDef(read=1.0, update=0.0, insert=0.0, rmw=0.0, distribution="zipfian"),
    "D": PresetDef(read=0.95, update=0.0, insert=0.05, rmw=0.0, distribution="latest"),
    "E": PresetDef(read=0.95, update=0.0, insert=0.05, rmw=0.0, distribution="zipfian"),
    "F": PresetDef(read=0.5, update=0.0, insert=0.0, rmw=0.5, distribution="zipfian"),
}


def preset_spec(name: str, **kw) -> WorkloadSpec:
    """A WorkloadSpec carrying the preset's read/update/write ratios.

    RMW counts as read+update at the spec level; use
    :func:`generate_preset_requests` to get the paired request stream."""
    d = _lookup(name)
    return WorkloadSpec(
        read_ratio=d.read + d.rmw / 2,
        update_ratio=d.update + d.rmw / 2,
        write_ratio=d.insert,
        **kw,
    )


def _lookup(name: str) -> PresetDef:
    try:
        return PRESETS[name.upper()]
    except KeyError:
        raise ValueError(f"unknown YCSB preset {name!r}; choose from {sorted(PRESETS)}") from None


def generate_preset_requests(name: str, spec: WorkloadSpec) -> list[Request]:
    """Request stream for a named preset.

    Honors the preset's own mix and distribution (the spec supplies the
    population, request count, seed and value size).  RMW pairs count as two
    requests; inserts extend the population and shift the "latest" window.
    """
    d = _lookup(name)
    rng = np.random.default_rng(spec.seed)
    if d.distribution == "latest":
        chooser = LatestGenerator(spec.n_objects, seed=spec.seed + 1)
    else:
        chooser = ScrambledZipfian(spec.n_objects, theta=spec.theta, seed=spec.seed + 1)
    ops = rng.choice(
        ["read", "update", "insert", "rmw"],
        size=spec.n_requests,
        p=[d.read, d.update, d.insert, d.rmw],
    )
    requests: list[Request] = []
    next_insert = spec.n_objects
    for op in ops:
        if len(requests) >= spec.n_requests:
            break
        if op == "insert":
            requests.append(Request(Operation.WRITE, object_key(next_insert)))
            next_insert += 1
            if isinstance(chooser, LatestGenerator):
                chooser.grow()
        else:
            key = object_key(int(chooser.next()))
            if op == "read":
                requests.append(Request(Operation.READ, key))
            elif op == "update":
                requests.append(Request(Operation.UPDATE, key))
            else:  # rmw: read then write back
                requests.append(Request(Operation.READ, key))
                requests.append(Request(Operation.UPDATE, key))
    return requests[: spec.n_requests]
