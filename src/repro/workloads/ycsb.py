"""YCSB-style request streams (§6.2).

The paper loads one million objects with write requests, then issues one
million requests with Zipf-distributed keys under two mix families:

* read/**write** ratios (Experiment 1): writes insert *new* objects,
* read/**update** ratios (Experiments 2-6): updates overwrite existing ones.

Everything is deterministic per seed so experiment runs are reproducible.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.workloads.zipf import (
    HotspotGenerator,
    ScrambledZipfian,
    UniformGenerator,
    ZIPFIAN_CONSTANT,
)


class Operation(enum.Enum):
    READ = "read"
    UPDATE = "update"
    WRITE = "write"
    DELETE = "delete"


@dataclass(frozen=True)
class Request:
    op: Operation
    key: str


@dataclass
class WorkloadSpec:
    """One workload: population size, request count and operation mix."""

    n_objects: int = 10_000
    n_requests: int = 10_000
    read_ratio: float = 0.95
    update_ratio: float = 0.05
    write_ratio: float = 0.0
    value_size: int = 4096
    theta: float = ZIPFIAN_CONSTANT
    distribution: str = "zipfian"  # zipfian | uniform | hotspot
    seed: int = 42

    def __post_init__(self) -> None:
        total = self.read_ratio + self.update_ratio + self.write_ratio
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"operation ratios must sum to 1, got {total}")
        if self.n_objects < 1 or self.n_requests < 0:
            raise ValueError("population and request count must be positive")
        if self.distribution not in ("zipfian", "uniform", "hotspot"):
            raise ValueError(f"unknown distribution {self.distribution!r}")

    def make_chooser(self, seed_offset: int = 1):
        """The request-key chooser this spec describes."""
        if self.distribution == "uniform":
            return UniformGenerator(self.n_objects, seed=self.seed + seed_offset)
        if self.distribution == "hotspot":
            return HotspotGenerator(self.n_objects, seed=self.seed + seed_offset)
        return ScrambledZipfian(
            self.n_objects, theta=self.theta, seed=self.seed + seed_offset
        )

    @classmethod
    def read_update(cls, ratio: str, **kw) -> "WorkloadSpec":
        """Spec from a paper-style 'read:update' string like '95:5'."""
        read, update = (int(x) for x in ratio.split(":"))
        return cls(read_ratio=read / 100, update_ratio=update / 100, write_ratio=0.0, **kw)

    @classmethod
    def read_write(cls, ratio: str, **kw) -> "WorkloadSpec":
        """Spec from a paper-style 'read:write' string like '95:5'."""
        read, write = (int(x) for x in ratio.split(":"))
        return cls(read_ratio=read / 100, update_ratio=0.0, write_ratio=write / 100, **kw)


def object_key(i: int) -> str:
    """YCSB-style key (~20 bytes with the default setting)."""
    return f"user{i:016d}"


def load_keys(spec: WorkloadSpec) -> list[str]:
    """Keys of the load phase, in insertion (FIFO striping) order."""
    return [object_key(i) for i in range(spec.n_objects)]


def generate_requests(spec: WorkloadSpec) -> list[Request]:
    """The run phase: ``n_requests`` operations, Zipf-chosen keys.

    Write requests insert fresh keys beyond the loaded population (YCSB's
    insert behaviour); reads and updates target loaded keys.
    """
    rng = np.random.default_rng(spec.seed)
    chooser = spec.make_chooser()
    ops = rng.choice(
        [Operation.READ, Operation.UPDATE, Operation.WRITE],
        size=spec.n_requests,
        p=[spec.read_ratio, spec.update_ratio, spec.write_ratio],
    )
    keys = chooser.sample(spec.n_requests)
    requests: list[Request] = []
    next_insert = spec.n_objects
    for op, key_idx in zip(ops, keys):
        if op is Operation.WRITE:
            requests.append(Request(Operation.WRITE, object_key(next_insert)))
            next_insert += 1
        else:
            requests.append(Request(op, object_key(int(key_idx))))
    return requests


def update_trace(spec: WorkloadSpec) -> np.ndarray:
    """Indices (into the loaded population) of the update requests only.

    Used by the Observation-1/2 analyses, which never need the full request
    objects -- a NumPy array keeps million-request analyses fast.
    """
    rng = np.random.default_rng(spec.seed)
    chooser = spec.make_chooser()
    ops = rng.choice(
        [Operation.READ, Operation.UPDATE, Operation.WRITE],
        size=spec.n_requests,
        p=[spec.read_ratio, spec.update_ratio, spec.write_ratio],
    )
    keys = chooser.sample(spec.n_requests)
    return keys[ops == Operation.UPDATE]
