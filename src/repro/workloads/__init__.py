"""YCSB-style workload generation (§6.2).

* :mod:`repro.workloads.zipf` -- the Zipfian and scrambled-Zipfian request
  choosers YCSB uses (constant 0.99), implemented from the Gray et al.
  "Quickly generating billion-record synthetic databases" recurrence.
* :mod:`repro.workloads.ycsb` -- load + run phases with configurable
  read/update/write mixes, deterministic per-seed.
"""

from repro.workloads.zipf import (
    HotspotGenerator,
    LatestGenerator,
    ScrambledZipfian,
    UniformGenerator,
    ZipfianGenerator,
)
from repro.workloads.ycsb import Operation, Request, WorkloadSpec, generate_requests, load_keys
from repro.workloads.presets import PRESETS, generate_preset_requests, preset_spec
from repro.workloads import trace

__all__ = [
    "HotspotGenerator",
    "LatestGenerator",
    "Operation",
    "UniformGenerator",
    "PRESETS",
    "Request",
    "ScrambledZipfian",
    "WorkloadSpec",
    "ZipfianGenerator",
    "generate_preset_requests",
    "generate_requests",
    "load_keys",
    "preset_spec",
    "trace",
]
