"""Request-trace recording and replay.

Experiments are deterministic per seed, but sharing the *exact* request
stream (e.g. to replay one run against a modified store, or to diff two
implementations) is easier with a serialised trace.  Traces round-trip
through a compact text format: one ``op<TAB>key`` line per request.
"""

from __future__ import annotations

import io
from pathlib import Path

from repro.workloads.ycsb import Operation, Request

_OP_CODES = {
    Operation.READ: "R",
    Operation.UPDATE: "U",
    Operation.WRITE: "W",
    Operation.DELETE: "D",
}
_CODE_OPS = {v: k for k, v in _OP_CODES.items()}


def dumps(requests: list[Request]) -> str:
    """Serialise a request stream."""
    buf = io.StringIO()
    for req in requests:
        buf.write(f"{_OP_CODES[req.op]}\t{req.key}\n")
    return buf.getvalue()


def loads(text: str) -> list[Request]:
    """Parse a serialised request stream."""
    requests: list[Request] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            code, key = line.split("\t", 1)
            requests.append(Request(_CODE_OPS[code], key))
        except (ValueError, KeyError) as exc:
            raise ValueError(f"malformed trace line {lineno}: {line!r}") from exc
    return requests


def save(requests: list[Request], path: str | Path) -> None:
    """Write a trace file."""
    Path(path).write_text(dumps(requests))


def load(path: str | Path) -> list[Request]:
    """Read a trace file."""
    return loads(Path(path).read_text())
