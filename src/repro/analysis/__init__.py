"""Analysis layer: the paper's observations, tradeoff study and row printing.

* :mod:`repro.analysis.observations` -- Figure 3 (updated stripes vs new
  chunks per stripe) and Table 1 (memory overhead of in-place vs full-stripe).
* :mod:`repro.analysis.tradeoff` -- Figure 16 points and Table 3 rankings.
* :mod:`repro.analysis.report` -- paper-style plain-text tables.
* :mod:`repro.analysis.timeline` -- fault windows + latency attribution from
  the flight-recorder journal.
"""

from repro.analysis.observations import (
    memory_overhead_model,
    observation2_table,
    stripe_update_histogram,
)
from repro.analysis.timeline import (
    FaultWindow,
    attribute_latency,
    event_timeline,
    fault_windows,
    mttr_s,
    telemetry_overlay,
)
from repro.analysis.tradeoff import TradeoffPoint, table3, tradeoff_points
from repro.analysis.report import format_table, fmt_scientific, gib

__all__ = [
    "FaultWindow",
    "TradeoffPoint",
    "attribute_latency",
    "event_timeline",
    "fault_windows",
    "fmt_scientific",
    "format_table",
    "gib",
    "memory_overhead_model",
    "mttr_s",
    "observation2_table",
    "stripe_update_histogram",
    "table3",
    "telemetry_overlay",
    "tradeoff_points",
]
