"""Latency-breakdown aggregation.

Operations that report a per-phase breakdown (``OpResult.info["breakdown"]``)
can be aggregated into mean seconds per phase -- the quantitative form of the
paper's §6.3 discussion ("a long I/O path for the additional encoding
operation", "mitigates the number of parity reads from r to one").
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.interface import OpResult


def aggregate_breakdowns(results: list[OpResult]) -> dict[str, float]:
    """Mean seconds per phase over the results that carry a breakdown."""
    sums: dict[str, float] = defaultdict(float)
    count = 0
    for res in results:
        breakdown = res.info.get("breakdown")
        if not breakdown:
            continue
        count += 1
        for phase, seconds in breakdown.items():
            sums[phase] += seconds
    if count == 0:
        return {}
    return {phase: total / count for phase, total in sums.items()}


def breakdown_shares(results: list[OpResult]) -> dict[str, float]:
    """Phase shares of the total (fractions summing to ~1)."""
    means = aggregate_breakdowns(results)
    total = sum(means.values())
    if total <= 0:
        return {}
    return {phase: seconds / total for phase, seconds in means.items()}
