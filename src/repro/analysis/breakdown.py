"""Latency-breakdown aggregation.

Operations that report a per-phase breakdown (``OpResult.info["breakdown"]``)
can be aggregated into mean seconds per phase -- the quantitative form of the
paper's §6.3 discussion ("a long I/O path for the additional encoding
operation", "mitigates the number of parity reads from r to one").
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.interface import OpResult


def aggregate_breakdowns(results: list[OpResult]) -> dict[str, float]:
    """Mean seconds per phase over the results that carry a breakdown."""
    sums: dict[str, float] = defaultdict(float)
    count = 0
    for res in results:
        breakdown = res.info.get("breakdown")
        if not breakdown:
            continue
        count += 1
        for phase, seconds in breakdown.items():
            sums[phase] += seconds
    if count == 0:
        return {}
    return {phase: total / count for phase, total in sums.items()}


def breakdown_shares(results: list[OpResult]) -> dict[str, float]:
    """Phase shares of the total (fractions summing to ~1)."""
    means = aggregate_breakdowns(results)
    total = sum(means.values())
    if total <= 0:
        return {}
    return {phase: seconds / total for phase, seconds in means.items()}


def aggregate_span_phases(spans) -> dict[str, dict[str, float]]:
    """Mean seconds per phase, per op, over finished root spans.

    The span-tree counterpart of :func:`aggregate_breakdowns`: phases are a
    root span's direct children (``update -> read_old_xor/encode_delta/
    ship_delta/log_ack``, ...), so any traced op -- not just the ones that
    attach ``info['breakdown']`` -- gets a breakdown.
    """
    sums: dict[str, dict[str, float]] = {}
    counts: dict[str, int] = defaultdict(int)
    for span in spans:
        counts[span.name] += 1
        per_op = sums.setdefault(span.name, defaultdict(float))
        for phase, seconds in span.phase_seconds().items():
            per_op[phase] += seconds
    return {
        op: {phase: total / counts[op] for phase, total in sorted(per_op.items())}
        for op, per_op in sorted(sums.items())
    }


def span_shares(spans) -> dict[str, dict[str, float]]:
    """Phase shares of each op's total (fractions summing to ~1 per op)."""
    out: dict[str, dict[str, float]] = {}
    for op, phases in aggregate_span_phases(spans).items():
        total = sum(phases.values())
        if total > 0:
            out[op] = {phase: s / total for phase, s in phases.items()}
    return out
