"""Terminal bar charts for the benchmark/report output.

No plotting dependency: figures render as labelled horizontal bars, good
enough to *see* the shapes the paper's figures show (who wins, where the
crossover falls) directly in the harness output.
"""

from __future__ import annotations

BAR_CHARS = "█"


def hbar_chart(
    series: dict[str, float],
    width: int = 40,
    unit: str = "",
    title: str | None = None,
) -> str:
    """One horizontal bar per entry, scaled to the max value."""
    if not series:
        return title or ""
    peak = max(series.values())
    if peak <= 0:
        peak = 1.0
    label_w = max(len(k) for k in series)
    lines = [title] if title else []
    for name, value in series.items():
        bar = BAR_CHARS * max(1, round(value / peak * width)) if value > 0 else ""
        lines.append(f"{name.ljust(label_w)}  {bar} {value:g}{unit}")
    return "\n".join(lines)


def grouped_chart(
    groups: dict[str, dict[str, float]],
    width: int = 40,
    unit: str = "",
    title: str | None = None,
) -> str:
    """Several bar groups (e.g. one per read:update ratio) sharing one scale."""
    if not groups:
        return title or ""
    peak = max((v for g in groups.values() for v in g.values()), default=1.0)
    if peak <= 0:
        peak = 1.0
    label_w = max(
        (len(k) for g in groups.values() for k in g), default=0
    )
    lines = [title] if title else []
    for group, series in groups.items():
        lines.append(f"-- {group}")
        for name, value in series.items():
            bar = BAR_CHARS * max(1, round(value / peak * width)) if value > 0 else ""
            lines.append(f"  {name.ljust(label_w)}  {bar} {value:g}{unit}")
    return "\n".join(lines)


def strip_chart(
    points: list[tuple[float, float]],
    width: int = 60,
    t0: float | None = None,
    t1: float | None = None,
) -> str:
    """A fixed-width strip chart over a shared time axis.

    Unlike :func:`sparkline` (one glyph per value), the x axis here is
    *time*: ``points`` are ``(t_s, value)`` samples bucketed into ``width``
    columns spanning ``[t0, t1]`` so several series render column-aligned
    (and fault-window rulers line up underneath).  Buckets average their
    samples; empty buckets render as spaces.
    """
    if not points:
        return " " * width
    if t0 is None:
        t0 = points[0][0]
    if t1 is None:
        t1 = points[-1][0]
    span = max(t1 - t0, 1e-12)
    sums = [0.0] * width
    counts = [0] * width
    for t_s, value in points:
        idx = min(width - 1, max(0, int((t_s - t0) / span * width)))
        sums[idx] += value
        counts[idx] += 1
    means = [sums[i] / counts[i] if counts[i] else None for i in range(width)]
    present = [v for v in means if v is not None]
    lo, hi = min(present), max(present)
    vspan = hi - lo
    blocks = "▁▂▃▄▅▆▇█"
    cells = []
    for v in means:
        if v is None:
            cells.append(" ")
        elif vspan <= 0:
            cells.append(blocks[0])
        else:
            cells.append(blocks[min(len(blocks) - 1, int((v - lo) / vspan * len(blocks)))])
    return "".join(cells)


def time_ruler(
    spans: list[tuple[float, float]],
    width: int = 60,
    t0: float = 0.0,
    t1: float = 1.0,
) -> str:
    """Mark time intervals (e.g. fault windows) on a strip-chart axis.

    Columns covered by any span render ``▓``, the rest ``·`` -- lay this
    under :func:`strip_chart` output built with the same ``t0``/``t1``.
    """
    axis_span = max(t1 - t0, 1e-12)
    cells = ["·"] * width
    for start, end in spans:
        lo = max(0, int((start - t0) / axis_span * width))
        hi = min(width - 1, int((end - t0) / axis_span * width))
        for i in range(lo, hi + 1):
            cells[i] = "▓"
    return "".join(cells)


def sparkline(values: list[float], width: int | None = None) -> str:
    """A one-line trend: ▁▂▃▄▅▆▇█ buckets over the value range."""
    blocks = "▁▂▃▄▅▆▇█"
    if not values:
        return ""
    if width and len(values) > width:
        # downsample by striding (keeps ends)
        step = len(values) / width
        values = [values[int(i * step)] for i in range(width)]
    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0:
        return blocks[0] * len(values)
    return "".join(
        blocks[min(len(blocks) - 1, int((v - lo) / span * len(blocks)))]
        for v in values
    )
