"""Terminal bar charts for the benchmark/report output.

No plotting dependency: figures render as labelled horizontal bars, good
enough to *see* the shapes the paper's figures show (who wins, where the
crossover falls) directly in the harness output.
"""

from __future__ import annotations

BAR_CHARS = "█"


def hbar_chart(
    series: dict[str, float],
    width: int = 40,
    unit: str = "",
    title: str | None = None,
) -> str:
    """One horizontal bar per entry, scaled to the max value."""
    if not series:
        return title or ""
    peak = max(series.values())
    if peak <= 0:
        peak = 1.0
    label_w = max(len(k) for k in series)
    lines = [title] if title else []
    for name, value in series.items():
        bar = BAR_CHARS * max(1, round(value / peak * width)) if value > 0 else ""
        lines.append(f"{name.ljust(label_w)}  {bar} {value:g}{unit}")
    return "\n".join(lines)


def grouped_chart(
    groups: dict[str, dict[str, float]],
    width: int = 40,
    unit: str = "",
    title: str | None = None,
) -> str:
    """Several bar groups (e.g. one per read:update ratio) sharing one scale."""
    if not groups:
        return title or ""
    peak = max((v for g in groups.values() for v in g.values()), default=1.0)
    if peak <= 0:
        peak = 1.0
    label_w = max(
        (len(k) for g in groups.values() for k in g), default=0
    )
    lines = [title] if title else []
    for group, series in groups.items():
        lines.append(f"-- {group}")
        for name, value in series.items():
            bar = BAR_CHARS * max(1, round(value / peak * width)) if value > 0 else ""
            lines.append(f"  {name.ljust(label_w)}  {bar} {value:g}{unit}")
    return "\n".join(lines)


def sparkline(values: list[float], width: int | None = None) -> str:
    """A one-line trend: ▁▂▃▄▅▆▇█ buckets over the value range."""
    blocks = "▁▂▃▄▅▆▇█"
    if not values:
        return ""
    if width and len(values) > width:
        # downsample by striding (keeps ends)
        step = len(values) / width
        values = [values[int(i * step)] for i in range(width)]
    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0:
        return blocks[0] * len(values)
    return "".join(
        blocks[min(len(blocks) - 1, int((v - lo) / span * len(blocks)))]
        for v in values
    )
