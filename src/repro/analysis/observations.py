"""Observations 1 and 2 (§2.3): the motivation for HybridPL.

Both observations are trace-driven: objects are loaded FIFO (every k
consecutive objects form a stripe), one million Zipf-distributed requests are
generated per read:update ratio, and we ask

* **Observation 1 / Figure 3** -- per stripe, how many of its data chunks
  received at least one update?  Update-light workloads leave most updated
  stripes with a single new chunk, which is what makes full-stripe update
  pay k-1 chunk reads per re-encoded stripe.
* **Observation 2 / Table 1** -- how much memory do in-place and full-stripe
  update need?  In-place stays at M; full-stripe retains the superseded
  versions, growing to (1 + p) * M for update fraction p.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.ycsb import WorkloadSpec, update_trace


def stripe_update_histogram(
    k: int,
    spec: WorkloadSpec,
) -> dict[int, int]:
    """Figure 3: {new chunks per stripe: number of such updated stripes}.

    Loaded objects stripe FIFO (object i sits in stripe i // k, as chunk
    i % k); each update marks its object's chunk "new".  Only stripes with at
    least one update are counted, matching the paper's y-axis.
    """
    updates = update_trace(spec)
    if updates.size == 0:
        return {}
    chunk_ids = np.unique(updates)          # distinct updated chunks
    stripe_ids = chunk_ids // k
    _, new_chunks_per_stripe = np.unique(stripe_ids, return_counts=True)
    buckets, counts = np.unique(new_chunks_per_stripe, return_counts=True)
    return {int(b): int(c) for b, c in zip(buckets, counts)}


def memory_overhead_model(update_fraction: float) -> dict[str, float]:
    """Table 1's analytic model, in units of the total object size M."""
    if not 0 <= update_fraction <= 1:
        raise ValueError(f"update fraction must be in [0, 1], got {update_fraction}")
    return {
        "in-place": 1.0,
        "full-stripe": 1.0 + update_fraction,
    }


def observation2_table(
    ratios: list[str] | None = None,
) -> dict[str, dict[str, float]]:
    """Table 1 for the paper's ratios: {'95:5': {'in-place': 1.0, ...}, ...}.

    The paper issues one million requests over one million objects, so the
    expected stale bytes equal (update ratio) * M exactly.
    """
    ratios = ratios or ["95:5", "80:20", "70:30", "50:50"]
    out: dict[str, dict[str, float]] = {}
    for ratio in ratios:
        _, upd = (int(x) for x in ratio.split(":"))
        out[ratio] = memory_overhead_model(upd / 100)
    return out


def measured_full_stripe_overhead(
    k: int, spec: WorkloadSpec
) -> float:
    """Trace-measured full-stripe overhead in units of M.

    Counts every update event as a retained stale version (deferred GC), i.e.
    (#updates) / (#objects) extra -- the quantity Table 1 reports.
    """
    updates = update_trace(spec)
    return 1.0 + updates.size / spec.n_objects
