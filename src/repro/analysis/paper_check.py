"""The reproduction contract: every headline claim of the paper, checked.

:func:`verify_all` runs the (scaled) experiments once, evaluates each
:class:`Claim` against the paper's number and a tolerance band, and returns a
pass/fail table.  ``benchmarks/bench_paper_claims.py`` prints it; EXPERIMENTS
.md quotes it.  Tolerances are wide where the paper's number depends on its
1M-request scale (FSMem's amortised-GC gap) and tight where the result is
analytic (Table 1/2).
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean

from repro.analysis.observations import measured_full_stripe_overhead
from repro.bench.experiments import experiment6, experiment7, update_memory_sweep
from repro.reliability import mttdl_years
from repro.workloads import WorkloadSpec


@dataclass
class ClaimResult:
    """One verified claim."""

    claim: str
    paper: float
    ours: float
    tolerance: float  # allowed |ours - paper| (absolute, in the claim's unit)
    source: str

    @property
    def passed(self) -> bool:
        return abs(self.ours - self.paper) <= self.tolerance


def _sweep_metric(rows, store, k, ratio, field):
    return next(
        r[field]
        for r in rows
        if r["store"] == store and r["k"] == k and r["ratio"] == ratio
    )


def verify_all(
    n_objects: int = 1500, n_requests: int = 1500, seed: int = 42
) -> list[ClaimResult]:
    """Run the claim suite at the given scale (~30 s at the default)."""
    results: list[ClaimResult] = []

    # --- analytic claims ----------------------------------------------------
    results.append(
        ClaimResult(
            claim="Table 2: MTTDL of (6,3) at B=1 Gb/s (1e9 years)",
            paper=1.03,
            ours=mttdl_years(6, 3, 1) / 1e9,
            tolerance=0.02,
            source="§3.1 Table 2",
        )
    )
    results.append(
        ClaimResult(
            claim="Table 2: MTTDL of (12,4) at B=40 Gb/s (1e10 years)",
            paper=1.95,
            ours=mttdl_years(12, 4, 40) / 1e10,
            tolerance=0.04,
            source="§3.1 Table 2",
        )
    )
    spec_5050 = WorkloadSpec.read_update(
        "50:50", n_objects=100_000, n_requests=100_000, seed=seed
    )
    results.append(
        ClaimResult(
            claim="Table 1: full-stripe memory at 50:50 (xM)",
            paper=1.5,
            ours=measured_full_stripe_overhead(6, spec_5050),
            tolerance=0.02,
            source="§2.3 Table 1",
        )
    )

    # --- update latency / memory (Experiments 2-3) ---------------------------
    sweep = update_memory_sweep(
        [(6, 3), (10, 4), (12, 4)],
        ratios=("95:5", "70:30", "50:50"),
        n_objects=n_objects,
        n_requests=n_requests,
        seed=seed,
    )

    def reduction(store_hi, store_lo, k, ratio, field="update_latency_us"):
        hi = _sweep_metric(sweep, store_hi, k, ratio, field)
        lo = _sweep_metric(sweep, store_lo, k, ratio, field)
        return (hi - lo) / hi * 100

    results.append(
        ClaimResult(
            claim="LogECMem vs IPMem update reduction, r=3 @70:30 (%)",
            paper=32.7,
            ours=reduction("ipmem", "logecmem", 6, "70:30"),
            tolerance=6.0,
            source="§6.3 Exp 2",
        )
    )
    results.append(
        ClaimResult(
            claim="LogECMem vs IPMem update reduction, r=4 @70:30 (%)",
            paper=37.8,
            ours=reduction("ipmem", "logecmem", 10, "70:30"),
            tolerance=4.0,
            source="§6.3 Exp 2",
        )
    )
    results.append(
        ClaimResult(
            claim="LogECMem vs FSMem update reduction, (6,3) @95:5 (%)",
            paper=58.0,
            ours=reduction("fsmem", "logecmem", 6, "95:5"),
            tolerance=30.0,  # scale-sensitive: grows with trace length
            source="§6.3 Exp 2",
        )
    )
    results.append(
        ClaimResult(
            claim="Memory saving vs IPMem, (6,3) (%)",
            paper=22.2,
            ours=reduction("ipmem", "logecmem", 6, "50:50", "memory_GiB"),
            tolerance=3.0,
            source="§6.3 Exp 3",
        )
    )
    results.append(
        ClaimResult(
            claim="Memory saving vs FSMem, (6,3) @50:50 (%)",
            paper=49.0,
            ours=reduction("fsmem", "logecmem", 6, "50:50", "memory_GiB"),
            tolerance=6.0,
            source="§6.3 Exp 3",
        )
    )
    results.append(
        ClaimResult(
            claim="Memory saving vs 5-way replication, (12,4) (%)",
            paper=79.3,
            ours=reduction("replication", "logecmem", 12, "50:50", "memory_GiB"),
            tolerance=3.0,
            source="§6.3 Exp 3",
        )
    )

    # --- multi-failure repair (Experiment 6) ---------------------------------
    exp6 = experiment6(
        codes=[(6, 3)],
        ratios=("50:50",),
        n_objects=max(600, n_objects // 2),
        n_requests=max(600, n_requests // 2),
        samples=50,
        io_code=(6, 3),
    )

    def exp6_lat(scheme):
        return mean(
            r["degraded_latency_us"]
            for r in exp6
            if r["scheme"] == scheme and r["ratio"] == "50:50"
        )

    results.append(
        ClaimResult(
            claim="PLM vs PL degraded-read reduction @50:50 (%)",
            paper=35.9,
            ours=(1 - exp6_lat("plm") / exp6_lat("pl")) * 100,
            tolerance=20.0,  # delta density per hot stripe is scale-sensitive
            source="§6.3 Exp 6",
        )
    )

    # --- node repair (Experiment 7) ------------------------------------------
    exp7 = experiment7(
        codes=[(6, 3)], n_objects=n_objects, n_requests=n_requests // 2, seed=seed
    )
    plain = next(r for r in exp7 if not r["log_assist"])
    assisted = next(r for r in exp7 if r["log_assist"])
    results.append(
        ClaimResult(
            claim="Log-assist node-repair gain, (6,3) (%)",
            paper=18.2,
            ours=(
                assisted["throughput_GiB_per_min"] / plain["throughput_GiB_per_min"]
                - 1
            )
            * 100,
            tolerance=5.0,
            source="§6.3 Exp 7",
        )
    )
    return results
