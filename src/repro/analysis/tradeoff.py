"""Tradeoff analysis: Figure 16 scatter points and Table 3 rankings (§6.4).

Consumes the per-configuration rows produced by Experiments 2-4 (store name,
code, read:update ratio, mean update latency, memory overhead) and derives

* the (memory, latency) points of Figure 16, and
* Table 3's "best / low / high" labels: per (k group, ratio), stores ranked
  by update latency (outside the brackets) and by memory (inside).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TradeoffPoint:
    """One point of Figure 16."""

    store: str
    k: int
    r: int
    ratio: str
    update_latency_us: float
    memory_GiB: float


def tradeoff_points(rows: list[dict]) -> list[TradeoffPoint]:
    """Rows -> Figure 16 points (rows as emitted by the experiment drivers)."""
    return [
        TradeoffPoint(
            store=row["store"],
            k=row["k"],
            r=row["r"],
            ratio=row["ratio"],
            update_latency_us=row["update_latency_us"],
            memory_GiB=row["memory_GiB"],
        )
        for row in rows
    ]


_RANK_LABELS = ["best", "low", "high"]


def _rank(values: dict[str, float]) -> dict[str, str]:
    """Store -> 'best'/'low'/'high' by ascending value (paper's labels)."""
    ordered = sorted(values, key=values.get)
    labels = {}
    for pos, store in enumerate(ordered):
        labels[store] = _RANK_LABELS[min(pos, len(_RANK_LABELS) - 1)]
    return labels


def table3(rows: list[dict], stores: tuple[str, ...] = ("ipmem", "fsmem", "logecmem")):
    """Table 3: {(k, ratio): {store: 'latency_label (memory_label)'}}.

    ``rows`` must contain one entry per (store, k, ratio) with
    ``update_latency_us`` and ``memory_GiB``.
    """
    cells: dict[tuple[int, str], dict[str, str]] = {}
    keys = sorted({(row["k"], row["ratio"]) for row in rows})
    for k, ratio in keys:
        group = [r for r in rows if r["k"] == k and r["ratio"] == ratio and r["store"] in stores]
        if len(group) < len(stores):
            continue
        lat = {r["store"]: r["update_latency_us"] for r in group}
        mem = {r["store"]: r["memory_GiB"] for r in group}
        lat_labels = _rank(lat)
        mem_labels = _rank(mem)
        cells[(k, ratio)] = {
            s: f"{lat_labels[s]} ({mem_labels[s]})" for s in stores
        }
    return cells
