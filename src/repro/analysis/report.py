"""Plain-text table rendering for the benchmark harness.

The benchmarks print the same rows/series the paper reports; these helpers
keep that output consistent and legible without any plotting dependency.
"""

from __future__ import annotations


def fmt_scientific(value: float, digits: int = 2) -> str:
    """Paper-style scientific notation: 1.03e+09."""
    return f"{value:.{digits}e}"


def gib(nbytes: float) -> float:
    """Bytes -> GiB."""
    return nbytes / (1 << 30)


def format_table(headers: list[str], rows: list[list], title: str | None = None) -> str:
    """Fixed-width table with a header rule."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
