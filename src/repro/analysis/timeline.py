"""Timeline reconstruction: fault windows and latency attribution.

The flight recorder (:mod:`repro.obs.events`) captures *when* faults opened
and closed; the chaos proxy stamps every op with *when* it started
(``OpOutcome.at_s``).  This module joins the two: it pairs each
``fault_inject`` with the event that closed it (``fault_heal``,
``repair_done`` or ``stale_recover``, whichever the fault kind spawns),
yielding :class:`FaultWindow`\\ s, then attributes per-op latency shifts to
those windows -- ops whose start time falls inside a window vs the baseline
of ops that ran with no fault open.  That is the table DXRAM-style recovery
debugging needs: not "p99 got worse" but "p99 got worse *during the log1
partition*".

Everything operates on the JSON form of events (``EventJournal.to_dicts()``
or parsed journal JSONL), so the same code serves the in-process harness and
the ``inspect`` CLI reading a dumped journal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.ascii_chart import sparkline, strip_chart, time_ruler

#: event kinds that can close a fault window, by the fault kind that opened it
_CLOSERS = {
    "crash": ("repair_done", "stale_recover", "fault_heal"),
    "blip": ("fault_heal", "stale_recover"),
    "slow": ("fault_heal",),
    "partition": ("fault_heal",),
    "stall": (),  # closes by its injected duration, no healing event
}


@dataclass
class FaultWindow:
    """One fault's open interval on the simulated timeline."""

    kind: str
    node_id: str
    start_s: float
    end_s: float  # math.inf when the fault never healed and no run end is known
    #: False when no closer event was found -- the fault was still open when
    #: the run (or the supplied horizon) ended; ``end_s`` is then the clamp
    #: point, not a healing time
    healed: bool = True

    @property
    def closed(self) -> bool:
        return math.isfinite(self.end_s)

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def contains(self, t_s: float) -> bool:
        return self.start_s <= t_s <= self.end_s

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "node": self.node_id,
            "start_s": round(self.start_s, 9),
            "end_s": round(self.end_s, 9) if self.closed else None,
            "healed": self.healed,
        }


def fault_windows(
    events: list[dict], run_end_s: float | None = None
) -> list[FaultWindow]:
    """Pair ``fault_inject`` events with whatever closed them.

    A window closes at the first matching closer event for the same node
    after it opened; a ``stall`` closes after its injected duration.  A fault
    with no closer stays *open* (``healed=False``): with ``run_end_s`` given
    it is clamped there -- it ran for the rest of the run -- otherwise its
    end is ``inf``.  Open windows therefore always participate in latency
    attribution and MTTR; they are never silently dropped.  Events must be
    the journal's dict form (chronological, as ``EventJournal.to_dicts()``
    returns them).
    """
    windows: list[FaultWindow] = []
    for i, ev in enumerate(events):
        if ev["kind"] != "fault_inject":
            continue
        attrs = ev["attrs"]
        kind = attrs["kind"]
        node = attrs["node"]
        start = ev["t_s"]
        end = math.inf
        healed = False
        closers = _CLOSERS.get(kind, ("fault_heal",))
        for later in events[i + 1 :]:
            if (
                later["kind"] in closers
                and later["attrs"].get("node") == node
                and later["t_s"] >= start
            ):
                end = later["t_s"]
                healed = True
                break
        if not healed and kind == "stall":
            end = start + attrs.get("duration_s", 0.0)
            healed = True
        if not healed and run_end_s is not None:
            end = max(start, run_end_s)
        windows.append(
            FaultWindow(kind=kind, node_id=node, start_s=start, end_s=end, healed=healed)
        )
    return windows


def mttr_s(windows: list[FaultWindow]) -> float:
    """Mean time to repair across fault windows.

    Open windows count at their clamped duration (fault active until run
    end) -- pass ``run_end_s`` to :func:`fault_windows` so the mean stays
    finite; a window left at ``inf`` makes the MTTR ``inf``, which is the
    honest answer for an unbounded outage.  No windows means nothing ever
    broke: MTTR 0.
    """
    if not windows:
        return 0.0
    return sum(w.duration_s for w in windows) / len(windows)


def attribute_latency(
    windows: list[FaultWindow],
    samples: list[tuple[float, float, str]],
) -> list[dict]:
    """Per-window latency attribution rows.

    ``samples`` are acked ops as ``(at_s, latency_s, op)``.  The baseline is
    the mean latency of ops that started outside *every* window; each row
    compares the ops that started inside one window against it.  All floats
    are rounded, so the rows are byte-stable for a seeded run.
    """
    baseline = [lat for at, lat, _ in samples if not any(w.contains(at) for w in windows)]
    base_mean = sum(baseline) / len(baseline) if baseline else 0.0
    rows: list[dict] = []
    for w in windows:
        inside = [(lat, op) for at, lat, op in samples if w.contains(at)]
        mean_in = sum(lat for lat, _ in inside) / len(inside) if inside else 0.0
        per_op: dict[str, int] = {}
        for _, op in inside:
            per_op[op] = per_op.get(op, 0) + 1
        shift = (mean_in / base_mean - 1.0) * 100.0 if base_mean > 0 and inside else 0.0
        row = w.to_dict()
        row.update(
            {
                "ops_in_window": len(inside),
                "ops_by_kind": dict(sorted(per_op.items())),
                "mean_in_us": round(mean_in * 1e6, 3),
                "mean_baseline_us": round(base_mean * 1e6, 3),
                "shift_pct": round(shift, 2),
            }
        )
        rows.append(row)
    return rows


def telemetry_overlay(
    telemetry: dict,
    windows: list[FaultWindow] | None = None,
    width: int = 60,
    series: list[str] | None = None,
) -> str:
    """Strip-chart every telemetry series with fault windows marked.

    ``telemetry`` is a sampler's ``to_dict()`` form (as carried by
    ``EngineResult.telemetry`` / ``ChaosReport.telemetry``).  All charts
    share one time axis spanning the earliest to the latest sample, so a
    ``time_ruler`` of the fault windows lines up column-for-column under
    them -- occupancy rising *through* the shaded span and recovering after
    it is visible at a glance.  ``series`` filters by name prefix.
    """
    all_series = telemetry.get("series", {})
    names = sorted(all_series)
    if series:
        names = [n for n in names if any(n.startswith(p) for p in series)]
    names = [n for n in names if all_series[n]["points"]]
    if not names:
        return "(no telemetry)"
    t0 = min(all_series[n]["points"][0][0] for n in names)
    t1 = max(all_series[n]["points"][-1][0] for n in names)
    label_w = max(len(n) for n in names)
    lines = [
        f"{len(names)} series over {(t1 - t0) * 1e3:.3f} ms "
        f"[{t0 * 1e3:.3f} .. {t1 * 1e3:.3f} ms]"
    ]
    for name in names:
        points = all_series[name]["points"]
        values = [v for _, v in points]
        lines.append(
            f"{name.ljust(label_w)}  {strip_chart(points, width, t0, t1)}"
            f"  [{min(values):g} .. {max(values):g}] last={values[-1]:g}"
        )
    if windows:
        spans = [(w.start_s, min(w.end_s, t1)) for w in windows if w.start_s <= t1]
        lines.append(f"{'faults'.ljust(label_w)}  {time_ruler(spans, width, t0, t1)}")
        for w in windows:
            end = f"{w.end_s * 1e3:.3f} ms" if w.closed else "open"
            lines.append(
                f"{''.ljust(label_w)}  {w.kind}@{w.node_id} "
                f"[{w.start_s * 1e3:.3f} ms .. {end}]"
            )
    return "\n".join(lines)


def event_timeline(events: list[dict], width: int = 60) -> str:
    """ASCII render: one sparkline of event density per kind over the run."""
    if not events:
        return "(no events)"
    t0 = events[0]["t_s"]
    t1 = events[-1]["t_s"]
    span = max(t1 - t0, 1e-12)
    kinds = sorted({ev["kind"] for ev in events})
    label_w = max(len(k) for k in kinds)
    lines = [
        f"{len(events)} events over {span * 1e3:.3f} ms "
        f"[{t0 * 1e3:.3f} .. {t1 * 1e3:.3f} ms]"
    ]
    for kind in kinds:
        buckets = [0.0] * width
        n = 0
        for ev in events:
            if ev["kind"] != kind:
                continue
            idx = min(width - 1, int((ev["t_s"] - t0) / span * width))
            buckets[idx] += 1
            n += 1
        lines.append(f"{kind.ljust(label_w)}  {sparkline(buckets)}  x{n}")
    return "\n".join(lines)
