"""Analytic chunk-transfer model of the four update schemes (§2.2, Figure 1).

For one data-chunk update under a (k, r) code, counts the chunk reads, chunk
writes, and stored chunks of:

* direct reconstruction  -- read the k-1 untouched data chunks, re-encode,
* in-place update        -- read the old data + r old parities, write back,
* full-stripe update     -- batch m new chunks into a new stripe; GC later
  re-reads the k-m active chunks (update-light) or releases a fully-replaced
  stripe for free (update-heavy),
* parity logging         -- read the old data chunk, append r parity deltas.

This is the quantitative form of the paper's §2.2.1 wide-stripe argument:
delta-based schemes cost O(r) regardless of k, while full-stripe update's GC
cost grows with k.  Verified against Figure 1's concrete numbers in the
tests, and swept over k by ``benchmarks/bench_ext_widestripe.py``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TransferCost:
    """Per-update chunk traffic and steady-state storage of one scheme."""

    scheme: str
    chunk_reads: float
    chunk_writes: float
    stored_chunks: float  # stripe-local chunks resident after the update

    @property
    def total_transfers(self) -> float:
        return self.chunk_reads + self.chunk_writes


def direct_reconstruction(k: int, r: int) -> TransferCost:
    """Read everything untouched, recompute all parities."""
    return TransferCost(
        scheme="direct",
        chunk_reads=k - 1,
        chunk_writes=1 + r,
        stored_chunks=k + r,
    )


def in_place(k: int, r: int) -> TransferCost:
    """Figure 1(a): delta through every parity; 3 parity reads at r=3."""
    return TransferCost(
        scheme="in-place",
        chunk_reads=1 + r,          # old data chunk + r old parities
        chunk_writes=1 + r,
        stored_chunks=k + r,        # 9 for (6,3)
    )


def full_stripe(k: int, r: int, new_chunks_per_stripe: float) -> TransferCost:
    """Figure 1(b)/(c): m new chunks batch into a new stripe.

    Per update (amortised over the m new chunks of a GC'd stripe): the new
    chunk write plus r/m parity writes, plus (k-m)/m active-chunk reads and
    the new parity set for the re-formed stripe.  Stored chunks count both
    stripes until GC completes (18 for the update-heavy (6,3) example, 13
    for the update-light one)."""
    m = float(new_chunks_per_stripe)
    if not 0 < m <= k:
        raise ValueError(f"new chunks per stripe must be in (0, k], got {m}")
    return TransferCost(
        scheme="full-stripe",
        chunk_reads=(k - m) / m,    # 0 when the stripe is fully replaced
        chunk_writes=1 + r / m,     # the new chunk + its share of new parities
        stored_chunks=(k + r) + m + r,  # old stripe + new versions until GC
    )


def parity_logging(k: int, r: int) -> TransferCost:
    """Figure 1(d): no parity reads; r deltas appended to logs."""
    return TransferCost(
        scheme="parity-logging",
        chunk_reads=1,              # old data chunk, to compute the delta
        chunk_writes=1 + r,         # new data + r logged deltas
        stored_chunks=k + r + r,    # old parities + logged deltas: 12 at (6,3)
    )


def hybrid_pl(k: int, r: int) -> TransferCost:
    """HybridPL (§3.3): in-place data + XOR parity, deltas for the rest."""
    return TransferCost(
        scheme="hybrid-pl",
        chunk_reads=2,              # old data chunk + XOR parity
        chunk_writes=1 + r,         # new data + new XOR + (r-1) deltas
        stored_chunks=k + r + (r - 1),
    )


def sweep_k(
    ks: list[int], r: int = 4, new_chunks_per_stripe: float = 1.0
) -> list[dict]:
    """Per-update total transfers vs k for every scheme (the §2.2.1 table)."""
    rows = []
    for k in ks:
        for cost in (
            direct_reconstruction(k, r),
            in_place(k, r),
            full_stripe(k, r, new_chunks_per_stripe),
            parity_logging(k, r),
            hybrid_pl(k, r),
        ):
            rows.append(
                {
                    "k": k,
                    "scheme": cost.scheme,
                    "reads": cost.chunk_reads,
                    "writes": cost.chunk_writes,
                    "total": cost.total_transfers,
                }
            )
    return rows
