"""The paper's experiments (§6.3) as parameterised functions.

Each ``experimentN`` returns a list of row dicts -- one per plotted point --
so the ``benchmarks/`` wrappers can print the same series the paper's figures
show.  The ``scale`` arguments shrink the population/request counts from the
paper's one million to laptop size; all *relative* results are scale-free
because every cost is mechanistic (see DESIGN.md).
"""

from __future__ import annotations

from statistics import mean

from repro.analysis.report import gib
from repro.baselines import make_store
from repro.core.config import StoreConfig
from repro.core.logecmem import LogECMem
from repro.core.repair import repair_node
from repro.workloads.ycsb import WorkloadSpec
from repro.bench.runner import (
    measure_degraded_reads,
    run_workload,
)

PAPER_CODES = [(6, 3), (10, 4), (12, 4), (15, 3)]
LARGE_CODES = [(16, 4), (32, 4), (64, 4), (128, 4)]
RU_RATIOS = ["95:5", "80:20", "70:30", "50:50"]
SCHEMES = ["pl", "plr", "plr-m", "plm"]

#: full-scale total object bytes the paper reports memory against (1M x 4KiB)
PAPER_TOTAL_OBJECTS = 1_000_000


def _config(k: int, r: int, value_size: int = 4096, **kw) -> StoreConfig:
    return StoreConfig(k=k, r=r, value_size=value_size, **kw)


def _memory_GiB_at_paper_scale(memory_bytes: int, spec: WorkloadSpec) -> float:
    """Scale the measured footprint to the paper's 1M-object population so
    Figure 12/13 numbers are directly comparable."""
    return gib(memory_bytes * (PAPER_TOTAL_OBJECTS / spec.n_objects))


# --------------------------------------------------------------- Experiment 1


def experiment1(
    n_objects: int = 3000,
    n_requests: int = 3000,
    value_sizes: tuple[int, ...] = (1024, 4096, 16384),
    ratios: tuple[str, ...] = ("95:5", "50:50"),
    code: tuple[int, int] = (10, 4),
    stores: tuple[str, ...] = ("vanilla", "replication", "ipmem", "fsmem", "logecmem"),
    degraded_samples: int = 100,
    seed: int = 42,
    jitter: float = 0.0,
) -> list[dict]:
    """Figure 10: read/write/degraded-read latency and throughput.

    ``jitter`` > 0 enables the seeded network-variance model, populating the
    ``*_std_us`` columns (the paper reports variance over ten cloud runs)."""
    k, r = code
    rows = []
    for value_size in value_sizes:
        for ratio in ratios:
            spec = WorkloadSpec.read_write(
                ratio,
                n_objects=n_objects,
                n_requests=n_requests,
                value_size=value_size,
                seed=seed,
            )
            for name in stores:
                config = _config(k, r, value_size)
                config.profile.jitter_fraction = jitter
                store = make_store(name, config)
                result = run_workload(store, spec)
                if name == "vanilla":
                    degraded_us = float("nan")
                else:
                    dl = measure_degraded_reads(store, spec, samples=degraded_samples)
                    degraded_us = mean(dl) * 1e6
                rows.append(
                    {
                        "store": name,
                        "value_size": value_size,
                        "ratio": ratio,
                        "read_latency_us": result.mean_latency_us("read"),
                        "read_std_us": result.std_latency_us("read"),
                        "write_latency_us": result.mean_latency_us("write"),
                        "write_std_us": result.std_latency_us("write"),
                        "degraded_latency_us": degraded_us,
                        "throughput_kops": result.throughput_ops_s / 1e3,
                    }
                )
    return rows


# ------------------------------------------------------- Experiments 2 and 3


def update_memory_sweep(
    codes: list[tuple[int, int]],
    ratios: tuple[str, ...] = tuple(RU_RATIOS),
    stores: tuple[str, ...] = ("replication", "ipmem", "fsmem", "logecmem"),
    n_objects: int = 3000,
    n_requests: int = 3000,
    value_size: int = 4096,
    seed: int = 42,
) -> list[dict]:
    """Shared driver for Figures 11-13 and 16: update latency + memory."""
    rows = []
    for k, r in codes:
        for ratio in ratios:
            spec = WorkloadSpec.read_update(
                ratio,
                n_objects=n_objects,
                n_requests=n_requests,
                value_size=value_size,
                seed=seed,
            )
            for name in stores:
                store = make_store(name, _config(k, r, value_size))
                result = run_workload(store, spec)
                rows.append(
                    {
                        "store": name,
                        "k": k,
                        "r": r,
                        "ratio": ratio,
                        "update_latency_us": result.mean_latency_us("update"),
                        "read_latency_us": result.mean_latency_us("read"),
                        "memory_GiB": _memory_GiB_at_paper_scale(
                            result.memory_bytes, spec
                        ),
                        "memory_bytes": result.memory_bytes,
                    }
                )
    return rows


def experiment2(**kw) -> list[dict]:
    """Figure 11: update latency for the paper's four codes."""
    return update_memory_sweep(PAPER_CODES, **kw)


def experiment3(**kw) -> list[dict]:
    """Figure 12: memory overhead for the paper's four codes (same runs)."""
    return update_memory_sweep(PAPER_CODES, **kw)


def experiment4(n_objects: int = 4096, **kw) -> list[dict]:
    """Figure 13: the large-scale setting, k in {16, 32, 64, 128}, r = 4."""
    return update_memory_sweep(LARGE_CODES, n_objects=n_objects, **kw)


# --------------------------------------------------------------- Experiment 5


def experiment5(
    codes: list[tuple[int, int]] = PAPER_CODES,
    ratios: tuple[str, ...] = tuple(RU_RATIOS),
    schemes: tuple[str, ...] = tuple(SCHEMES),
    n_objects: int = 3000,
    n_requests: int = 3000,
    value_size: int = 4096,
    seed: int = 42,
    io_code: tuple[int, int] = (10, 4),
) -> list[dict]:
    """Figure 14(a)-(b): disk IOs during updates per log scheme.

    Two sweeps, as the paper plots them: ratios at the ``io_code`` and codes
    at read:update = 95:5.
    """
    rows = []
    sweeps = [(io_code, ratio) for ratio in ratios] + [
        (code, "95:5") for code in codes if code != io_code or "95:5" not in ratios
    ]
    seen = set()
    for code, ratio in sweeps:
        if (code, ratio) in seen:
            continue
        seen.add((code, ratio))
        k, r = code
        spec = WorkloadSpec.read_update(
            ratio,
            n_objects=n_objects,
            n_requests=n_requests,
            value_size=value_size,
            seed=seed,
        )
        for scheme in schemes:
            store = LogECMem(_config(k, r, value_size, scheme=scheme))
            result = run_workload(store, spec)
            rows.append(
                {
                    "scheme": scheme,
                    "k": k,
                    "r": r,
                    "ratio": ratio,
                    "disk_ios": result.disk_io_count,
                    "disk_ios_scaled": result.disk_io_count
                    * (PAPER_TOTAL_OBJECTS / n_requests),
                    "log_disk_MiB": store.cluster.log_disk_logical_bytes() / (1 << 20),
                }
            )
    return rows


# --------------------------------------------------------------- Experiment 6


def experiment6(
    codes: list[tuple[int, int]] = PAPER_CODES,
    ratios: tuple[str, ...] = tuple(RU_RATIOS),
    schemes: tuple[str, ...] = tuple(SCHEMES),
    n_objects: int = 3000,
    n_requests: int = 3000,
    value_size: int = 4096,
    samples: int = 100,
    seed: int = 42,
    io_code: tuple[int, int] = (10, 4),
) -> list[dict]:
    """Figure 14(c)-(d): multi-chunk-failure degraded-read latency.

    Two DRAM nodes are killed (every stripe then misses two DRAM chunks, so
    every degraded read must materialise a logged parity), and the mean
    degraded-read latency is measured per scheme.
    """
    rows = []
    sweeps = [(io_code, ratio) for ratio in ratios] + [
        (code, "95:5") for code in codes
    ]
    seen = set()
    for code, ratio in sweeps:
        if (code, ratio) in seen:
            continue
        seen.add((code, ratio))
        k, r = code
        spec = WorkloadSpec.read_update(
            ratio,
            n_objects=n_objects,
            n_requests=n_requests,
            value_size=value_size,
            seed=seed,
        )
        for scheme in schemes:
            store = LogECMem(_config(k, r, value_size, scheme=scheme))
            run_workload(store, spec)
            store.cluster.kill("dram0")
            store.cluster.kill("dram1")
            lats = _degraded_on_failed(store, spec, samples)
            rows.append(
                {
                    "scheme": scheme,
                    "k": k,
                    "r": r,
                    "ratio": ratio,
                    "degraded_latency_us": mean(lats) * 1e6,
                }
            )
    return rows


def _degraded_on_failed(store: LogECMem, spec: WorkloadSpec, samples: int) -> list[float]:
    """Degraded-read latencies for objects that live on failed nodes.

    Keys are drawn from the same Zipfian chooser as the workload, matching
    the paper's measurement where degraded reads arrive from the client's
    request stream (hot objects -- whose stripes hold the most parity deltas
    -- are therefore sampled more often)."""
    from repro.workloads.zipf import ScrambledZipfian
    from repro.workloads.ycsb import object_key

    chooser = ScrambledZipfian(spec.n_objects, theta=spec.theta, seed=spec.seed + 7)
    lats: list[float] = []
    clock = store.cluster.clock
    attempts = 0
    while len(lats) < samples and attempts < 1000 * samples:
        attempts += 1
        key = object_key(int(chooser.next()))
        loc = store.object_index.get(key)
        if loc is None:
            continue
        rec = store.stripe_index.get(loc.stripe_id)
        node = rec.chunk_nodes[loc.seq_no]
        if store.cluster.dram_nodes[node].alive:
            continue
        res = store.read(key)  # auto-degrades
        clock.advance(res.latency_s)
        lats.append(res.latency_s)
    if not lats:
        raise RuntimeError("no objects found on the failed nodes")
    return lats


# --------------------------------------------------------------- Experiment 7


def experiment7(
    codes: list[tuple[int, int]] = PAPER_CODES,
    ratio: str = "95:5",
    n_objects: int = 3000,
    n_requests: int = 1500,
    value_size: int = 4096,
    seed: int = 42,
) -> list[dict]:
    """Figure 15: node repair throughput with and without log-assist."""
    rows = []
    for k, r in codes:
        spec = WorkloadSpec.read_update(
            ratio,
            n_objects=n_objects,
            n_requests=n_requests,
            value_size=value_size,
            seed=seed,
        )
        for log_assist in (False, True):
            store = LogECMem(_config(k, r, value_size))
            run_workload(store, spec)
            store.cluster.kill("dram0")
            result = repair_node(store, "dram0", log_assist=log_assist)
            rows.append(
                {
                    "k": k,
                    "r": r,
                    "log_assist": log_assist,
                    "repair_time_s": result.repair_time_s,
                    "throughput_GiB_per_min": result.throughput_GiB_per_min,
                    "chunks": result.chunks_repaired,
                    "assisted_stripes": result.log_assisted_stripes,
                }
            )
    return rows
