"""Perf regression gate: diff two BENCH_*.json profile snapshots.

``python -m repro profile`` distils a run into a byte-deterministic snapshot
(per-op latency quantiles, per-phase means, counter deltas); this module
turns two such snapshots into an enforced perf trajectory.  It walks both
documents to their numeric leaves and compares each against a per-metric
*relative* threshold, producing a machine-readable verdict:

* integer leaves (op counts, chunks repaired, counter deltas that are whole
  IO/RPC counts) must match **exactly** -- the simulator is deterministic,
  so any drift there is a behaviour change, not noise;
* float leaves (latencies in us, repair seconds, fractional counters) may
  drift up to their threshold; a *worsening* beyond it is a regression, an
  improvement beyond it is recorded (so wins are visible, not silent);
* ``spans_digest`` changes and keys present on only one side are surfaced
  as notes -- structural drift worth a look, but not a gate failure;
* mismatched ``meta`` (objects/requests/seed) fails outright: the
  comparison would be meaningless.

The verdict is deterministic (sorted paths, rounded numbers), so the gate's
own output can be diffed.  CI runs it between the committed baseline and a
freshly generated profile; the exit code is the gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: relative drift allowed per leaf key (exact key match wins over section)
DEFAULT_THRESHOLDS: dict[str, float] = {
    "mean_us": 0.05,
    "p50_us": 0.10,
    "p90_us": 0.10,
    "p99_us": 0.10,
    "min_us": 0.10,
    "max_us": 0.10,
    "repair_time_s": 0.05,
    # wall-clock self-profiling (the 'speed' slice): host-time readings are
    # noise-prone by construction, so only an order-of-magnitude slowdown
    # should gate; higher throughput is never a regression
    "wall_us_per_op": 1.5,
    "wall_s_per_sim_s": 1.5,
    "wall_ops_per_s": float("inf"),
    # sections (matched against path components when no key matches)
    "phases": 0.10,
    "counters": 0.10,
}

#: fallback for float leaves no rule matches
DEFAULT_RELATIVE = 0.10

#: meta fields that must agree for the diff to mean anything
_META_KEYS = ("objects", "requests", "seed")


def _threshold_for(path: str, thresholds: dict[str, float]) -> float:
    leaf = path.rsplit("/", 1)[-1]
    if leaf in thresholds:
        return thresholds[leaf]
    for part in path.split("/"):
        if part in thresholds:
            return thresholds[part]
    return thresholds.get("default", DEFAULT_RELATIVE)


def _walk(doc, path: str, leaves: dict) -> None:
    if isinstance(doc, dict):
        for key in sorted(doc):
            _walk(doc[key], f"{path}/{key}" if path else str(key), leaves)
    else:
        leaves[path] = doc


def compare_profiles(
    baseline: dict,
    candidate: dict,
    thresholds: dict[str, float] | None = None,
    experiments: list[str] | None = None,
) -> dict:
    """Compare two BENCH documents; returns the verdict dict.

    ``experiments`` restricts the comparison to the named experiment slices
    (e.g. CI profiles only exp1 against a full committed baseline).
    """
    merged_thresholds = dict(DEFAULT_THRESHOLDS)
    if thresholds:
        merged_thresholds.update(thresholds)

    verdict = {
        "status": "pass",
        "compared": 0,
        "regressions": [],
        "improvements": [],
        "notes": [],
    }

    base_meta = baseline.get("meta", {})
    cand_meta = candidate.get("meta", {})
    for key in _META_KEYS:
        if base_meta.get(key) != cand_meta.get(key):
            verdict["status"] = "fail"
            verdict["regressions"].append(
                {
                    "path": f"meta/{key}",
                    "baseline": base_meta.get(key),
                    "candidate": cand_meta.get(key),
                    "reason": "meta mismatch: snapshots are not comparable",
                }
            )
    if verdict["regressions"]:
        return verdict

    base_exps = baseline.get("experiments", {})
    cand_exps = candidate.get("experiments", {})
    names = sorted(set(base_exps) & set(cand_exps))
    if experiments is not None:
        names = [n for n in names if n in experiments]
    for only, side in ((set(base_exps) - set(cand_exps), "baseline"),
                       (set(cand_exps) - set(base_exps), "candidate")):
        for name in sorted(only):
            if experiments is None or name in experiments:
                verdict["notes"].append(f"experiment {name!r} only in {side}")

    base_leaves: dict = {}
    cand_leaves: dict = {}
    for name in names:
        _walk(base_exps[name], name, base_leaves)
        _walk(cand_exps[name], name, cand_leaves)

    for path in sorted(set(base_leaves) - set(cand_leaves)):
        verdict["notes"].append(f"key {path!r} missing from candidate")
    for path in sorted(set(cand_leaves) - set(base_leaves)):
        verdict["notes"].append(f"key {path!r} new in candidate")

    for path in sorted(set(base_leaves) & set(cand_leaves)):
        base = base_leaves[path]
        cand = cand_leaves[path]
        leaf = path.rsplit("/", 1)[-1]
        if isinstance(base, str) or isinstance(cand, str):
            if base != cand:
                verdict["notes"].append(
                    f"{path}: {base!r} -> {cand!r}"
                    + (" (span tree changed)" if leaf == "spans_digest" else "")
                )
            continue
        verdict["compared"] += 1
        if isinstance(base, int) and isinstance(cand, int) and not isinstance(base, bool):
            if base != cand:
                verdict["regressions"].append(
                    {
                        "path": path,
                        "baseline": base,
                        "candidate": cand,
                        "reason": "integer metric must match exactly",
                    }
                )
            continue
        base_f = float(base)
        cand_f = float(cand)
        if base_f == cand_f:
            continue
        limit = _threshold_for(path, merged_thresholds)
        if base_f == 0.0:
            # something appeared from nothing: treat as beyond any threshold
            rel = float("inf") if cand_f > 0 else float("-inf")
        else:
            rel = (cand_f - base_f) / abs(base_f)
        entry = {
            "path": path,
            "baseline": base_f,
            "candidate": cand_f,
            "relative": round(rel, 6) if abs(rel) != float("inf") else None,
            "threshold": limit,
        }
        if rel > limit:
            entry["reason"] = f"worse by {rel * 100:.2f}% (limit {limit * 100:g}%)"
            verdict["regressions"].append(entry)
        elif rel < -limit:
            verdict["improvements"].append(entry)

    if verdict["regressions"]:
        verdict["status"] = "fail"
    return verdict


def render_verdict(verdict: dict) -> str:
    """Human-readable rendering of a verdict dict."""
    lines = [
        f"regression gate: {verdict['status'].upper()} "
        f"({verdict['compared']} metrics compared, "
        f"{len(verdict['regressions'])} regressions, "
        f"{len(verdict['improvements'])} improvements)"
    ]
    for entry in verdict["regressions"]:
        lines.append(
            f"  REGRESSION {entry['path']}: {entry['baseline']} -> "
            f"{entry['candidate']} ({entry.get('reason', '')})"
        )
    for entry in verdict["improvements"]:
        lines.append(
            f"  improved   {entry['path']}: {entry['baseline']} -> "
            f"{entry['candidate']}"
        )
    for note in verdict["notes"]:
        lines.append(f"  note: {note}")
    return "\n".join(lines)


def _parse_threshold(spec: str) -> tuple[str, float]:
    key, _, value = spec.partition("=")
    if not value:
        raise argparse.ArgumentTypeError(
            f"threshold override must look like key=0.05, got {spec!r}"
        )
    return key, float(value)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.compare",
        description="Diff two BENCH_*.json profile snapshots (regression gate).",
    )
    parser.add_argument("baseline", help="committed baseline profile JSON")
    parser.add_argument("candidate", help="freshly generated profile JSON")
    parser.add_argument(
        "--experiments",
        nargs="+",
        default=None,
        help="restrict to these experiment slices (default: all shared)",
    )
    parser.add_argument(
        "--threshold",
        action="append",
        type=_parse_threshold,
        default=[],
        metavar="KEY=REL",
        help="override a relative threshold, e.g. p99_us=0.2 (repeatable)",
    )
    parser.add_argument(
        "--out", default=None, help="also write the verdict JSON to this path"
    )
    args = parser.parse_args(argv)

    baseline = json.loads(Path(args.baseline).read_text())
    candidate = json.loads(Path(args.candidate).read_text())
    verdict = compare_profiles(
        baseline,
        candidate,
        thresholds=dict(args.threshold),
        experiments=args.experiments,
    )
    print(render_verdict(verdict))
    if args.out:
        Path(args.out).write_text(json.dumps(verdict, indent=2, sort_keys=True) + "\n")
    return 0 if verdict["status"] == "pass" else 1


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    sys.exit(main())
