"""Experiment drivers: load/run workloads against the stores and emit the
rows that every paper table/figure reports.  The pytest-benchmark files in
``benchmarks/`` are thin wrappers over these functions."""

from repro.bench.runner import WorkloadResult, load_store, run_requests, run_workload
from repro.bench import experiments

__all__ = ["WorkloadResult", "experiments", "load_store", "run_requests", "run_workload"]
