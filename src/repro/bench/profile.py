"""Per-phase profiling harness (``python -m repro profile <exp>``).

Runs a scaled-down slice of the paper's experiments with span tracing on and
distils each into a deterministic perf snapshot: per-op latency quantiles
(p50/p90/p99 from the streaming histograms), per-phase mean times (from the
span trees), and the run's counter deltas.  ``write_profile`` serialises the
whole document with sorted keys and rounded floats, so two same-seed runs
produce **byte-identical** ``BENCH_PR3.json`` files -- the regression
baseline future perf PRs diff against.

Covered slices:

* ``exp1`` -- all five stores under the 95:5 read-heavy mix, plus forced
  degraded reads (Figure 10's regime);
* ``exp2`` -- the EC stores under the 50:50 update-heavy mix (Figure 11);
* ``exp6`` -- LogECMem degraded reads with two DRAM nodes down, exercising
  the logged-parity escalation (Figure 14 c-d);
* ``exp7`` -- node repair with and without log-assist (Figure 15);
* ``heal`` -- the closed-loop control-plane experiment: MTTR/availability
  with and without the plane, plus the plane's own action counts;
* ``load`` -- the concurrent engine's load curve at two client counts:
  throughput, tail quantiles, rejects, flush/backpressure activity and the
  knee indicators, so queueing-behaviour regressions gate like latency ones;
* ``speed`` -- the harness profiling *itself*: wall-clock cost of simulating
  a fixed workload.  The only slice allowed to read the host clock, so its
  floats vary run to run; they gate on deliberately generous thresholds
  (see ``DEFAULT_THRESHOLDS`` in :mod:`repro.bench.compare`) and are
  excluded from byte-identity comparisons.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.baselines import make_store
from repro.bench.runner import load_store, measure_degraded_reads, run_requests
from repro.core.config import StoreConfig
from repro.core.repair import repair_node
from repro.heal import run_heal_experiment
from repro.obs import init_observability
from repro.workloads import WorkloadSpec, generate_requests

PROFILE_EXPERIMENTS = ("exp1", "exp2", "exp6", "exp7", "heal", "load", "speed")

ALL_STORES = ("vanilla", "replication", "ipmem", "fsmem", "logecmem")
EC_STORES = ("ipmem", "fsmem", "logecmem")

#: forced degraded reads sampled per store in exp1/exp6
DEGRADED_SAMPLES = 40


def _counter_delta(before: dict, after: dict) -> dict[str, float]:
    """Counters that moved during the profiled window, rounded for stable
    JSON (sorted keys; zero-delta entries omitted)."""
    out = {}
    for key in sorted(set(before) | set(after)):
        delta = round(after.get(key, 0.0) - before.get(key, 0.0), 6)
        if delta != 0:
            out[key] = delta
    return out


def _span_digest(spans) -> str:
    """Deterministic fingerprint of the retained span trees."""
    doc = json.dumps([s.to_dict() for s in spans], sort_keys=True)
    return hashlib.sha256(doc.encode()).hexdigest()[:16]


def _snapshot(store, counters_before: dict, spans) -> dict:
    snap = store.metrics.snapshot()
    snap["counters"] = _counter_delta(counters_before, store.counters.as_dict())
    snap["spans_digest"] = _span_digest(spans)
    return snap


def _spec(ratio: str, n_objects: int, n_requests: int, seed: int) -> WorkloadSpec:
    return WorkloadSpec.read_update(
        ratio, n_objects=n_objects, n_requests=n_requests, seed=seed
    )


def profile_exp1(n_objects: int, n_requests: int, seed: int) -> dict:
    """Basic I/O: every store, 95:5 mix, plus forced degraded reads."""
    out = {}
    for name in ALL_STORES:
        store = make_store(name, StoreConfig(k=6, r=3, value_size=4096, scheme="plm"))
        spec = _spec("95:5", n_objects, n_requests, seed)
        load_store(store, spec)
        before = dict(store.counters.as_dict())
        result = run_requests(store, generate_requests(spec), spec, profile=True)
        spans = list(result.spans)
        if name != "vanilla":  # vanilla has no redundancy to degrade onto
            measure_degraded_reads(store, spec, samples=DEGRADED_SAMPLES)
            spans += store.tracer.drain()
        out[name] = _snapshot(store, before, spans)
    return out


def profile_exp2(n_objects: int, n_requests: int, seed: int) -> dict:
    """Update path: the EC stores under the 50:50 mix."""
    out = {}
    for name in EC_STORES:
        store = make_store(name, StoreConfig(k=6, r=3, value_size=4096, scheme="plm"))
        spec = _spec("50:50", n_objects, n_requests, seed)
        load_store(store, spec)
        before = dict(store.counters.as_dict())
        result = run_requests(store, generate_requests(spec), spec, profile=True)
        out[name] = _snapshot(store, before, result.spans)
    return out


def profile_exp6(n_objects: int, n_requests: int, seed: int) -> dict:
    """Multi-failure degraded reads: two DRAM nodes down, logged-parity
    escalation on every stripe that lost two chunks."""
    store = make_store("logecmem", StoreConfig(k=6, r=3, value_size=4096, scheme="plm"))
    spec = _spec("95:5", n_objects, n_requests, seed)
    load_store(store, spec)
    for nid in store.cluster.dram_ids()[:2]:
        store.cluster.kill(nid)
    init_observability(store)
    before = dict(store.counters.as_dict())
    measure_degraded_reads(store, spec, samples=DEGRADED_SAMPLES)
    return {"logecmem": _snapshot(store, before, store.tracer.drain())}


def profile_exp7(n_objects: int, n_requests: int, seed: int) -> dict:
    """Node repair, with and without log-assist, on one failed DRAM node."""
    store = make_store("logecmem", StoreConfig(k=6, r=3, value_size=4096, scheme="plm"))
    spec = _spec("95:5", n_objects, n_requests, seed)
    load_store(store, spec)
    victim = store.cluster.dram_ids()[0]
    store.cluster.kill(victim)
    init_observability(store)
    before = dict(store.counters.as_dict())
    out = {}
    for assist in (True, False):
        repair = repair_node(store, victim, log_assist=assist)
        label = "logecmem+assist" if assist else "logecmem-noassist"
        out[label] = {
            "repair_time_s": round(repair.repair_time_s, 9),
            "chunks_repaired": repair.chunks_repaired,
            "log_assisted_stripes": repair.log_assisted_stripes,
        }
    out["logecmem"] = _snapshot(store, before, store.tracer.drain())
    return out


def profile_heal(n_objects: int, n_requests: int, seed: int) -> dict:
    """Closed-loop resilience: the seeded heal experiment's headline numbers.

    Integer leaves (violations, op counts, plane action counts) gate exactly;
    the MTTR/availability floats gate on the usual relative thresholds, so a
    control-plane regression (slower detection, lost repairs, new rollbacks)
    fails ``python -m repro compare`` like any other perf slide.
    """
    doc = run_heal_experiment(n_objects=n_objects, n_requests=n_requests, seed=seed)
    heal = doc["heal"]
    out = {}
    for arm in ("disabled", "enabled"):
        summary = doc[arm]
        out[arm] = {
            key: summary[key]
            for key in (
                "mttr_ms",
                "availability_pct",
                "violations",
                "ops_acked",
                "ops_failed",
                "degraded_reads",
                "fingerprint",
            )
        }
    out["plane"] = {
        "incidents": len(heal["incidents"]),
        "incidents_suppressed": heal["incidents_suppressed"],
        "actions_proposed": heal["actions_proposed"],
        "actions_executed": heal["actions_executed"],
        "actions_deferred": heal["actions_deferred"],
        "rollbacks": heal["rollbacks"],
        "escalations": heal["escalations"],
    }
    out["gains"] = {
        "mttr_improvement_ms": doc["mttr_improvement_ms"],
        "availability_gain_pct": doc["availability_gain_pct"],
    }
    return {"logecmem": out}


def profile_load(n_objects: int, n_requests: int, seed: int) -> dict:
    """Concurrent-engine load curve: one unloaded and one contended point.

    Integer leaves (completions, rejects, flushes, stalls) gate exactly;
    throughput and the tail quantiles gate on relative thresholds, so a
    queueing regression in the engine (or a cost-model change that moves the
    knee) fails ``python -m repro compare`` like any latency slide.
    """
    from repro.engine.load import run_load

    doc = run_load(
        n_objects=n_objects, n_requests=n_requests, seed=seed,
        concurrencies=(1, 16),
    )
    out: dict = {}
    for pt in doc["curve"]:
        bp = pt["backpressure"]
        out[f"c{pt['concurrency']}"] = {
            "jobs_completed": pt["jobs_completed"],
            "jobs_rejected": pt["jobs_rejected"],
            "throughput_ops_s": pt["throughput_ops_s"],
            "p50_us": pt["overall"]["p50_us"],
            "p99_us": pt["overall"]["p99_us"],
            "max_us": pt["overall"]["max_us"],
            "flushes": sum(b["flushes"] for b in bp.values()),
            "write_stalls": sum(b["write_stalls"] for b in bp.values()),
        }
    knee = doc["knee"]
    out["knee"] = {
        "p99_amplification": knee["p99_amplification"],
        "hi_over_peak": knee["hi_over_peak"],
    }
    return {"logecmem": out}


def profile_speed(n_objects: int, n_requests: int, seed: int) -> dict:
    """Self-profiling: how much host time the simulator burns per sim op.

    Runs the standard 50:50 LogECMem workload and meters it with the host's
    monotonic clock -- the one deliberate wall-clock read in the tree (the
    load phase is excluded; only the request replay is timed).  Every float
    here is noise-prone by construction, so the compare gate gives them the
    generous ``wall_*`` thresholds: the slice catches an order-of-magnitude
    slowdown of the harness itself, not scheduler jitter.
    """
    import time

    store = make_store("logecmem", StoreConfig(k=6, r=3, value_size=4096, scheme="plm"))
    spec = _spec("50:50", n_objects, n_requests, seed)
    load_store(store, spec)
    sim_before = store.cluster.clock.now
    wall0 = time.perf_counter()  # simlint: disable=SIM001
    run_requests(store, generate_requests(spec), spec, profile=False)
    wall_s = max(time.perf_counter() - wall0, 1e-9)  # simlint: disable=SIM001
    sim_s = max(store.cluster.clock.now - sim_before, 1e-12)
    ops = n_requests
    return {
        "logecmem": {
            "ops_replayed": ops,
            "wall_us_per_op": round(wall_s / ops * 1e6, 3),
            "wall_s_per_sim_s": round(wall_s / sim_s, 3),
            "wall_ops_per_s": round(ops / wall_s, 3),
        }
    }


PROFILE_FUNCS = {
    "exp1": profile_exp1,
    "exp2": profile_exp2,
    "exp6": profile_exp6,
    "exp7": profile_exp7,
    "heal": profile_heal,
    "load": profile_load,
    "speed": profile_speed,
}


def run_profile(
    experiments: list[str] | tuple[str, ...],
    n_objects: int = 600,
    n_requests: int = 600,
    seed: int = 42,
) -> dict:
    """Run the named profile slices; returns the BENCH document."""
    doc = {
        "meta": {
            "objects": n_objects,
            "requests": n_requests,
            "seed": seed,
            "experiments": sorted(experiments),
        },
        "experiments": {},
    }
    for exp in experiments:
        if exp not in PROFILE_FUNCS:
            raise KeyError(f"unknown profile experiment {exp!r}")
        doc["experiments"][exp] = PROFILE_FUNCS[exp](n_objects, n_requests, seed)
    return doc


def serialise_profile(doc: dict) -> str:
    """Canonical byte-stable serialisation (sorted keys, trailing newline)."""
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def write_profile(doc: dict, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(serialise_profile(doc))
    return path
