"""Workload execution and metric collection.

``load_store`` performs the paper's load phase (write every object, FIFO
striping); ``run_requests`` replays a request stream and collects per-op
latency statistics; ``run_workload`` does both.  Throughput is estimated
from the closed-loop client concurrency and the mechanistically-counted
proxy NIC/CPU loads -- see :func:`estimate_throughput`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import median, pstdev

from repro.core.interface import KVStore
from repro.obs import init_observability
from repro.sim.closedloop import ClosedLoopResult, OpDemand
from repro.workloads.ycsb import (
    Operation,
    Request,
    WorkloadSpec,
    generate_requests,
    load_keys,
)


@dataclass
class WorkloadResult:
    """Latency/throughput/footprint summary of one run."""

    store: str
    spec: WorkloadSpec
    latencies_s: dict[str, list[float]] = field(default_factory=dict)
    demands: list[OpDemand] = field(default_factory=list)
    deferred_update_s: float = 0.0  # FSMem's deferred-GC share
    memory_bytes: int = 0
    counters: dict[str, float] = field(default_factory=dict)
    disk_io_count: int = 0
    throughput_ops_s: float = 0.0
    #: populated by ``run_requests(..., profile=True)``
    spans: list = field(default_factory=list)
    metrics: dict = field(default_factory=dict)

    def op_count(self, op: str) -> int:
        return len(self.latencies_s.get(op, ()))

    def mean_latency_us(self, op: str) -> float:
        lats = self.latencies_s.get(op)
        if not lats:
            return 0.0
        total = sum(lats)
        if op == "update":
            total += self.deferred_update_s
        return total / len(lats) * 1e6

    def median_latency_us(self, op: str) -> float:
        lats = self.latencies_s.get(op)
        return median(lats) * 1e6 if lats else 0.0

    def std_latency_us(self, op: str) -> float:
        """Latency standard deviation (the variance the paper reports for
        its fluctuating cloud network; zero unless jitter is enabled)."""
        lats = self.latencies_s.get(op)
        if not lats or len(lats) < 2:
            return 0.0
        return pstdev(lats) * 1e6

    def p95_latency_us(self, op: str) -> float:
        lats = sorted(self.latencies_s.get(op, ()))
        if not lats:
            return 0.0
        return lats[min(len(lats) - 1, int(0.95 * len(lats)))] * 1e6

    def overall_mean_latency_s(self) -> float:
        total = sum(sum(v) for v in self.latencies_s.values()) + self.deferred_update_s
        count = sum(len(v) for v in self.latencies_s.values())
        return total / count if count else 0.0


def estimate_throughput(store: KVStore, result: WorkloadResult) -> float:
    """Closed-loop ops/s bounded by the proxy NIC and CPU.

    throughput = min( concurrency / mean latency,
                      NIC bandwidth / bytes per op,
                      1 / CPU seconds per op )
    with bytes/RPCs per op taken from the run's real counters.
    """
    ops = sum(len(v) for v in result.latencies_s.values())
    if ops == 0:
        return 0.0
    profile = store.cfg.profile
    mean_lat = result.overall_mean_latency_s()
    closed_loop = profile.client_concurrency / mean_lat if mean_lat > 0 else float("inf")
    bytes_per_op = result.counters.get("net_bytes", 0.0) / ops
    nic_bound = (
        profile.net_bandwidth_Bps / bytes_per_op if bytes_per_op > 0 else float("inf")
    )
    rpcs_per_op = result.counters.get("net_rpcs", 0.0) / ops
    cpu_per_op = profile.rpc_overhead_s * rpcs_per_op
    cpu_bound = 1.0 / cpu_per_op if cpu_per_op > 0 else float("inf")
    return min(closed_loop, nic_bound, cpu_bound)


def load_store(store: KVStore, spec: WorkloadSpec) -> float:
    """Load phase: insert every object; returns total simulated seconds."""
    total = 0.0
    clock = store.cluster.clock
    for key in load_keys(spec):
        res = store.write(key)
        clock.advance(res.latency_s)
        total += res.latency_s
    return total


def run_requests(
    store: KVStore,
    requests: list[Request],
    spec: WorkloadSpec,
    record_demands: bool = False,
    profile: bool = False,
) -> WorkloadResult:
    """Replay a request stream; returns latency stats and counters.

    With ``record_demands`` each request also yields an
    :class:`~repro.sim.closedloop.OpDemand` (proxy CPU / NIC / remote split,
    derived from the per-op counter deltas) for closed-loop simulation.

    With ``profile`` the store's observability is re-initialised first (so
    load-phase writes don't pollute the run-phase histograms) and the result
    carries the retained span trees (``result.spans``) plus the metrics
    snapshot (``result.metrics``: per-op latency quantiles, per-phase means).
    """
    if profile:
        init_observability(store)
    result = WorkloadResult(store=store.name, spec=spec)
    lats = result.latencies_s
    clock = store.cluster.clock
    profile = store.cfg.profile
    counters = store.counters
    for req in requests:
        if record_demands:
            bytes_before = counters["net_bytes"]
            rpcs_before = counters["net_rpcs"]
        if req.op is Operation.READ:
            res = store.read(req.key)
        elif req.op is Operation.UPDATE:
            res = store.update(req.key)
        elif req.op is Operation.WRITE:
            res = store.write(req.key)
        else:
            res = store.delete(req.key)
        clock.advance(res.latency_s)
        lats.setdefault(req.op.value, []).append(res.latency_s)
        if record_demands:
            d_bytes = counters["net_bytes"] - bytes_before
            d_rpcs = counters["net_rpcs"] - rpcs_before
            cpu_s = profile.rpc_overhead_s * d_rpcs
            nic_s = d_bytes / profile.net_bandwidth_Bps
            result.demands.append(
                OpDemand(
                    cpu_s=cpu_s,
                    nic_bytes=d_bytes,
                    remote_s=max(0.0, res.latency_s - cpu_s - nic_s),
                )
            )
    # memory is measured in the paper's regime: before any deferred GC/reclaim
    result.memory_bytes = store.memory_logical_bytes
    if profile:
        result.spans = store.tracer.drain()
        result.metrics = store.metrics.snapshot()
    store.finalize()
    result.deferred_update_s = getattr(store, "gc_deferred_s", 0.0)
    result.counters = store.counters.as_dict()
    if hasattr(store.cluster, "disk_stats"):
        result.disk_io_count = store.cluster.disk_stats().io_count
    result.throughput_ops_s = estimate_throughput(store, result)
    return result


def run_workload(
    store: KVStore, spec: WorkloadSpec, record_demands: bool = False
) -> WorkloadResult:
    """Load phase + run phase."""
    load_store(store, spec)
    return run_requests(store, generate_requests(spec), spec, record_demands)


def simulate_closed_loop(
    store: KVStore, result: WorkloadResult, concurrency: int | None = None
) -> ClosedLoopResult:
    """Closed-loop DES over the run's recorded per-op demands.

    Complements :func:`estimate_throughput`: the analytic estimate is an
    upper bound (no queueing); the simulation plays the exact op mix through
    the shared proxy CPU/NIC and reports achieved throughput + utilisations.
    """
    if not result.demands:
        raise ValueError("run the workload with record_demands=True first")
    from repro.engine.compat import simulate_demands

    return simulate_demands(result.demands, store.cfg.profile, concurrency)


def measure_degraded_reads(
    store: KVStore, spec: WorkloadSpec, samples: int = 200, offset: int = 0
) -> list[float]:
    """Force-degraded reads over a deterministic key sample (Experiment 1)."""
    lats = []
    step = max(1, spec.n_objects // samples)
    keys = load_keys(spec)
    clock = store.cluster.clock
    for i in range(offset, spec.n_objects, step):
        res = store.degraded_read(keys[i])
        clock.advance(res.latency_s)
        lats.append(res.latency_s)
        if len(lats) >= samples:
            break
    return lats
