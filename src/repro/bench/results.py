"""Experiment-result persistence.

Every experiment driver returns a list of row dicts; this module writes them
to JSON (full fidelity) or CSV (spreadsheet-friendly) with a small metadata
header, and reads them back, so runs can be archived, diffed across code
versions, or post-processed outside Python.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path


def to_json(rows: list[dict], meta: dict | None = None) -> str:
    """Serialise rows (+ optional metadata) to a JSON document."""
    return json.dumps({"meta": meta or {}, "rows": rows}, indent=2, sort_keys=True)


def from_json(text: str) -> tuple[list[dict], dict]:
    """Parse a JSON result document; returns (rows, meta)."""
    doc = json.loads(text)
    if not isinstance(doc, dict) or "rows" not in doc:
        raise ValueError("not a result document (missing 'rows')")
    return doc["rows"], doc.get("meta", {})


def _encode_cell(value) -> str:
    """One cell, typed unambiguously.

    CSV carries only strings, so types are a decode-side convention; this
    encoder makes that convention invertible: ``None`` is the empty cell,
    booleans are lowercase ``true``/``false``, numbers are their repr -- and
    any *string* the decoder would mistake for one of those (empty, numeric-
    looking, a boolean word, or already wrapped) is wrapped in literal double
    quotes, which the decoder strips.  ``from_csv(to_csv(rows))`` is then the
    identity on rows of None/bool/int/float/str (the round-trip test)."""
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    text = str(value)
    ambiguous = (
        text == ""
        or text.lower() in ("true", "false")
        or (text.startswith('"') and text.endswith('"') and len(text) >= 2)
    )
    if not ambiguous:
        try:
            float(text)
            ambiguous = True  # a string that looks like a number
        except ValueError:
            pass
    return f'"{text}"' if ambiguous else text


def _decode_cell(text: str | None):
    """Inverse of :func:`_encode_cell`."""
    if text is None or text == "":
        return None
    if text.startswith('"') and text.endswith('"') and len(text) >= 2:
        return text[1:-1]
    # "True"/"False" kept for files written before the lowercase convention
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def to_csv(rows: list[dict]) -> str:
    """Serialise rows to CSV with a union-of-keys header.

    Cells are typed via :func:`_encode_cell` so ``from_csv`` restores the
    original values: missing keys and ``None`` both read back as ``None``,
    booleans as booleans, numeric-looking strings as strings."""
    if not rows:
        return ""
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=columns)
    writer.writeheader()
    for row in rows:
        writer.writerow({k: _encode_cell(v) for k, v in row.items()})
    return buf.getvalue()


def from_csv(text: str) -> list[dict]:
    """Parse CSV back into rows with original types restored."""
    rows: list[dict] = []
    for raw in csv.DictReader(io.StringIO(text)):
        rows.append({key: _decode_cell(value) for key, value in raw.items()})
    return rows


def save(rows: list[dict], path: str | Path, meta: dict | None = None) -> Path:
    """Write rows to ``path``; format chosen by suffix (.json or .csv)."""
    path = Path(path)
    if path.suffix == ".json":
        path.write_text(to_json(rows, meta))
    elif path.suffix == ".csv":
        path.write_text(to_csv(rows))
    else:
        raise ValueError(f"unsupported result format {path.suffix!r} (use .json/.csv)")
    return path


def load(path: str | Path) -> list[dict]:
    """Read rows back from a .json or .csv result file."""
    path = Path(path)
    if path.suffix == ".json":
        rows, _ = from_json(path.read_text())
        return rows
    if path.suffix == ".csv":
        return from_csv(path.read_text())
    raise ValueError(f"unsupported result format {path.suffix!r} (use .json/.csv)")
