"""Experiment-result persistence.

Every experiment driver returns a list of row dicts; this module writes them
to JSON (full fidelity) or CSV (spreadsheet-friendly) with a small metadata
header, and reads them back, so runs can be archived, diffed across code
versions, or post-processed outside Python.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path


def to_json(rows: list[dict], meta: dict | None = None) -> str:
    """Serialise rows (+ optional metadata) to a JSON document."""
    return json.dumps({"meta": meta or {}, "rows": rows}, indent=2, sort_keys=True)


def from_json(text: str) -> tuple[list[dict], dict]:
    """Parse a JSON result document; returns (rows, meta)."""
    doc = json.loads(text)
    if not isinstance(doc, dict) or "rows" not in doc:
        raise ValueError("not a result document (missing 'rows')")
    return doc["rows"], doc.get("meta", {})


def to_csv(rows: list[dict]) -> str:
    """Serialise rows to CSV with a union-of-keys header."""
    if not rows:
        return ""
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=columns)
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buf.getvalue()


def from_csv(text: str) -> list[dict]:
    """Parse CSV back into rows (numeric fields restored where possible)."""
    rows: list[dict] = []
    for raw in csv.DictReader(io.StringIO(text)):
        row: dict = {}
        for key, value in raw.items():
            if value is None or value == "":
                row[key] = value
                continue
            try:
                row[key] = int(value)
            except ValueError:
                try:
                    row[key] = float(value)
                except ValueError:
                    if value in ("True", "False"):
                        row[key] = value == "True"
                    else:
                        row[key] = value
        rows.append(row)
    return rows


def save(rows: list[dict], path: str | Path, meta: dict | None = None) -> Path:
    """Write rows to ``path``; format chosen by suffix (.json or .csv)."""
    path = Path(path)
    if path.suffix == ".json":
        path.write_text(to_json(rows, meta))
    elif path.suffix == ".csv":
        path.write_text(to_csv(rows))
    else:
        raise ValueError(f"unsupported result format {path.suffix!r} (use .json/.csv)")
    return path


def load(path: str | Path) -> list[dict]:
    """Read rows back from a .json or .csv result file."""
    path = Path(path)
    if path.suffix == ".json":
        rows, _ = from_json(path.read_text())
        return rows
    if path.suffix == ".csv":
        return from_csv(path.read_text())
    raise ValueError(f"unsupported result format {path.suffix!r} (use .json/.csv)")
