"""LogECMem (SC '21) reproduction.

A from-scratch implementation of *LogECMem: Coupling Erasure-Coded In-Memory
Key-Value Stores with Parity Logging* and every substrate its evaluation
depends on.  The public surface:

* :class:`repro.StoreConfig` / :class:`repro.LogECMem` -- the system itself,
* :func:`repro.make_store` -- any of the five systems under test by name
  (``vanilla``, ``replication``, ``ipmem``, ``fsmem``, ``logecmem``),
* :class:`repro.WorkloadSpec` + :mod:`repro.bench` -- YCSB-style workloads
  and the experiment drivers behind every paper figure/table,
* :func:`repro.mttdl_years` -- the §3.1 reliability model.

See README.md for a tour and DESIGN.md for the architecture.
"""

from repro.baselines import make_store
from repro.core import KVStore, LogECMem, OpResult, StoreConfig
from repro.core.repair import NodeRepairResult, repair_node
from repro.reliability import mttdl_years
from repro.workloads import WorkloadSpec

__version__ = "1.0.0"

__all__ = [
    "KVStore",
    "LogECMem",
    "NodeRepairResult",
    "OpResult",
    "StoreConfig",
    "WorkloadSpec",
    "__version__",
    "make_store",
    "mttdl_years",
    "repair_node",
]
