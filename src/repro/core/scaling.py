"""Cluster scaling: DRAM node join and decommission.

The paper's lineage (ECHash, by the same first author) couples consistent
hashing with erasure coding so the cluster can grow and shrink.  LogECMem's
layout makes both operations cheap on the parity side -- parity placement is
per-stripe metadata, not hash-derived -- so:

* **join**: the new node enters the hash ring and the encoding-queue set;
  new stripes start using it immediately.  No existing stripe moves (the
  Stripe Index pins old placements), so join is metadata-only.
* **decommission** (planned removal, §8's scaling case): every chunk the
  node holds is *copied* -- not reconstructed -- to a replacement DRAM node
  that holds no other chunk of the same stripe, preserving the one-chunk-
  per-node fault-tolerance invariant; then the node leaves the ring.

Costs are charged through the network model (chunk reads + writes).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.cluster.node import DRAMNode
from repro.core.striped import StripedStoreBase


@dataclass
class ScaleReport:
    """Outcome of one join or decommission."""

    node_id: str
    chunks_moved: int
    bytes_moved: int
    duration_s: float


def add_dram_node(store: StripedStoreBase, node_id: str | None = None) -> ScaleReport:
    """Join a fresh DRAM node: ring + encoding queue; metadata-only."""
    cluster = store.cluster
    if node_id is None:
        i = len(cluster.dram_nodes)
        while f"dram{i}" in cluster.dram_nodes:
            i += 1
        node_id = f"dram{i}"
    if node_id in cluster.dram_nodes or node_id in cluster.log_nodes:
        raise ValueError(f"node id {node_id!r} already exists")
    cluster.dram_nodes[node_id] = DRAMNode(node_id)
    cluster.ring.add_node(node_id)
    store._full_units[node_id] = deque()
    store.counters.add("nodes_joined")
    return ScaleReport(node_id=node_id, chunks_moved=0, bytes_moved=0, duration_s=0.0)


def decommission_dram_node(store: StripedStoreBase, node_id: str) -> ScaleReport:
    """Planned removal of a live DRAM node.

    Chunks are copied to per-stripe replacement nodes; the Object/Stripe
    indices and memory accounting follow; pending (unsealed) objects queued
    on the node are re-queued elsewhere.  Raises if the node is dead (use
    :func:`repro.core.repair.repair_node` for failures) or if no valid
    replacement exists for some stripe.
    """
    cluster = store.cluster
    node = cluster.dram_nodes.get(node_id)
    if node is None:
        raise KeyError(f"{node_id!r} is not a DRAM node")
    if not node.alive:
        raise ValueError(f"{node_id!r} is dead; decommission needs a live source")
    if len(cluster.dram_nodes) <= store.cfg.k + 1:
        raise ValueError("cannot shrink below k+1 DRAM nodes")
    cfg = store.cfg
    duration = 0.0
    moved = 0

    # re-home sealed chunks, stripe by stripe
    for sid in list(store.stripe_index.stripes_on_node(node_id)):
        rec = store.stripe_index.get(sid)
        for gi in rec.chunks_on_node(node_id):
            if gi >= cfg.k + 1:
                continue  # logged parities never live on DRAM nodes
            candidates = [
                nid
                for nid in cluster.dram_ids()
                if nid != node_id
                and cluster.dram_nodes[nid].alive
                and nid not in rec.chunk_nodes
            ]
            if not candidates:
                raise RuntimeError(
                    f"stripe {sid}: no replacement node for chunk {gi} "
                    f"without violating one-chunk-per-node"
                )
            target = candidates[sid % len(candidates)]
            # copy chunk bytes source -> target (read + write, one round each)
            duration += store.net.sequential_gets([cfg.chunk_size])
            duration += store.net.parallel_puts([cfg.chunk_size])
            moved += 1
            # move the accounting items
            if gi < cfg.k:
                for key in rec.chunk_keys[gi]:
                    item = node.table.get(key)
                    if item is not None:
                        node.table.delete(key)
                        cluster.dram_nodes[target].table.set(key, item.logical_size)
            else:  # the XOR parity item
                pkey = f"stripe:{sid}:p0"
                if node.table.get(pkey) is not None:
                    node.table.delete(pkey)
                    cluster.dram_nodes[target].table.set(pkey, cfg.chunk_size)
            rec.chunk_nodes[gi] = target
        # refresh the reverse index for this stripe
        store.stripe_index.remove(sid)
        store.stripe_index.put(rec)

    # re-queue pending (unsealed) objects that sat on this node
    for key, (pnode, unit, slot) in list(store._pending.items()):
        if pnode != node_id:
            continue
        value = unit.read_slot(slot).copy()
        item = node.table.get(key)
        if item is not None:
            node.table.delete(key)
        store._pending.pop(key, None)
        new_node = store.cluster.ring.lookup_many(key, 2)
        target = next(n for n in new_node if n != node_id)
        store._enqueue(key, target, value)
        cluster.dram_nodes[target].table.set(key, cfg.value_size)
        duration += store.net.sequential_gets([cfg.value_size])
        duration += store.net.parallel_puts([cfg.value_size])

    cluster.ring.remove_node(node_id)
    store._full_units.pop(node_id, None)
    store._open_units.pop(node_id, None)
    del cluster.dram_nodes[node_id]
    store.counters.add("nodes_decommissioned")
    return ScaleReport(
        node_id=node_id,
        chunks_moved=moved,
        bytes_moved=moved * cfg.chunk_size,
        duration_s=duration,
    )
