"""The KV-store interface every system under test implements.

Vanilla, (r+1)-way replication, IPMem, FSMem and LogECMem all expose the same
five requests (§4.1) so the experiment drivers treat them uniformly.  Every
operation returns an :class:`OpResult` carrying the simulated latency and,
for reads, the object's physical bytes (so tests can verify reconstruction
bit-exactly).

Error taxonomy: :class:`StoreUnavailableError` for transient can't-serve
conditions (retryable), :class:`DataLossError` for stripes that have lost
more chunks than the code tolerates.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np


class StoreUnavailableError(RuntimeError):
    """The cluster cannot serve the op right now (nodes down, links
    partitioned, no placement possible).  Transient by nature: retrying after
    faults heal may succeed, which is why the chaos proxy treats exactly this
    family -- and not arbitrary ``RuntimeError``\\ s -- as retryable."""


class DataLossError(RuntimeError):
    """Raised when too many chunks of a stripe are unavailable to decode."""


@dataclass
class OpResult:
    """Outcome of one request."""

    latency_s: float
    value: np.ndarray | None = None
    degraded: bool = False
    info: dict = field(default_factory=dict)


class KVStore(ABC):
    """Uniform store API for the experiment harness."""

    name: str = "abstract"

    @abstractmethod
    def write(self, key: str) -> OpResult:
        """Insert a new object (value bytes are deterministic per key+version)."""

    @abstractmethod
    def read(self, key: str) -> OpResult:
        """Fetch an object's current value."""

    @abstractmethod
    def update(self, key: str) -> OpResult:
        """Overwrite an existing object with a new version."""

    @abstractmethod
    def delete(self, key: str) -> OpResult:
        """Remove an object (§4.1: realised as an update to zero bytes)."""

    @abstractmethod
    def degraded_read(self, key: str) -> OpResult:
        """Fetch an object whose chunk/replica is unavailable."""

    # -- metrics ----------------------------------------------------------------

    @property
    @abstractmethod
    def memory_logical_bytes(self) -> int:
        """Total DRAM footprint (the paper's memory-overhead metric)."""

    def finalize(self) -> None:
        """End-of-run settling (flush logs, deferred GC cost accounting)."""

    def expected_value(self, key: str) -> np.ndarray:
        """Ground-truth physical bytes of an object's current version.

        Implemented by stores that track versions; used by tests to check
        degraded reads and repairs bit-exactly."""
        raise NotImplementedError
