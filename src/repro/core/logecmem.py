"""LogECMem: the HybridPL architecture as a KV store (§3-§5).

Layout (Figure 5): ``k+1`` DRAM nodes hold all data chunks and the XOR parity
chunk of every stripe; ``r-1`` log nodes hold the remaining parity chunks and
their delta logs.  Updates follow the workflow of Figure 7:

1. look up Stripe ID / sequence number / offset / length in the Object Index;
2. read the old object and the XOR parity chunk (the only parity read);
3. compute the delta, update the data chunk and XOR parity in place, and
   broadcast the *data delta* to every log node;
4. each log node derives its parity delta locally (Property 1) and buffers it
   (buffer logging) -- the update completes on DRAM acknowledgements.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import StoreConfig
from repro.core.interface import OpResult, StoreUnavailableError
from repro.core.striped import StripedStoreBase
from repro.ec.delta import ParityDelta
from repro.ec.gf256 import gf_mul_scalar
from repro.logstore.records import LogRecord


class LogECMem(StripedStoreBase):
    """Erasure-coded in-memory KV store with hybrid parity logging."""

    name = "logecmem"
    parity_in_dram = False

    def __init__(self, config: StoreConfig):
        if config.r < 2:
            raise ValueError("LogECMem needs r >= 2 (one XOR parity + logged parities)")
        super().__init__(config)

    # ------------------------------------------------------------------ layout

    def _node_counts(self) -> tuple[int, int]:
        return self.cfg.k + 1, self.cfg.n_log_nodes

    def _seal_possible(self) -> bool:
        """k data nodes + 1 XOR node in DRAM, plus at least one log node."""
        return (
            len(self.cluster.alive_dram_ids()) >= self.cfg.k + 1
            and len(self.cluster.alive_log_ids()) >= 1
        )

    def _place_parities(self, stripe_id: int, data_nodes: list[str]) -> list[str]:
        # XOR parity -> an alive DRAM node without a data chunk of this stripe
        candidates = [
            nid for nid in self.cluster.alive_dram_ids() if nid not in data_nodes
        ]
        if not candidates:
            raise StoreUnavailableError(
                f"stripe {stripe_id}: no DRAM node free for the XOR parity"
            )
        xor_node = candidates[stripe_id % len(candidates)]
        # logged parities rotate over the alive, reachable log nodes
        log_ids = [
            nid for nid in self.cluster.alive_log_ids() if self.net.reachable(nid)
        ]
        if not log_ids:
            raise StoreUnavailableError(
                f"stripe {stripe_id}: no alive log node for parities"
            )
        logged = [log_ids[(stripe_id + j) % len(log_ids)] for j in range(self.cfg.r - 1)]
        return [xor_node] + logged

    def _store_parities(
        self, stripe_id: int, parity_nodes: list[str], parities: np.ndarray
    ) -> float:
        cfg = self.cfg
        # XOR parity: a DRAM item, in-place updatable
        self.cluster.dram_nodes[parity_nodes[0]].table.set(
            f"stripe:{stripe_id}:p0", cfg.chunk_size
        )
        self.parity_chunks[(stripe_id, 0)] = parities[0].copy()
        # logged parities: buffered at their log nodes (fast write, §4.1)
        stall = 0.0
        now = self.cluster.clock.now
        for j in range(1, cfg.r):
            node = self.cluster.log_nodes[parity_nodes[j]]
            rec = LogRecord.for_chunk(stripe_id, j, parities[j], cfg.chunk_size)
            stall = max(stall, node.append(rec, now))
        return stall

    # ------------------------------------------------------------------ update

    def _require_update_nodes(self, key: str, sid: int | None, node_id: str) -> None:
        """In-place update needs the object's home node and the XOR parity
        node; until they are repaired the update cannot land (reads still
        degrade fine)."""
        from repro.core.striped import ChunkUnavailableError

        if not self._dram_reachable(node_id):
            raise ChunkUnavailableError(
                f"cannot update {key!r}: its node {node_id} is down or "
                f"unreachable (repair first)"
            )
        if sid is not None:
            xor_node = self.stripe_index.get(sid).xor_parity_node()
            if not self._dram_reachable(xor_node):
                raise ChunkUnavailableError(
                    f"cannot update {key!r}: XOR parity node {xor_node} is down "
                    f"or unreachable"
                )

    def _update_impl(self, key: str, tombstone: bool) -> OpResult:
        cfg = self.cfg
        sid, seq, node_id, chunk, slot = self._locate(key)
        self._require_update_nodes(key, sid, node_id)
        new_version = self.versions[key] + 1
        new_value = (
            np.zeros(slot.phys_length, dtype=np.uint8)
            if tombstone
            else self._new_value(key, new_version)
        )
        span = self.tracer.start("update", key=key)
        latency = self.net.client_hop(64 + cfg.value_size)
        span.child("client_hop", latency)
        if sid is None:
            # stripe not sealed yet: plain in-place object overwrite
            chunk.write_slot(slot, new_value)
            self.versions[key] = new_version
            get_s = self.net.sequential_gets([cfg.value_size], node_ids=[node_id])
            span.child("read_old", get_s, node=node_id)
            put_s = self.net.parallel_puts([cfg.value_size], node_ids=[node_id])
            span.child("put_object", put_s, node=node_id)
            latency += get_s + put_s
            self.tracer.finish(span, latency)
            return OpResult(latency_s=latency)

        client_s = latency
        rec = self.stripe_index.get(sid)
        xor_node = rec.chunk_nodes[cfg.k]

        # (1)-(2): metadata lookup, then read old object + XOR parity chunk
        old = chunk.read_slot(slot).copy()
        reads_s = self.net.sequential_gets(
            [cfg.value_size, cfg.chunk_size], node_ids=[node_id, xor_node]
        )
        span.child("read_old_xor", reads_s, node=node_id, xor_node=xor_node)
        self.counters.add("parity_chunk_reads")

        # (3): delta, in-place data + XOR parity update
        delta = old ^ new_value
        compute_s = cfg.profile.encode_s(2 * cfg.value_size)
        span.child("encode_delta", compute_s)
        chunk.write_slot(slot, new_value)
        xor = self.parity_chunks[(sid, 0)]
        xor[slot.phys_offset : slot.phys_end] ^= delta
        self._set_checksum(sid, seq, chunk.buffer)
        self._set_checksum(sid, cfg.k, xor)

        # (3)-(5): fan out new object + new XOR parity + data delta broadcast;
        # only reachable, alive log nodes receive their delta -- the others
        # are flagged for recovery and cost nothing on the write path
        log_parity_nodes = rec.chunk_nodes[cfg.k + 1 :]
        deliverable: list[tuple[int, str]] = []
        for j, nid in enumerate(log_parity_nodes, start=1):
            log_node = self.cluster.log_nodes[nid]
            if not log_node.alive or not self.net.reachable(nid):
                # the delta cannot be delivered; the node's persisted parity
                # goes stale and must be rebuilt (recover_log_node) before
                # any repair reads it -- the chaos harness schedules that
                if not log_node.needs_recovery:
                    log_node.needs_recovery = True
                    self.cluster.journal.emit(
                        "stale_mark", node=nid, reason="missed_delta", stripe=sid
                    )
                self.counters.add("parity_deltas_skipped")
                continue
            deliverable.append((j, nid))
        writes_s = self.net.parallel_puts(
            [cfg.value_size, cfg.chunk_size] + [cfg.value_size] * len(deliverable),
            node_ids=[node_id, xor_node] + [nid for _, nid in deliverable],
        )
        span.child("ship_delta", writes_s, fanout=2 + len(deliverable))
        stall_s = 0.0
        now = self.cluster.clock.now
        for j, nid in deliverable:
            coeff = self.code.coefficient(j, seq)
            pd = ParityDelta(
                stripe_id=sid,
                parity_index=j,
                offset=slot.phys_offset,
                payload=gf_mul_scalar(coeff, delta),
                seq=new_version,
            )
            stall_s = max(
                stall_s,
                self.cluster.log_nodes[nid].append(
                    LogRecord.for_delta(pd, cfg.value_size), now
                ),
            )
            self.counters.add("parity_deltas_sent")
        span.child("log_ack", stall_s)
        self.versions[key] = new_version
        latency = client_s + reads_s + compute_s + writes_s + stall_s
        self.tracer.finish(span, latency)
        return OpResult(
            latency_s=latency,
            info={
                "breakdown": {
                    "client": client_s,
                    "reads": reads_s,
                    "compute": compute_s,
                    "writes": writes_s,
                    "log_stall": stall_s,
                }
            },
        )

    # --------------------------------------------------------------- repair I/O

    def _fetch_logged_parities(
        self, sid: int, needed: int, exclude: set[int]
    ) -> tuple[float, dict[int, np.ndarray]]:
        """Read up-to-date non-XOR parities from log nodes (§5.2).

        Cost per parity: one RPC to the log node plus its scheme-dependent
        disk work to materialise base chunk + deltas.  A log node only
        qualifies when the proxy can actually reach it *and* its parities
        are current: a node behind a partitioned link, or one marked
        ``needs_recovery`` (it missed parity deltas while down/partitioned),
        would hand back stale bytes that decode to a wrong-but-acked value."""
        cfg = self.cfg
        rec = self.stripe_index.get(sid)
        now = self.cluster.clock.now
        latency = 0.0
        out: dict[int, np.ndarray] = {}
        for j in range(1, cfg.r):
            if len(out) >= needed:
                break
            gi = cfg.k + j
            if gi in exclude:
                continue
            nid = rec.chunk_nodes[gi]
            node = self.cluster.log_nodes[nid]
            if not node.alive or not self.net.reachable(nid) or node.needs_recovery:
                continue
            result = node.read_uptodate_parity(
                sid, j, cfg.phys_chunk_size(), now
            )
            latency += self.net.rpc_to(nid, 64, cfg.chunk_size) + result.duration_s
            latency += cfg.profile.node_service_s
            self.counters.add("logged_parity_reads")
            self.counters.add("logged_parity_disk_reads", result.disk_reads)
            out[gi] = result.payload
        return latency, out

    def uptodate_logged_parity(self, sid: int, j: int) -> np.ndarray:
        """Test hook: materialised parity j (>=1) of a stripe, no cost model."""
        rec = self.stripe_index.get(sid)
        node = self.cluster.log_nodes[rec.chunk_nodes[self.cfg.k + j]]
        return node.read_uptodate_parity(
            sid, j, self.cfg.phys_chunk_size(), self.cluster.clock.now
        ).payload
