"""Shared machinery for the erasure-coded stores (LogECMem, IPMem, FSMem).

Implements §4.1's write path -- per-DRAM-node encoding queues that gather
object values into fixed-size units, stripe sealing (encode + distribute),
the Object/Stripe indices -- plus reads and degraded reads.  Subclasses
provide the update policy (in-place + parity logging, pure in-place, or
full-stripe) and the parity placement (DRAM vs log nodes).

Ground-truth chunk bytes live in proxy-side registries (``data_chunks``,
``parity_chunks``); DRAM-node memtables carry the *memory accounting* items.
Access to chunk bytes always goes through helpers that refuse to touch a
failed node, so repair paths provably reconstruct rather than cheat.
"""

from __future__ import annotations

import zlib
from collections import deque

import numpy as np

from repro.cluster.topology import Cluster
from repro.core.config import StoreConfig
from repro.core.interface import (
    DataLossError,
    KVStore,
    OpResult,
    StoreUnavailableError,
)
from repro.devtools.simsan import runtime as _san
from repro.ec.rs import RSCode
from repro.kvstore.chunk import Chunk, ChunkSlot, make_value
from repro.kvstore.object_index import ObjectIndex, ObjectLocation
from repro.kvstore.stripe_index import StripeIndex, StripeRecord
from repro.obs import init_observability


class ChunkUnavailableError(StoreUnavailableError):
    """A chunk's node is down (or the read was forced degraded)."""


class StripedStoreBase(KVStore):
    """Queues, sealing, placement, read and degraded-read paths."""

    #: True if all r parity chunks live on DRAM nodes (IPMem/FSMem)
    parity_in_dram: bool = True

    def __init__(self, config: StoreConfig):
        self.cfg = config
        self.code = RSCode(config.k, config.r)
        n_dram, n_log = self._node_counts()
        self.cluster = Cluster(
            profile=config.profile,
            n_dram=n_dram,
            n_log=n_log,
            scheme=config.scheme,
            bytes_scale=1.0 / config.payload_scale,
            merge_buffer=config.merge_buffer,
        )
        self.net = self.cluster.network
        self.counters = self.cluster.counters
        self.object_index = ObjectIndex()
        self.stripe_index = StripeIndex()
        # ground-truth chunk bytes, held by the proxy-side registry
        self.data_chunks: dict[tuple[int, int], Chunk] = {}
        self.parity_chunks: dict[tuple[int, int], np.ndarray] = {}
        #: CRC32 per DRAM-resident chunk, (stripe_id, global index) -> crc;
        #: degraded reads verify survivors against these before decoding
        self.checksums: dict[tuple[int, int], int] = {}
        self.versions: dict[str, int] = {}
        self.deleted: set[str] = set()
        # encoding queues: one open unit + a FIFO of sealed units per node
        self._open_units: dict[str, Chunk] = {}
        self._full_units: dict[str, deque[tuple[int, Chunk]]] = {
            nid: deque() for nid in self.cluster.dram_ids()
        }
        self._unit_seq = 0
        self._next_stripe_id = 0
        # objects written but whose stripe has not sealed yet
        self._pending: dict[str, tuple[str, Chunk, ChunkSlot]] = {}
        self._pending_unit_keys: dict[int, list[str]] = {}
        # write generations: a delete-then-rewrite leaves the old (zeroed)
        # slot in the sealing pipeline; stamping every enqueued slot with the
        # key's generation lets _seal_stripe tell the live slot from stale
        # ones, whichever order the units reach a stripe
        self._write_gen: dict[str, int] = {}
        self._slot_gen: dict[tuple[int, int], int] = {}
        init_observability(self)

    # ------------------------------------------------------------- layout hooks

    def _node_counts(self) -> tuple[int, int]:
        """(DRAM nodes, log nodes) -- overridden by LogECMem."""
        return self.cfg.n, 0

    def _place_parities(self, stripe_id: int, data_nodes: list[str]) -> list[str]:
        """Node ids for parity chunks j=0..r-1 (DRAM layout by default)."""
        candidates = [
            nid
            for nid in self.cluster.alive_dram_ids()
            if nid not in data_nodes and self.net.reachable(nid)
        ]
        if len(candidates) < self.cfg.r:
            raise StoreUnavailableError(
                f"stripe {stripe_id}: only {len(candidates)} parity candidates "
                f"for r={self.cfg.r}"
            )
        rot = stripe_id % len(candidates)
        ordered = candidates[rot:] + candidates[:rot]
        return ordered[: self.cfg.r]

    def _store_parities(
        self, stripe_id: int, parity_nodes: list[str], parities: np.ndarray
    ) -> float:
        """Persist parity chunks; returns critical-path seconds beyond the
        fan-out put (log-node backpressure for LogECMem)."""
        for j, nid in enumerate(parity_nodes):
            self.cluster.dram_nodes[nid].table.set(
                f"stripe:{stripe_id}:p{j}", self.cfg.chunk_size
            )
            self.parity_chunks[(stripe_id, j)] = parities[j].copy()
        return 0.0

    # ---------------------------------------------------------------- write path

    def _phys_value_len(self) -> int:
        probe = Chunk(self.cfg.chunk_size, self.cfg.payload_scale)
        return probe._phys_len(self.cfg.value_size)

    def _new_value(self, key: str, version: int) -> np.ndarray:
        return make_value(key, version, self._phys_value_len())

    def write(self, key: str) -> OpResult:
        if key in self.versions and key not in self.deleted:
            raise KeyError(f"object {key!r} already exists; use update()")
        value = self._new_value(key, 0)
        self.versions[key] = 0
        self.deleted.discard(key)
        node_id = self._select_queue(key)
        p = self.cfg.profile
        span = self.tracer.start("write", key=key)
        client_s = self.net.client_hop(64 + self.cfg.value_size)
        span.child("client_hop", client_s)
        latency = client_s
        latency += self._enqueue(key, node_id, value)
        # the object itself is stored on its DRAM node right away
        self.cluster.dram_nodes[node_id].table.set(key, self.cfg.value_size)
        put_s = self.net.parallel_puts([self.cfg.value_size], node_ids=[node_id])
        span.child("put_object", put_s, node=node_id)
        memcpy_s = p.memcpy_s(self.cfg.value_size)
        span.child("memcpy", memcpy_s)
        latency += put_s + memcpy_s
        seal_s = self._maybe_seal()
        if seal_s > 0:
            span.child("seal_stripe", seal_s)
        latency += seal_s
        self.counters.add("op_write")
        self.tracer.finish(span, latency)
        return OpResult(latency_s=latency)

    def _select_queue(self, key: str) -> str:
        """Pick the object's DRAM node by key hash with two-choice balancing.

        Stripe formation waits for k of the n queues to fill, so queue
        imbalance directly stalls sealing (worst with wide stripes, where
        k of k+1 queues must be ready).  Power-of-two-choices keeps the
        placement key-driven while bounding the imbalance.  Failed nodes
        never receive new objects: the ring walk skips them.
        """
        ring = self.cluster.ring
        candidates = [
            nid
            for nid in ring.lookup_many(key, min(len(ring), 4))
            if self._dram_reachable(nid)
        ][:2]
        if not candidates:
            alive = [
                nid for nid in self.cluster.alive_dram_ids() if self.net.reachable(nid)
            ]
            if not alive:
                raise StoreUnavailableError("no reachable DRAM node to accept writes")
            candidates = alive[:2]
        if len(candidates) == 1:
            return candidates[0]
        a, b = candidates
        return a if self._queue_depth(a) <= self._queue_depth(b) else b

    def _queue_depth(self, node_id: str) -> float:
        depth = float(len(self._full_units[node_id]))
        unit = self._open_units.get(node_id)
        if unit is not None:
            depth += 1 - unit.free_logical() / unit.logical_size
        return depth

    def _enqueue(self, key: str, node_id: str, value: np.ndarray) -> float:
        """Append an object to ``node_id``'s open encoding unit."""
        unit = self._open_units.get(node_id)
        if unit is None or not unit.fits(self.cfg.value_size):
            if unit is not None:
                self._seal_unit(node_id, unit)
            unit = Chunk(self.cfg.chunk_size, self.cfg.payload_scale)
            self._open_units[node_id] = unit
            self._pending_unit_keys[id(unit)] = []
        slot = unit.append(key, self.cfg.value_size, value)
        prev_gen = self._write_gen.get(key, 0)
        gen = prev_gen + 1
        san = _san.ACTIVE
        if san is not None:
            san.on_write_gen(key, gen, prev_gen)
        self._write_gen[key] = gen
        self._slot_gen[(id(unit), slot.offset)] = gen
        self._pending[key] = (node_id, unit, slot)
        self._pending_unit_keys[id(unit)].append(key)
        if not unit.fits(self.cfg.value_size):
            self._seal_unit(node_id, unit)
            del self._open_units[node_id]
        return 0.0

    def _seal_unit(self, node_id: str, unit: Chunk) -> None:
        self._full_units[node_id].append((self._unit_seq, unit))
        self._unit_seq += 1

    def _seal_possible(self) -> bool:
        """Can a new stripe be placed with the currently-alive nodes?"""
        return len(self.cluster.alive_dram_ids()) >= self.cfg.n

    def _maybe_seal(self) -> float:
        """Form a stripe whenever k distinct *alive* nodes have a sealed unit.

        Units parked on a failed node -- and whole stripes, when too few
        nodes are alive to place one -- wait for recovery (their objects stay
        readable through the replicated proxy buffers, §3.2)."""
        latency = 0.0
        while True:
            if not self._seal_possible():
                return latency
            ready = [
                nid
                for nid, q in self._full_units.items()
                if q and self.cluster.dram_nodes[nid].alive
            ]
            if len(ready) < self.cfg.k:
                return latency
            # take the k nodes whose head unit is oldest (FIFO across nodes)
            ready.sort(key=lambda nid: self._full_units[nid][0][0])
            chosen = ready[: self.cfg.k]
            units = [self._full_units[nid].popleft()[1] for nid in chosen]
            latency += self._seal_stripe(chosen, units)

    def _seal_stripe(self, data_nodes: list[str], units: list[Chunk]) -> float:
        cfg = self.cfg
        sid = self._next_stripe_id
        self._next_stripe_id += 1
        data = np.stack([u.buffer for u in units])
        parities = self.code.encode(data)
        parity_nodes = self._place_parities(sid, data_nodes)
        record = StripeRecord(
            stripe_id=sid,
            k=cfg.k,
            r=cfg.r,
            chunk_nodes=list(data_nodes) + parity_nodes,
            chunk_keys=[[s.key for s in u.slots] for u in units],
        )
        self.stripe_index.put(record)
        for i, unit in enumerate(units):
            self.data_chunks[(sid, i)] = unit
            for slot in unit.slots:
                gen = self._slot_gen.pop((id(unit), slot.offset), None)
                live = self._write_gen.get(slot.key)
                superseded = gen is not None and gen != live
                san = _san.ACTIVE
                if san is not None:
                    san.on_seal(slot.key, gen, live, applied=not superseded)
                if superseded:
                    # superseded: the key was deleted and re-written into a
                    # newer unit, so this slot is tombstone garbage -- leave
                    # the index and the live pending entry alone
                    continue
                self.object_index.put(
                    slot.key,
                    ObjectLocation(
                        stripe_id=sid, seq_no=i, offset=slot.offset, length=slot.length
                    ),
                )
                self._pending.pop(slot.key, None)
            self._pending_unit_keys.pop(id(unit), None)
        # encode cost + parity distribution are the sealing write's burden
        latency = cfg.profile.encode_s(cfg.k * cfg.chunk_size)
        latency += self._store_parities(sid, parity_nodes, parities)
        latency += self.net.parallel_puts(
            [cfg.chunk_size] * cfg.r, node_ids=parity_nodes
        )
        for i in range(cfg.k):
            self._set_checksum(sid, i, units[i].buffer)
        for j in range(cfg.r):
            payload = self.parity_chunks.get((sid, j))
            if payload is not None:
                self._set_checksum(sid, cfg.k + j, payload)
        self.counters.add("stripes_sealed")
        return latency

    # ------------------------------------------------------------- integrity

    def _set_checksum(self, sid: int, gi: int, buf: np.ndarray) -> None:
        self.checksums[(sid, gi)] = zlib.crc32(buf.tobytes())

    def _checksum_ok(self, sid: int, gi: int, buf: np.ndarray) -> bool:
        stored = self.checksums.get((sid, gi))
        return stored is None or stored == zlib.crc32(buf.tobytes())

    # ----------------------------------------------------------------- read path

    def _dram_reachable(self, node_id: str) -> bool:
        """A DRAM node the proxy can actually talk to: alive and link up."""
        return self.cluster.dram_nodes[node_id].alive and self.net.reachable(node_id)

    def _degraded_reason(self, node_id: str) -> str | None:
        """Why a read of ``node_id`` must take the degraded path (None = it
        need not): the node is down, its link is partitioned, or it is slower
        than the configured straggler threshold."""
        if not self.cluster.dram_nodes[node_id].alive:
            return "node_down"
        if self.net.link_down(node_id):
            return "link_down"
        if self.net.node_slowdown(node_id) > self.cfg.degraded_slowdown_threshold:
            return "slow_node"
        return None

    def _locate(self, key: str):
        """(stripe_id|None, seq|None, node_id, chunk, slot) of a live object."""
        if key in self.deleted or key not in self.versions:
            raise KeyError(f"object {key!r} does not exist")
        pend = self._pending.get(key)
        if pend is not None:
            node_id, unit, slot = pend
            return None, None, node_id, unit, slot
        loc = self.object_index.lookup(key)
        rec = self.stripe_index.get(loc.stripe_id)
        node_id = rec.chunk_nodes[loc.seq_no]
        chunk = self.data_chunks[(loc.stripe_id, loc.seq_no)]
        slot = chunk.slot_for(key)
        return loc.stripe_id, loc.seq_no, node_id, chunk, slot

    def read(self, key: str) -> OpResult:
        sid, seq, node_id, chunk, slot = self._locate(key)
        reason = self._degraded_reason(node_id)
        if reason is not None:
            result = self.degraded_read(key)
            result.degraded = True
            result.info.setdefault("degraded_reason", reason)
            return result
        span = self.tracer.start("read", key=key)
        client_s = self.net.client_hop(64 + self.cfg.value_size)
        span.child("client_hop", client_s)
        # a tolerably-slow node inflates the GET but not the client hop;
        # sequential_gets applies the node's slowdown itself now
        get_s = self.net.sequential_gets([self.cfg.value_size], node_ids=[node_id])
        span.child("fetch_object", get_s, node=node_id)
        latency = client_s + get_s
        self.counters.add("op_read")
        self.tracer.finish(span, latency)
        return OpResult(latency_s=latency, value=chunk.read_slot(slot).copy())

    # ------------------------------------------------------------- degraded path

    def _available_dram_chunks(self, sid: int, exclude: set[int]) -> dict[int, np.ndarray]:
        """Global-index -> physical bytes for stripe chunks on live DRAM nodes."""
        rec = self.stripe_index.get(sid)
        out: dict[int, np.ndarray] = {}
        for gi in range(rec.n):
            if gi in exclude:
                continue
            nid = rec.chunk_nodes[gi]
            if nid not in self.cluster.dram_nodes or not self._dram_reachable(nid):
                continue
            if gi < self.cfg.k:
                buf = self.data_chunks[(sid, gi)].buffer
            else:
                buf = self.parity_chunks.get((sid, gi - self.cfg.k))
                if buf is None:
                    continue
            if not self._checksum_ok(sid, gi, buf):
                # silent corruption: treat the chunk as unavailable and let
                # the decode escalate to other survivors / logged parities
                self.counters.add("corrupt_chunks_detected")
                continue
            out[gi] = buf
        return out

    def _fetch_logged_parities(
        self, sid: int, needed: int, exclude: set[int]
    ) -> tuple[float, dict[int, np.ndarray]]:
        """Fetch up-to-date logged parities (LogECMem only; no-op here)."""
        return 0.0, {}

    def degraded_read(self, key: str) -> OpResult:
        """Re-obtain an object whose data chunk is unavailable (§4.1, §5.2).

        Works whether the chunk's node actually failed or the read is forced
        degraded (transient unavailability), and escalates from the XOR fast
        path to logged parities when the stripe has multiple failures."""
        sid, seq, node_id, chunk, slot = self._locate(key)
        cfg = self.cfg
        span = self.tracer.start("degraded_read", key=key)
        if sid is None:
            # Object still in an unsealed encoding unit: those buffers are
            # replicated with the proxy's hot backups (§3.2), so the read is
            # served from the proxy, not decoded.
            client_s = self.net.client_hop(64 + cfg.value_size)
            span.child("client_hop", client_s)
            proxy_s = self.net.rpc(64, cfg.value_size)
            span.child("fetch_proxy_buffer", proxy_s)
            self.counters.add("op_degraded_read")
            self.tracer.finish(span, client_s + proxy_s)
            return OpResult(
                latency_s=client_s + proxy_s,
                value=chunk.read_slot(slot).copy(),
                degraded=True,
            )
        latency = self.net.client_hop(64 + cfg.value_size)
        span.child("client_hop", latency)
        exclude = {seq}  # the requested chunk counts as unavailable
        rec = self.stripe_index.get(sid)
        available = self._available_dram_chunks(sid, exclude)
        k, n = cfg.k, cfg.k + cfg.r
        self.counters.add("op_degraded_read")

        fetch: dict[int, np.ndarray] = {}
        if len(available) >= k:
            # single-failure fast path (§3.3.1): k-1 data + XOR if possible,
            # otherwise any k DRAM-resident chunks (IPMem/FSMem layouts).
            prefer = [i for i in range(k) if i in available and i != seq] + [
                i for i in range(k, n) if i in available
            ]
            for gi in prefer[:k]:
                fetch[gi] = available[gi]
            survivors_s = self.net.sequential_gets(
                [cfg.chunk_size] * k,
                node_ids=[rec.chunk_nodes[gi] for gi in prefer[:k]],
            )
            span.child("fetch_survivors", survivors_s, chunks=k)
            latency += survivors_s
        else:
            fetch.update(available)
            survivors_s = self.net.sequential_gets(
                [cfg.chunk_size] * len(available),
                node_ids=[rec.chunk_nodes[gi] for gi in available],
            )
            span.child("fetch_survivors", survivors_s, chunks=len(available))
            latency += survivors_s
            log_latency, logged = self._fetch_logged_parities(
                sid, k - len(available), exclude
            )
            span.child("fetch_logged_parity", log_latency, chunks=len(logged))
            latency += log_latency
            fetch.update(logged)
            if len(fetch) < k:
                raise DataLossError(
                    f"stripe {sid}: only {len(fetch)} of required {k} chunks available"
                )
            self.counters.add("multi_failure_repairs")
        decode_s = cfg.profile.encode_s(k * cfg.chunk_size)  # decode work
        span.child("decode", decode_s)
        latency += decode_s
        if set(range(k)) - {seq} <= set(fetch) and k in fetch:
            rebuilt = self.code.repair_with_xor(seq, fetch)
        else:
            rebuilt = self.code.decode(fetch, wanted=[seq])[seq]
        value = rebuilt[slot.phys_offset : slot.phys_end].copy()
        self.tracer.finish(span, latency)
        return OpResult(latency_s=latency, value=value, degraded=True)

    # -------------------------------------------------------------------- delete

    def delete(self, key: str) -> OpResult:
        """§4.1: delete = update the value to zero bytes; space is reclaimed
        later by GC (not during the measured run)."""
        result = self._update_impl(key, tombstone=True)
        self.deleted.add(key)
        self.counters.add("op_delete")
        return result

    def update(self, key: str) -> OpResult:
        if key in self.deleted or key not in self.versions:
            raise KeyError(f"object {key!r} does not exist")
        result = self._update_impl(key, tombstone=False)
        self.counters.add("op_update")
        return result

    def _update_impl(self, key: str, tombstone: bool) -> OpResult:
        raise NotImplementedError

    # -------------------------------------------------------------------- metrics

    @property
    def memory_logical_bytes(self) -> int:
        return self.cluster.dram_logical_bytes

    def expected_value(self, key: str) -> np.ndarray:
        if key in self.deleted:
            return np.zeros(self._phys_value_len(), dtype=np.uint8)
        return self._new_value(key, self.versions[key])

    def finalize(self) -> None:
        self.cluster.settle_logs()

    # ------------------------------------------------------------------ invariants

    def verify_stripe(self, stripe_id: int) -> bool:
        """Test hook: DRAM parity chunks match a fresh encode of the data."""
        rec = self.stripe_index.get(stripe_id)
        data = np.stack(
            [self.data_chunks[(stripe_id, i)].buffer for i in range(self.cfg.k)]
        )
        parities = self.code.encode(data)
        for j in range(self.cfg.r):
            stored = self.parity_chunks.get((stripe_id, j))
            if stored is not None and not np.array_equal(stored, parities[j]):
                return False
        return True
