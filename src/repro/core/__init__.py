"""LogECMem core: the HybridPL architecture realised as a KV store.

Public entry points:

* :class:`repro.core.config.StoreConfig` -- code parameters, value sizes,
  log scheme selection and the hardware profile.
* :class:`repro.core.logecmem.LogECMem` -- the store itself: write, read,
  degraded read, update, delete (§4), multi-chunk-failure repair and node
  repair with/without log-assist (§5).
"""

from repro.core.config import StoreConfig
from repro.core.interface import KVStore, OpResult
from repro.core.logecmem import LogECMem

__all__ = ["KVStore", "LogECMem", "OpResult", "StoreConfig"]
