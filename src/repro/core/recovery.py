"""Log-node crash consistency (§3.3.2).

Buffer logging acknowledges updates once the parity delta sits in the log
node's DRAM buffer; the paper notes the scheme "need[s] to maintain the crash
consistency that can reconstruct the data from the disk logs when buffers
crash".  This module implements that reconstruction:

* :meth:`crash` (on :class:`~repro.cluster.node.LogNode`, installed here to
  keep the failure-injection surface in one place) drops the DRAM buffer --
  everything unflushed is lost; the persisted log remains valid but *stale*;
* :func:`recover_log_node` brings the node back to consistency: for every
  stripe parity the node owns, the proxy re-derives the up-to-date parity
  from the DRAM-resident data chunks (which in-place update keeps current)
  and writes a fresh base record, superseding the stale log state.

Recovery costs are charged through the normal models (data chunk reads,
encode work, sequential log writes), so the drill is measurable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.node import LogNode
from repro.core.logecmem import LogECMem
from repro.logstore.records import LogRecord


def crash_log_node(node: LogNode) -> int:
    """Power-loss at a log node: the DRAM buffer (and, for PLM, nothing else
    -- staging is already on disk) is lost.  Returns records dropped."""
    lost = len(node.buffer.drain())
    node.sync_flush_stalls = 0
    return lost


@dataclass
class RecoveryReport:
    """Outcome of recovering one crashed log node."""

    node_id: str
    parities_rebuilt: int
    chunk_reads: int
    duration_s: float
    lost_records: int


def recover_log_node(
    store: LogECMem, node_id: str, lost_records: int = 0
) -> RecoveryReport:
    """Rebuild a crashed log node's parities from DRAM state (§3.3.2).

    Every (stripe, parity) the node owns is re-encoded from the stripe's k
    data chunks and persisted as a fresh base record; stale deltas on disk
    are superseded (dropped) so subsequent repairs read one clean chunk.
    """
    cfg = store.cfg
    node = store.cluster.log_nodes.get(node_id)
    if node is None:
        raise KeyError(f"{node_id!r} is not a log node")
    duration = 0.0
    rebuilt = 0
    reads = 0
    now = store.cluster.clock.now
    for sid in store.stripe_index.stripes_on_node(node_id):
        rec = store.stripe_index.get(sid)
        for j in range(1, cfg.r):
            if rec.chunk_nodes[cfg.k + j] != node_id:
                continue
            data = np.stack(
                [store.data_chunks[(sid, i)].buffer for i in range(cfg.k)]
            )
            duration += store.net.sequential_gets([cfg.chunk_size] * cfg.k)
            reads += cfg.k
            duration += cfg.profile.encode_s(cfg.k * cfg.chunk_size)
            parity = store.code.encode(data)[j]
            node.drop_stripe_parity(sid, j)  # supersede the stale log state
            duration += node.scheme.flush(
                [LogRecord.for_chunk(sid, j, parity, cfg.chunk_size)], now
            )
            rebuilt += 1
    node.restore(store.cluster.clock.now)
    was_stale = node.needs_recovery
    node.needs_recovery = False
    store.counters.add("log_node_recoveries")
    store.cluster.journal.emit(
        "stale_recover",
        node=node_id,
        parities_rebuilt=rebuilt,
        was_stale=was_stale,
        duration_s=duration,
        lost_records=lost_records,
    )
    return RecoveryReport(
        node_id=node_id,
        parities_rebuilt=rebuilt,
        chunk_reads=reads,
        duration_s=duration,
        lost_records=lost_records,
    )
