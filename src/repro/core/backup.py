"""Proxy metadata hot backup (§3.2).

The proxy is a single point of failure: it owns the Object Index and Stripe
Index.  The paper keeps hot backups of the proxy so a standby can take over
with replicated metadata.  This module implements that mechanism:

* :func:`snapshot_metadata` -- a JSON-serialisable snapshot of the indices
  plus version/tombstone bookkeeping,
* :func:`restore_metadata` -- install a snapshot into a store whose proxy
  state was lost,
* :func:`failover` -- the full drill: wipe the proxy-side indices, restore
  from the snapshot, and return the modelled takeover latency (metadata
  transfer + rebuild).

Chunk *contents* are not part of the snapshot -- they live on the storage
nodes (here: the chunk registries, which survive a proxy failure).
"""

from __future__ import annotations

import json

from repro.core.striped import StripedStoreBase
from repro.kvstore.object_index import ObjectIndex, ObjectLocation
from repro.kvstore.stripe_index import StripeIndex, StripeRecord


def snapshot_metadata(store: StripedStoreBase) -> dict:
    """Serialise the proxy metadata (round-trips through JSON)."""
    objects = {
        key: [loc.stripe_id, loc.seq_no, loc.offset, loc.length]
        for key in store.object_index.keys()
        for loc in [store.object_index.lookup(key)]
    }
    stripes = []
    for sid in sorted(store.stripe_index.stripe_ids()):
        rec = store.stripe_index.get(sid)
        stripes.append(
            {
                "stripe_id": rec.stripe_id,
                "k": rec.k,
                "r": rec.r,
                "chunk_nodes": list(rec.chunk_nodes),
                "chunk_keys": [list(keys) for keys in rec.chunk_keys],
            }
        )
    return {
        "objects": objects,
        "stripes": stripes,
        "versions": dict(store.versions),
        "deleted": sorted(store.deleted),
        "next_stripe_id": store._next_stripe_id,
    }


def restore_metadata(store: StripedStoreBase, snapshot: dict) -> None:
    """Install a snapshot into ``store`` (replacing its proxy-side indices)."""
    object_index = ObjectIndex()
    for key, (sid, seq, off, length) in snapshot["objects"].items():
        object_index.put(
            key, ObjectLocation(stripe_id=sid, seq_no=seq, offset=off, length=length)
        )
    stripe_index = StripeIndex()
    for rec in snapshot["stripes"]:
        stripe_index.put(
            StripeRecord(
                stripe_id=rec["stripe_id"],
                k=rec["k"],
                r=rec["r"],
                chunk_nodes=list(rec["chunk_nodes"]),
                chunk_keys=[list(keys) for keys in rec["chunk_keys"]],
            )
        )
    store.object_index = object_index
    store.stripe_index = stripe_index
    store.versions = dict(snapshot["versions"])
    store.deleted = set(snapshot["deleted"])
    store._next_stripe_id = int(snapshot["next_stripe_id"])


def snapshot_bytes(snapshot: dict) -> int:
    """Wire size of a snapshot (what a hot backup continuously receives)."""
    return len(json.dumps(snapshot).encode())


def failover(store: StripedStoreBase, snapshot: dict) -> float:
    """Proxy takeover drill: lose the proxy state, restore from the backup.

    Returns the modelled takeover latency: shipping the metadata from the
    backup plus an in-memory rebuild pass.  The store is fully usable again
    afterwards (tests verify reads, updates and degraded reads)."""
    p = store.cfg.profile
    nbytes = snapshot_bytes(snapshot)
    # wipe the primary's metadata (the failure) ...
    store.object_index = ObjectIndex()
    store.stripe_index = StripeIndex()
    # ... and take over from the hot backup
    restore_metadata(store, snapshot)
    takeover_s = p.rtt_s + p.transfer_s(nbytes) + p.memcpy_s(nbytes)
    store.counters.add("proxy_failovers")
    return takeover_s
