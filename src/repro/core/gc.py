"""Garbage collection for deleted objects (§4.1).

LogECMem deletes by overwriting the value with zero bytes -- the tombstone
still occupies its slot, its chunk still occupies DRAM, and the log nodes
still carry its parity history.  The paper notes "we need to deploy garbage
collection method to reclaim these zero-bytes space"; this module implements
that method:

1. find every stripe containing at least one tombstoned object,
2. read the stripe's *live* objects back and re-enqueue them toward fresh
   stripes (the normal sealing path re-encodes them),
3. release the old stripe entirely: tombstoned items, data chunk slots,
   DRAM parity items, and the log nodes' reserved regions/buffered deltas.

Costs are charged through the normal network/encode models, so GC time is
comparable to the foreground numbers the experiments report.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.logecmem import LogECMem


@dataclass
class GCReport:
    """Outcome of one collection pass."""

    stripes_collected: int = 0
    objects_rewritten: int = 0
    tombstones_reclaimed: int = 0
    bytes_reclaimed: int = 0   # logical DRAM bytes freed
    duration_s: float = 0.0


def collect_garbage(store: LogECMem) -> GCReport:
    """Reclaim the space held by deleted objects' stripes.

    Live objects from affected stripes are re-striped; the store remains
    fully readable and decodable throughout (the scrubber and tests verify).
    """
    cfg = store.cfg
    report = GCReport()
    before = store.memory_logical_bytes

    affected = []
    for sid in sorted(store.stripe_index.stripe_ids()):
        rec = store.stripe_index.get(sid)
        if any(k in store.deleted for keys in rec.chunk_keys for k in keys):
            affected.append(sid)

    for sid in affected:
        rec = store.stripe_index.get(sid)
        # 1) read back + re-enqueue the live objects
        live_chunks = 0
        for i, keys in enumerate(rec.chunk_keys):
            chunk = store.data_chunks[(sid, i)]
            live = [k for k in keys if k not in store.deleted]
            if live:
                live_chunks += 1
            for key in live:
                slot = chunk.slot_for(key)
                loc = store.object_index.get(key)
                if (
                    key in store._pending
                    or loc is None
                    or (loc.stripe_id, loc.seq_no, loc.offset)
                    != (sid, i, slot.offset)
                ):
                    # this slot is a superseded copy (the key was deleted and
                    # re-written; its live bytes are pending or in another
                    # stripe) -- reclaim it with the stripe, don't re-enqueue
                    continue
                value = chunk.read_slot(slot).copy()
                old_node = rec.chunk_nodes[i]
                store.cluster.dram_nodes[old_node].table.delete(key)
                new_node = store._select_queue(key)
                store._enqueue(key, new_node, value)
                store.cluster.dram_nodes[new_node].table.set(key, cfg.value_size)
                report.objects_rewritten += 1
        report.duration_s += store.net.sequential_gets([cfg.chunk_size] * live_chunks)

        # 2) release the old stripe
        for i, keys in enumerate(rec.chunk_keys):
            node = store.cluster.dram_nodes[rec.chunk_nodes[i]]
            for key in keys:
                if key in store.deleted:
                    node.table.delete(key)
                    store.object_index.remove(key)
                    store.versions.pop(key, None)
                    store.deleted.discard(key)
                    report.tombstones_reclaimed += 1
            del store.data_chunks[(sid, i)]
        # XOR parity item on its DRAM node
        store.cluster.dram_nodes[rec.xor_parity_node()].table.delete(
            f"stripe:{sid}:p0"
        )
        store.parity_chunks.pop((sid, 0), None)
        # logged parities: reserved regions + buffered deltas at log nodes
        for j in range(1, cfg.r):
            node_id = rec.chunk_nodes[cfg.k + j]
            log_node = store.cluster.log_nodes.get(node_id)
            if log_node is not None:
                log_node.drop_stripe_parity(sid, j)
            store.parity_chunks.pop((sid, j), None)
        for gi in range(cfg.k + cfg.r):
            store.checksums.pop((sid, gi), None)
        store.stripe_index.remove(sid)
        report.stripes_collected += 1

        # 3) sealing of re-striped objects happens through the normal path
        report.duration_s += store._maybe_seal()

    report.bytes_reclaimed = max(0, before - store.memory_logical_bytes)
    store.counters.add("gc_passes")
    store.counters.add("gc_stripes_collected", report.stripes_collected)
    store.cluster.journal.emit(
        "gc_pass",
        stripes_collected=report.stripes_collected,
        objects_rewritten=report.objects_rewritten,
        tombstones_reclaimed=report.tombstones_reclaimed,
        bytes_reclaimed=report.bytes_reclaimed,
        duration_s=report.duration_s,
    )
    return report
