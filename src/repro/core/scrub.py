"""Stripe scrubbing: background consistency verification.

A scrubber walks every stripe and re-derives the parity set from the data
chunks, comparing against what the DRAM nodes and log nodes actually hold
(including materialising logged parities through base-chunk + delta replay).
Production erasure-coded stores run this continuously; here it doubles as
the end-to-end integrity oracle for the fuzz/integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class ScrubReport:
    """Outcome of one scrub pass."""

    stripes_checked: int = 0
    parities_checked: int = 0
    mismatches: list[tuple[int, int]] = field(default_factory=list)  # (stripe, parity)
    skipped_unavailable: int = 0

    @property
    def clean(self) -> bool:
        return not self.mismatches


def scrub(store, include_logged: bool = True) -> ScrubReport:
    """Verify every reachable stripe of a striped store.

    ``store`` is any :class:`~repro.core.striped.StripedStoreBase`.  Parities
    on failed nodes are skipped (counted in ``skipped_unavailable``); for
    LogECMem, logged parities are materialised through the log nodes' real
    read path when ``include_logged``.
    """
    report = ScrubReport()
    cfg = store.cfg
    for sid in sorted(store.stripe_index.stripe_ids()):
        rec = store.stripe_index.get(sid)
        data = np.stack(
            [store.data_chunks[(sid, i)].buffer for i in range(cfg.k)]
        )
        expect = store.code.encode(data)
        report.stripes_checked += 1
        for j in range(cfg.r):
            node_id = rec.chunk_nodes[cfg.k + j]
            stored = store.parity_chunks.get((sid, j))
            if stored is None:
                # a logged parity: lives at a log node
                if not include_logged:
                    continue
                node = store.cluster.log_nodes.get(node_id)
                if node is None or not node.alive:
                    report.skipped_unavailable += 1
                    continue
                try:
                    stored = node.read_uptodate_parity(
                        sid, j, cfg.phys_chunk_size(), store.cluster.clock.now
                    ).payload
                except KeyError:
                    # base parity lost (e.g. buffer crash before first flush)
                    report.parities_checked += 1
                    report.mismatches.append((sid, j))
                    continue
            else:
                dram = store.cluster.dram_nodes.get(node_id)
                if dram is None or not dram.alive:
                    report.skipped_unavailable += 1
                    continue
            report.parities_checked += 1
            if not np.array_equal(stored, expect[j]):
                report.mismatches.append((sid, j))
    store.cluster.journal.emit(
        "scrub_pass",
        stripes_checked=report.stripes_checked,
        parities_checked=report.parities_checked,
        mismatches=len(report.mismatches),
        skipped_unavailable=report.skipped_unavailable,
    )
    return report
