"""Failure repair for LogECMem (§5).

* Multi-chunk-failure degraded reads are part of
  :meth:`repro.core.striped.StripedStoreBase.degraded_read` (they escalate to
  logged parities); Experiment 6 drives them directly.
* This module implements whole-node repair (§5.3).  The prototype repairs a
  node by running one degraded read per lost chunk -- k synchronous chunk
  GETs -- across a configurable number of parallel repair streams.  With
  **log-assist**, each stripe substitutes one logged parity for one DRAM
  chunk: the log nodes *pre-repair* their up-to-date parities during the
  failure-detection window (§3.1's 30-minute trigger time) using otherwise
  idle disk/NIC bandwidth, so at repair time the parity arrives in parallel
  with the k-1 serial DRAM GETs and drops one GET from every stripe's
  critical path.  The gain is therefore ~k/(k-1), largest for small k --
  matching Figure 15's trend.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.interface import DataLossError
from repro.core.logecmem import LogECMem


@dataclass
class NodeRepairResult:
    """Outcome of repairing one failed DRAM node."""

    node_id: str
    repair_time_s: float
    stripes_repaired: int
    chunks_repaired: int
    bytes_repaired: int            # logical bytes rebuilt onto the new node
    log_assisted_stripes: int      # stripes that pulled a parity from a log node
    dram_chunk_fetches: int
    log_parity_fetches: int
    #: disk seconds the log nodes spent pre-repairing parities (must fit in
    #: the detection window; recorded for the ablation/report)
    log_prepair_s: float = 0.0
    detection_window_s: float = 30 * 60

    @property
    def throughput_GiB_per_min(self) -> float:
        if self.repair_time_s <= 0:
            return 0.0
        return (self.bytes_repaired / (1 << 30)) / (self.repair_time_s / 60.0)


def repair_node(
    store: LogECMem,
    node_id: str,
    log_assist: bool = True,
    streams: int = 64,
    foreground_utilisation: float = 0.0,
) -> NodeRepairResult:
    """Rebuild every chunk the failed DRAM node held (§5.3).

    The node must already be failed (``store.cluster.kill``).  Log buffers
    are settled first so logged parities are readable from disk state.
    ``streams`` is the number of stripe repairs in flight concurrently (wall
    time scales with 1/streams for both modes equally).

    ``foreground_utilisation`` models §5.3's congestion concern: the
    surviving DRAM nodes "need to provide continuous service via the proxy",
    so a fraction of their NIC capacity is unavailable to repair GETs (which
    slow down by 1/(1-u)).  Log-node bandwidth "is only served for writes
    and updates of parity chunks" and stays free -- which is exactly why
    log-assist grows more valuable under load.
    """
    cfg = store.cfg
    cluster = store.cluster
    if node_id not in cluster.dram_nodes:
        raise KeyError(f"{node_id!r} is not a DRAM node")
    if cluster.dram_nodes[node_id].alive:
        raise ValueError(f"node {node_id!r} is alive; kill it before repairing")
    if streams < 1:
        raise ValueError(f"streams must be >= 1, got {streams}")
    if not 0 <= foreground_utilisation < 1:
        raise ValueError(
            f"foreground utilisation must be in [0, 1), got {foreground_utilisation}"
        )
    cluster.settle_logs()

    p = cfg.profile
    net = cluster.network
    chunk = cfg.chunk_size
    # one synchronous chunk GET on the repair path (same cost model as
    # NetworkModel.sequential_gets, without polluting run counters); the
    # foreground share of DRAM NIC capacity inflates it
    get_s = (
        p.rtt_s + p.transfer_s(64 + chunk) + p.rpc_overhead_s + p.node_service_s
    ) / (1.0 - foreground_utilisation)
    decode_s = p.encode_s(cfg.k * chunk)

    stripes = store.stripe_index.stripes_on_node(node_id)
    cluster.journal.emit(
        "repair_start",
        node=node_id,
        stripes=len(stripes),
        log_assist=log_assist,
        streams=streams,
    )
    span = store.tracer.start("repair", node=node_id, log_assist=log_assist)
    fetch_serial_s = 0.0
    decode_serial_s = 0.0
    chunks = 0
    assisted = 0
    dram_fetches = 0
    log_fetches = 0
    prepair_s = 0.0
    now = cluster.clock.now

    for sid in stripes:
        rec = store.stripe_index.get(sid)
        lost = rec.chunks_on_node(node_id)
        # a log parity only assists when its node is up, reachable, and not
        # stale (needs_recovery: it missed deltas and would serve wrong bytes)
        alive_logged = [
            j
            for j in range(1, cfg.r)
            if (log_node := cluster.log_nodes.get(rec.chunk_nodes[cfg.k + j]))
            is not None
            and log_node.alive
            and net.reachable(rec.chunk_nodes[cfg.k + j])
            and not log_node.needs_recovery
        ]
        for gi in lost:
            # a survivor must be alive AND reachable -- a partitioned node
            # cannot serve repair GETs any more than client reads
            survivor_ids = [
                rec.chunk_nodes[i]
                for i in range(cfg.k + 1)
                if i != gi
                and rec.chunk_nodes[i] in cluster.dram_nodes
                and cluster.dram_nodes[rec.chunk_nodes[i]].alive
                and net.reachable(rec.chunk_nodes[i])
            ]
            if len(survivor_ids) + len(alive_logged) < cfg.k:
                raise DataLossError(
                    f"stripe {sid}: cannot gather k={cfg.k} chunks to repair {gi}"
                )
            # fetch from the fastest survivors first (deterministic: sorted
            # by slowdown factor, node id breaking ties); slowed nodes
            # stretch their GETs like any other exchange
            factors = sorted(
                (net.node_slowdown(nid), nid) for nid in survivor_ids
            )
            use_assist = (
                log_assist and alive_logged and len(survivor_ids) >= cfg.k - 1
            )
            if use_assist:
                j = alive_logged[0]
                nid = rec.chunk_nodes[cfg.k + j]
                node = cluster.log_nodes[nid]
                # pre-repair: the log node materialises the parity ahead of
                # time; its disk cost happened inside the detection window
                region = node.scheme.region(sid, j)
                region_bytes = max(chunk, region.logical_bytes)
                prepair_s += (
                    p.disk_io_overhead_s + region_bytes / p.disk_seq_bandwidth_Bps
                )
                # parity transfer overlaps the k-1 serial DRAM GETs
                parity_s = (
                    p.rtt_s + p.transfer_s(64 + chunk) + p.node_service_s
                ) * net.node_slowdown(nid)
                gets = sum(f for f, _ in factors[: cfg.k - 1]) * get_s
                fetch_serial_s += max(gets, parity_s)
                assisted += 1
                dram_fetches += cfg.k - 1
                log_fetches += 1
            else:
                fs = [f for f, _ in factors[: cfg.k]]
                fs += [1.0] * (cfg.k - len(fs))  # remainder from log nodes
                fetch_serial_s += sum(fs) * get_s
                dram_fetches += cfg.k
            decode_serial_s += decode_s
            chunks += 1

    repair_time = (fetch_serial_s + decode_serial_s) / streams
    span.child("fetch_chunks", fetch_serial_s / streams, chunks=chunks)
    span.child("decode", decode_serial_s / streams)
    store.counters.add("node_repairs")
    store.counters.add("node_repair_chunks", chunks)
    result = NodeRepairResult(
        node_id=node_id,
        repair_time_s=repair_time,
        stripes_repaired=len(stripes),
        chunks_repaired=chunks,
        bytes_repaired=chunks * chunk,
        log_assisted_stripes=assisted,
        dram_chunk_fetches=dram_fetches,
        log_parity_fetches=log_fetches,
        log_prepair_s=prepair_s,
    )
    store.tracer.finish(span, repair_time)
    cluster.clock.advance_to(now + repair_time)
    # emitted after advance_to so the event's timestamp is the completion time
    cluster.journal.emit(
        "repair_done",
        node=node_id,
        stripes=result.stripes_repaired,
        chunks=result.chunks_repaired,
        log_assisted=result.log_assisted_stripes,
        repair_time_s=repair_time,
    )
    return result
