"""Popularity-aware HybridPL (the paper's §9 future work).

    "We also plan to re-organize HybridPL's architecture to proactively
    identify the popularity of incoming data for better update efficiency."

This module implements that plan as :class:`AdaptiveLogECMem`: the proxy
tracks per-object update popularity and, for *hot* objects, coalesces the
log-bound data deltas in a small proxy-side buffer instead of broadcasting
each one.  Consecutive deltas to the same (stripe, data chunk) merge by
Property 2, so a hot object updated n times inside the window ships one
merged delta instead of n -- fewer log-node messages, fewer buffered records,
fewer disk IOs.

Consistency is preserved:

* data chunks and the XOR parity are still updated in place on every update,
  so single-failure repairs never see stale state;
* multi-failure repairs fold the proxy's pending deltas on top of whatever
  the log nodes materialise (the proxy knows exactly what it has not shipped);
* ``finalize``/eviction flushes everything, so settled state equals plain
  LogECMem's bit-for-bit (the scrubber asserts this in tests).
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.core.config import StoreConfig
from repro.core.interface import OpResult
from repro.core.logecmem import LogECMem
from repro.ec.delta import ParityDelta
from repro.ec.gf256 import gf_mul_scalar
from repro.logstore.records import LogRecord


def choose_log_scheme(
    current: str,
    sync_stalls: int,
    random_writes: float,
    flush_records: float,
) -> str:
    """Pick the log layout a struggling log node should migrate to.

    The decision mirrors *Adaptive Logging*'s workload-driven layout choice,
    driven by the two disk pathologies this simulation models:

    * **Backpressure stalls** (``sync_stalls > 0``): the disk cannot keep up
      with the flush stream, so minimise write cost -- ``pl`` turns every
      flush into one sequential append, the cheapest write pattern of the
      four schemes.
    * **Random-write-heavy otherwise** (more random writes than flushed
      records means reserved-region layouts are seeking per record):
      ``plm``'s staging extent batches those seeks into sequential runs and
      lazily merges, trading repair locality for write absorption.

    Returns the current scheme when nothing is wrong or the node already
    runs the preferred layout, so callers can treat "no change" as a no-op.
    """
    if sync_stalls > 0 and current != "pl":
        return "pl"
    if sync_stalls == 0 and random_writes > flush_records and current not in ("pl", "plm"):
        return "plm"
    return current


class AdaptiveLogECMem(LogECMem):
    """LogECMem with popularity-driven proxy-side delta coalescing."""

    name = "adaptive-logecmem"

    def __init__(
        self,
        config: StoreConfig,
        hot_threshold: int = 3,
        coalesce_updates: int = 8,
        pending_capacity: int = 256,
    ):
        """``hot_threshold``: updates seen before a key counts as hot;
        ``coalesce_updates``: merged deltas shipped after this many folds;
        ``pending_capacity``: max coalesced entries held at the proxy."""
        super().__init__(config)
        self.hot_threshold = int(hot_threshold)
        self.coalesce_updates = int(coalesce_updates)
        self.pending_capacity = int(pending_capacity)
        self.popularity: Counter[str] = Counter()
        #: (stripe_id, seq) -> [merged physical delta, offset, folds]
        self._pending_deltas: dict[tuple[int, int], list] = {}
        self.coalesced_updates = 0
        self.flushes = 0

    # ------------------------------------------------------------------ update

    def _update_impl(self, key: str, tombstone: bool) -> OpResult:
        cfg = self.cfg
        sid, seq, node_id, chunk, slot = self._locate(key)
        self.popularity[key] += 1
        hot = self.popularity[key] >= self.hot_threshold
        if sid is None or tombstone or not hot:
            return super()._update_impl(key, tombstone)
        self._require_update_nodes(key, sid, node_id)

        # hot path: in-place data + XOR parity update, delta coalesced locally
        new_version = self.versions[key] + 1
        new_value = self._new_value(key, new_version)
        old = chunk.read_slot(slot).copy()
        delta = old ^ new_value
        rec = self.stripe_index.get(sid)
        xor_node = rec.chunk_nodes[cfg.k]
        span = self.tracer.start("update", key=key, hot=True)
        latency = self.net.client_hop(64 + cfg.value_size)
        span.child("client_hop", latency)
        reads_s = self.net.sequential_gets(
            [cfg.value_size, cfg.chunk_size], node_ids=[node_id, xor_node]
        )
        span.child("read_old_xor", reads_s, node=node_id, xor_node=xor_node)
        compute_s = cfg.profile.encode_s(2 * cfg.value_size)
        span.child("encode_delta", compute_s)
        latency += reads_s + compute_s
        self.counters.add("parity_chunk_reads")
        chunk.write_slot(slot, new_value)
        xor = self.parity_chunks[(sid, 0)]
        xor[slot.phys_offset : slot.phys_end] ^= delta
        self._set_checksum(sid, seq, chunk.buffer)
        self._set_checksum(sid, cfg.k, xor)
        writes_s = self.net.parallel_puts(
            [cfg.value_size, cfg.chunk_size], node_ids=[node_id, xor_node]
        )
        span.child("ship_delta", writes_s, fanout=2)
        latency += writes_s

        entry = self._pending_deltas.get((sid, seq))
        flush_s = 0.0
        if entry is None:
            if len(self._pending_deltas) >= self.pending_capacity:
                flush_s += self._flush_all()
            buf = np.zeros(chunk.physical_size, dtype=np.uint8)
            entry = [buf, slot.phys_offset, 0]
            self._pending_deltas[(sid, seq)] = entry
        entry[0][slot.phys_offset : slot.phys_end] ^= delta
        entry[1] = min(entry[1], slot.phys_offset)
        entry[2] += 1
        self.coalesced_updates += 1
        self.counters.add("coalesced_updates")
        if entry[2] >= self.coalesce_updates:
            flush_s += self._flush_entry(sid, seq)
        if flush_s > 0:
            span.child("log_ack", flush_s)
        latency += flush_s
        self.versions[key] = new_version
        self.tracer.finish(span, latency)
        return OpResult(latency_s=latency)

    # ------------------------------------------------------------------- flush

    def _flush_entry(self, sid: int, seq: int) -> float:
        """Ship one coalesced delta to the stripe's log nodes."""
        entry = self._pending_deltas.pop((sid, seq), None)
        if entry is None:
            return 0.0
        cfg = self.cfg
        buf, _, folds = entry
        nz = np.nonzero(buf)[0]
        if nz.size == 0:
            return 0.0  # deltas cancelled out entirely
        lo, hi = int(nz[0]), int(nz[-1]) + 1
        payload = buf[lo:hi]
        logical = max(1, round(payload.size / cfg.payload_scale))
        rec = self.stripe_index.get(sid)
        # only reachable, alive log nodes can take the merged delta; the
        # others go stale and are flagged for recovery (same contract as the
        # per-update broadcast in LogECMem._update_impl)
        deliverable: list[tuple[int, str]] = []
        for j, nid in enumerate(rec.chunk_nodes[cfg.k + 1 :], start=1):
            log_node = self.cluster.log_nodes[nid]
            if not log_node.alive or not self.net.reachable(nid):
                log_node.needs_recovery = True
                self.counters.add("parity_deltas_skipped")
                continue
            deliverable.append((j, nid))
        latency = self.net.parallel_puts(
            [logical] * len(deliverable), node_ids=[nid for _, nid in deliverable]
        )
        now = self.cluster.clock.now
        stall = 0.0
        for j, nid in deliverable:
            coeff = self.code.coefficient(j, seq)
            pd = ParityDelta(
                stripe_id=sid,
                parity_index=j,
                offset=lo,
                payload=gf_mul_scalar(coeff, payload),
            )
            stall = max(
                stall,
                self.cluster.log_nodes[nid].append(LogRecord.for_delta(pd, logical), now),
            )
            self.counters.add("parity_deltas_sent")
        self.flushes += 1
        self.counters.add("coalesce_flushes")
        return latency + stall

    def _flush_all(self) -> float:
        total = 0.0
        for sid, seq in sorted(self._pending_deltas):
            total += self._flush_entry(sid, seq)
        return total

    # ------------------------------------------------------------------ repair

    def _fetch_logged_parities(self, sid, needed, exclude):
        """Fold un-shipped deltas on top of the materialised parities."""
        latency, out = super()._fetch_logged_parities(sid, needed, exclude)
        for (psid, seq), entry in self._pending_deltas.items():
            if psid != sid:
                continue
            buf = entry[0]
            for gi, payload in out.items():
                j = gi - self.cfg.k
                payload ^= gf_mul_scalar(self.code.coefficient(j, seq), buf)
        return latency, out

    def finalize(self) -> None:
        self._flush_all()
        super().finalize()
