"""Store configuration shared by LogECMem and the erasure-coded baselines."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.params import HardwareProfile


@dataclass
class StoreConfig:
    """Parameters of one store instance.

    The paper's default setup (§6.2): 4 KiB values, one object per data chunk,
    (k, r) from {(6,3), (10,4), (12,4), (15,3)} plus large-scale k with r=4.

    ``payload_scale`` shrinks the *physical* bytes kept per chunk while all
    byte accounting stays at the logical sizes -- see DESIGN.md §2.
    """

    k: int = 6
    r: int = 3
    value_size: int = 4096
    chunk_size: int | None = None  # defaults to value_size (object == chunk)
    payload_scale: float = 1.0 / 16
    scheme: str = "plm"
    #: merge-based buffer logging (§4.3): collapse same-target records in the
    #: log-node buffer.  Off by default so the PL/PLR/PLR-m/PLM schemes keep
    #: their distinct disk behaviour; enable as the §4.3 ablation.
    merge_buffer: bool = False
    profile: HardwareProfile = field(default_factory=HardwareProfile)
    #: FSMem only: run GC inline whenever this many chunks are stale
    #: (None = single deferred GC at finalize, the paper's measured regime)
    fsmem_gc_stale_threshold: int | None = None
    #: reads against a node slower than this multiple of nominal latency
    #: switch to the degraded path (decode from survivors beats waiting on a
    #: straggler); 1.0 would degrade on any slowdown, inf never does
    degraded_slowdown_threshold: float = 4.0

    def __post_init__(self) -> None:
        if self.k < 2:
            raise ValueError(f"k must be >= 2, got {self.k}")
        if self.r < 1:
            raise ValueError(f"r must be >= 1, got {self.r}")
        if self.k + self.r > 256:
            raise ValueError(f"(k={self.k}, r={self.r}) exceeds GF(2^8) capacity")
        if self.chunk_size is None:
            self.chunk_size = self.value_size
        if self.value_size > self.chunk_size:
            raise ValueError(
                f"value_size {self.value_size} larger than chunk_size {self.chunk_size}"
            )

    @property
    def n(self) -> int:
        return self.k + self.r

    @property
    def n_log_nodes(self) -> int:
        """Log nodes in the HybridPL layout (the r-1 non-XOR parities)."""
        return max(0, self.r - 1)

    def phys_chunk_size(self) -> int:
        return max(1, round(self.chunk_size * self.payload_scale))
