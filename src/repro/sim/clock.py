"""Simulation clock.

A single monotonically non-decreasing ``now``.  Stores advance it by the
critical-path latency of each request; asynchronous work (log flushes) is
tracked against resource-free times rather than the clock, so background IO
never stalls the clock unless backpressure makes it part of a request's
critical path.
"""

from __future__ import annotations


class SimClock:
    """Monotonic simulated time in seconds."""

    __slots__ = ("now",)

    def __init__(self, start: float = 0.0):
        self.now = float(start)

    def advance(self, dt: float) -> float:
        """Move time forward by ``dt`` seconds and return the new time."""
        if dt < 0:
            raise ValueError(f"cannot advance clock by negative dt={dt}")
        self.now += dt
        return self.now

    def advance_to(self, t: float) -> float:
        """Move time forward to absolute time ``t`` (no-op if in the past)."""
        if t > self.now:
            self.now = t
        return self.now

    def reset(self, start: float = 0.0) -> None:
        self.now = float(start)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimClock(now={self.now:.6f}s)"
