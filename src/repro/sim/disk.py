"""Disk cost model with exact IO counting.

Experiments 5 and 6 of the paper are entirely about *how many* disk IOs each
log-flush scheme issues and whether repair reads are sequential or random, so
the model tracks:

* ``io_count``    -- number of IO submissions (what Figure 14(a) plots),
* ``seeks``       -- positioning operations (random IOs),
* read/write byte totals,

and charges time as ``seek (if random) + per-IO overhead + bytes/bandwidth``.
The backing store for log bytes themselves lives in :mod:`repro.logstore`;
this class only accounts cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.params import HardwareProfile
from repro.sim.resources import Resource


@dataclass
class DiskStats:
    """Tallies for one simulated disk."""

    reads: int = 0
    writes: int = 0
    seeks: int = 0
    read_bytes: int = 0
    write_bytes: int = 0

    @property
    def io_count(self) -> int:
        return self.reads + self.writes

    def snapshot(self) -> dict[str, int]:
        return {
            "reads": self.reads,
            "writes": self.writes,
            "seeks": self.seeks,
            "read_bytes": self.read_bytes,
            "write_bytes": self.write_bytes,
            "io_count": self.io_count,
        }


class DiskModel:
    """One log-node disk: cost model + IO statistics + busy-time resource."""

    def __init__(self, profile: HardwareProfile, name: str = "disk"):
        self.profile = profile
        self.stats = DiskStats()
        self.resource = Resource(name)
        self.stall_windows = 0
        self.stalled_s = 0.0

    # -- cost primitives ------------------------------------------------------

    def _io_time(self, nbytes: int, sequential: bool) -> float:
        p = self.profile
        t = p.disk_io_overhead_s + nbytes / p.disk_seq_bandwidth_Bps
        if not sequential:
            t += p.disk_seek_s
        return t

    def write(self, nbytes: int, *, sequential: bool, now: float = 0.0) -> float:
        """Submit one write IO; returns its service duration (seconds)."""
        self.stats.writes += 1
        self.stats.write_bytes += nbytes
        if not sequential:
            self.stats.seeks += 1
        dur = self._io_time(nbytes, sequential)
        self.resource.reserve(now, dur)
        return dur

    def read(self, nbytes: int, *, sequential: bool, now: float = 0.0) -> float:
        """Submit one read IO; returns its service duration (seconds)."""
        self.stats.reads += 1
        self.stats.read_bytes += nbytes
        if not sequential:
            self.stats.seeks += 1
        dur = self._io_time(nbytes, sequential)
        self.resource.reserve(now, dur)
        return dur

    def inject_stall(self, now: float, duration_s: float) -> None:
        """Fault injection: the device goes unresponsive for ``duration_s``.

        Models a controller pause / EBS throttling window: no IO is lost, but
        everything queued behind the window waits.  Flush backpressure then
        propagates the stall onto the write critical path exactly as a real
        backlog would (see :meth:`repro.cluster.node.LogNode.append`).
        """
        if duration_s < 0:
            raise ValueError(f"negative stall duration {duration_s}")
        self.stall_windows += 1
        self.stalled_s += duration_s
        self.resource.reserve(now, duration_s)

    # -- helpers ---------------------------------------------------------------

    def backlog_s(self, now: float) -> float:
        """Seconds of queued IO ahead of a request arriving at ``now``."""
        return self.resource.wait_s(now)

    def reset(self) -> None:
        self.stats = DiskStats()
        self.resource.reset()
