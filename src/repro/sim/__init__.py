"""Deterministic performance-simulation substrate.

The paper evaluates on an Amazon EC2 cluster (m5d.2xlarge instances, EBS log
volumes).  We cannot run that testbed, so this package supplies the closest
synthetic equivalent: a *cost model* that converts mechanistically-counted
events (chunk transfers, RPCs, disk IOs, encode bytes) into time, plus
busy-time accounting per resource for throughput estimates and an event queue
for asynchronous log-buffer flushes.

Nothing in here fabricates results: latencies are always derived from the
actual data path executed by the stores in :mod:`repro.core` and
:mod:`repro.baselines`.
"""

from repro.sim.clock import SimClock
from repro.sim.params import HardwareProfile
from repro.sim.resources import Counters, Resource
from repro.sim.network import NetworkModel
from repro.sim.disk import DiskModel, DiskStats
from repro.sim.events import EventQueue

__all__ = [
    "Counters",
    "DiskModel",
    "DiskStats",
    "EventQueue",
    "HardwareProfile",
    "NetworkModel",
    "Resource",
    "SimClock",
]
