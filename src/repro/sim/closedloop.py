"""Closed-loop throughput simulation.

The analytic throughput estimate (min of closed-loop, NIC and CPU bounds) is
fast but ignores queueing interactions.  This module simulates the paper's
actual measurement setup -- a client driving C concurrent requests through
one proxy -- as a deterministic discrete-event run over two shared resources:

* the proxy CPU (serialises per-RPC dispatch and encode work),
* the proxy NIC (serialises payload bytes),

plus each operation's non-shared remote time (round trips, node service,
disk stalls), which overlaps across concurrent operations.

Each operation is an :class:`OpDemand`; the workload runner can record one
per executed request (``run_requests(..., record_demands=True)``), so the
simulated mix is exactly the measured mix.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.params import HardwareProfile
from repro.sim.resources import Resource


@dataclass(frozen=True)
class OpDemand:
    """Resource demand of one operation."""

    cpu_s: float        # proxy CPU occupancy
    nic_bytes: float    # bytes serialised through the proxy NIC
    remote_s: float     # non-shared remainder (overlaps across ops)

    def __post_init__(self) -> None:
        if self.cpu_s < 0 or self.nic_bytes < 0 or self.remote_s < 0:
            raise ValueError(f"negative demand: {self}")


@dataclass
class ClosedLoopResult:
    """Outcome of one closed-loop run."""

    operations: int
    makespan_s: float
    throughput_ops_s: float
    mean_response_s: float
    cpu_utilisation: float
    nic_utilisation: float


def simulate(
    demands: list[OpDemand],
    profile: HardwareProfile,
    concurrency: int | None = None,
) -> ClosedLoopResult:
    """Run ``demands`` through C closed-loop clients; FIFO at CPU then NIC.

    Operations are dealt to clients round-robin; a client issues its next
    operation the moment the previous one completes.  Completion =
    NIC-done + remote_s; the CPU and NIC process at most one op at a time.
    """
    if not demands:
        raise ValueError("need at least one operation")
    c = profile.client_concurrency if concurrency is None else concurrency
    if c < 1:
        raise ValueError(f"concurrency must be >= 1, got {c}")
    cpu = Resource("proxy-cpu")
    nic = Resource("proxy-nic")
    client_free = [0.0] * min(c, len(demands))
    makespan = 0.0
    total_response = 0.0
    for i, op in enumerate(demands):
        client = i % len(client_free)
        arrival = client_free[client]
        cpu_done = cpu.reserve(arrival, op.cpu_s)
        nic_done = nic.reserve(cpu_done, op.nic_bytes / profile.net_bandwidth_Bps)
        completion = nic_done + op.remote_s
        client_free[client] = completion
        total_response += completion - arrival
        if completion > makespan:
            makespan = completion
    n = len(demands)
    return ClosedLoopResult(
        operations=n,
        makespan_s=makespan,
        throughput_ops_s=n / makespan if makespan > 0 else float("inf"),
        mean_response_s=total_response / n,
        cpu_utilisation=cpu.utilisation(makespan),
        nic_utilisation=nic.utilisation(makespan),
    )
