"""Closed-loop throughput simulation (legacy front end).

The analytic throughput estimate (min of closed-loop, NIC and CPU bounds) is
fast but ignores queueing interactions.  The original ``simulate`` here
modelled the paper's measurement setup -- a client driving C concurrent
requests through one proxy -- over two shared resources (proxy CPU, proxy
NIC) plus each op's overlappable remote time.

That model has been superseded by the concurrent discrete-event engine
(:mod:`repro.engine`), which generalises it to per-node stations, admission
control, backpressure and mid-run faults.  The exact legacy arithmetic lives
on -- byte-identical, committed goldens depend on it -- as
:func:`repro.engine.compat.simulate_demands`; :func:`simulate` below is a
**deprecated shim** over it kept for source compatibility.  New callers
should use :func:`repro.engine.compat.simulate_engine` (drop-in, served by
the engine) or :func:`repro.engine.load.run_load` (full load curves).

An empty demand list is a zero-length run, not an error: ``simulate([])``
returns a zeroed :class:`ClosedLoopResult`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.sim.params import HardwareProfile


@dataclass(frozen=True)
class OpDemand:
    """Resource demand of one operation."""

    cpu_s: float        # proxy CPU occupancy
    nic_bytes: float    # bytes serialised through the proxy NIC
    remote_s: float     # non-shared remainder (overlaps across ops)

    def __post_init__(self) -> None:
        if self.cpu_s < 0 or self.nic_bytes < 0 or self.remote_s < 0:
            raise ValueError(f"negative demand: {self}")


@dataclass
class ClosedLoopResult:
    """Outcome of one closed-loop run."""

    operations: int
    makespan_s: float
    throughput_ops_s: float
    mean_response_s: float
    cpu_utilisation: float
    nic_utilisation: float


def simulate(
    demands: list[OpDemand],
    profile: HardwareProfile,
    concurrency: int | None = None,
) -> ClosedLoopResult:
    """Deprecated shim over :func:`repro.engine.compat.simulate_demands`.

    Kept byte-identical to the historical behaviour for non-empty demand
    lists; an empty list now yields a zeroed result instead of raising.
    """
    warnings.warn(
        "repro.sim.closedloop.simulate is deprecated; use "
        "repro.engine.compat.simulate_engine (concurrent engine) or "
        "repro.engine.compat.simulate_demands (legacy arithmetic)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.engine.compat import simulate_demands

    return simulate_demands(demands, profile, concurrency)
