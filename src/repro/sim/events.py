"""Tiny deterministic event queue for asynchronous work.

Log-node buffer flushes complete in the background; the stores drain due
events before serving each request so that buffer occupancy and disk backlog
evolve consistently with simulated time.  Ordering ties are broken by a
monotonically increasing sequence number, keeping runs bit-reproducible.
"""

from __future__ import annotations

import heapq
from typing import Callable


class EventQueue:
    """Min-heap of ``(time, seq, callback)`` events."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[float], None]]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, when: float, callback: Callable[[float], None]) -> None:
        """Run ``callback(fire_time)`` once simulated time reaches ``when``."""
        heapq.heappush(self._heap, (when, self._seq, callback))
        self._seq += 1

    def next_time(self) -> float | None:
        """Time of the earliest pending event, or None."""
        return self._heap[0][0] if self._heap else None

    def run_until(self, now: float) -> int:
        """Fire every event with time <= ``now``; returns how many fired."""
        fired = 0
        while self._heap and self._heap[0][0] <= now:
            when, _, callback = heapq.heappop(self._heap)
            callback(when)
            fired += 1
        return fired

    def drain(self) -> int:
        """Fire everything regardless of time (end-of-run settling)."""
        fired = 0
        while self._heap:
            when, _, callback = heapq.heappop(self._heap)
            callback(when)
            fired += 1
        return fired

    def clear(self) -> None:
        self._heap.clear()
