"""Tiny deterministic event queue for asynchronous work.

Log-node buffer flushes complete in the background; the stores drain due
events before serving each request so that buffer occupancy and disk backlog
evolve consistently with simulated time.  Ordering ties are broken by a
monotonically increasing sequence number, keeping runs bit-reproducible.

Tie-breaking contract
---------------------
Events scheduled for the *same* simulated time normally fire in FIFO
(schedule) order.  That order is an implementation detail, not a semantic
guarantee: a handler whose observable result depends on it is order-sensitive
and will break the moment scheduling order shifts.  ``simsan`` (the runtime
determinism sanitizer, ``repro.devtools.simsan``) re-executes scenarios under
*permuted* tie-breaking to surface exactly that class of bug.  Three modes:

- ``"fifo"`` -- the default; ties fire in schedule order.
- ``"reversed"`` -- ties fire in reverse schedule order.
- ``"shuffle"`` -- ties fire in a deterministic pseudo-random order derived
  from a seed via an integer mix (no ``random`` module, no hash seeds).

The ambient mode is installed with :func:`tiebreak` (a context manager) and
captured by each ``EventQueue`` **at construction**, so a sanitizer run wraps
scenario construction + execution and every queue inside inherits the mode.
The default mode orders the heap exactly as the historical ``(time, seq)``
key did, byte-for-byte.

Re-entrancy contract
--------------------
``run_until(now)`` fires every event with ``time <= now`` **including events
scheduled by callbacks while the drain is in progress**: a callback may
schedule at ``t <= now`` and the new event fires in the same pass, in its
time/tie-break position among the remaining due events.  ``drain()`` extends
the same guarantee without a time bound.  Scheduling strictly in the past is
allowed by the queue itself (the event fires immediately on the next pass);
time never runs backwards because callers advance their clock to
``next_time()`` before each pass.
"""

from __future__ import annotations

import heapq
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator

_MASK64 = (1 << 64) - 1

#: valid tie-break modes, in report order
TIEBREAK_MODES = ("fifo", "reversed", "shuffle")


def _mix64(value: int, seed: int) -> int:
    """Deterministic splitmix64-style integer mix (hash-seed independent)."""
    x = (value * 0x9E3779B97F4A7C15 + seed * 0xBF58476D1CE4E5B9 + 1) & _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    return (x ^ (x >> 31)) & _MASK64


@dataclass(frozen=True)
class TieBreak:
    """How equal-timestamp events are ordered within one ``EventQueue``."""

    mode: str = "fifo"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mode not in TIEBREAK_MODES:
            raise ValueError(
                f"unknown tie-break mode {self.mode!r}; expected one of {TIEBREAK_MODES}"
            )

    def key(self, seq: int) -> int:
        """Heap ordering key for schedule index ``seq`` among equal times."""
        if self.mode == "fifo":
            return seq
        if self.mode == "reversed":
            return -seq
        return _mix64(seq, self.seed)


#: ambient tie-break captured by new queues; FIFO unless a sanitizer run
#: installs a permutation via :func:`tiebreak` / :func:`set_tiebreak`.
_AMBIENT = TieBreak()


def current_tiebreak() -> TieBreak:
    """The ambient tie-break new ``EventQueue`` instances will capture."""
    return _AMBIENT


def set_tiebreak(tb: TieBreak) -> TieBreak:
    """Install ``tb`` as the ambient tie-break; returns the previous one."""
    global _AMBIENT
    previous = _AMBIENT
    _AMBIENT = tb
    return previous


@contextmanager
def tiebreak(mode: str, seed: int = 0) -> Iterator[TieBreak]:
    """Scope an ambient tie-break: queues constructed inside inherit it."""
    tb = TieBreak(mode, seed)
    previous = set_tiebreak(tb)
    try:
        yield tb
    finally:
        set_tiebreak(previous)


class EventQueue:
    """Min-heap of ``(time, tie_key, seq, callback)`` events.

    ``tie_key`` equals ``seq`` in the default FIFO mode, so default ordering
    is identical to the historical ``(time, seq)`` heap; permuted modes only
    reorder events whose times are exactly equal.  ``seq`` stays in the entry
    as the final (unique) comparison key so callbacks are never compared.
    """

    def __init__(self, tie: TieBreak | None = None) -> None:
        self._heap: list[tuple[float, int, int, Callable[[float], None]]] = []
        self._seq = 0
        self._tie = tie if tie is not None else _AMBIENT

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def tie(self) -> TieBreak:
        return self._tie

    def schedule(self, when: float, callback: Callable[[float], None]) -> None:
        """Run ``callback(fire_time)`` once simulated time reaches ``when``."""
        heapq.heappush(self._heap, (when, self._tie.key(self._seq), self._seq, callback))
        self._seq += 1

    def next_time(self) -> float | None:
        """Time of the earliest pending event, or None."""
        return self._heap[0][0] if self._heap else None

    def run_until(self, now: float) -> int:
        """Fire every event with time <= ``now``; returns how many fired.

        Re-entrant: a callback may schedule new events, and any of them due
        at ``t <= now`` fire in this same pass (see module docstring).
        """
        fired = 0
        while self._heap and self._heap[0][0] <= now:
            when, _, _, callback = heapq.heappop(self._heap)
            callback(when)
            fired += 1
        return fired

    def drain(self) -> int:
        """Fire everything regardless of time (end-of-run settling)."""
        fired = 0
        while self._heap:
            when, _, _, callback = heapq.heappop(self._heap)
            callback(when)
            fired += 1
        return fired

    def clear(self) -> None:
        self._heap.clear()
