"""Calibrated hardware constants for the simulated EC2-like testbed.

All knobs live in one dataclass so that the mapping "paper testbed -> model"
is auditable in a single place.  Defaults approximate the paper's setup:
m5d.2xlarge instances (up-to-10 Gb/s NICs), DDR4 DRAM (~17 GB/s), a 1 TiB EBS
volume as the log disk, and ISA-L-class Reed-Solomon throughput.

Two behavioural constants matter more than the bandwidths and are taken from
how the prototype actually behaves (libmemcached proxy):

* reads issued by the proxy are **sequential** synchronous GETs
  (one round trip each), which is why eliminating parity reads pays off;
* writes/acks fan out **in parallel** and cost one round trip plus the
  serialized NIC transfer of all outgoing payloads.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class HardwareProfile:
    """One simulated machine/network profile; times in seconds, sizes in bytes."""

    #: one-way client<->proxy / proxy<->node propagation + stack latency
    rtt_s: float = 50e-6
    #: NIC bandwidth (m5d.2xlarge: "up to 10 Gb/s" burst, ~4 Gb/s sustained)
    net_bandwidth_Bps: float = 500e6
    #: per-RPC software overhead at the proxy (serialize + syscall + memcached op)
    rpc_overhead_s: float = 30e-6
    #: per-op service time at a DRAM node (hash lookup, slab copy)
    node_service_s: float = 10e-6
    #: DRAM copy bandwidth (DDR4)
    mem_bandwidth_Bps: float = 17e9
    #: RS encode/decode throughput (ISA-L class)
    encode_bandwidth_Bps: float = 5e9
    #: disk sequential bandwidth (EBS gp2-ish)
    disk_seq_bandwidth_Bps: float = 250e6
    #: random-IO positioning penalty per non-contiguous disk access (EBS
    #: effective random-read latency at moderate queue depth)
    disk_seek_s: float = 150e-6
    #: fixed submission overhead per disk IO, even sequential
    disk_io_overhead_s: float = 50e-6
    #: log-node DRAM buffer capacity for parity deltas
    log_buffer_bytes: int = 1 << 20
    #: flush when the buffer holds at least this many bytes
    log_flush_threshold_bytes: int = 256 << 10
    #: PLM's continuous staging extent: lazy-merge once it reaches this size
    log_staging_threshold_bytes: int = 1 << 20
    #: closed-loop client concurrency used for throughput estimates
    client_concurrency: int = 32
    #: max seconds of queued disk IO a log node tolerates before writes stall
    max_disk_backlog_s: float = 0.25
    #: buffer-occupancy fraction past which log nodes signal backpressure:
    #: the concurrent engine parks client writes there until a flush drains
    #: the buffer back below the mark
    log_high_water_fraction: float = 0.9
    #: reserved space per parity chunk for PLR-family layouts (logical bytes
    #: of deltas that fit next to the chunk; 0 = unlimited).  Deltas past the
    #: reserve spill into chained extents, each costing a repair-time seek --
    #: the sizing tradeoff CodFS studies.
    plr_reserve_bytes: int = 0
    #: multiplicative network-latency jitter (std-dev as a fraction of the
    #: nominal time; 0 = fully deterministic).  Models the paper's
    #: "fluctuating cloud network environment" variance, seeded for
    #: reproducibility.
    jitter_fraction: float = 0.0
    jitter_seed: int = 0

    def transfer_s(self, nbytes: int) -> float:
        """Pure wire time for ``nbytes`` on the NIC."""
        return nbytes / self.net_bandwidth_Bps

    def encode_s(self, nbytes: int) -> float:
        """CPU time to run ``nbytes`` through the RS kernel."""
        return nbytes / self.encode_bandwidth_Bps

    def memcpy_s(self, nbytes: int) -> float:
        """DRAM copy time."""
        return nbytes / self.mem_bandwidth_Bps


def default_profile() -> HardwareProfile:
    """Fresh default profile (avoid sharing mutable defaults across runs)."""
    return HardwareProfile()


def ec2_profile() -> HardwareProfile:
    """The paper's testbed: EBS-class disks behind the log nodes."""
    return HardwareProfile()


def ssd_log_profile() -> HardwareProfile:
    """§9 future work: SSD-backed log nodes (NVMe-class).

    Random-access penalty drops ~6x and bandwidth doubles vs EBS, which
    compresses the PL-vs-PLR repair gap and shrinks buffer-logging stalls."""
    return HardwareProfile(
        disk_seq_bandwidth_Bps=500e6,
        disk_seek_s=80e-6,
        disk_io_overhead_s=20e-6,
    )


def nvram_log_profile() -> HardwareProfile:
    """§9 future work: NVRAM-backed log nodes (byte-addressable persistence).

    Near-DRAM bandwidth and no positioning cost: the log-layout schemes
    converge, and parity logging costs almost nothing on the repair path."""
    return HardwareProfile(
        disk_seq_bandwidth_Bps=2e9,
        disk_seek_s=1e-6,
        disk_io_overhead_s=2e-6,
    )
