"""Busy-time resources and metric counters.

A :class:`Resource` models a serially-shared device (a NIC, a disk spindle,
the proxy CPU).  Work items reserve capacity FIFO-style: a reservation starts
at ``max(request_time, free_at)`` and the completion time is returned, so
callers can decide whether the work sits on a request's critical path
(synchronous) or merely occupies the device (asynchronous flush).

:class:`Counters` is a plain bag of named tallies used for bytes transferred,
RPCs issued, chunks read, etc.  Every number the benchmarks print is
ultimately traceable to one of these counters.
"""

from __future__ import annotations

from collections import defaultdict

from repro.devtools.simsan import runtime as _san

#: The declared counter registry.  Every *literal* counter name passed to
#: :meth:`Counters.add` anywhere in the tree must appear here (or match a
#: prefix below) -- enforced statically by simlint rule SIM004, which parses
#: this assignment out of the module source.  Keeping the names declared in
#: one place is what lets profile snapshots, the Prometheus exporter and the
#: regression gate agree on the metric namespace.
COUNTER_NAMES = frozenset(
    {
        "chunk_reads",
        "chunk_writes",
        "coalesce_flushes",
        "coalesced_updates",
        "corrupt_chunks_detected",
        # concurrent engine (repro.engine): job outcomes, accumulated wait
        # seconds by cause, and the flush/backpressure tallies
        "engine_admission_wait_s",
        "engine_backpressure_stalls",
        "engine_backpressure_wait_s",
        "engine_flush_bytes",
        "engine_flush_deferrals",
        "engine_flushes",
        "engine_jobs_completed",
        "engine_jobs_rejected",
        "engine_station_busy_s",
        "engine_station_wait_s",
        "gc_passes",
        "gc_stripes",
        "gc_stripes_collected",
        "heal_actions_deferred",
        "heal_actions_executed",
        "heal_escalations",
        "heal_incidents",
        "heal_incidents_suppressed",
        "heal_rollbacks",
        "log_appended_bytes",
        "log_buffer_appends",
        "log_buffer_drops",
        "log_buffer_merges",
        "log_flush_bytes",
        "log_flush_records",
        "log_lazy_merge_bytes",
        "log_lazy_merges",
        "log_node_recoveries",
        "log_random_writes",
        "log_scheme_switches",
        "log_sync_stalls",
        "log_region_reads",
        "log_region_spill_extents",
        "logged_parity_disk_reads",
        "logged_parity_reads",
        "multi_failure_repairs",
        "net_bytes",
        "net_messages",
        "net_rpcs",
        "node_repair_chunks",
        "node_repairs",
        "nodes_decommissioned",
        "nodes_joined",
        "op_degraded_read",
        "op_delete",
        "op_read",
        "op_update",
        "op_write",
        "parity_chunk_reads",
        "parity_deltas_sent",
        "parity_deltas_skipped",
        "proxy_failovers",
        # determinism sanitizer (repro.devtools.simsan): comparisons run,
        # fingerprint components that diverged, runtime checks that fired
        "sanitize_runs",
        "sanitize_hazards",
        "sanitize_violations",
        "stripes_sealed",
        # sim-time telemetry (repro.obs.timeseries)
        "telemetry_samples",
        "telemetry_slo_burns",
    }
)

#: Dynamic counter families (name built with an f-string at runtime): the
#: journal's per-kind event totals and the per-scheme flush tallies.
COUNTER_PREFIXES = ("events_", "log_flushes_")


class Resource:
    """A serially-shared device with FIFO reservations and busy accounting."""

    __slots__ = ("name", "free_at", "busy_s", "jobs")

    def __init__(self, name: str):
        self.name = name
        self.free_at = 0.0  # absolute sim time when the device frees up
        self.busy_s = 0.0  # total occupied seconds (for utilisation)
        self.jobs = 0

    def reserve(self, now: float, duration: float) -> float:
        """Queue ``duration`` seconds of work at time ``now``.

        Returns the absolute completion time.  The device is busy from
        ``max(now, free_at)`` to that completion time.
        """
        if duration < 0:
            raise ValueError(f"negative duration {duration}")
        start = now if now > self.free_at else self.free_at
        self.free_at = start + duration
        self.busy_s += duration
        self.jobs += 1
        return self.free_at

    def wait_s(self, now: float) -> float:
        """How long a job arriving at ``now`` waits before starting."""
        return max(0.0, self.free_at - now)

    def utilisation(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` seconds the device was occupied."""
        return 0.0 if elapsed <= 0 else min(1.0, self.busy_s / elapsed)

    def reset(self) -> None:
        self.free_at = 0.0
        self.busy_s = 0.0
        self.jobs = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Resource({self.name!r}, busy={self.busy_s:.3f}s, jobs={self.jobs})"


class Counters:
    """Named integer/float tallies with dict-like access."""

    def __init__(self) -> None:
        self._values: dict[str, float] = defaultdict(float)

    def add(self, name: str, amount: float = 1.0) -> None:
        self._values[name] += amount
        san = _san.ACTIVE
        if san is not None:
            san.on_counter(name, self._values[name])

    def get(self, name: str) -> float:
        return self._values.get(name, 0.0)

    def __getitem__(self, name: str) -> float:
        return self._values.get(name, 0.0)

    def as_dict(self) -> dict[str, float]:
        return dict(self._values)

    def reset(self) -> None:
        self._values.clear()

    def merge(self, other: "Counters") -> None:
        for name, value in other._values.items():
            self._values[name] += value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k}={v:g}" for k, v in sorted(self._values.items()))
        return f"Counters({inner})"
