"""Network cost model.

Latency of a message = one-way propagation (``rtt_s``) + wire time
(bytes / bandwidth).  The two proxy behaviours the paper's prototype exhibits
are modelled explicitly:

* :meth:`NetworkModel.sequential_gets` -- libmemcached-style synchronous GETs,
  one full round trip per chunk read.  This is why parity *reads* dominate
  in-place update latency and why eliminating them (parity logging) pays.
* :meth:`NetworkModel.parallel_puts` -- fan-out writes that share one round
  trip; the proxy NIC serialises the outgoing payload bytes.
"""

from __future__ import annotations

import numpy as np

from repro.sim.params import HardwareProfile
from repro.sim.resources import Counters


class LinkDownError(RuntimeError):
    """An exchange was attempted over a partitioned proxy<->node link."""


class NetworkModel:
    """Latency/byte accounting for proxy-centred message exchanges.

    Besides the cost primitives, the model carries per-node *degradation
    state* for fault injection: a latency multiplier (straggler/slow node)
    and a link-down flag (network partition between proxy and node).  The
    request paths consult this state to decide between the normal and the
    degraded path, and scale their per-node exchange times by the slowdown.
    """

    def __init__(self, profile: HardwareProfile, counters: Counters | None = None):
        self.profile = profile
        self.counters = counters if counters is not None else Counters()
        self._slowdowns: dict[str, float] = {}
        self._down_links: set[str] = set()
        self._jitter_rng = (
            np.random.default_rng(profile.jitter_seed)
            if profile.jitter_fraction > 0
            else None
        )

    # -- per-node degradation state ------------------------------------------

    def set_node_slowdown(self, node_id: str, factor: float) -> None:
        """Multiply all exchanges with ``node_id`` by ``factor`` (>= 1)."""
        if factor < 1.0:
            raise ValueError(f"slowdown factor must be >= 1, got {factor}")
        if factor == 1.0:
            self._slowdowns.pop(node_id, None)
        else:
            self._slowdowns[node_id] = factor

    def clear_node_slowdown(self, node_id: str) -> None:
        self._slowdowns.pop(node_id, None)

    def node_slowdown(self, node_id: str) -> float:
        return self._slowdowns.get(node_id, 1.0)

    def set_link_down(self, node_id: str) -> None:
        self._down_links.add(node_id)

    def restore_link(self, node_id: str) -> None:
        self._down_links.discard(node_id)

    def link_down(self, node_id: str) -> bool:
        return node_id in self._down_links

    def reachable(self, node_id: str) -> bool:
        return node_id not in self._down_links

    def rpc_to(self, node_id: str, request_bytes: int, response_bytes: int) -> float:
        """One request/response with ``node_id``, honouring degradation state."""
        if self.link_down(node_id):
            raise LinkDownError(f"link to {node_id} is partitioned")
        return self.rpc(request_bytes, response_bytes) * self.node_slowdown(node_id)

    def _jitter(self, t: float) -> float:
        """Multiplicative lognormal-ish jitter; identity when disabled."""
        if self._jitter_rng is None:
            return t
        factor = 1.0 + self.profile.jitter_fraction * float(
            self._jitter_rng.standard_normal()
        )
        return t * max(0.2, factor)

    # -- primitives ---------------------------------------------------------

    def one_way(self, nbytes: int) -> float:
        """Latency of a single one-way message carrying ``nbytes``."""
        p = self.profile
        self.counters.add("net_messages")
        self.counters.add("net_bytes", nbytes)
        return self._jitter(p.rtt_s / 2 + p.transfer_s(nbytes))

    def rpc(self, request_bytes: int, response_bytes: int) -> float:
        """One synchronous request/response exchange."""
        p = self.profile
        self.counters.add("net_rpcs")
        self.counters.add("net_messages", 2)
        self.counters.add("net_bytes", request_bytes + response_bytes)
        return self._jitter(
            p.rtt_s + p.transfer_s(request_bytes + response_bytes) + p.rpc_overhead_s
        )

    # -- proxy access patterns ----------------------------------------------

    def _check_targets(self, sizes: list[int], node_ids: list[str] | None) -> float:
        """Validate per-exchange targets; returns the critical-path slowdown.

        ``node_ids`` (when given) names the destination of each exchange in
        ``sizes``.  A partitioned link fails the whole batch -- the proxy
        cannot complete the exchange -- and the slowest named node bounds the
        batch's critical path (for serial GETs the per-node factor is applied
        per exchange by the caller instead).
        """
        if node_ids is None:
            return 1.0
        if len(node_ids) != len(sizes):
            raise ValueError(
                f"node_ids ({len(node_ids)}) must match sizes ({len(sizes)})"
            )
        for nid in node_ids:
            if self.link_down(nid):
                raise LinkDownError(f"link to {nid} is partitioned")
        return max((self.node_slowdown(nid) for nid in node_ids), default=1.0)

    def sequential_gets(
        self, sizes: list[int], node_ids: list[str] | None = None
    ) -> float:
        """Synchronous GETs issued one after another (libmemcached pattern).

        Each read pays a full round trip, the response wire time, the proxy's
        per-RPC overhead, and the remote node's service time.  With
        ``node_ids`` each GET honours its target's degradation state: a
        slowed node stretches its own round trip, a partitioned link raises
        :class:`LinkDownError`.
        """
        p = self.profile
        self._check_targets(sizes, node_ids)
        total = 0.0
        for i, nbytes in enumerate(sizes):
            factor = 1.0 if node_ids is None else self.node_slowdown(node_ids[i])
            total += (self.rpc(64, nbytes) + p.node_service_s) * factor
        self.counters.add("chunk_reads", len(sizes))
        return total

    def parallel_puts(
        self, sizes: list[int], node_ids: list[str] | None = None
    ) -> float:
        """Fan-out writes sharing one round trip.

        The proxy NIC serialises all outgoing payloads; remote service times
        overlap, so one node-service term remains on the critical path.  One
        per-RPC dispatch overhead is paid per destination (the proxy still
        serialises sends into the kernel).  With ``node_ids`` the slowest
        destination bounds the shared round trip (the fan-out completes when
        the last ACK arrives) and a partitioned destination fails the batch.
        """
        if not sizes:
            return 0.0
        p = self.profile
        factor = self._check_targets(sizes, node_ids)
        payload = sum(sizes)
        self.counters.add("net_rpcs", len(sizes))
        self.counters.add("net_messages", 2 * len(sizes))
        self.counters.add("net_bytes", payload + 64 * len(sizes))
        self.counters.add("chunk_writes", len(sizes))
        return self._jitter(
            p.rtt_s
            + p.transfer_s(payload)
            + p.rpc_overhead_s * len(sizes)
            + p.node_service_s
        ) * factor

    def parallel_gets(
        self, sizes: list[int], node_ids: list[str] | None = None
    ) -> float:
        """Fan-out reads sharing one round trip (used by node repair, which
        batch-fetches whole stripes rather than issuing per-object GETs).

        The *incoming* NIC serialises the response payloads.  Degradation
        state is honoured as in :meth:`parallel_puts`.
        """
        if not sizes:
            return 0.0
        p = self.profile
        factor = self._check_targets(sizes, node_ids)
        payload = sum(sizes)
        self.counters.add("net_rpcs", len(sizes))
        self.counters.add("net_messages", 2 * len(sizes))
        self.counters.add("net_bytes", payload + 64 * len(sizes))
        self.counters.add("chunk_reads", len(sizes))
        return self._jitter(
            p.rtt_s
            + p.transfer_s(payload)
            + p.rpc_overhead_s * len(sizes)
            + p.node_service_s
        ) * factor

    def client_hop(self, nbytes: int) -> float:
        """Client <-> proxy round trip carrying ``nbytes`` total.

        Pays the same per-RPC dispatch overhead (and counts toward
        ``net_rpcs``) as every other round trip -- the proxy parses and
        serialises the client's request like any other.
        """
        p = self.profile
        self.counters.add("net_rpcs")
        self.counters.add("net_messages", 2)
        self.counters.add("net_bytes", nbytes)
        return self._jitter(p.rtt_s + p.transfer_s(nbytes) + p.rpc_overhead_s)
