"""Command-line reproduction driver: ``python -m repro <command>``.

Commands mirror the paper's artifact-evaluation workflow:

* ``table2``                         -- the §3.1 MTTDL table
* ``observation1`` / ``observation2`` -- §2.3's motivating measurements
* ``exp1`` .. ``exp7``               -- the §6.3 experiments (scaled)
* ``tradeoff``                       -- Figure 16 points + Table 3 rankings
* ``run``                            -- one store under one workload/preset

Every command prints paper-style plain-text tables; scales are configurable
with ``--objects/--requests``.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import (
    fmt_scientific,
    format_table,
    observation2_table,
    stripe_update_histogram,
    table3,
)
from repro.baselines import make_store
from repro.bench import experiments as exps
from repro.bench.runner import run_requests
from repro.core.config import StoreConfig
from repro.reliability import table2
from repro.workloads import (
    WorkloadSpec,
    generate_preset_requests,
    generate_requests,
    load_keys,
    preset_spec,
)

DEFAULT_OBJECTS = 1500
DEFAULT_REQUESTS = 1500


def _parse_code(text: str) -> tuple[int, int]:
    try:
        k, r = (int(x) for x in text.split(","))
        return k, r
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"code must look like '6,3', got {text!r}"
        ) from None


def _positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {text}")
    return value


def _add_scale(p: argparse.ArgumentParser) -> None:
    p.add_argument("--objects", type=int, default=DEFAULT_OBJECTS)
    p.add_argument("--requests", type=int, default=DEFAULT_REQUESTS)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument(
        "--out",
        default=None,
        help="also save the raw rows to this .json or .csv file",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="LogECMem (SC'21) reproduction driver"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table2", help="MTTDL Markov model (Table 2)")

    p = sub.add_parser("observation1", help="updated stripes histogram (Figure 3)")
    p.add_argument("--code", type=_parse_code, default=(6, 3))
    p.add_argument("--ratio", default="95:5")
    _add_scale(p)

    sub.add_parser("observation2", help="memory overhead model (Table 1)")

    for name, help_text in [
        ("exp1", "basic I/O latency + throughput (Figure 10)"),
        ("exp2", "update latency (Figure 11)"),
        ("exp3", "memory overhead (Figure 12)"),
        ("exp4", "large-scale k (Figure 13)"),
        ("exp5", "disk IOs per log scheme (Figure 14 a-b)"),
        ("exp6", "multi-failure repair latency (Figure 14 c-d)"),
        ("exp7", "node repair throughput (Figure 15)"),
    ]:
        p = sub.add_parser(name, help=help_text)
        _add_scale(p)

    p = sub.add_parser("tradeoff", help="Figure 16 points + Table 3 rankings")
    _add_scale(p)

    p = sub.add_parser(
        "report",
        help="run every table/figure at one scale; write REPORT.txt + row files",
    )
    p.add_argument("--dir", default="results", help="output directory")
    _add_scale(p)

    p = sub.add_parser("run", help="run one store under one workload")
    p.add_argument("--store", default="logecmem",
                   choices=["vanilla", "replication", "ipmem", "fsmem", "logecmem"])
    p.add_argument("--code", type=_parse_code, default=(6, 3))
    p.add_argument("--ratio", default=None, help="read:update ratio, e.g. 80:20")
    p.add_argument("--preset", default=None, help="YCSB preset A-F")
    p.add_argument("--scheme", default="plm", choices=["pl", "plr", "plr-m", "plm"])
    p.add_argument("--value-size", type=int, default=4096)
    _add_scale(p)

    p = sub.add_parser(
        "profile",
        help="span-traced per-phase profile; writes a deterministic perf "
        "snapshot (BENCH_PR3.json)",
    )
    p.add_argument(
        "experiment",
        choices=["exp1", "exp2", "exp6", "exp7", "heal", "load", "speed", "all"],
        help="which profile slice to run ('all' = every slice)",
    )
    p.add_argument("--objects", type=int, default=600)
    p.add_argument("--requests", type=int, default=600)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument(
        "--out",
        default="BENCH_PR3.json",
        help="perf-snapshot path (default: BENCH_PR3.json)",
    )

    p = sub.add_parser(
        "load",
        help="concurrent-engine load curves: throughput vs latency across "
        "closed-loop client concurrencies (optionally under chaos)",
    )
    p.add_argument("--store", default="logecmem",
                   choices=["vanilla", "replication", "ipmem", "fsmem", "logecmem"])
    p.add_argument("--code", type=_parse_code, default=(6, 3))
    p.add_argument("--ratio", default="50:50", help="read:update ratio")
    p.add_argument("--scheme", default="plm", choices=["pl", "plr", "plr-m", "plm"])
    p.add_argument("--value-size", type=int, default=4096)
    p.add_argument("--concurrency", default="1,4,16,64",
                   help="comma-separated closed-loop client counts")
    p.add_argument("--think-us", type=float, default=0.0,
                   help="per-client think time between ops (microseconds)")
    p.add_argument("--window", type=int, default=0,
                   help="admission window (in-flight cap at the proxy; "
                   "0 = unbounded)")
    p.add_argument("--queue-cap", type=int, default=128,
                   help="admission overflow queue capacity (beyond it, "
                   "deterministic reject)")
    p.add_argument("--chaos", action="store_true",
                   help="also run each point under a seeded fault schedule "
                   "and attribute latency to fault windows")
    p.add_argument("--faults", type=_positive_float, default=4.0,
                   help="expected fault arrivals per point when --chaos is set")
    _add_scale(p)

    p = sub.add_parser(
        "watch",
        help="sim-time telemetry view: one engine point rendered as ASCII "
        "strip charts with SLO burn verdict and chaos windows marked",
    )
    p.add_argument("--store", default="logecmem",
                   choices=["vanilla", "replication", "ipmem", "fsmem", "logecmem"])
    p.add_argument("--code", type=_parse_code, default=(6, 3))
    p.add_argument("--ratio", default="50:50", help="read:update ratio")
    p.add_argument("--scheme", default="plm", choices=["pl", "plr", "plr-m", "plm"])
    p.add_argument("--value-size", type=int, default=4096)
    p.add_argument("--concurrency", type=int, default=16,
                   help="closed-loop client count for the watched point")
    p.add_argument("--think-us", type=float, default=0.0,
                   help="per-client think time between ops (microseconds)")
    p.add_argument("--window", type=int, default=0,
                   help="admission window (0 = unbounded)")
    p.add_argument("--queue-cap", type=int, default=128,
                   help="admission overflow queue capacity")
    p.add_argument("--chaos", action="store_true",
                   help="rerun under a seeded fault schedule; windows are "
                   "shaded under the charts")
    p.add_argument("--faults", type=_positive_float, default=2.0,
                   help="expected fault arrivals when --chaos is set")
    p.add_argument("--samples", type=int, default=48,
                   help="telemetry ticks across the run")
    p.add_argument("--slo-factor", type=_positive_float, default=1.5,
                   help="SLO p99 target as a multiple of the clean run's p99")
    p.add_argument("--width", type=int, default=60,
                   help="strip-chart width in columns")
    p.add_argument("--series", action="append", default=[], metavar="PREFIX",
                   help="chart only series matching these name prefixes "
                   "(repeatable)")
    p.add_argument("--json", action="store_true",
                   help="print the byte-stable watch document instead of charts")
    p.add_argument("--csv-out", default=None,
                   help="write the telemetry series as CSV to this path")
    p.add_argument("--jsonl-out", default=None,
                   help="write the telemetry series as JSONL to this path")
    p.add_argument("--prometheus", action="store_true",
                   help="also print timestamped Prometheus telemetry samples")
    _add_scale(p)

    p = sub.add_parser(
        "chaos", help="workload under a seeded fault schedule + invariant sweep"
    )
    p.add_argument("--store", default="logecmem",
                   choices=["vanilla", "replication", "ipmem", "fsmem", "logecmem"])
    p.add_argument("--code", type=_parse_code, default=(6, 3))
    p.add_argument("--ratio", default="50:50", help="read:update ratio")
    p.add_argument("--scheme", default="plm", choices=["pl", "plr", "plr-m", "plm"])
    p.add_argument("--value-size", type=int, default=4096)
    p.add_argument("--faults", type=_positive_float, default=4.0,
                   help="expected fault arrivals over the run (Poisson)")
    p.add_argument("--timeline", action="store_true",
                   help="also print the full fault/recovery timeline")
    _add_scale(p)

    p = sub.add_parser(
        "heal",
        help="closed-loop resilience experiment: the same seeded chaos run "
        "with and without the self-healing control plane",
    )
    p.add_argument("--store", default="logecmem",
                   choices=["vanilla", "replication", "ipmem", "fsmem", "logecmem"])
    p.add_argument("--code", type=_parse_code, default=(6, 3))
    p.add_argument("--ratio", default="50:50", help="read:update ratio")
    p.add_argument("--scheme", default="plm", choices=["pl", "plr", "plr-m", "plm"])
    p.add_argument("--value-size", type=int, default=4096)
    p.add_argument("--faults", type=_positive_float, default=6.0,
                   help="expected fault arrivals over the run (Poisson)")
    p.add_argument("--report", action="store_true",
                   help="print the full MTTR/availability table and every "
                   "executed action")
    _add_scale(p)

    p = sub.add_parser(
        "inspect",
        help="run a workload, then dump node/stripe/log state, the flight-"
        "recorder journal, and optional exporter output",
    )
    p.add_argument("--store", default="logecmem",
                   choices=["vanilla", "replication", "ipmem", "fsmem", "logecmem"])
    p.add_argument("--code", type=_parse_code, default=(6, 3))
    p.add_argument("--ratio", default="50:50", help="read:update ratio")
    p.add_argument("--scheme", default="plm", choices=["pl", "plr", "plr-m", "plm"])
    p.add_argument("--value-size", type=int, default=4096)
    p.add_argument("--chaos", action="store_true",
                   help="run under a seeded fault schedule (enables "
                   "fault-window attribution)")
    p.add_argument("--faults", type=_positive_float, default=4.0,
                   help="expected fault arrivals when --chaos is set")
    p.add_argument("--tail", type=int, default=20,
                   help="journal events to print (0 disables)")
    p.add_argument("--timeline", action="store_true",
                   help="render the ASCII event timeline")
    p.add_argument("--stripe", type=int, default=None,
                   help="dump one stripe's placement in detail")
    p.add_argument("--prometheus", action="store_true",
                   help="print the Prometheus text exposition")
    p.add_argument("--journal-out", default=None,
                   help="write the full journal as JSONL to this path")
    _add_scale(p)

    p = sub.add_parser(
        "lint",
        help="simlint: AST-based determinism & sim-hygiene analysis "
        "(SIM001-SIM009) over src/ and tests/",
    )
    p.add_argument("paths", nargs="*",
                   help="files/directories to lint (default: src tests)")
    p.add_argument("--format", choices=["text", "json"], default="text",
                   help="finding output format (both byte-deterministic)")
    p.add_argument("--root", default=None,
                   help="repo root for relative paths/registries (default: cwd)")
    p.add_argument("--baseline", default=None,
                   help="baseline JSON of grandfathered finding ids "
                   "(default: <root>/simlint-baseline.json)")
    p.add_argument("--update-baseline", action="store_true",
                   help="rewrite the baseline with every current finding id")
    p.add_argument("--allow-wallclock", action="append", default=[],
                   metavar="GLOB",
                   help="relpath glob where SIM001 wall-clock calls are "
                   "permitted (repeatable)")
    p.add_argument("--rules", action="store_true",
                   help="print the rule catalogue and exit")
    p.add_argument("--check-baseline", action="store_true",
                   help="also fail if any baseline finding id no longer "
                   "resolves against the tree (staleness guard)")

    p = sub.add_parser(
        "sanitize",
        help="simsan: re-run engine/chaos/heal slices under permuted "
        "event tie-breaking and diff state fingerprints",
    )
    p.add_argument("--slices", default="engine,chaos,heal",
                   help="comma-separated slices to run (engine, chaos, heal)")
    p.add_argument("--fixture", action="append", default=[], metavar="FILE",
                   help="also run a scenario() fixture file under the "
                   "sanitizer (repeatable)")
    p.add_argument("--fixtures-only", action="store_true",
                   help="skip the built-in slices (only run --fixture files)")
    p.add_argument("--json", action="store_true",
                   help="emit the full report as canonical JSON")
    p.add_argument("--shuffle-seed", type=int, default=None,
                   help="seed for the shuffled tie-break mode")
    p.add_argument("--objects", type=int, default=200)
    p.add_argument("--requests", type=int, default=200)
    p.add_argument("--seed", type=int, default=42)
    p.add_argument("--out", default=None,
                   help="also write the JSON report to this path")

    p = sub.add_parser(
        "compare",
        help="regression gate: diff two BENCH_*.json profile snapshots",
    )
    p.add_argument("baseline", help="committed baseline profile JSON")
    p.add_argument("candidate", help="freshly generated profile JSON")
    p.add_argument("--experiments", nargs="+", default=None,
                   help="restrict to these experiment slices")
    p.add_argument("--out", default=None,
                   help="also write the verdict JSON to this path")
    return parser


def _rows_to_table(rows: list[dict], columns: list[str], title: str) -> str:
    body = [[_fmt(row.get(c)) for c in columns] for row in rows]
    return format_table(columns, body, title=title)


def _fmt(value):
    if isinstance(value, float):
        return f"{value:.1f}"
    return value


def cmd_table2(args, out) -> None:
    grid = table2()
    rows = []
    for (k, r), cells in grid.items():
        rows.append([f"({k},{r})"] + [fmt_scientific(cells[b]) for b in (1, 10, 40, 100)])
    out(format_table(
        ["code", "B=1", "B=10", "B=40", "B=100"], rows,
        title="Table 2: MTTDL (years)",
    ))


def cmd_observation1(args, out) -> None:
    k, r = args.code
    spec = WorkloadSpec.read_update(
        args.ratio, n_objects=args.objects, n_requests=args.requests, seed=args.seed
    )
    hist = stripe_update_histogram(k, spec)
    out(format_table(
        ["# new chunks", "# updated stripes"],
        [[b, hist[b]] for b in sorted(hist)],
        title=f"Figure 3: ({k},{r}) code, r:u={args.ratio}",
    ))


def cmd_observation2(args, out) -> None:
    table = observation2_table()
    rows = [
        [ratio, "M", f"{cells['full-stripe']:.2f}M"] for ratio, cells in table.items()
    ]
    out(format_table(["r:u", "in-place", "full-stripe"], rows,
                     title="Table 1: memory overhead"))


def cmd_experiment(args, out) -> None:
    scale = dict(n_objects=args.objects, n_requests=args.requests, seed=args.seed)
    if args.command == "exp1":
        rows = exps.experiment1(**scale)
        cols = ["store", "value_size", "ratio", "read_latency_us",
                "write_latency_us", "degraded_latency_us", "throughput_kops"]
        title = "Experiment 1 (Figure 10)"
    elif args.command == "exp2":
        rows = exps.experiment2(**scale)
        cols = ["store", "k", "r", "ratio", "update_latency_us"]
        title = "Experiment 2 (Figure 11)"
    elif args.command == "exp3":
        rows = exps.experiment3(**scale)
        cols = ["store", "k", "r", "ratio", "memory_GiB"]
        title = "Experiment 3 (Figure 12)"
    elif args.command == "exp4":
        rows = exps.experiment4(**scale)
        cols = ["store", "k", "r", "ratio", "update_latency_us", "memory_GiB"]
        title = "Experiment 4 (Figure 13)"
    elif args.command == "exp5":
        rows = exps.experiment5(**scale)
        cols = ["scheme", "k", "r", "ratio", "disk_ios"]
        title = "Experiment 5 (Figure 14 a-b)"
    elif args.command == "exp6":
        rows = exps.experiment6(**scale)
        cols = ["scheme", "k", "r", "ratio", "degraded_latency_us"]
        title = "Experiment 6 (Figure 14 c-d)"
    else:
        rows = exps.experiment7(
            n_objects=args.objects, n_requests=args.requests, seed=args.seed
        )
        cols = ["k", "r", "log_assist", "repair_time_s", "throughput_GiB_per_min"]
        title = "Experiment 7 (Figure 15)"
    out(_rows_to_table(rows, cols, title))
    if getattr(args, "out", None):
        from repro.bench import results

        path = results.save(
            rows,
            args.out,
            meta={
                "command": args.command,
                "objects": args.objects,
                "requests": args.requests,
                "seed": args.seed,
            },
        )
        out(f"rows saved to {path}")


def cmd_tradeoff(args, out) -> None:
    rows = exps.update_memory_sweep(
        [(6, 3), (10, 4), (16, 4)],
        stores=("ipmem", "fsmem", "logecmem"),
        n_objects=args.objects,
        n_requests=args.requests,
        seed=args.seed,
    )
    out(_rows_to_table(
        rows, ["store", "k", "ratio", "update_latency_us", "memory_GiB"],
        "Figure 16 points",
    ))
    cells = table3(rows)
    out(format_table(
        ["k", "r:u", "IPMem", "FSMem", "LogECMem"],
        [[k, ratio, c["ipmem"], c["fsmem"], c["logecmem"]]
         for (k, ratio), c in sorted(cells.items())],
        title="Table 3 rankings",
    ))


def cmd_run(args, out) -> None:
    k, r = args.code
    config = StoreConfig(k=k, r=r, value_size=args.value_size, scheme=args.scheme)
    store = make_store(args.store, config)
    if args.preset:
        spec = preset_spec(
            args.preset, n_objects=args.objects, n_requests=args.requests,
            value_size=args.value_size, seed=args.seed,
        )
        requests = generate_preset_requests(args.preset, spec)
        label = f"YCSB-{args.preset.upper()}"
    else:
        ratio = args.ratio or "95:5"
        spec = WorkloadSpec.read_update(
            ratio, n_objects=args.objects, n_requests=args.requests,
            value_size=args.value_size, seed=args.seed,
        )
        requests = generate_requests(spec)
        label = f"r:u={ratio}"
    for key in load_keys(spec):
        res = store.write(key)
        store.cluster.clock.advance(res.latency_s)
    result = run_requests(store, requests, spec)
    rows = []
    for op in ("read", "update", "write", "delete"):
        if result.op_count(op):
            rows.append([
                op,
                result.op_count(op),
                f"{result.mean_latency_us(op):.1f}",
                f"{result.median_latency_us(op):.1f}",
                f"{result.p95_latency_us(op):.1f}",
            ])
    out(format_table(
        ["op", "count", "mean us", "median us", "p95 us"], rows,
        title=f"{args.store} ({k},{r}) under {label}",
    ))
    out(f"memory: {result.memory_bytes} B logical; "
        f"throughput ~{result.throughput_ops_s / 1e3:.1f} Kops/s; "
        f"log-disk IOs: {result.disk_io_count}")


def cmd_profile(args, out) -> None:
    from repro.bench.profile import PROFILE_EXPERIMENTS, run_profile, write_profile

    experiments = (
        list(PROFILE_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    )
    doc = run_profile(
        experiments,
        n_objects=args.objects,
        n_requests=args.requests,
        seed=args.seed,
    )
    for exp, stores in doc["experiments"].items():
        for store, snap in sorted(stores.items()):
            ops = snap.get("ops")
            if not ops:
                continue
            rows = [
                [op, s["count"], s["mean_us"], s["p50_us"], s["p99_us"]]
                for op, s in ops.items()
                if s.get("count")
            ]
            out(format_table(
                ["op", "count", "mean us", "p50 us", "p99 us"], rows,
                title=f"{exp} / {store}",
            ))
            for op, phases in snap.get("phases", {}).items():
                parts = "  ".join(f"{k}={v:.1f}us" for k, v in phases.items())
                out(f"  {op}: {parts}")
    path = write_profile(doc, args.out)
    out(f"perf snapshot written to {path}")


def cmd_load(args, out) -> None:
    """Engine load curves; byte-deterministic JSON with --out."""
    from repro.engine.load import load_json, render_load, run_load

    try:
        concurrencies = tuple(
            int(x) for x in str(args.concurrency).split(",") if x.strip()
        )
    except ValueError:
        raise SystemExit(
            f"--concurrency must be comma-separated ints, got {args.concurrency!r}"
        ) from None
    if not concurrencies or any(c < 1 for c in concurrencies):
        raise SystemExit(f"--concurrency needs values >= 1, got {args.concurrency!r}")
    k, r = args.code
    doc = run_load(
        store_name=args.store,
        scheme=args.scheme,
        k=k,
        r=r,
        value_size=args.value_size,
        ratio=args.ratio,
        n_objects=args.objects,
        n_requests=args.requests,
        seed=args.seed,
        concurrencies=concurrencies,
        think_s=args.think_us * 1e-6,
        window=args.window if args.window > 0 else None,
        queue_cap=args.queue_cap,
        expected_faults=args.faults if args.chaos else 0.0,
    )
    out(render_load(doc))
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(load_json(doc))
        out(f"load curve written to {args.out}")


def cmd_watch(args, out) -> None:
    """One engine point with sim-time telemetry as strip charts (or JSON)."""
    from repro.engine.load import render_watch, run_watch, watch_json
    from repro.obs.export import (
        timeseries_prometheus,
        write_timeseries_csv,
        write_timeseries_jsonl,
    )

    k, r = args.code
    doc = run_watch(
        store_name=args.store,
        scheme=args.scheme,
        k=k,
        r=r,
        value_size=args.value_size,
        ratio=args.ratio,
        n_objects=args.objects,
        n_requests=args.requests,
        seed=args.seed,
        concurrency=args.concurrency,
        think_s=args.think_us * 1e-6,
        window=args.window if args.window > 0 else None,
        queue_cap=args.queue_cap,
        expected_faults=args.faults if args.chaos else 0.0,
        samples=args.samples,
        slo_factor=args.slo_factor,
    )
    if args.json:
        out(watch_json(doc).rstrip("\n"))
    else:
        out(render_watch(doc, width=args.width, series=args.series or None))
    telemetry = doc["point"].get("telemetry", {})
    if args.prometheus:
        out(timeseries_prometheus(telemetry).rstrip("\n"))
    if args.csv_out:
        write_timeseries_csv(telemetry, args.csv_out)
        out(f"telemetry CSV written to {args.csv_out}")
    if args.jsonl_out:
        write_timeseries_jsonl(telemetry, args.jsonl_out)
        out(f"telemetry JSONL written to {args.jsonl_out}")
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(watch_json(doc))
        out(f"watch document written to {args.out}")


def cmd_chaos(args, out) -> None:
    from repro.chaos import run_chaos

    k, r = args.code
    config = StoreConfig(k=k, r=r, value_size=args.value_size, scheme=args.scheme)
    store = make_store(args.store, config)
    spec = WorkloadSpec.read_update(
        args.ratio, n_objects=args.objects, n_requests=args.requests,
        value_size=args.value_size, seed=args.seed,
    )
    report = run_chaos(store, spec, expected_faults=args.faults)
    out(report.summary())
    if args.timeline:
        out("timeline:")
        for t, text in report.timeline:
            out(f"  {t * 1e3:9.3f} ms  {text}")
    if args.out:
        import json
        from pathlib import Path

        Path(args.out).write_text(json.dumps(report.to_dict(), indent=2) + "\n")
        out(f"report saved to {args.out}")
    if report.violations:
        raise SystemExit(1)


def cmd_heal(args, out) -> None:
    """Run both arms of the resilience experiment; exit 1 unless the control
    plane strictly improves MTTR and availability with clean invariants."""
    from repro.heal import experiment_ok, run_heal_experiment

    k, r = args.code
    doc = run_heal_experiment(
        store_name=args.store,
        scheme=args.scheme,
        k=k,
        r=r,
        value_size=args.value_size,
        ratio=args.ratio,
        n_objects=args.objects,
        n_requests=args.requests,
        seed=args.seed,
        expected_faults=args.faults,
    )
    rows = []
    for arm in ("disabled", "enabled"):
        s = doc[arm]
        rows.append([
            arm,
            f"{s['mttr_ms']:.3f}",
            f"{s['availability_pct']:.4f}",
            s["violations"],
            s["ops_failed"],
            s["degraded_reads"],
        ])
    out(format_table(
        ["control plane", "MTTR ms", "avail %", "violations", "failed ops",
         "degraded"],
        rows,
        title=f"{args.store} ({k},{r}) closed-loop resilience, seed {args.seed}",
    ))
    heal = doc["heal"]
    out(f"plane: {len(heal['incidents'])} incidents "
        f"({heal['incidents_suppressed']} suppressed), "
        f"{heal['actions_executed']}/{heal['actions_proposed']} actions executed, "
        f"{heal['actions_deferred']} deferrals, {heal['rollbacks']} rollbacks, "
        f"{heal['escalations']} escalations")
    out(f"MTTR improvement: {doc['mttr_improvement_ms']:.3f} ms; "
        f"availability gain: {doc['availability_gain_pct']:.4f} pp")
    if args.report:
        out(format_table(
            ["seq", "action", "node", "incident", "status", "pre ok", "post ok"],
            [[e["action"]["seq"], e["action"]["kind"], e["action"]["node"],
              e["action"]["incident"], e["result"].get("status", "?"),
              not e["pre"]["violations"], not e["new_violations"]]
             for e in heal["executed"]],
            title="executed actions (verification-bracketed)",
        ))
        for inc in heal["incidents"]:
            state = "resolved" if inc["resolved"] else "OPEN"
            out(f"  incident {inc['seq']}: {inc['kind']} on {inc['node']} "
                f"@ {inc['detected_s'] * 1e3:.3f} ms [{state}]")
    if args.out:
        import json
        from pathlib import Path

        doc.pop("reports", None)
        Path(args.out).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        out(f"experiment saved to {args.out}")
    problems = experiment_ok(doc)
    for p in problems:
        out(f"FAIL: {p}")
    if problems:
        raise SystemExit(1)


def cmd_inspect(args, out) -> None:
    """State dump after a run: nodes, stripes, journal tail, exporter text."""
    from repro.analysis.timeline import event_timeline
    from repro.bench.runner import load_store
    from repro.obs.export import prometheus_text, write_journal

    k, r = args.code
    config = StoreConfig(k=k, r=r, value_size=args.value_size, scheme=args.scheme)
    store = make_store(args.store, config)
    spec = WorkloadSpec.read_update(
        args.ratio, n_objects=args.objects, n_requests=args.requests,
        value_size=args.value_size, seed=args.seed,
    )
    attribution: list[dict] = []
    if args.chaos:
        from repro.chaos import run_chaos

        report = run_chaos(store, spec, expected_faults=args.faults)
        attribution = report.fault_attribution
        out(report.summary())
    else:
        load_store(store, spec)
        run_requests(store, generate_requests(spec), spec, profile=True)
    cluster = store.cluster
    journal = cluster.journal
    now = cluster.clock.now

    rows = []
    for nid in cluster.dram_ids():
        node = cluster.dram_nodes[nid]
        rows.append([
            nid, "dram", "up" if node.alive else "DOWN",
            f"{node.logical_bytes} B",
            f"downtime {cluster.downtime_s(nid) * 1e3:.2f}ms",
        ])
    for nid in cluster.log_ids():
        node = cluster.log_nodes[nid]
        detail = (
            f"buffer {len(node.buffer)} rec/{node.buffer.logical_bytes} B, "
            f"{node.scheme.flushes} flushes"
        )
        staging = getattr(node.scheme, "staging_bytes", None)
        if staging is not None:
            detail += f", staging {staging} B"
        if node.needs_recovery:
            detail += ", STALE"
        rows.append([
            nid, f"log/{node.scheme.name}", "up" if node.alive else "DOWN",
            f"{node.scheme.disk_logical_bytes} B disk", detail,
        ])
    out(format_table(["node", "kind", "state", "bytes", "detail"], rows,
                     title=f"{store.name} cluster @ t={now * 1e3:.3f}ms"))

    index = getattr(store, "stripe_index", None)
    if index is not None and len(index):
        sids = list(index.stripe_ids())
        out(f"stripes: {len(sids)} sealed "
            f"(ids {min(sids)}..{max(sids)}), k={k} r={r}")
        if args.stripe is not None:
            rec = index.get(args.stripe)
            out(format_table(
                ["chunk", "node", "keys"],
                [[i, nid, len(rec.chunk_keys[i]) if i < k else "-"]
                 for i, nid in enumerate(rec.chunk_nodes)],
                title=f"stripe {args.stripe} placement",
            ))

    if args.tail > 0:
        total = sum(journal.counts.values())
        out(f"journal: {total} events emitted, {len(journal)} retained, "
            f"{journal.dropped} dropped (capacity {journal.capacity})")
        for ev in journal.tail(args.tail):
            attrs = ", ".join(f"{k2}={v}" for k2, v in sorted(ev.attrs.items()))
            out(f"  {ev.t_s * 1e3:10.3f} ms  {ev.kind:13s} {attrs}")

    if args.timeline:
        out(event_timeline(journal.to_dicts()))

    if attribution:
        out(format_table(
            ["fault", "node", "window ms", "ops", "mean us", "base us", "shift"],
            [[row["kind"], row["node"],
              f"{row['start_s'] * 1e3:.2f}.."
              + (f"{row['end_s'] * 1e3:.2f}" if row["end_s"] is not None else "inf"),
              row["ops_in_window"], row["mean_in_us"], row["mean_baseline_us"],
              f"{row['shift_pct']:+.1f}%"]
             for row in attribution],
            title="fault-window latency attribution",
        ))

    if args.prometheus:
        out(prometheus_text(store.metrics, journal=journal))

    if args.journal_out:
        write_journal(journal, args.journal_out)
        out(f"journal written to {args.journal_out}")


def cmd_lint(args, out) -> None:
    """Run the simlint determinism/hygiene pass; exit 1 on findings."""
    from pathlib import Path

    from repro.devtools.simlint import RULE_DOCS, run_lint

    if args.rules:
        for rule in sorted(RULE_DOCS):
            out(f"{rule}  {RULE_DOCS[rule]}")
        return
    root = Path(args.root) if args.root else Path.cwd()
    code = run_lint(
        paths=args.paths or None,
        root=root,
        fmt=args.format,
        baseline_path=Path(args.baseline) if args.baseline else None,
        update_baseline=args.update_baseline,
        check_baseline=args.check_baseline,
        wallclock_allow=tuple(args.allow_wallclock),
        out=out,
    )
    if code:
        raise SystemExit(code)


def cmd_sanitize(args, out) -> None:
    """Run the simsan determinism sanitizer; exit 1 on any flagged run."""
    import json
    from pathlib import Path

    from repro.devtools.simsan import runner

    slices = tuple(s for s in args.slices.split(",") if s)
    if args.fixtures_only:
        slices = ()
    kwargs = {}
    if args.shuffle_seed is not None:
        kwargs["shuffle_seed"] = args.shuffle_seed
    report = runner.run_sanitize(
        slices=slices,
        fixtures=tuple(args.fixture),
        n_objects=args.objects,
        n_requests=args.requests,
        seed=args.seed,
        **kwargs,
    )
    text = runner.render_json(report) if args.json else runner.render_text(report)
    out(text.rstrip("\n"))
    if args.out:
        Path(args.out).write_text(runner.render_json(report))
    if not report["ok"]:
        raise SystemExit(1)


def cmd_compare(args, out) -> None:
    import json
    from pathlib import Path

    from repro.bench.compare import compare_profiles, render_verdict

    baseline = json.loads(Path(args.baseline).read_text())
    candidate = json.loads(Path(args.candidate).read_text())
    verdict = compare_profiles(baseline, candidate, experiments=args.experiments)
    out(render_verdict(verdict))
    if args.out:
        Path(args.out).write_text(json.dumps(verdict, indent=2, sort_keys=True) + "\n")
    if verdict["status"] != "pass":
        raise SystemExit(1)


def cmd_report(args, out) -> None:
    """The artifact-evaluation flow in one command: every table and figure
    at the chosen scale, each section appended to REPORT.txt and its raw
    rows saved as JSON next to it."""
    from pathlib import Path

    outdir = Path(args.dir)
    outdir.mkdir(parents=True, exist_ok=True)
    sections: list[str] = []
    collect = sections.append

    def section(title: str, handler, ns) -> None:
        collect(f"\n{'=' * 70}\n{title}\n{'=' * 70}")
        handler(ns, collect)

    base = dict(objects=args.objects, requests=args.requests, seed=args.seed)
    ns = argparse.Namespace(**base, code=(6, 3), ratio="50:50", out=None)
    section("Table 2 (MTTDL)", cmd_table2, ns)
    section("Observation 1 (Figure 3)", cmd_observation1, ns)
    section("Observation 2 (Table 1)", cmd_observation2, ns)
    for name, title in [
        ("exp1", "Experiment 1 (Figure 10)"),
        ("exp2", "Experiment 2 (Figure 11)"),
        ("exp3", "Experiment 3 (Figure 12)"),
        ("exp4", "Experiment 4 (Figure 13)"),
        ("exp5", "Experiment 5 (Figure 14 a-b)"),
        ("exp6", "Experiment 6 (Figure 14 c-d)"),
        ("exp7", "Experiment 7 (Figure 15)"),
    ]:
        ns = argparse.Namespace(
            command=name, **base, out=str(outdir / f"{name}.json")
        )
        section(title, cmd_experiment, ns)
    ns = argparse.Namespace(**base, out=None)
    section("Figure 16 + Table 3", cmd_tradeoff, ns)

    report_path = outdir / "REPORT.txt"
    report_path.write_text("\n".join(str(s) for s in sections) + "\n")
    out(f"report written to {report_path} "
        f"({len(list(outdir.glob('*.json')))} row files alongside)")


def main(argv: list[str] | None = None, out=print) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "table2": cmd_table2,
        "observation1": cmd_observation1,
        "observation2": cmd_observation2,
        "tradeoff": cmd_tradeoff,
        "report": cmd_report,
        "run": cmd_run,
        "load": cmd_load,
        "watch": cmd_watch,
        "profile": cmd_profile,
        "chaos": cmd_chaos,
        "heal": cmd_heal,
        "inspect": cmd_inspect,
        "compare": cmd_compare,
        "lint": cmd_lint,
        "sanitize": cmd_sanitize,
    }
    handler = handlers.get(args.command, cmd_experiment)
    handler(args, out)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
