"""Erasure-coding substrate: GF(2^8) arithmetic and Reed-Solomon codes.

This package replaces the Intel ISA-L codec used by the paper's prototype.
It provides:

* :mod:`repro.ec.gf256` -- vectorised Galois-field arithmetic over GF(2^8),
* :mod:`repro.ec.matrix` -- matrix algebra (multiply, invert) over GF(2^8),
* :mod:`repro.ec.rs` -- systematic (k, r) Reed-Solomon codes whose first
  parity row is all-ones (a true XOR parity, as LogECMem requires),
* :mod:`repro.ec.delta` -- the delta algebra of the paper's Properties 1 and 2
  (parity deltas from data deltas, and merging of multiple deltas).
"""

from repro.ec.gf256 import (
    gf_add,
    gf_div,
    gf_inv,
    gf_mul,
    gf_mul_scalar,
    gf_pow,
)
from repro.ec.matrix import gf_matinv, gf_matmul, gf_matvec
from repro.ec.rs import RSCode
from repro.ec.delta import (
    DeltaRecord,
    ParityDelta,
    compute_delta,
    merge_parity_deltas,
    parity_delta_from_data_delta,
)

__all__ = [
    "DeltaRecord",
    "ParityDelta",
    "RSCode",
    "compute_delta",
    "gf_add",
    "gf_div",
    "gf_inv",
    "gf_matinv",
    "gf_matmul",
    "gf_matvec",
    "gf_mul",
    "gf_mul_scalar",
    "gf_pow",
    "merge_parity_deltas",
    "parity_delta_from_data_delta",
]
