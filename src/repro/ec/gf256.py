"""Vectorised arithmetic over the Galois field GF(2^8).

The field is built from the primitive polynomial ``x^8 + x^4 + x^3 + x^2 + 1``
(0x11D) with generator element 2, the construction used by most storage
codecs (Jerasure, ISA-L).  Addition and subtraction are XOR; multiplication
and division go through exp/log tables so that NumPy can evaluate them
element-wise over whole chunks without Python-level loops (see the
"vectorizing for loops" guidance for numerical Python).

All public functions accept scalars or ``uint8`` ndarrays and broadcast like
normal NumPy ufuncs.  Tables are module-level constants computed once at
import time.
"""

from __future__ import annotations

import numpy as np

#: Primitive polynomial for GF(2^8): x^8 + x^4 + x^3 + x^2 + 1.
PRIMITIVE_POLY = 0x11D

#: Field order.
ORDER = 256


def _build_tables() -> tuple[np.ndarray, np.ndarray]:
    """Build exp/log tables for GF(2^8).

    ``exp`` is doubled in length so that ``exp[log[a] + log[b]]`` never needs
    an explicit modulo 255 for products of two field elements.
    """
    exp = np.zeros(512, dtype=np.uint8)
    log = np.zeros(256, dtype=np.int32)
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x <<= 1
        if x & 0x100:
            x ^= PRIMITIVE_POLY
    exp[255:510] = exp[0:255]
    # log[0] is undefined; keep 0 and mask zero operands explicitly.
    return exp, log


GF_EXP, GF_LOG = _build_tables()

#: 256x256 full multiplication table; 64 KiB, lets gf_mul be a single gather.
GF_MUL_TABLE = np.zeros((256, 256), dtype=np.uint8)
_nz = np.arange(1, 256)
GF_MUL_TABLE[1:, 1:] = GF_EXP[(GF_LOG[_nz][:, None] + GF_LOG[_nz][None, :])]

#: Multiplicative inverses (inv[0] left as 0; dividing by zero raises).
GF_INV_TABLE = np.zeros(256, dtype=np.uint8)
GF_INV_TABLE[1:] = GF_EXP[255 - GF_LOG[_nz]]
del _nz


def gf_add(a, b):
    """Field addition (== subtraction): bytewise XOR."""
    return np.bitwise_xor(np.asarray(a, dtype=np.uint8), np.asarray(b, dtype=np.uint8))


def gf_mul(a, b):
    """Element-wise field multiplication via the 64 KiB product table."""
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    return GF_MUL_TABLE[a, b]


def gf_mul_scalar(c: int, buf: np.ndarray) -> np.ndarray:
    """Multiply a whole buffer by the scalar ``c``.

    This is the hot kernel of parity-delta generation: a single row gather
    ``GF_MUL_TABLE[c][buf]``, which NumPy executes as one fancy-indexing pass.
    """
    if not 0 <= c < 256:
        raise ValueError(f"scalar {c!r} outside GF(256)")
    buf = np.asarray(buf, dtype=np.uint8)
    if c == 0:
        return np.zeros_like(buf)
    if c == 1:
        return buf.copy()
    return GF_MUL_TABLE[c][buf]


def gf_pow(a: int, n: int) -> int:
    """``a`` raised to the ``n``-th power in the field."""
    if not 0 <= a < 256:
        raise ValueError(f"base {a!r} outside GF(256)")
    if a == 0:
        if n == 0:
            return 1
        if n < 0:
            raise ZeroDivisionError("0 has no negative powers in GF(256)")
        return 0
    return int(GF_EXP[(int(GF_LOG[a]) * n) % 255])


def gf_inv(a: int) -> int:
    """Multiplicative inverse of ``a``; raises on 0."""
    if a == 0:
        raise ZeroDivisionError("0 has no inverse in GF(256)")
    return int(GF_INV_TABLE[a])


def gf_div(a, b):
    """Element-wise field division ``a / b``; raises if any ``b`` is 0."""
    b = np.asarray(b, dtype=np.uint8)
    if np.any(b == 0):
        raise ZeroDivisionError("division by zero in GF(256)")
    return gf_mul(a, GF_INV_TABLE[b])
