"""Systematic Vandermonde Reed-Solomon construction (cross-validation).

The main codec (:mod:`repro.ec.rs`) uses a column-scaled Cauchy parity
matrix.  This module builds the other classic systematic construction --
start from a (k+r) x k Vandermonde matrix over distinct evaluation points and
Gauss-eliminate the top into the identity -- so tests can cross-validate the
two: both must be MDS, and decoding data encoded by one construction with the
other's machinery must round-trip (the *data* is construction-independent
even though parity bytes differ).

The classic construction does not naturally yield an all-ones first parity
row, which is exactly why the main codec exists; :func:`xor_row_gap`
quantifies that difference for the documentation tests.
"""

from __future__ import annotations

import numpy as np

from repro.ec.gf256 import gf_pow
from repro.ec.matrix import gf_matinv, gf_matmul


def vandermonde(rows: int, cols: int) -> np.ndarray:
    """V[i, j] = alpha_i ** j with alpha_i = i (distinct points 0..rows-1)."""
    if rows > 256:
        raise ValueError(f"at most 256 distinct points in GF(2^8), got {rows}")
    out = np.zeros((rows, cols), dtype=np.uint8)
    for i in range(rows):
        for j in range(cols):
            out[i, j] = gf_pow(i, j) if i else (1 if j == 0 else 0)
    return out


def systematic_generator(k: int, r: int) -> np.ndarray:
    """(k+r) x k systematic generator: top k rows are the identity.

    ``G = V @ inv(V[:k])``; every k x k submatrix of V is nonsingular
    (distinct evaluation points), and right-multiplying by a fixed invertible
    matrix preserves that, so the result is MDS.
    """
    if k < 1 or r < 0 or k + r > 256:
        raise ValueError(f"invalid (k={k}, r={r})")
    v = vandermonde(k + r, k)
    top_inv = gf_matinv(v[:k])
    return gf_matmul(v, top_inv)


class VandermondeRS:
    """Minimal encoder/decoder over the systematic Vandermonde generator."""

    def __init__(self, k: int, r: int):
        self.k = k
        self.r = r
        self.n = k + r
        self.generator = systematic_generator(k, r)
        self.parity_matrix = self.generator[k:]

    def encode(self, data: np.ndarray) -> np.ndarray:
        data = np.asarray(data, dtype=np.uint8)
        if data.ndim != 2 or data.shape[0] != self.k:
            raise ValueError(f"expected (k={self.k}, L) data, got {data.shape}")
        return gf_matmul(self.parity_matrix, data)

    def decode(
        self, available: dict[int, np.ndarray], wanted: list[int]
    ) -> dict[int, np.ndarray]:
        if len(available) < self.k:
            raise ValueError(f"need k={self.k} chunks, got {len(available)}")
        rows = sorted(available)[: self.k]
        inv = gf_matinv(self.generator[rows, :])
        stacked = np.stack([np.asarray(available[i], dtype=np.uint8) for i in rows])
        data = gf_matmul(inv, stacked)
        out: dict[int, np.ndarray] = {}
        for w in wanted:
            if w < self.k:
                out[w] = data[w].copy()
            else:
                out[w] = gf_matmul(self.parity_matrix[[w - self.k], :], data)[0]
        return out


def xor_row_gap(k: int, r: int) -> int:
    """How many entries of the first Vandermonde parity row differ from 1.

    Nonzero for every practical (k, r): the classic construction has no XOR
    parity, which is the concrete reason :mod:`repro.ec.rs` uses the
    column-scaled Cauchy construction instead."""
    pm = systematic_generator(k, r)[k:]
    return int(np.count_nonzero(pm[0] != 1))
