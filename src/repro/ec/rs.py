"""Systematic (k, r) Reed-Solomon codes with a true XOR first parity.

LogECMem needs the first parity chunk of every stripe to be the plain XOR of
the data chunks (it lives in DRAM and drives single-failure repair), while the
code as a whole must stay MDS so that *any* k of the k+r chunks rebuild the
stripe.  We get both from a column-scaled Cauchy construction:

* start from the Cauchy matrix ``C[j, i] = 1 / (x_j + y_i)`` with disjoint
  evaluation points ``{x_j}``, ``{y_i}`` (all arithmetic in GF(2^8)); every
  square submatrix of a Cauchy matrix is nonsingular;
* scale column ``i`` by ``(x_0 + y_i)`` so row 0 becomes all ones.  Column
  scaling multiplies each submatrix determinant by a product of nonzero
  scalars, so the submatrix-nonsingularity property survives and the stacked
  generator ``[I; P]`` is MDS for any k + r <= 256.

The per-chunk *parity coefficients* ``P[j, i]`` are exactly the paper's
``a_i^{j-1}`` role: the parity delta of parity ``j`` for an update of data
chunk ``i`` is ``P[j, i] * delta`` (Property 1 of §2.1).
"""

from __future__ import annotations

import numpy as np

from repro.ec.gf256 import GF_INV_TABLE, gf_mul_scalar
from repro.ec.matrix import SingularMatrixError, gf_matinv, gf_matmul


def build_parity_matrix(k: int, r: int) -> np.ndarray:
    """Return the r x k parity matrix with an all-ones first row (MDS)."""
    if k < 1 or r < 1:
        raise ValueError(f"need k >= 1 and r >= 1, got ({k}, {r})")
    if k + r > 256:
        raise ValueError(f"(k={k}, r={r}) exceeds GF(2^8) capacity (k + r <= 256)")
    x = np.arange(r, dtype=np.uint8)          # parity evaluation points
    y = np.arange(r, r + k, dtype=np.uint8)   # data evaluation points
    denom = x[:, None] ^ y[None, :]           # x_j + y_i, never zero (disjoint)
    cauchy = GF_INV_TABLE[denom]
    # scale column i by (x_0 + y_i) so row 0 becomes all ones
    scale = x[0] ^ y
    from repro.ec.gf256 import GF_MUL_TABLE

    return GF_MUL_TABLE[cauchy, scale[None, :]]


class RSCode:
    """A systematic (k, r) Reed-Solomon code over GF(2^8).

    Chunk indexing convention (used by every caller in this repo):

    * global indices ``0 .. k-1`` are data chunks,
    * global index ``k`` is the XOR parity (parity row 0),
    * global indices ``k+1 .. k+r-1`` are the logged parities.
    """

    def __init__(self, k: int, r: int):
        self.k = int(k)
        self.r = int(r)
        self.n = self.k + self.r
        self.parity_matrix = build_parity_matrix(self.k, self.r)
        self.generator = np.concatenate(
            [np.eye(self.k, dtype=np.uint8), self.parity_matrix], axis=0
        )
        self._decode_cache: dict[tuple[int, ...], np.ndarray] = {}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RSCode(k={self.k}, r={self.r})"

    # ------------------------------------------------------------------ encode

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Encode ``k`` stacked data chunks (k, L) into ``r`` parities (r, L)."""
        data = np.asarray(data, dtype=np.uint8)
        if data.ndim != 2 or data.shape[0] != self.k:
            raise ValueError(f"expected (k={self.k}, L) data, got {data.shape}")
        return gf_matmul(self.parity_matrix, data)

    def xor_parity(self, data: np.ndarray) -> np.ndarray:
        """Fast path for parity row 0: plain XOR-reduce of the data chunks."""
        data = np.asarray(data, dtype=np.uint8)
        return np.bitwise_xor.reduce(data, axis=0)

    def coefficient(self, parity_index: int, data_index: int) -> int:
        """Encoding coefficient of data chunk ``data_index`` in parity ``parity_index``."""
        if not 0 <= parity_index < self.r:
            raise IndexError(f"parity index {parity_index} outside [0, {self.r})")
        if not 0 <= data_index < self.k:
            raise IndexError(f"data index {data_index} outside [0, {self.k})")
        return int(self.parity_matrix[parity_index, data_index])

    def parity_delta(self, parity_index: int, data_index: int, delta: np.ndarray) -> np.ndarray:
        """Property 1: parity delta of ``parity_index`` for a data delta."""
        return gf_mul_scalar(self.coefficient(parity_index, data_index), delta)

    # ------------------------------------------------------------------ decode

    def _decode_matrix(self, rows: tuple[int, ...]) -> np.ndarray:
        """Inverse of the k generator rows selected by the surviving chunks."""
        inv = self._decode_cache.get(rows)
        if inv is None:
            sub = self.generator[list(rows), :]
            try:
                inv = gf_matinv(sub)
            except SingularMatrixError as exc:  # pragma: no cover - MDS guards this
                raise SingularMatrixError(
                    f"survivor set {rows} not decodable for (k={self.k}, r={self.r})"
                ) from exc
            self._decode_cache[rows] = inv
        return inv

    def decode(
        self, available: dict[int, np.ndarray], wanted: list[int] | None = None
    ) -> dict[int, np.ndarray]:
        """Rebuild chunks from any ``k`` survivors.

        ``available`` maps global chunk index -> byte buffer.  ``wanted`` is a
        list of global indices to reconstruct (default: every missing index).
        Returns a dict of reconstructed buffers.
        """
        if len(available) < self.k:
            raise ValueError(
                f"need at least k={self.k} chunks to decode, got {len(available)}"
            )
        if wanted is None:
            wanted = [i for i in range(self.n) if i not in available]
        rows = tuple(sorted(available))[: self.k]
        inv = self._decode_matrix(rows)
        stacked = np.stack([np.asarray(available[i], dtype=np.uint8) for i in rows])
        data = gf_matmul(inv, stacked)  # (k, L) original data chunks
        out: dict[int, np.ndarray] = {}
        parity_rows = [w - self.k for w in wanted if w >= self.k]
        if parity_rows:
            parities = gf_matmul(self.parity_matrix[parity_rows, :], data)
        pi = 0
        for w in wanted:
            if w < self.k:
                out[w] = data[w].copy()
            else:
                out[w] = parities[pi]
                pi += 1
        return out

    def repair_with_xor(
        self, data_index: int, survivors: dict[int, np.ndarray]
    ) -> np.ndarray:
        """Single-failure fast path: rebuild one data chunk from the other
        ``k-1`` data chunks plus the XOR parity (all DRAM-resident in
        HybridPL).  This avoids the general decode-matrix machinery."""
        needed = [i for i in range(self.k) if i != data_index] + [self.k]
        missing = [i for i in needed if i not in survivors]
        if missing:
            raise KeyError(f"XOR repair of chunk {data_index} missing chunks {missing}")
        acc = np.asarray(survivors[self.k], dtype=np.uint8).copy()
        for i in range(self.k):
            if i != data_index:
                acc ^= np.asarray(survivors[i], dtype=np.uint8)
        return acc
