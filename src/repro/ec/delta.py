"""Delta algebra: Properties 1 and 2 of the paper (§2.1).

* ``delta``          -- change between old and new data chunk bytes (XOR).
* ``parity delta``   -- coefficient * delta, per parity chunk (Property 1).
* ``merging``        -- multiple parity deltas of the same parity chunk
  collapse into one by XOR over their byte ranges (Property 2); this is what
  merge-based buffer logging and PLM exploit.

A :class:`DeltaRecord` is a *data* delta as shipped by the proxy to log nodes
(log nodes multiply by their own coefficient locally); a :class:`ParityDelta`
is the materialised per-parity record that actually lands in a log.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ec.gf256 import gf_mul_scalar


def compute_delta(old: np.ndarray, new: np.ndarray) -> np.ndarray:
    """The paper's ``delta = new - old`` (subtraction is XOR in GF(2^8))."""
    old = np.asarray(old, dtype=np.uint8)
    new = np.asarray(new, dtype=np.uint8)
    if old.shape != new.shape:
        raise ValueError(f"delta shapes differ: {old.shape} vs {new.shape}")
    return old ^ new


def parity_delta_from_data_delta(coefficient: int, delta: np.ndarray) -> np.ndarray:
    """Property 1: the parity delta is the data delta scaled by the chunk's
    encoding coefficient."""
    return gf_mul_scalar(coefficient, delta)


@dataclass
class DeltaRecord:
    """A data delta in flight from the proxy to log nodes.

    ``offset``/``length`` locate the updated byte range inside the data chunk
    (objects are packed into chunks, so updates touch sub-ranges).
    ``data_index`` selects the encoding coefficient at the receiving log node.
    """

    stripe_id: int
    data_index: int
    offset: int
    payload: np.ndarray
    seq: int = 0

    def __post_init__(self) -> None:
        self.payload = np.asarray(self.payload, dtype=np.uint8)
        if self.offset < 0:
            raise ValueError(f"negative offset {self.offset}")

    @property
    def length(self) -> int:
        return int(self.payload.size)

    @property
    def end(self) -> int:
        return self.offset + self.length


@dataclass
class ParityDelta:
    """A materialised parity delta for one parity chunk of one stripe."""

    stripe_id: int
    parity_index: int
    offset: int
    payload: np.ndarray
    seq: int = 0
    #: number of source deltas folded into this record (1 = unmerged)
    merged_count: int = field(default=1)

    def __post_init__(self) -> None:
        self.payload = np.asarray(self.payload, dtype=np.uint8)
        if self.offset < 0:
            raise ValueError(f"negative offset {self.offset}")

    @property
    def length(self) -> int:
        return int(self.payload.size)

    @property
    def end(self) -> int:
        return self.offset + self.length

    @property
    def nbytes(self) -> int:
        return self.length

    @classmethod
    def from_data_delta(
        cls, record: DeltaRecord, parity_index: int, coefficient: int
    ) -> "ParityDelta":
        """Apply Property 1 at the log node: scale the data delta."""
        return cls(
            stripe_id=record.stripe_id,
            parity_index=parity_index,
            offset=record.offset,
            payload=parity_delta_from_data_delta(coefficient, record.payload),
            seq=record.seq,
        )


def merge_parity_deltas(deltas: list[ParityDelta]) -> ParityDelta:
    """Property 2: collapse parity deltas of one (stripe, parity) into one.

    The merged record spans the union byte range; bytes not covered by any
    source delta stay zero, which is the XOR identity, so applying the merged
    record is equivalent to applying every source record in order.
    """
    if not deltas:
        raise ValueError("cannot merge an empty delta list")
    sid = deltas[0].stripe_id
    pidx = deltas[0].parity_index
    for d in deltas[1:]:
        if d.stripe_id != sid or d.parity_index != pidx:
            raise ValueError(
                "can only merge deltas of the same stripe and parity chunk: "
                f"({sid}, {pidx}) vs ({d.stripe_id}, {d.parity_index})"
            )
    lo = min(d.offset for d in deltas)
    hi = max(d.end for d in deltas)
    merged = np.zeros(hi - lo, dtype=np.uint8)
    total = 0
    for d in deltas:
        merged[d.offset - lo : d.end - lo] ^= d.payload
        total += d.merged_count
    return ParityDelta(
        stripe_id=sid,
        parity_index=pidx,
        offset=lo,
        payload=merged,
        seq=max(d.seq for d in deltas),
        merged_count=total,
    )


def apply_parity_delta(parity_chunk: np.ndarray, delta: ParityDelta) -> None:
    """Fold a parity delta into a parity chunk buffer, in place.

    In-place XOR keeps the hot repair path allocation-free (in-place NumPy
    operations are markedly cheaper than ``a = a ^ b``).
    """
    if delta.end > parity_chunk.size:
        raise ValueError(
            f"delta [{delta.offset}, {delta.end}) exceeds chunk size {parity_chunk.size}"
        )
    parity_chunk[delta.offset : delta.end] ^= delta.payload
