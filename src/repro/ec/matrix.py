"""Matrix algebra over GF(2^8).

Provides the matrix product used for encoding, and Gauss-Jordan inversion
used when decoding a stripe from an arbitrary surviving subset of chunks.
Matrices are ``uint8`` ndarrays; there is no overflow because every product
goes through the field tables.
"""

from __future__ import annotations

import numpy as np

from repro.ec.gf256 import GF_INV_TABLE, GF_MUL_TABLE


class SingularMatrixError(ValueError):
    """Raised when a decode matrix is not invertible over GF(2^8)."""


def gf_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product ``a @ b`` over GF(2^8).

    ``a`` is (m, n), ``b`` is (n, p).  Implemented as a sum (XOR-reduce) of
    table-gathered outer slices, so the inner loop runs in NumPy, not Python.
    """
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"incompatible shapes {a.shape} x {b.shape}")
    m, n = a.shape
    p = b.shape[1]
    out = np.zeros((m, p), dtype=np.uint8)
    for i in range(n):
        # outer product of column a[:, i] with row b[i, :]
        out ^= GF_MUL_TABLE[a[:, i][:, None], b[i, :][None, :]]
    return out


def gf_matvec(mat: np.ndarray, vecs: np.ndarray) -> np.ndarray:
    """Apply ``mat`` (m, n) to ``n`` stacked byte buffers ``vecs`` (n, L).

    This is chunk encoding: each output row ``i`` is
    ``XOR_j mat[i, j] * vecs[j]``.  Identical to :func:`gf_matmul` but kept
    separate (and named for its role) because it is the per-request hot path.
    """
    return gf_matmul(mat, vecs)


def gf_matinv(mat: np.ndarray) -> np.ndarray:
    """Invert a square matrix over GF(2^8) by Gauss-Jordan elimination.

    Raises :class:`SingularMatrixError` if the matrix has no inverse.
    """
    mat = np.asarray(mat, dtype=np.uint8)
    if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
        raise ValueError(f"matrix must be square, got {mat.shape}")
    n = mat.shape[0]
    aug = np.concatenate([mat.copy(), np.eye(n, dtype=np.uint8)], axis=1)
    for col in range(n):
        # Find a pivot (any nonzero entry; no magnitude concerns in GF).
        pivot_rows = np.nonzero(aug[col:, col])[0]
        if pivot_rows.size == 0:
            raise SingularMatrixError("matrix is singular over GF(2^8)")
        pivot = col + int(pivot_rows[0])
        if pivot != col:
            aug[[col, pivot]] = aug[[pivot, col]]
        inv_p = GF_INV_TABLE[aug[col, col]]
        aug[col] = GF_MUL_TABLE[inv_p][aug[col]]
        # Eliminate the column from every other row in one vectorised pass.
        factors = aug[:, col].copy()
        factors[col] = 0
        aug ^= GF_MUL_TABLE[factors[:, None], aug[col][None, :]]
    return aug[:, n:].copy()
