"""End-to-end chaos runs: workload + fault schedule + repair + invariants.

:func:`run_chaos` drives any of the five stores through a YCSB-style
workload while a seeded :class:`~repro.chaos.schedule.FaultSchedule` fires
against the cluster.  Two deterministic event queues carry the asynchrony:

* ``faults_q``   -- the schedule itself, pre-loaded;
* ``recovery_q`` -- endings the faults spawn: blip restores, partition
  heals, straggler recoveries, node repairs (``core/repair.py``) and
  log-node crash recoveries (``core/recovery.py``).

Requests go through a :class:`~repro.chaos.policy.RobustProxy`; its backoff
waits advance the simulated clock and pump both queues, so transient faults
heal *while* the proxy is retrying -- the behaviour the paper's availability
argument depends on.  The run ends with the invariant sweep
(:mod:`repro.chaos.invariants`) and emits a :class:`ChaosReport` whose
``fingerprint()`` is bit-stable for a given seed: same seed, same report.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.analysis.timeline import attribute_latency, fault_windows, mttr_s
from repro.bench.runner import load_store
from repro.chaos.faults import FaultInjector
from repro.chaos.invariants import InvariantReport, check_store
from repro.chaos.policy import OpOutcome, RetryPolicy, RobustProxy
from repro.chaos.schedule import FaultEvent, FaultKind, FaultSchedule
from repro.core.interface import DataLossError, KVStore
from repro.sim.closedloop import OpDemand
from repro.sim.events import EventQueue
from repro.workloads.ycsb import WorkloadSpec, generate_requests


@dataclass
class ChaosReport:
    """Everything one seeded chaos run observed."""

    store: str
    scheme: str
    seed: int
    n_objects: int
    n_requests: int
    # ops
    ops_attempted: int = 0
    ops_acked: int = 0
    ops_failed: int = 0
    degraded_reads: int = 0
    retries: int = 0
    timeouts: int = 0
    # faults
    faults_scheduled: int = 0
    faults_fired: dict[str, int] = field(default_factory=dict)
    faults_unfired: int = 0
    # recovery actions
    repairs: list[dict] = field(default_factory=list)
    recoveries: list[dict] = field(default_factory=list)
    data_loss_events: int = 0
    # availability
    downtime_s: dict[str, float] = field(default_factory=dict)
    availability: float = 1.0
    timeline: list[tuple[float, str]] = field(default_factory=list)
    # invariants + closed loop
    invariants: dict = field(default_factory=dict)
    makespan_s: float = 0.0
    throughput_ops_s: float = 0.0
    mean_response_s: float = 0.0
    #: per-op latency quantiles + phase means, captured BEFORE the invariant
    #: sweep (the checkers reuse real read machinery and perturb counters)
    metrics: dict = field(default_factory=dict)
    #: flight-recorder journal (dict form), captured at the same point as
    #: ``metrics`` and for the same reason
    events: list = field(default_factory=list)
    #: per-fault-window latency attribution (analysis/timeline.py)
    fault_attribution: list = field(default_factory=list)
    #: mean time to repair across fault windows, open windows clamped to the
    #: run end -- the closed-loop resilience headline number
    mttr_s: float = 0.0
    #: control-plane summary (repro.heal), empty when no plane participated
    heal: dict = field(default_factory=dict)
    #: telemetry series dump (repro.obs.timeseries), empty when no sampler
    #: rode along -- and then absent from ``to_dict`` so default-run
    #: fingerprints are unchanged
    telemetry: dict = field(default_factory=dict)

    @property
    def violations(self) -> int:
        return len(self.invariants.get("violations", ()))

    def to_dict(self) -> dict:
        doc = {
            "store": self.store,
            "scheme": self.scheme,
            "seed": self.seed,
            "n_objects": self.n_objects,
            "n_requests": self.n_requests,
            "ops_attempted": self.ops_attempted,
            "ops_acked": self.ops_acked,
            "ops_failed": self.ops_failed,
            "degraded_reads": self.degraded_reads,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "faults_scheduled": self.faults_scheduled,
            "faults_fired": dict(sorted(self.faults_fired.items())),
            "faults_unfired": self.faults_unfired,
            "repairs": self.repairs,
            "recoveries": self.recoveries,
            "data_loss_events": self.data_loss_events,
            "downtime_s": dict(sorted(self.downtime_s.items())),
            "availability": self.availability,
            "timeline": [[t, text] for t, text in self.timeline],
            "invariants": self.invariants,
            "makespan_s": self.makespan_s,
            "throughput_ops_s": self.throughput_ops_s,
            "mean_response_s": self.mean_response_s,
            "metrics": self.metrics,
            "events": self.events,
            "fault_attribution": self.fault_attribution,
            "mttr_s": self.mttr_s,
            "heal": self.heal,
        }
        if self.telemetry:
            doc["telemetry"] = self.telemetry
        return doc

    def fingerprint(self) -> str:
        """Stable digest of the whole report: equal iff the runs were equal."""
        blob = json.dumps(self.to_dict(), sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()[:16]

    def summary(self) -> str:
        lines = [
            f"ChaosReport: {self.store} (scheme={self.scheme}, seed={self.seed})",
            f"  ops        : {self.ops_acked}/{self.ops_attempted} acked, "
            f"{self.ops_failed} failed, {self.degraded_reads} degraded reads, "
            f"{self.retries} retries, {self.timeouts} timeouts",
            f"  faults     : {sum(self.faults_fired.values())} fired "
            f"{dict(sorted(self.faults_fired.items()))}, "
            f"{self.faults_unfired} past the horizon",
            f"  recovery   : {len(self.repairs)} node repairs, "
            f"{len(self.recoveries)} log recoveries, "
            f"{self.data_loss_events} data-loss events, "
            f"MTTR {self.mttr_s * 1e3:.2f}ms",
            f"  available  : {self.availability * 100:.3f}% node-time; downtime "
            + ", ".join(
                f"{nid}={s * 1e3:.2f}ms"
                for nid, s in sorted(self.downtime_s.items())
                if s > 0
            ),
            f"  throughput : {self.throughput_ops_s / 1e3:.1f} Kops/s closed-loop, "
            f"makespan {self.makespan_s * 1e3:.1f} ms",
            f"  invariants : {self.invariants.get('objects_checked', 0)} objects, "
            f"{self.invariants.get('stripes_checked', 0)} stripes, "
            f"{self.invariants.get('logged_parities_checked', 0)} logged parities "
            f"-> {self.violations} violations",
        ]
        for v in self.invariants.get("violations", ())[:10]:
            lines.append(f"    VIOLATION {v}")
        lines.append(f"  fingerprint: {self.fingerprint()}")
        return "\n".join(lines)


class ChaosRun:
    """One seeded run; split from :func:`run_chaos` for testability."""

    def __init__(
        self,
        store: KVStore,
        spec: WorkloadSpec,
        schedule: FaultSchedule,
        policy: RetryPolicy | None = None,
        repair_delay_s: float = 5e-3,
        repair: bool = True,
        control_plane=None,
        telemetry=None,
    ):
        self.store = store
        self.spec = spec
        self.schedule = schedule
        self.repair_delay_s = repair_delay_s
        self.repair = repair
        self.clock = store.cluster.clock
        #: optional repro.obs.timeseries.TelemetrySampler; pumped on every
        #: clock advance, probing real log-node buffer state, and its SLO
        #: events land in the cluster journal the control plane polls
        self.telemetry = telemetry
        if telemetry is not None:
            telemetry.add_probe(self._telemetry_probe)
            telemetry.align(self.clock.now)
        self.faults_q = EventQueue()
        self.recovery_q = EventQueue()
        self.injector = FaultInjector(store.cluster)
        self.proxy = RobustProxy(store, policy, wait=self._wait)
        #: optional repro.heal.ControlPlane; when present it owns remediation
        #: (pass ``repair=False`` so the harness's hard-wired repair does not
        #: race it) and is polled from the event pump like a sidecar daemon
        self.control_plane = control_plane
        if control_plane is not None:
            control_plane.attach(
                store, policy=self.proxy.policy, note=self.injector.note
            )
        self.repairs: list[dict] = []
        self.recoveries: list[dict] = []
        self.data_loss_events = 0
        self.outcomes: list[OpOutcome] = []
        self.demands: list[OpDemand] = []

    # ------------------------------------------------------------- event pump

    def _wait(self, dt: float) -> None:
        self.clock.advance(dt)
        self._pump_and_heal(self.clock.now)

    def _pump(self, now: float) -> None:
        """Fire everything due from both queues in global time order
        (faults before recoveries on exact ties)."""
        while True:
            tf = self.faults_q.next_time()
            tr = self.recovery_q.next_time()
            due = [t for t in (tf, tr) if t is not None and t <= now]
            if not due:
                return
            nxt = min(due)
            if tf is not None and tf == nxt:
                self.faults_q.run_until(nxt)
            else:
                self.recovery_q.run_until(nxt)

    def _pump_and_heal(self, now: float) -> None:
        """Pump the queues, then give the control plane (if any) a tick --
        it sees freshly-fired faults through the journal, like a daemon.
        Telemetry samples before the plane polls, so a burn edge raised at
        this tick is already in the journal when the detector reads it."""
        self._pump(now)
        if self.telemetry is not None:
            self.telemetry.pump(now)
        if self.control_plane is not None:
            self.control_plane.poll(self.clock.now)

    def _telemetry_probe(self, t: float, sampler) -> None:
        """Gauge real cluster state: per-log-node buffer occupancy and disk
        backlog, plus the alive-node count (fault windows show as dips)."""
        cluster = self.store.cluster
        for nid in sorted(cluster.log_nodes):
            node = cluster.log_nodes[nid]
            bp = node.backpressure(t)
            sampler.gauge(f"log.{nid}.occupancy").record(t, bp["occupancy"])
            sampler.gauge(f"log.{nid}.disk_backlog_s").record(
                t, bp["disk_backlog_s"]
            )
        alive = sum(
            1 for n in cluster.dram_nodes.values() if n.alive
        ) + sum(1 for n in cluster.log_nodes.values() if n.alive)
        sampler.gauge("cluster.alive_nodes").record(t, float(alive))

    # --------------------------------------------------------- fault handling

    def _is_log_node(self, nid: str) -> bool:
        return nid in self.store.cluster.log_nodes

    def _fire(self, event: FaultEvent, when: float) -> None:
        nid = event.node_id
        if self._is_log_node(nid) and event.kind in (FaultKind.CRASH, FaultKind.BLIP):
            self._crash_log_node(event, when)
            return
        self.injector.apply(event, when, self.recovery_q)
        if event.kind is FaultKind.CRASH and self.repair:
            self.recovery_q.schedule(
                when + self.repair_delay_s, lambda t, n=nid: self._repair_dram(n, t)
            )
        elif event.kind is FaultKind.PARTITION and self._is_log_node(nid):
            # once the link heals, rebuild the parities that missed deltas
            self.recovery_q.schedule(
                event.end_s, lambda t, n=nid: self._recover_log(n, t, if_stale=True)
            )

    def _crash_log_node(self, event: FaultEvent, when: float) -> None:
        """Log-node crash consistency (§3.3.2): the DRAM buffer is lost; the
        persisted log survives but goes stale until recovery rebuilds it."""
        from repro.core.recovery import crash_log_node

        cluster = self.store.cluster
        node = cluster.log_nodes[event.node_id]
        applied = self.injector.applied
        applied[event.kind.value] = applied.get(event.kind.value, 0) + 1
        if not cluster.kill(event.node_id, now=when):
            self.injector.note(when, f"{event.kind.value} {event.node_id} (already down)")
            return
        lost = crash_log_node(node)
        was_stale = node.needs_recovery
        node.needs_recovery = True
        # this path bypasses FaultInjector.apply, so record its events here
        self.injector.journal.emit(
            "fault_inject",
            kind=event.kind.value,
            node=event.node_id,
            duration_s=event.duration_s,
            magnitude=event.magnitude,
        )
        if not was_stale:
            self.injector.journal.emit(
                "stale_mark",
                node=event.node_id,
                reason="buffer_lost",
                records_lost=lost,
            )
        self.injector.note(
            when, f"{event.kind.value} {event.node_id} (buffer lost: {lost} records)"
        )
        if event.kind is FaultKind.BLIP:
            recover_at = when + event.duration_s
        elif self.repair:
            recover_at = when + self.repair_delay_s
        else:
            return
        self.recovery_q.schedule(
            recover_at, lambda t, n=event.node_id: self._recover_log(n, t)
        )

    # ------------------------------------------------------- repair / recover

    def _repair_dram(self, nid: str, when: float) -> None:
        cluster = self.store.cluster
        node = cluster.dram_nodes.get(nid)
        if node is None or node.alive:
            return  # a blip restore beat the repair; nothing to do
        restore_at = when
        if hasattr(self.store, "uptodate_logged_parity"):
            from repro.core.repair import repair_node

            try:
                result = repair_node(self.store, nid, log_assist=True)
            except DataLossError as exc:
                self.data_loss_events += 1
                self.injector.note(when, f"repair {nid} FAILED: {exc}")
                return
            # the node rejoins once the rebuild finishes, so its downtime
            # includes the repair window -- consistent with the recorded
            # at_s/repair_time_s pair
            restore_at = when + result.repair_time_s
            self.repairs.append(
                {
                    "node": nid,
                    "at_s": when,
                    "repair_time_s": result.repair_time_s,
                    "chunks": result.chunks_repaired,
                    "log_assisted": result.log_assisted_stripes,
                }
            )
            self.injector.note(
                when,
                f"repair {nid}: {result.chunks_repaired} chunks in "
                f"{result.repair_time_s * 1e3:.2f}ms",
            )
        else:
            # baselines: a replacement node comes online with re-synced state
            self.repairs.append({"node": nid, "at_s": when, "repair_time_s": 0.0})
            self.injector.note(when, f"replace {nid}")
        cluster.restore(nid, now=restore_at)

    def _recover_log(self, nid: str, when: float, if_stale: bool = False) -> None:
        from repro.core.recovery import recover_log_node

        node = self.store.cluster.log_nodes.get(nid)
        if node is None:
            return
        if if_stale and not node.needs_recovery:
            return
        if node.alive and not node.needs_recovery:
            return
        report = recover_log_node(self.store, nid)
        self.recoveries.append(
            {
                "node": nid,
                "at_s": when,
                "parities_rebuilt": report.parities_rebuilt,
                "duration_s": report.duration_s,
            }
        )
        self.injector.note(
            when, f"recover {nid}: {report.parities_rebuilt} parities rebuilt"
        )

    # ---------------------------------------------------------------- the run

    def execute(self) -> ChaosReport:
        store, spec = self.store, self.spec
        for ev in self.schedule:
            self.faults_q.schedule(ev.time_s, lambda t, e=ev: self._fire(e, t))

        counters = store.counters
        profile = store.cfg.profile
        requests = generate_requests(spec)
        for req in requests:
            self._pump_and_heal(self.clock.now)
            bytes_before = counters["net_bytes"]
            rpcs_before = counters["net_rpcs"]
            outcome = self.proxy.execute(req)
            # backoff waits already advanced the clock inside execute() (the
            # proxy's wait hook is _wait); only the store-side service time
            # remains to elapse here -- advancing the full client latency
            # would count every retry's wait twice and skew when later
            # faults fire relative to requests.
            self.clock.advance(outcome.service_s)
            self.outcomes.append(outcome)
            if self.telemetry is not None and outcome.acked:
                self.telemetry.observe_op(
                    self.clock.now, outcome.latency_s, outcome.op
                )
            if outcome.acked:
                d_bytes = counters["net_bytes"] - bytes_before
                d_rpcs = counters["net_rpcs"] - rpcs_before
                cpu_s = profile.rpc_overhead_s * d_rpcs
                nic_s = d_bytes / profile.net_bandwidth_Bps
                self.demands.append(
                    OpDemand(
                        cpu_s=cpu_s,
                        nic_bytes=d_bytes,
                        remote_s=max(0.0, outcome.service_s - cpu_s - nic_s),
                    )
                )

        # past-the-horizon faults never fire; pending recoveries all do, so
        # the run ends with every transient fault healed and repairs applied
        faults_unfired = len(self.faults_q)
        self.faults_q.clear()
        self.recovery_q.drain()
        if self.control_plane is not None:
            # give the plane a tick to see the drained heals, then let it
            # work off any still-queued remediation before the books close
            self.control_plane.poll(self.clock.now)
            self.control_plane.quiesce(self._wait)
        if self.telemetry is not None:
            self.telemetry.finish(self.clock.now)
        store.finalize()

        makespan = self.clock.now
        report = ChaosReport(
            store=store.name,
            scheme=store.cfg.scheme,
            seed=spec.seed,
            n_objects=spec.n_objects,
            n_requests=spec.n_requests,
            ops_attempted=len(self.outcomes),
            ops_acked=sum(1 for o in self.outcomes if o.acked),
            ops_failed=self.proxy.failed_ops,
            degraded_reads=self.proxy.degraded_served,
            retries=self.proxy.retries,
            timeouts=self.proxy.timeouts,
            faults_scheduled=len(self.schedule),
            faults_fired=dict(self.injector.applied),
            faults_unfired=faults_unfired,
            repairs=self.repairs,
            recoveries=self.recoveries,
            data_loss_events=self.data_loss_events,
            downtime_s={
                nid: store.cluster.downtime_s(nid)
                for nid in store.cluster.dram_ids() + store.cluster.log_ids()
            },
            availability=store.cluster.availability(),
            timeline=sorted(self.injector.timeline),
            makespan_s=makespan,
        )
        if self.demands:
            # deferred import: repro.engine.core pulls in chaos.schedule, so a
            # module-level import here would close an import cycle
            from repro.engine.compat import simulate_demands

            cl = simulate_demands(self.demands, profile)
            report.throughput_ops_s = cl.throughput_ops_s
            report.mean_response_s = cl.mean_response_s
        # invariants last: the checkers reuse the real read/repair machinery,
        # which perturbs cost counters and emits its own scrub/read events --
        # so the metrics snapshot (per-op latency quantiles + span-fed phase
        # means) AND the journal capture happen first
        report.metrics = store.metrics.snapshot()
        report.events = store.cluster.journal.to_dicts()
        if self.telemetry is not None:
            report.telemetry = self.telemetry.to_dict()
        samples = [
            (o.at_s, o.latency_s, o.op) for o in self.outcomes if o.acked
        ]
        windows = fault_windows(report.events, run_end_s=makespan)
        report.fault_attribution = attribute_latency(windows, samples)
        report.mttr_s = round(mttr_s(windows), 9)
        if self.control_plane is not None:
            report.heal = self.control_plane.report()
        invariant_report: InvariantReport = check_store(store)
        report.invariants = invariant_report.to_dict()
        return report


def run_chaos(
    store: KVStore,
    spec: WorkloadSpec,
    schedule: FaultSchedule | None = None,
    policy: RetryPolicy | None = None,
    expected_faults: float = 4.0,
    repair_delay_s: float = 5e-3,
    repair: bool = True,
    control_plane=None,
    telemetry=None,
) -> ChaosReport:
    """Load the store, then replay the workload under a fault schedule.

    With ``schedule=None`` a Poisson schedule is generated from the seed with
    ~``expected_faults`` arrivals over the run's estimated horizon (derived
    from the measured load-phase latency, so it needs no tuning per scale).

    ``control_plane`` hands remediation to a :class:`repro.heal.ControlPlane`;
    the harness's own hard-wired repair is disabled so the plane cannot race
    it (the plane detects through the journal and repairs on its own clock).
    """
    if control_plane is not None:
        repair = False
    load_s = load_store(store, spec)
    if schedule is None:
        mean_op_s = load_s / max(1, spec.n_objects)
        horizon_s = mean_op_s * max(1, spec.n_requests)
        schedule = FaultSchedule.with_expected_faults(
            store.cluster.dram_ids(),
            store.cluster.log_ids(),
            horizon_s=horizon_s,
            expected_faults=expected_faults,
            seed=spec.seed,
        )
    # fault times are relative to the start of the run phase
    start = store.cluster.clock.now
    shifted = FaultSchedule(
        [
            FaultEvent(ev.time_s + start, ev.kind, ev.node_id, ev.duration_s, ev.magnitude)
            for ev in schedule
        ]
    )
    run = ChaosRun(
        store,
        spec,
        shifted,
        policy=policy,
        repair_delay_s=repair_delay_s,
        repair=repair,
        control_plane=control_plane,
        telemetry=telemetry,
    )
    return run.execute()
