"""Proxy-side robustness policies: timeouts, bounded retries, degraded reads.

The stores already *contain* the degraded mechanisms (XOR fast path, RS
decode from survivors, logged-parity escalation); what a production proxy
adds on top is the *policy* around them:

* reads against a down/partitioned/straggling node take the degraded path
  (the store decides via :meth:`~repro.core.striped.StripedStoreBase.read`);
  when the proxy only discovers the problem by timing out -- partition or
  straggler, as opposed to a failure-detector notification -- the timeout
  itself lands on the request's critical path;
* writes/updates that hit an unavailable node retry with exponential
  backoff + seeded jitter, bounded by ``max_retries``; transient faults heal
  between attempts (the harness advances simulated time during backoff),
  permanent ones exhaust the budget and the op is *not* acked.

Every acked op's result is real: an op is counted lost only if it was acked
and later becomes unrecoverable -- the invariant the checker enforces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.interface import (
    DataLossError,
    KVStore,
    OpResult,
    StoreUnavailableError,
)
from repro.obs.events import NULL_JOURNAL
from repro.sim.network import LinkDownError
from repro.workloads.ycsb import Operation, Request

#: degraded reasons the proxy only learns about by timing out
TIMEOUT_REASONS = ("link_down", "slow_node")

#: the errors a retry can plausibly outlast: unavailability (node down,
#: link partitioned, no placement -- ChunkUnavailableError and the
#: write-path errors are StoreUnavailableError subtypes/instances) and
#: too-many-chunks-missing, which a healing blip can also undo.  Anything
#: else (KeyError, a genuine internal bug) propagates: converting it into
#: silent retries would hide defects in the run.
RETRYABLE_ERRORS = (LinkDownError, DataLossError, StoreUnavailableError)


@dataclass
class RetryPolicy:
    """Bounded retries with exponential backoff and seeded jitter."""

    timeout_s: float = 2e-3          # GET timeout before declaring a node slow/gone
    max_retries: int = 4
    backoff_base_s: float = 1e-3
    backoff_cap_s: float = 16e-3
    jitter_fraction: float = 0.25    # uniform +/- fraction of the nominal backoff
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if not 0 <= self.jitter_fraction <= 1:
            raise ValueError(
                f"jitter_fraction must be in [0, 1], got {self.jitter_fraction}"
            )
        self._rng = np.random.default_rng(self.seed)

    def backoff_s(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (0-based), jittered, capped."""
        nominal = min(self.backoff_base_s * (2.0**attempt), self.backoff_cap_s)
        if self.jitter_fraction == 0:
            return nominal
        spread = self.jitter_fraction * nominal
        return float(nominal + self._rng.uniform(-spread, spread))


@dataclass
class OpOutcome:
    """What the proxy reports for one request under chaos.

    ``latency_s`` is the client-observed latency and *includes* ``waited_s``,
    the backoff time spent between attempts.  The driver already advances the
    simulated clock during each backoff (via the proxy's ``wait`` hook), so
    it must advance only ``latency_s - waited_s`` when the op completes --
    otherwise every retry's wait would be counted twice."""

    op: str
    key: str
    acked: bool
    latency_s: float
    waited_s: float = 0.0
    degraded: bool = False
    degraded_reason: str | None = None
    retries: int = 0
    error: str | None = None
    result: OpResult | None = field(default=None, repr=False)
    #: simulated time the proxy started the op (for fault-window attribution)
    at_s: float = 0.0

    @property
    def service_s(self) -> float:
        """Latency excluding backoff waits: what still has to elapse on the
        clock once the proxy stops sleeping."""
        return max(0.0, self.latency_s - self.waited_s)


class RobustProxy:
    """Executes requests against a store with retry/timeout/degraded policy.

    ``wait`` is called with every backoff interval so the driver can advance
    simulated time (and fire scheduled fault endings) while the proxy sleeps
    -- this is what lets a blip heal between two attempts.
    """

    def __init__(
        self,
        store: KVStore,
        policy: RetryPolicy | None = None,
        wait: Callable[[float], None] | None = None,
    ):
        self.store = store
        self.policy = policy or RetryPolicy()
        self.wait = wait or (lambda dt: None)
        cluster = getattr(store, "cluster", None)
        self._clock = None if cluster is None else cluster.clock
        self.journal = NULL_JOURNAL if cluster is None else cluster.journal
        self.retries = 0
        self.timeouts = 0
        self.degraded_served = 0
        self.failed_ops = 0

    def _dispatch(self, req: Request) -> OpResult:
        if req.op is Operation.READ:
            return self.store.read(req.key)
        if req.op is Operation.UPDATE:
            return self.store.update(req.key)
        if req.op is Operation.WRITE:
            return self.store.write(req.key)
        return self.store.delete(req.key)

    def execute(self, req: Request) -> OpOutcome:
        policy = self.policy
        waited_s = 0.0
        error: Exception | None = None
        started_s = 0.0 if self._clock is None else self._clock.now
        for attempt in range(policy.max_retries + 1):
            try:
                res = self._dispatch(req)
            except RETRYABLE_ERRORS as exc:
                error = exc
                if attempt == policy.max_retries:
                    break
                backoff = policy.backoff_s(attempt)
                waited_s += backoff
                self.retries += 1
                self.journal.emit(
                    "retry",
                    op=req.op.value,
                    key=req.key,
                    attempt=attempt,
                    error=type(exc).__name__,
                )
                self.journal.emit(
                    "backoff",
                    op=req.op.value,
                    key=req.key,
                    attempt=attempt,
                    backoff_s=backoff,
                )
                self.wait(backoff)  # faults may heal while the proxy sleeps
                continue
            latency = res.latency_s + waited_s
            reason = res.info.get("degraded_reason")
            if res.degraded:
                self.degraded_served += 1
                if reason in TIMEOUT_REASONS:
                    # the proxy only found out by timing out the normal GET
                    self.timeouts += 1
                    latency += policy.timeout_s
            return OpOutcome(
                op=req.op.value,
                key=req.key,
                acked=True,
                latency_s=latency,
                waited_s=waited_s,
                degraded=res.degraded,
                degraded_reason=reason,
                retries=attempt,
                result=res,
                at_s=started_s,
            )
        self.failed_ops += 1
        return OpOutcome(
            op=req.op.value,
            key=req.key,
            acked=False,
            latency_s=waited_s,
            waited_s=waited_s,
            retries=policy.max_retries,
            error=f"{type(error).__name__}: {error}",
            at_s=started_s,
        )
