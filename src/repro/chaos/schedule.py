"""Seeded fault schedules: *what* breaks, *when*, for *how long*.

A :class:`FaultSchedule` is an immutable, time-ordered list of
:class:`FaultEvent`\\ s.  Schedules are data -- they can be written by hand
for targeted drills (see ``tests/test_chaos.py``) or generated from a seeded
Poisson process whose rate derives from the MTTF parameters the reliability
model already uses (§3.1: 1/lambda = 4 years per node).  Because real runs
simulate sub-second horizons, :meth:`FaultSchedule.from_mttf_years` applies
an *acceleration* factor that compresses years of exposure into the run --
the standard accelerated-life trick -- while :meth:`FaultSchedule.poisson`
takes the per-node MTTF in simulated seconds directly.

Five fault shapes (the transient ones carry a duration):

* ``crash``      -- permanent node loss; ends only via repair/recovery,
* ``blip``       -- transient outage, auto-restored after ``duration_s``.
  On a *log* node this is a crash-restart: the volatile delta buffer is
  lost and recovery must rebuild the parities (§3.3.2).  On a *DRAM* node
  it models a brief unavailability (process pause, switch hiccup) whose
  contents survive -- a DRAM crash-restart that loses state is a ``crash``
  followed by repair,
* ``stall``      -- log-node disk unresponsive for ``duration_s``,
* ``slow``       -- straggler: exchanges with the node take ``magnitude`` x,
* ``partition``  -- proxy<->node link down for ``duration_s``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.reliability.markov import DEFAULT_MTTF_YEARS, SECONDS_PER_YEAR


class FaultKind(str, enum.Enum):
    CRASH = "crash"
    BLIP = "blip"
    STALL = "stall"
    SLOW = "slow"
    PARTITION = "partition"


#: kinds that end on their own (carry a duration_s > 0)
TRANSIENT_KINDS = (FaultKind.BLIP, FaultKind.STALL, FaultKind.SLOW, FaultKind.PARTITION)

#: default mix when a generator is not told otherwise: mostly transient
#: faults (the DXRAM observation), with the occasional permanent crash
DEFAULT_WEIGHTS = {
    FaultKind.CRASH: 0.15,
    FaultKind.BLIP: 0.35,
    FaultKind.STALL: 0.15,
    FaultKind.SLOW: 0.20,
    FaultKind.PARTITION: 0.15,
}


@dataclass(frozen=True, order=True)
class FaultEvent:
    """One scheduled fault."""

    time_s: float
    kind: FaultKind
    node_id: str
    duration_s: float = 0.0   # transient kinds only; 0 for crash
    magnitude: float = 1.0    # slow-node latency multiplier

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError(f"fault time must be >= 0, got {self.time_s}")
        if self.kind in TRANSIENT_KINDS and self.duration_s <= 0:
            raise ValueError(f"{self.kind.value} fault needs duration_s > 0")
        if self.kind is FaultKind.SLOW and self.magnitude <= 1.0:
            raise ValueError(
                f"slow fault needs a magnitude > 1, got {self.magnitude}"
            )

    @property
    def end_s(self) -> float:
        return self.time_s + self.duration_s

    def describe(self) -> str:
        if self.kind is FaultKind.CRASH:
            return f"crash {self.node_id}"
        if self.kind is FaultKind.SLOW:
            return f"slow {self.node_id} x{self.magnitude:g} for {self.duration_s:g}s"
        return f"{self.kind.value} {self.node_id} for {self.duration_s:g}s"


class FaultSchedule:
    """A time-ordered, validated sequence of fault events."""

    def __init__(self, events: Sequence[FaultEvent] = ()):
        self.events: tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.time_s, e.node_id, e.kind.value))
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultSchedule({len(self.events)} events)"

    def kinds(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for ev in self.events:
            out[ev.kind.value] = out.get(ev.kind.value, 0) + 1
        return out

    # ----------------------------------------------------------- generators

    @classmethod
    def poisson(
        cls,
        dram_ids: Sequence[str],
        log_ids: Sequence[str] = (),
        *,
        horizon_s: float,
        mttf_s: float,
        seed: int = 0,
        weights: dict[FaultKind, float] | None = None,
        blip_s: float = 2e-3,
        stall_s: float = 5e-3,
        slow_s: float = 1e-2,
        slow_factor: float = 8.0,
        partition_s: float = 5e-3,
    ) -> "FaultSchedule":
        """Per-node Poisson arrivals at rate ``1/mttf_s`` over ``horizon_s``.

        Every node draws exponential inter-arrival gaps from one seeded rng
        (nodes in sorted order, so the stream is reproducible); each arrival
        is assigned a kind from ``weights``.  Disk stalls only make sense on
        log nodes, so a stall drawn for a DRAM node falls back to a blip.
        """
        if horizon_s <= 0:
            raise ValueError(f"horizon_s must be > 0, got {horizon_s}")
        if mttf_s <= 0:
            raise ValueError(f"mttf_s must be > 0, got {mttf_s}")
        w = dict(DEFAULT_WEIGHTS if weights is None else weights)
        kinds = sorted(w, key=lambda k: k.value)
        probs = np.array([w[k] for k in kinds], dtype=float)
        probs /= probs.sum()
        rng = np.random.default_rng(seed)
        log_set = set(log_ids)
        events: list[FaultEvent] = []
        for nid in sorted([*dram_ids, *log_ids]):
            t = 0.0
            while True:
                t += float(rng.exponential(mttf_s))
                if t >= horizon_s:
                    break
                kind = kinds[int(rng.choice(len(kinds), p=probs))]
                if kind is FaultKind.STALL and nid not in log_set:
                    kind = FaultKind.BLIP
                if kind is FaultKind.CRASH:
                    events.append(FaultEvent(t, kind, nid))
                elif kind is FaultKind.BLIP:
                    events.append(FaultEvent(t, kind, nid, duration_s=blip_s))
                elif kind is FaultKind.STALL:
                    events.append(FaultEvent(t, kind, nid, duration_s=stall_s))
                elif kind is FaultKind.SLOW:
                    events.append(
                        FaultEvent(
                            t, kind, nid, duration_s=slow_s, magnitude=slow_factor
                        )
                    )
                else:
                    events.append(FaultEvent(t, kind, nid, duration_s=partition_s))
        return cls(events)

    @classmethod
    def from_mttf_years(
        cls,
        dram_ids: Sequence[str],
        log_ids: Sequence[str] = (),
        *,
        horizon_s: float,
        mttf_years: float = DEFAULT_MTTF_YEARS,
        acceleration: float = 1e9,
        **kw,
    ) -> "FaultSchedule":
        """Poisson schedule from the reliability model's MTTF, accelerated.

        ``acceleration`` compresses real exposure time into simulated time:
        the default 1e9 turns the paper's 4-year per-node MTTF into ~0.126
        simulated seconds, i.e. a handful of faults over a typical run.
        """
        return cls.poisson(
            dram_ids,
            log_ids,
            horizon_s=horizon_s,
            mttf_s=mttf_years * SECONDS_PER_YEAR / acceleration,
            **kw,
        )

    @classmethod
    def with_expected_faults(
        cls,
        dram_ids: Sequence[str],
        log_ids: Sequence[str] = (),
        *,
        horizon_s: float,
        expected_faults: float,
        **kw,
    ) -> "FaultSchedule":
        """Poisson schedule sized so ~``expected_faults`` fire in aggregate."""
        if expected_faults <= 0:
            raise ValueError(f"expected_faults must be > 0, got {expected_faults}")
        n_nodes = len(dram_ids) + len(log_ids)
        mttf_s = n_nodes * horizon_s / expected_faults
        return cls.poisson(dram_ids, log_ids, horizon_s=horizon_s, mttf_s=mttf_s, **kw)
