"""Fault primitives: apply a :class:`FaultEvent` to the simulated machines.

The injector is the only piece of the chaos subsystem that mutates cluster
state.  It acts purely on the substrate -- :class:`~repro.cluster.topology.
Cluster` alive flags, :class:`~repro.sim.network.NetworkModel` degradation
state, :class:`~repro.sim.disk.DiskModel` stall windows -- and schedules the
*end* of every transient fault on an :class:`~repro.sim.events.EventQueue`
supplied by the caller.  Repair and recovery (which need store-level
knowledge) live in :mod:`repro.chaos.harness`, keeping the layering clean:
``faults`` knows machines, ``harness`` knows stores.
"""

from __future__ import annotations

from repro.chaos.schedule import FaultEvent, FaultKind
from repro.cluster.topology import Cluster
from repro.sim.events import EventQueue


class FaultInjector:
    """Applies fault events to a cluster and records an observable timeline."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self.net = cluster.network
        self.journal = cluster.journal
        #: (sim time, human-readable description) of every state transition
        self.timeline: list[tuple[float, str]] = []
        self.applied: dict[str, int] = {}

    def note(self, when: float, text: str) -> None:
        """Record one timeline entry (harness recovery actions use this too)."""
        self.timeline.append((when, text))

    def apply(self, event: FaultEvent, now: float, restore_queue: EventQueue) -> None:
        """Fire one fault at ``now``; transient ends go on ``restore_queue``."""
        nid = event.node_id
        self.cluster.node(nid)  # raises UnknownNodeError early for bad targets
        self.applied[event.kind.value] = self.applied.get(event.kind.value, 0) + 1
        self.journal.emit(
            "fault_inject",
            kind=event.kind.value,
            node=nid,
            duration_s=event.duration_s,
            magnitude=event.magnitude,
        )

        if event.kind is FaultKind.CRASH:
            if self.cluster.kill(nid, now=now):
                self.note(now, f"crash {nid}")
            else:
                self.note(now, f"crash {nid} (already down)")

        elif event.kind is FaultKind.BLIP:
            # transient unavailability: the node drops out and comes back
            # with its state intact (log-node blips, which DO lose their
            # volatile buffer, are routed through the harness's
            # crash-consistency path before reaching the injector)
            if self.cluster.kill(nid, now=now):
                self.note(now, f"blip {nid} down")
                restore_queue.schedule(
                    now + event.duration_s, lambda t, n=nid: self._restore_node(n, t)
                )
            else:
                self.note(now, f"blip {nid} (already down)")

        elif event.kind is FaultKind.STALL:
            node = self.cluster.log_nodes.get(nid)
            if node is None:
                raise ValueError(f"stall fault targets a non-log node {nid!r}")
            node.disk.inject_stall(now, event.duration_s)
            self.note(now, f"disk stall {nid} {event.duration_s:g}s")

        elif event.kind is FaultKind.SLOW:
            self.net.set_node_slowdown(nid, event.magnitude)
            self.note(now, f"slow {nid} x{event.magnitude:g}")
            restore_queue.schedule(
                now + event.duration_s, lambda t, n=nid: self._end_slow(n, t)
            )

        elif event.kind is FaultKind.PARTITION:
            self.net.set_link_down(nid)
            self.note(now, f"partition {nid}")
            restore_queue.schedule(
                now + event.duration_s, lambda t, n=nid: self._heal_partition(n, t)
            )

        else:  # pragma: no cover - enum is exhaustive
            raise ValueError(f"unknown fault kind {event.kind!r}")

    # -- transient-fault endings ------------------------------------------------

    def _restore_node(self, nid: str, when: float) -> None:
        if self.cluster.restore(nid, now=when):
            self.note(when, f"blip {nid} restored")
            self.journal.emit("fault_heal", kind="blip", node=nid)

    def _end_slow(self, nid: str, when: float) -> None:
        self.net.clear_node_slowdown(nid)
        self.note(when, f"slow {nid} ended")
        self.journal.emit("fault_heal", kind="slow", node=nid)

    def _heal_partition(self, nid: str, when: float) -> None:
        self.net.restore_link(nid)
        self.note(when, f"partition {nid} healed")
        self.journal.emit("fault_heal", kind="partition", node=nid)
