"""Invariant checkers: what must hold no matter which faults fired.

Three properties, straight from the paper's correctness argument:

1. **Acked durability** -- every object whose write/update was acknowledged
   is reconstructible, bit-exactly, from the chunks that are *currently
   reachable* (live DRAM survivors, escalating to up-to-date logged
   parities).  This is the MDS property plus parity-logging consistency,
   checked end to end.
2. **Stripe parity consistency** -- each stripe's DRAM-resident parity
   chunks equal a fresh encode of its data chunks (in-place updates touched
   data and XOR parity together; repair must preserve this).
3. **Log replay** -- for every logged parity on a live log node, replaying
   base + deltas (disk state overlaid with the DRAM buffer) reproduces the
   same bytes a fresh encode gives (§3.3.2's crash-consistency claim).

Checks use the stores' real reconstruction machinery, so a bug in the
degraded path is itself a violation, not a silent pass.  They mutate cost
counters/disk stats as a side effect; run them after metrics are captured.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.interface import KVStore


@dataclass
class InvariantViolation:
    """One broken invariant, with enough detail to debug the run."""

    kind: str     # "unrecoverable" | "mismatch" | "parity_inconsistent" | "log_replay"
    subject: str  # key or stripe id
    detail: str

    def describe(self) -> str:
        return f"[{self.kind}] {self.subject}: {self.detail}"


@dataclass
class InvariantReport:
    """Outcome of one full invariant sweep."""

    objects_checked: int = 0
    stripes_checked: int = 0
    logged_parities_checked: int = 0
    violations: list[InvariantViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "objects_checked": self.objects_checked,
            "stripes_checked": self.stripes_checked,
            "logged_parities_checked": self.logged_parities_checked,
            "violations": [v.describe() for v in self.violations],
        }


def _reconstruct(store: KVStore, key: str) -> np.ndarray:
    """Rebuild ``key``'s bytes from currently-reachable chunks only.

    Mirrors the degraded-read data path (reachable DRAM survivors first,
    logged parities as escalation) without forcing the home chunk out of the
    survivor set -- a healthy node serves its own chunk directly.
    """
    sid, seq, node_id, chunk, slot = store._locate(key)
    if sid is None:
        # unsealed: replicated proxy buffer is the ground truth
        return chunk.read_slot(slot).copy()
    if store._degraded_reason(node_id) is None:
        return chunk.read_slot(slot).copy()
    k = store.cfg.k
    available = store._available_dram_chunks(sid, exclude={seq})
    fetch = dict(list(available.items())[:k])
    if len(fetch) < k:
        _, logged = store._fetch_logged_parities(sid, k - len(fetch), exclude={seq})
        fetch.update(logged)
    if len(fetch) < k:
        raise RuntimeError(
            f"only {len(fetch)} of k={k} chunks reachable for stripe {sid}"
        )
    rebuilt = store.code.decode(fetch, wanted=[seq])[seq]
    return rebuilt[slot.phys_offset : slot.phys_end].copy()


def check_durability(
    store: KVStore, keys: list[str] | None = None
) -> tuple[int, list[InvariantViolation]]:
    """Invariant 1: every live object reconstructs to its expected bytes."""
    if keys is None:
        keys = sorted(k for k in store.versions if k not in store.deleted)
    violations: list[InvariantViolation] = []
    checked = 0
    for key in keys:
        if key in store.deleted or key not in store.versions:
            continue
        checked += 1
        expected = store.expected_value(key)
        try:
            actual = _reconstruct(store, key)
        except Exception as exc:
            violations.append(
                InvariantViolation("unrecoverable", key, f"{type(exc).__name__}: {exc}")
            )
            continue
        if not np.array_equal(actual, expected):
            violations.append(
                InvariantViolation(
                    "mismatch", key, "reconstructed bytes differ from acked version"
                )
            )
    return checked, violations


def check_parity_consistency(store: KVStore) -> tuple[int, list[InvariantViolation]]:
    """Invariant 2: DRAM parity chunks match a fresh encode per stripe."""
    violations: list[InvariantViolation] = []
    checked = 0
    for sid in sorted(store.stripe_index.stripe_ids()):
        checked += 1
        if not store.verify_stripe(sid):
            violations.append(
                InvariantViolation(
                    "parity_inconsistent",
                    f"stripe {sid}",
                    "DRAM parity != encode(data chunks)",
                )
            )
    return checked, violations


def check_log_replay(store: KVStore) -> tuple[int, list[InvariantViolation]]:
    """Invariant 3: logged parities replay to the up-to-date encode."""
    if not hasattr(store, "uptodate_logged_parity"):
        return 0, []
    cfg = store.cfg
    violations: list[InvariantViolation] = []
    checked = 0
    for sid in sorted(store.stripe_index.stripe_ids()):
        rec = store.stripe_index.get(sid)
        data = np.stack(
            [store.data_chunks[(sid, i)].buffer for i in range(cfg.k)]
        )
        fresh = store.code.encode(data)
        for j in range(1, cfg.r):
            nid = rec.chunk_nodes[cfg.k + j]
            node = store.cluster.log_nodes.get(nid)
            if node is None or not node.alive:
                continue  # a down log node has nothing to replay
            checked += 1
            try:
                replayed = store.uptodate_logged_parity(sid, j)
            except Exception as exc:
                violations.append(
                    InvariantViolation(
                        "log_replay",
                        f"stripe {sid} parity {j}",
                        f"replay failed: {type(exc).__name__}: {exc}",
                    )
                )
                continue
            if not np.array_equal(replayed, fresh[j]):
                violations.append(
                    InvariantViolation(
                        "log_replay",
                        f"stripe {sid} parity {j}",
                        "replayed parity != encode(data chunks)",
                    )
                )
    return checked, violations


def check_store(store: KVStore, keys: list[str] | None = None) -> InvariantReport:
    """Run every applicable invariant; stores without stripes (vanilla,
    replication) only get the durability check when they expose the striped
    machinery, otherwise the sweep is empty."""
    report = InvariantReport()
    if hasattr(store, "stripe_index"):
        report.objects_checked, v1 = check_durability(store, keys)
        report.stripes_checked, v2 = check_parity_consistency(store)
        report.logged_parities_checked, v3 = check_log_replay(store)
        report.violations = v1 + v2 + v3
    return report
