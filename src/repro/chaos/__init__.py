"""Fault injection and chaos testing for the simulated stores.

Layering (bottom up):

* :mod:`repro.chaos.schedule`   -- seeded fault schedules (data);
* :mod:`repro.chaos.faults`     -- apply faults to the simulated machines;
* :mod:`repro.chaos.policy`     -- proxy-side timeouts/retries/degraded reads;
* :mod:`repro.chaos.invariants` -- what must hold after any fault sequence;
* :mod:`repro.chaos.harness`    -- seeded end-to-end runs emitting a report.
"""

from repro.chaos.faults import FaultInjector
from repro.chaos.harness import ChaosReport, ChaosRun, run_chaos
from repro.chaos.invariants import (
    InvariantReport,
    InvariantViolation,
    check_durability,
    check_log_replay,
    check_parity_consistency,
    check_store,
)
from repro.chaos.policy import OpOutcome, RetryPolicy, RobustProxy
from repro.chaos.schedule import (
    DEFAULT_WEIGHTS,
    TRANSIENT_KINDS,
    FaultEvent,
    FaultKind,
    FaultSchedule,
)

__all__ = [
    "DEFAULT_WEIGHTS",
    "TRANSIENT_KINDS",
    "ChaosReport",
    "ChaosRun",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultSchedule",
    "InvariantReport",
    "InvariantViolation",
    "OpOutcome",
    "RetryPolicy",
    "RobustProxy",
    "check_durability",
    "check_log_replay",
    "check_parity_consistency",
    "check_store",
    "run_chaos",
]
