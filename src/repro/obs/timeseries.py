"""Sim-time telemetry: windowed series sampling and SLO burn-rate signals.

End-of-run aggregates (``Station.stats``, ``peak_occupancy``, whole-run
histograms) say *that* a knee or a stall happened; they cannot say *when*,
or how the system moved through it.  This module adds the missing time axis:
a :class:`TelemetrySampler` takes a snapshot of engine/cluster state every
``interval_s`` simulated seconds and appends it to named, bounded series --

* :class:`Gauge` -- an instantaneous level (station utilisation, queue
  depth, buffer occupancy, parked-waiter count);
* :class:`WindowedCounter` -- events accumulated *between* samples
  (completed ops per window -> windowed throughput).  Window sums conserve
  the underlying total: ``sum(window values) + pending == total bumped``;
* :class:`SlidingQuantile` -- an exact order-statistic quantile over the
  observations of the trailing ``window_s`` seconds (sliding-window p99).

Each series keeps its points in a bounded ring (oldest drop first) while
``count``/``sum`` totals survive eviction, mirroring the event journal's
contract.  All timestamps come from the simulated clock, so a same-seed run
produces byte-identical series; the exporters in :mod:`repro.obs.export`
rely on that.

On top of the raw series sits :class:`SLOTracker`: given a target p99 and an
availability objective, every window's fraction of over-target ops is
divided by the error budget (``1 - objective``) to get a *burn rate* --
burn rate 1.0 means the budget is being spent exactly as fast as it
accrues; 10x means ten times faster.  Threshold crossings are edge-detected
into ``telemetry_slo_burn`` / ``telemetry_slo_ok`` journal events, which
:mod:`repro.heal.detector` consumes as ``slo_burn`` incidents -- the control
plane reacts to degradation before any durability invariant breaks.
"""

from __future__ import annotations

import math
from collections import deque

from repro.obs.events import EventJournal
from repro.sim.resources import Counters


def exact_quantile(sorted_values: list[float], q: float) -> float:
    """Exact order-statistic quantile of an already-sorted list."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]


class Series:
    """One named time series: a bounded ring of ``(t_s, value)`` points.

    The ring drops oldest points first; ``count`` and ``total`` keep
    accounting for every point ever recorded, so eviction loses resolution,
    never totals.
    """

    kind = "series"

    __slots__ = ("name", "capacity", "_ring", "count", "total")

    def __init__(self, name: str, capacity: int = 512):
        if capacity < 1:
            raise ValueError(f"series capacity must be >= 1, got {capacity}")
        self.name = name
        self.capacity = int(capacity)
        self._ring: deque[tuple[float, float]] = deque(maxlen=self.capacity)
        self.count = 0
        self.total = 0.0

    def __len__(self) -> int:
        return len(self._ring)

    def _record(self, t_s: float, value: float) -> None:
        if self._ring and t_s < self._ring[-1][0]:
            raise ValueError(
                f"series {self.name!r}: non-monotone timestamp "
                f"{t_s} < {self._ring[-1][0]}"
            )
        self._ring.append((t_s, float(value)))
        self.count += 1
        self.total += float(value)

    # ------------------------------------------------------------- inspection

    def points(self) -> list[tuple[float, float]]:
        """Retained ``(t_s, value)`` points, oldest first."""
        return list(self._ring)

    def last(self) -> tuple[float, float] | None:
        return self._ring[-1] if self._ring else None

    def values(self) -> list[float]:
        return [v for _, v in self._ring]

    def to_dict(self) -> dict:
        """JSON-ready form with rounded floats (byte-stable)."""
        return {
            "kind": self.kind,
            "count": self.count,
            "total": round(self.total, 9),
            "points": [[round(t, 9), round(v, 9)] for t, v in self._ring],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r}, n={len(self._ring)})"


class Gauge(Series):
    """An instantaneous level sampled at each tick."""

    kind = "gauge"
    __slots__ = ()

    def record(self, t_s: float, value: float) -> None:
        self._record(t_s, value)


class WindowedCounter(Series):
    """Counts accumulated between samples; each point is one window's sum.

    ``bump`` adds to a pending window; ``flush`` closes the window at a
    sample tick.  Conservation invariant (property-tested):
    ``sum of recorded window values + pending == total bumped``.
    """

    kind = "windowed_counter"
    __slots__ = ("pending", "bumped")

    def __init__(self, name: str, capacity: int = 512):
        super().__init__(name, capacity)
        self.pending = 0.0
        self.bumped = 0.0

    def bump(self, amount: float = 1.0) -> None:
        self.pending += amount
        self.bumped += amount

    def flush(self, t_s: float) -> float:
        """Close the current window at ``t_s``; returns the window's sum."""
        window = self.pending
        self.pending = 0.0
        self._record(t_s, window)
        return window


class SlidingQuantile(Series):
    """Exact quantile over the trailing ``window_s`` seconds of observations.

    Observations older than the window are pruned at each sample tick; the
    recorded point is the exact order statistic of what remains (0.0 when the
    window is empty -- an idle window has no tail).
    """

    kind = "sliding_quantile"
    __slots__ = ("q", "window_s", "_obs")

    def __init__(self, name: str, q: float, window_s: float, capacity: int = 512):
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        if window_s <= 0:
            raise ValueError(f"window_s must be > 0, got {window_s}")
        super().__init__(name, capacity)
        self.q = float(q)
        self.window_s = float(window_s)
        self._obs: deque[tuple[float, float]] = deque()

    def observe(self, t_s: float, value: float) -> None:
        self._obs.append((t_s, float(value)))

    def record_at(self, t_s: float) -> float:
        """Prune stale observations and record the window's quantile."""
        horizon = t_s - self.window_s
        while self._obs and self._obs[0][0] < horizon:
            self._obs.popleft()
        value = exact_quantile(sorted(v for _, v in self._obs), self.q)
        self._record(t_s, value)
        return value


class SLOTracker:
    """Error-budget burn rate against a latency SLO, per sample window.

    Every acked op is classified good/bad against ``target_p99_us``; at each
    sample tick the window's bad fraction is divided by the error budget
    (``1 - objective``) to get the burn rate.  A window whose burn rate
    exceeds ``burn_threshold`` opens a *burning* episode; the rising edge
    emits ``telemetry_slo_burn`` and the falling edge ``telemetry_slo_ok``
    (both attributed to the whole cluster: ``node="_cluster"``), so the heal
    detector's dedupe works exactly as for per-node incident sources.
    """

    def __init__(
        self,
        target_p99_us: float,
        objective: float = 0.99,
        burn_threshold: float = 1.0,
        journal: EventJournal | None = None,
        counters: Counters | None = None,
    ):
        if target_p99_us <= 0:
            raise ValueError(f"target_p99_us must be > 0, got {target_p99_us}")
        if not 0.0 < objective < 1.0:
            raise ValueError(f"objective must be in (0, 1), got {objective}")
        if burn_threshold <= 0:
            raise ValueError(f"burn_threshold must be > 0, got {burn_threshold}")
        self.target_p99_us = float(target_p99_us)
        self.objective = float(objective)
        self.burn_threshold = float(burn_threshold)
        self.journal = journal
        self.counters = counters
        self.window_ops = 0
        self.window_bad = 0
        self.total_ops = 0
        self.total_bad = 0
        self.burning = False
        self.episodes = 0
        self.samples_burning = 0
        self.max_burn_rate = 0.0

    def observe(self, latency_us: float) -> None:
        self.window_ops += 1
        self.total_ops += 1
        if latency_us > self.target_p99_us:
            self.window_bad += 1
            self.total_bad += 1

    def sample(self, t_s: float) -> float:
        """Close the window at ``t_s``; returns its burn rate."""
        budget = 1.0 - self.objective
        bad_frac = self.window_bad / self.window_ops if self.window_ops else 0.0
        burn = bad_frac / budget
        ops, bad = self.window_ops, self.window_bad
        self.window_ops = 0
        self.window_bad = 0
        if burn > self.max_burn_rate:
            self.max_burn_rate = burn
        burning = ops > 0 and burn > self.burn_threshold
        if burning:
            self.samples_burning += 1
        if burning and not self.burning:
            self.episodes += 1
            if self.counters is not None:
                self.counters.add("telemetry_slo_burns")
            if self.journal is not None:
                self.journal.emit(
                    "telemetry_slo_burn",
                    node="_cluster",
                    burn_rate=round(burn, 6),
                    window_ops=ops,
                    window_bad=bad,
                    target_p99_us=round(self.target_p99_us, 3),
                )
        elif self.burning and not burning:
            if self.journal is not None:
                self.journal.emit(
                    "telemetry_slo_ok",
                    node="_cluster",
                    burn_rate=round(burn, 6),
                    window_ops=ops,
                )
        self.burning = burning
        return burn

    def summary(self) -> dict:
        """Deterministic end-of-run view (rounded for byte-stable JSON)."""
        return {
            "target_p99_us": round(self.target_p99_us, 3),
            "objective": round(self.objective, 6),
            "burn_threshold": round(self.burn_threshold, 6),
            "total_ops": self.total_ops,
            "total_bad": self.total_bad,
            "episodes": self.episodes,
            "samples_burning": self.samples_burning,
            "max_burn_rate": round(self.max_burn_rate, 6),
        }


class TelemetrySampler:
    """Fixed-interval telemetry over the simulated clock.

    Owns a registry of named series and a list of probe callbacks
    ``fn(t_s, sampler)`` that gauge live state at each tick.  The engine
    schedules :meth:`sample` on its event queue; clock-stepped callers (the
    chaos harness) call :meth:`pump` after each advance, which takes every
    whole-interval tick the clock has crossed.  Sample times are therefore
    strictly increasing multiples of ``interval_s`` (plus one final
    off-grid point from :meth:`finish`), which the property tests assert.
    """

    def __init__(
        self,
        interval_s: float,
        capacity: int = 512,
        journal: EventJournal | None = None,
        counters: Counters | None = None,
        slo: SLOTracker | None = None,
        p99_window_s: float | None = None,
    ):
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self.interval_s = float(interval_s)
        self.capacity = int(capacity)
        self.journal = journal
        self.counters = counters
        self.slo = slo
        self.series: dict[str, Series] = {}
        self.samples = 0
        self.last_t_s = -1.0
        self._probes: list = []
        self._next_tick = self.interval_s
        window = p99_window_s if p99_window_s is not None else 5 * self.interval_s
        # the client-stream series every run gets; probes add the rest
        self._ops = self.counter("client.ops")
        self._throughput = self.gauge("client.throughput_ops_s")
        self._p99 = self.quantile("client.p99_us", 0.99, window)
        self._burn = self.gauge("slo.burn_rate") if slo is not None else None

    # -------------------------------------------------------------- registry

    def gauge(self, name: str) -> Gauge:
        s = self.series.get(name)
        if s is None:
            s = self.series[name] = Gauge(name, self.capacity)
        return s

    def counter(self, name: str) -> WindowedCounter:
        s = self.series.get(name)
        if s is None:
            s = self.series[name] = WindowedCounter(name, self.capacity)
        return s

    def quantile(self, name: str, q: float, window_s: float) -> SlidingQuantile:
        s = self.series.get(name)
        if s is None:
            s = self.series[name] = SlidingQuantile(name, q, window_s, self.capacity)
        return s

    def add_probe(self, probe) -> None:
        """Register ``fn(t_s, sampler)`` to gauge live state at each tick."""
        self._probes.append(probe)

    # ------------------------------------------------------------- ingestion

    def observe_op(self, t_s: float, latency_s: float, op: str) -> None:
        """Feed one acked client op into the stream series and the SLO."""
        del op  # per-op split stays in the end-of-run histograms
        latency_us = latency_s * 1e6
        self._ops.bump()
        self._p99.observe(t_s, latency_us)
        if self.slo is not None:
            self.slo.observe(latency_us)

    # -------------------------------------------------------------- sampling

    def sample(self, t_s: float) -> bool:
        """Take one snapshot at ``t_s``; returns False for stale ticks."""
        if t_s <= self.last_t_s:
            return False
        for probe in self._probes:
            probe(t_s, self)
        window_ops = self._ops.flush(t_s)
        elapsed = t_s - self.last_t_s if self.last_t_s >= 0 else t_s
        rate = window_ops / elapsed if elapsed > 0 else 0.0
        self._throughput.record(t_s, rate)
        for s in self.series.values():
            if isinstance(s, SlidingQuantile):
                s.record_at(t_s)
            elif isinstance(s, WindowedCounter) and s is not self._ops:
                s.flush(t_s)
        if self.slo is not None and self._burn is not None:
            self._burn.record(t_s, self.slo.sample(t_s))
        self.samples += 1
        self.last_t_s = t_s
        if self.counters is not None:
            self.counters.add("telemetry_samples")
        return True

    def pump(self, now_s: float) -> int:
        """Take every whole-interval tick up to ``now_s`` (clock-stepped
        callers); returns the number of samples taken."""
        taken = 0
        while self._next_tick <= now_s:
            if self.sample(self._next_tick):
                taken += 1
            self._next_tick += self.interval_s
        return taken

    def align(self, now_s: float) -> None:
        """Skip ticks at or before ``now_s``: a run phase starting mid-clock
        (after a load phase) must not retro-sample the past."""
        if now_s >= self._next_tick:
            steps = math.floor((now_s - self._next_tick) / self.interval_s) + 1
            self._next_tick += steps * self.interval_s

    def next_tick(self) -> float:
        """The next scheduled sample time (engine scheduling hook)."""
        return self._next_tick

    def advance_tick(self) -> float:
        """Consume the current tick and return the following one."""
        self._next_tick += self.interval_s
        return self._next_tick

    def finish(self, t_s: float) -> None:
        """Final off-grid sample at run end, so pending windows are flushed
        and window sums conserve the underlying totals."""
        if t_s > self.last_t_s:
            self.sample(t_s)

    # --------------------------------------------------------- serialisation

    def to_dict(self) -> dict:
        """Deterministic JSON-ready dump of every series plus SLO summary."""
        doc = {
            "interval_s": round(self.interval_s, 9),
            "samples": self.samples,
            "series": {name: self.series[name].to_dict() for name in sorted(self.series)},
        }
        if self.slo is not None:
            doc["slo"] = self.slo.summary()
        return doc
