"""Metrics: counters + deterministic streaming latency histograms.

:class:`LatencyHistogram` is a fixed-layout log-binned histogram (no
allocation growth, O(1) observe, deterministic quantiles -- same inputs,
same bins, same p50/p90/p99 on every run and platform).  Exact count, sum,
min and max are kept alongside, so means are exact and quantiles are only
bin-resolution approximations (1/32 of a decade, ~7.5% worst-case relative
error -- far below the cross-store effects the benchmarks compare).

:class:`MetricsRegistry` subsumes :class:`repro.sim.resources.Counters`: it
wraps the cluster's counter bag (same object, so the existing accounting
keeps flowing through) and adds per-(store, op) latency histograms plus
per-phase time accumulators fed from finished spans.
"""

from __future__ import annotations

import math

from repro.obs.span import Span
from repro.sim.resources import Counters

#: histogram layout: 32 bins per decade from 100 ns to 1000 s
_LO_S = 1e-7
_BINS_PER_DECADE = 32
_DECADES = 10
_NBINS = _BINS_PER_DECADE * _DECADES


class LatencyHistogram:
    """Log-binned streaming histogram of seconds with deterministic quantiles."""

    __slots__ = ("bins", "count", "total_s", "min_s", "max_s")

    def __init__(self) -> None:
        self.bins = [0] * (_NBINS + 2)  # + underflow [0] and overflow [-1]
        self.count = 0
        self.total_s = 0.0
        self.min_s = math.inf
        self.max_s = 0.0

    @staticmethod
    def _index(seconds: float) -> int:
        if seconds < _LO_S:
            return 0
        i = int(math.log10(seconds / _LO_S) * _BINS_PER_DECADE) + 1
        return min(i, _NBINS + 1)

    @staticmethod
    def _bin_upper_s(index: int) -> float:
        """Upper edge of a bin -- the quantile estimate (conservative)."""
        if index <= 0:
            return _LO_S
        return _LO_S * 10.0 ** (index / _BINS_PER_DECADE)

    def observe(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"negative latency {seconds}")
        self.bins[self._index(seconds)] += 1
        self.count += 1
        self.total_s += seconds
        self.min_s = min(self.min_s, seconds)
        self.max_s = max(self.max_s, seconds)

    def quantile(self, q: float) -> float:
        """The smallest bin edge covering fraction ``q`` of observations,
        clamped to the exact [min, max] envelope."""
        if not 0 <= q <= 1:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for i, n in enumerate(self.bins):
            seen += n
            if seen >= rank:
                if i > _NBINS:  # overflow bin has no finite upper edge
                    return self.max_s
                return min(max(self._bin_upper_s(i), self.min_s), self.max_s)
        return self.max_s  # pragma: no cover - rank <= count always hits

    def merge(self, other: LatencyHistogram) -> None:
        """Fold another histogram in, bin-wise.

        Because the bin layout is fixed (same edges in every instance), a
        merge is exact: the merged histogram is bin-for-bin identical to one
        that observed the concatenation of both streams, so quantiles,
        count, min and max agree exactly and the sum agrees up to float
        summation order (the hypothesis tests assert this).  The exporter
        uses it to aggregate per-store registries into cluster totals."""
        if other.count == 0:
            return
        for i, n in enumerate(other.bins):
            if n:
                self.bins[i] += n
        self.count += other.count
        self.total_s += other.total_s
        self.min_s = min(self.min_s, other.min_s)
        self.max_s = max(self.max_s, other.max_s)

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        """Deterministic stats dict (microseconds, rounded for stable JSON)."""
        if self.count == 0:
            return {"count": 0}
        us = 1e6
        return {
            "count": self.count,
            "mean_us": round(self.mean_s * us, 3),
            "min_us": round(self.min_s * us, 3),
            "max_us": round(self.max_s * us, 3),
            "p50_us": round(self.quantile(0.50) * us, 3),
            "p90_us": round(self.quantile(0.90) * us, 3),
            "p99_us": round(self.quantile(0.99) * us, 3),
        }


class MetricsRegistry:
    """Counters + per-op latency histograms + per-phase time, for one store.

    Wraps (not copies) a :class:`Counters` bag: counter mutations made
    anywhere in the cluster remain visible here, and ``add``/``get``/
    ``as_dict`` delegate, so the registry can stand in wherever a plain
    ``Counters`` was used.
    """

    def __init__(self, counters: Counters | None = None, store: str = ""):
        self.counters = counters if counters is not None else Counters()
        self.store = store
        self.op_latency: dict[str, LatencyHistogram] = {}
        self.phase_s: dict[tuple[str, str], float] = {}
        self.phase_n: dict[tuple[str, str], int] = {}

    # ------------------------------------------------------ Counters facade

    def add(self, name: str, amount: float = 1.0) -> None:
        self.counters.add(name, amount)

    def get(self, name: str) -> float:
        return self.counters.get(name)

    def __getitem__(self, name: str) -> float:
        return self.counters.get(name)

    def as_dict(self) -> dict[str, float]:
        return self.counters.as_dict()

    # ------------------------------------------------------------ ingestion

    def observe(self, op: str, seconds: float) -> None:
        hist = self.op_latency.get(op)
        if hist is None:
            hist = self.op_latency[op] = LatencyHistogram()
        hist.observe(seconds)

    def observe_span(self, span: Span) -> None:
        """Tracer sink: fold one finished root span into the aggregates.

        Only direct children count as phases; deeper nesting is the span
        tree's business (the breakdown mirrors ``OpResult.info['breakdown']``).
        """
        self.observe(span.name, span.duration_s)
        for name, seconds in span.phase_seconds().items():
            key = (span.name, name)
            self.phase_s[key] = self.phase_s.get(key, 0.0) + seconds
            self.phase_n[key] = self.phase_n.get(key, 0) + 1

    # ------------------------------------------------------------ reporting

    def phase_breakdown(self, op: str) -> dict[str, float]:
        """Mean seconds per phase for one op type."""
        return {
            phase: self.phase_s[(o, phase)] / self.phase_n[(o, phase)]
            for (o, phase) in sorted(self.phase_s)
            if o == op
        }

    def snapshot(self) -> dict:
        """Deterministic dict: op quantiles, phase means (us), counters."""
        ops = {op: h.summary() for op, h in sorted(self.op_latency.items())}
        phases: dict[str, dict[str, float]] = {}
        for (op, phase), total in sorted(self.phase_s.items()):
            phases.setdefault(op, {})[phase] = round(
                total / self.phase_n[(op, phase)] * 1e6, 3
            )
        return {
            "ops": ops,
            "phases": phases,
            "counters": {k: round(v, 6) for k, v in sorted(self.as_dict().items())},
        }
