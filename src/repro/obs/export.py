"""Exporters: Prometheus text exposition + journal JSONL dumps.

The registry's :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` is the
JSON-native form; this module renders the same data in the Prometheus text
exposition format so the simulated store can be scraped (or just diffed)
like a production one.  Output is fully deterministic: families, labels and
values are sorted, and floats are rendered with a fixed format -- two
same-seed runs produce byte-identical text (tests assert it).

Conventions:

* counters -> ``repro_counter_total{name="..."}``;
* event totals (per-kind, surviving ring eviction) ->
  ``repro_events_total{kind="..."}`` plus ``repro_events_dropped_total``;
* per-op latency histograms -> the summary form
  ``repro_op_latency_seconds{op=...,store=...,quantile=...}`` with the usual
  ``_count`` / ``_sum`` companions;
* per-phase mean seconds -> ``repro_phase_seconds_mean{op=...,phase=...}``.

With several registries (one per store over one cluster), per-store series
keep their ``store`` label and an aggregate series labelled
``store="_all"`` is added by bin-wise histogram merging
(:meth:`LatencyHistogram.merge` is exact -- same bins as observing the
concatenated stream).
"""

from __future__ import annotations

import json

from repro.obs.events import EventJournal
from repro.obs.metrics import LatencyHistogram, MetricsRegistry

_QUANTILES = (0.5, 0.9, 0.99)


def _fmt(value: float) -> str:
    """Fixed float rendering: integers without a dot, floats via %.12g."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return f"{float(value):.12g}"


def _labels(**labels: str) -> str:
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def _histogram_lines(
    lines: list[str], hist: LatencyHistogram, op: str, store: str
) -> None:
    base = {"op": op, "store": store}
    for q in _QUANTILES:
        lines.append(
            "repro_op_latency_seconds"
            + _labels(quantile=_fmt(q), **base)
            + f" {_fmt(round(hist.quantile(q), 9))}"
        )
    lines.append(
        "repro_op_latency_seconds_count" + _labels(**base) + f" {hist.count}"
    )
    lines.append(
        "repro_op_latency_seconds_sum"
        + _labels(**base)
        + f" {_fmt(round(hist.total_s, 9))}"
    )


def prometheus_text(
    registries: MetricsRegistry | list[MetricsRegistry],
    journal: EventJournal | None = None,
    telemetry=None,
    stations: dict | None = None,
    backpressure: dict | None = None,
) -> str:
    """Render registries (+ optional journal counts) as Prometheus text.

    ``telemetry`` (a :class:`~repro.obs.timeseries.TelemetrySampler` or its
    ``to_dict()`` form) appends timestamped ``repro_timeseries`` samples;
    ``stations`` / ``backpressure`` (the engine's end-of-run stats dicts)
    append per-station and per-log-buffer gauges."""
    if isinstance(registries, MetricsRegistry):
        registries = [registries]
    lines: list[str] = []

    # counters: registries over one cluster share the same bag; count each
    # distinct bag once, summing across genuinely different ones
    totals: dict[str, float] = {}
    seen_bags: set[int] = set()
    for reg in registries:
        if id(reg.counters) in seen_bags:
            continue
        seen_bags.add(id(reg.counters))
        for name, value in reg.as_dict().items():
            totals[name] = totals.get(name, 0.0) + value
    lines.append("# TYPE repro_counter_total counter")
    for name, value in sorted(totals.items()):
        lines.append(
            "repro_counter_total" + _labels(name=name) + f" {_fmt(round(value, 6))}"
        )

    if journal is not None:
        lines.append("# TYPE repro_events_total counter")
        for kind, n in sorted(journal.counts.items()):
            lines.append("repro_events_total" + _labels(kind=kind) + f" {n}")
        lines.append("# TYPE repro_events_dropped_total counter")
        lines.append(f"repro_events_dropped_total {journal.dropped}")

    lines.append("# TYPE repro_op_latency_seconds summary")
    merged: dict[str, LatencyHistogram] = {}
    for reg in sorted(registries, key=lambda r: r.store):
        for op, hist in sorted(reg.op_latency.items()):
            _histogram_lines(lines, hist, op, reg.store)
            agg = merged.get(op)
            if agg is None:
                agg = merged[op] = LatencyHistogram()
            agg.merge(hist)
    if len(registries) > 1:
        for op, hist in sorted(merged.items()):
            _histogram_lines(lines, hist, op, "_all")

    lines.append("# TYPE repro_phase_seconds_mean gauge")
    for reg in sorted(registries, key=lambda r: r.store):
        for (op, phase) in sorted(reg.phase_s):
            mean = reg.phase_s[(op, phase)] / reg.phase_n[(op, phase)]
            lines.append(
                "repro_phase_seconds_mean"
                + _labels(op=op, phase=phase, store=reg.store)
                + f" {_fmt(round(mean, 9))}"
            )

    if stations or backpressure:
        lines.append(engine_gauges_text(stations or {}, backpressure or {}).rstrip("\n"))
    if telemetry is not None:
        lines.append(timeseries_prometheus(telemetry).rstrip("\n"))

    return "\n".join(lines) + "\n"


# ----------------------------------------------------------- engine gauges


def engine_gauges_text(stations: dict, backpressure: dict) -> str:
    """Engine end-of-run station/log-buffer stats as Prometheus gauges.

    ``stations`` is ``{station_name: Station.stats(...) dict}``;
    ``backpressure`` is ``{node_id: LogBufferModel.stats() dict}`` -- the
    exact shapes :class:`~repro.engine.core.EngineResult` carries."""
    lines: list[str] = []
    for key in sorted({k for stats in stations.values() for k in stats}):
        lines.append(f"# TYPE repro_station_{key} gauge")
        for name in sorted(stations):
            value = stations[name].get(key)
            if value is not None:
                lines.append(
                    f"repro_station_{key}"
                    + _labels(station=name)
                    + f" {_fmt(value)}"
                )
    for key in sorted({k for stats in backpressure.values() for k in stats}):
        lines.append(f"# TYPE repro_log_buffer_{key} gauge")
        for nid in sorted(backpressure):
            value = backpressure[nid].get(key)
            if value is not None:
                lines.append(
                    f"repro_log_buffer_{key}" + _labels(node=nid) + f" {_fmt(value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


# -------------------------------------------------------- telemetry series


def _telemetry_doc(telemetry) -> dict:
    """Accept a TelemetrySampler or its ``to_dict()`` form."""
    if hasattr(telemetry, "to_dict"):
        return telemetry.to_dict()
    return telemetry


def timeseries_csv(telemetry) -> str:
    """Byte-stable CSV dump: one ``series,t_s,value`` row per point,
    series in sorted order, fixed float formatting."""
    doc = _telemetry_doc(telemetry)
    lines = ["series,t_s,value"]
    series = doc.get("series", {})
    for name in sorted(series):
        for t_s, value in series[name]["points"]:
            lines.append(f"{name},{t_s:.9f},{value:.9f}")
    return "\n".join(lines) + "\n"


def timeseries_jsonl(telemetry) -> str:
    """Byte-stable JSONL dump: one sorted-keys JSON object per point."""
    doc = _telemetry_doc(telemetry)
    lines: list[str] = []
    series = doc.get("series", {})
    for name in sorted(series):
        kind = series[name].get("kind", "series")
        for t_s, value in series[name]["points"]:
            lines.append(
                json.dumps(
                    {"kind": kind, "series": name, "t_s": t_s, "value": value},
                    sort_keys=True,
                )
            )
    return "\n".join(lines) + ("\n" if lines else "")


def timeseries_prometheus(telemetry) -> str:
    """Telemetry points as timestamped Prometheus samples.

    Prometheus timestamps are integer milliseconds; simulated time maps
    1 sim-second -> 1000 ms, losing sub-ms resolution in the *timestamp
    column only* (the CSV/JSONL forms keep the full 1e-9 rounding)."""
    doc = _telemetry_doc(telemetry)
    lines = ["# TYPE repro_timeseries gauge"]
    series = doc.get("series", {})
    for name in sorted(series):
        for t_s, value in series[name]["points"]:
            lines.append(
                "repro_timeseries"
                + _labels(series=name)
                + f" {_fmt(value)} {int(round(t_s * 1e3))}"
            )
    return "\n".join(lines) + "\n"


def write_timeseries_csv(telemetry, path: str) -> None:
    """Dump telemetry to a CSV file."""
    with open(path, "w") as fh:
        fh.write(timeseries_csv(telemetry))


def write_timeseries_jsonl(telemetry, path: str) -> None:
    """Dump telemetry to a JSONL file."""
    with open(path, "w") as fh:
        fh.write(timeseries_jsonl(telemetry))


def journal_jsonl(journal: EventJournal) -> str:
    """The journal's byte-stable JSONL dump (one event per line)."""
    return journal.to_jsonl()


def write_journal(journal: EventJournal, path: str) -> None:
    """Dump the journal to a JSONL file."""
    with open(path, "w") as fh:
        fh.write(journal.to_jsonl())
