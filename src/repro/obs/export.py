"""Exporters: Prometheus text exposition + journal JSONL dumps.

The registry's :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` is the
JSON-native form; this module renders the same data in the Prometheus text
exposition format so the simulated store can be scraped (or just diffed)
like a production one.  Output is fully deterministic: families, labels and
values are sorted, and floats are rendered with a fixed format -- two
same-seed runs produce byte-identical text (tests assert it).

Conventions:

* counters -> ``repro_counter_total{name="..."}``;
* event totals (per-kind, surviving ring eviction) ->
  ``repro_events_total{kind="..."}`` plus ``repro_events_dropped_total``;
* per-op latency histograms -> the summary form
  ``repro_op_latency_seconds{op=...,store=...,quantile=...}`` with the usual
  ``_count`` / ``_sum`` companions;
* per-phase mean seconds -> ``repro_phase_seconds_mean{op=...,phase=...}``.

With several registries (one per store over one cluster), per-store series
keep their ``store`` label and an aggregate series labelled
``store="_all"`` is added by bin-wise histogram merging
(:meth:`LatencyHistogram.merge` is exact -- same bins as observing the
concatenated stream).
"""

from __future__ import annotations

from repro.obs.events import EventJournal
from repro.obs.metrics import LatencyHistogram, MetricsRegistry

_QUANTILES = (0.5, 0.9, 0.99)


def _fmt(value: float) -> str:
    """Fixed float rendering: integers without a dot, floats via %.12g."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return f"{float(value):.12g}"


def _labels(**labels: str) -> str:
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def _histogram_lines(
    lines: list[str], hist: LatencyHistogram, op: str, store: str
) -> None:
    base = {"op": op, "store": store}
    for q in _QUANTILES:
        lines.append(
            "repro_op_latency_seconds"
            + _labels(quantile=_fmt(q), **base)
            + f" {_fmt(round(hist.quantile(q), 9))}"
        )
    lines.append(
        "repro_op_latency_seconds_count" + _labels(**base) + f" {hist.count}"
    )
    lines.append(
        "repro_op_latency_seconds_sum"
        + _labels(**base)
        + f" {_fmt(round(hist.total_s, 9))}"
    )


def prometheus_text(
    registries: MetricsRegistry | list[MetricsRegistry],
    journal: EventJournal | None = None,
) -> str:
    """Render registries (+ optional journal counts) as Prometheus text."""
    if isinstance(registries, MetricsRegistry):
        registries = [registries]
    lines: list[str] = []

    # counters: registries over one cluster share the same bag; count each
    # distinct bag once, summing across genuinely different ones
    totals: dict[str, float] = {}
    seen_bags: set[int] = set()
    for reg in registries:
        if id(reg.counters) in seen_bags:
            continue
        seen_bags.add(id(reg.counters))
        for name, value in reg.as_dict().items():
            totals[name] = totals.get(name, 0.0) + value
    lines.append("# TYPE repro_counter_total counter")
    for name, value in sorted(totals.items()):
        lines.append(
            "repro_counter_total" + _labels(name=name) + f" {_fmt(round(value, 6))}"
        )

    if journal is not None:
        lines.append("# TYPE repro_events_total counter")
        for kind, n in sorted(journal.counts.items()):
            lines.append("repro_events_total" + _labels(kind=kind) + f" {n}")
        lines.append("# TYPE repro_events_dropped_total counter")
        lines.append(f"repro_events_dropped_total {journal.dropped}")

    lines.append("# TYPE repro_op_latency_seconds summary")
    merged: dict[str, LatencyHistogram] = {}
    for reg in sorted(registries, key=lambda r: r.store):
        for op, hist in sorted(reg.op_latency.items()):
            _histogram_lines(lines, hist, op, reg.store)
            agg = merged.get(op)
            if agg is None:
                agg = merged[op] = LatencyHistogram()
            agg.merge(hist)
    if len(registries) > 1:
        for op, hist in sorted(merged.items()):
            _histogram_lines(lines, hist, op, "_all")

    lines.append("# TYPE repro_phase_seconds_mean gauge")
    for reg in sorted(registries, key=lambda r: r.store):
        for (op, phase) in sorted(reg.phase_s):
            mean = reg.phase_s[(op, phase)] / reg.phase_n[(op, phase)]
            lines.append(
                "repro_phase_seconds_mean"
                + _labels(op=op, phase=phase, store=reg.store)
                + f" {_fmt(round(mean, 9))}"
            )

    return "\n".join(lines) + "\n"


def journal_jsonl(journal: EventJournal) -> str:
    """The journal's byte-stable JSONL dump (one event per line)."""
    return journal.to_jsonl()


def write_journal(journal: EventJournal, path: str) -> None:
    """Dump the journal to a JSONL file."""
    with open(path, "w") as fh:
        fh.write(journal.to_jsonl())
