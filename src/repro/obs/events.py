"""Flight recorder: typed, sim-clock-stamped structured events.

Per-op spans (:mod:`repro.obs.span`) answer "where did this request's time
go"; the *event journal* answers the system-level question the evaluation
hinges on: when did log buffers flush, when did PLM's lazy merge fire, which
fault windows were open while latency shifted, when did a stale parity get
marked and recovered.  Every subsystem that changes durable or availability
state emits an :class:`Event` into one cluster-wide :class:`EventJournal`:

* ``logstore/`` -- ``log_flush`` (all four schemes), ``lazy_merge`` (PLM);
* ``cluster/node.py`` -- ``buffer_merge`` / ``buffer_drop``;
* ``core/`` -- ``gc_pass``, ``scrub_pass``, ``repair_start`` /
  ``repair_done``, ``stale_mark`` / ``stale_recover``;
* ``chaos/`` -- ``fault_inject`` / ``fault_heal``, ``retry`` / ``backoff``;
* ``heal/`` -- ``heal_detect`` / ``heal_propose`` / ``heal_verify`` /
  ``heal_execute`` / ``heal_rollback`` (the control-plane pipeline stages)
  and ``scheme_switch`` (a log node migrating its on-disk layout).

The journal is a bounded ring (oldest events drop first; per-kind counts
survive eviction) stamped from the simulated clock, so a same-seed run
produces the same events with the same timestamps -- ``to_jsonl()`` is
byte-identical across runs, which the tests and CI enforce.  When wired to
the cluster's :class:`~repro.sim.resources.Counters` bag, every ``emit``
also bumps ``events_<kind>``, so event rates land in the same profile
snapshots as every other counter.
"""

from __future__ import annotations

import json
from collections import deque

from repro.sim.clock import SimClock
from repro.sim.resources import Counters

#: the closed event taxonomy -- emit() rejects anything else, so a typo in
#: an emitter is a test failure, not a silently-new kind
EVENT_KINDS = frozenset(
    {
        "log_flush",
        "lazy_merge",
        "buffer_merge",
        "buffer_drop",
        "gc_pass",
        "scrub_pass",
        "repair_start",
        "repair_done",
        "fault_inject",
        "fault_heal",
        "stale_mark",
        "stale_recover",
        "retry",
        "backoff",
        # self-healing control plane (repro.heal): one event per pipeline
        # stage, so a journal slice shows detect -> propose -> verify ->
        # execute (-> rollback) brackets for every remediation action
        "heal_detect",
        "heal_propose",
        "heal_verify",
        "heal_execute",
        "heal_rollback",
        "scheme_switch",
        # concurrent engine (repro.engine): run brackets, admission rejects,
        # flush completions and the backpressure on/off edges -- the same
        # journal form the timeline attribution joins against
        "engine_run_start",
        "engine_run_end",
        "engine_reject",
        "engine_flush",
        "engine_backpressure_on",
        "engine_backpressure_off",
        # sim-time telemetry (repro.obs.timeseries): SLO burn-rate threshold
        # crossings, edge-detected per episode -- the heal detector consumes
        # these as slo_burn incidents
        "telemetry_slo_burn",
        "telemetry_slo_ok",
        # determinism sanitizer (repro.devtools.simsan): one event per
        # slice/fixture comparison plus one per order-sensitivity hazard and
        # per runtime access violation, journaled into the sanitize report
        "sanitize_slice",
        "sanitize_fixture",
        "sanitize_hazard",
        "sanitize_violation",
    }
)


class Event:
    """One journal entry: kind + simulated timestamp + sorted attributes."""

    __slots__ = ("t_s", "kind", "attrs")

    def __init__(self, t_s: float, kind: str, attrs: dict):
        self.t_s = t_s
        self.kind = kind
        self.attrs = attrs

    def to_dict(self) -> dict:
        """JSON-ready form; floats rounded so serialisation is stable."""
        attrs = {
            k: round(v, 9) if isinstance(v, float) else v
            for k, v in sorted(self.attrs.items())
        }
        return {"t_s": round(self.t_s, 9), "kind": self.kind, "attrs": attrs}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self.attrs.items()))
        return f"Event({self.t_s * 1e3:.3f}ms, {self.kind}, {inner})"


class EventJournal:
    """Bounded deterministic ring of events over the simulated clock.

    ``emit`` stamps the cluster clock, validates the kind against
    :data:`EVENT_KINDS`, and (when a counter bag is attached) bumps
    ``events_<kind>`` so event totals reach metric snapshots even after the
    ring evicts the events themselves.
    """

    def __init__(
        self,
        clock: SimClock,
        counters: Counters | None = None,
        capacity: int = 4096,
    ):
        if capacity < 1:
            raise ValueError(f"journal capacity must be >= 1, got {capacity}")
        self.clock = clock
        self.counters = counters
        self.capacity = int(capacity)
        self._ring: deque[Event] = deque(maxlen=self.capacity)
        self.counts: dict[str, int] = {}
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._ring)

    def emit(self, kind: str, /, **attrs) -> Event:
        """Record one event at the current simulated time.

        ``kind`` is positional-only so attrs may themselves carry a ``kind``
        key (fault events do: the event kind is ``fault_inject``, the fault
        kind ``crash``/``blip``/...)."""
        if kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown event kind {kind!r}; taxonomy: {sorted(EVENT_KINDS)}"
            )
        event = Event(self.clock.now, kind, attrs)
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(event)
        self.counts[kind] = self.counts.get(kind, 0) + 1
        if self.counters is not None:
            self.counters.add(f"events_{kind}")
        return event

    # ------------------------------------------------------------- inspection

    def events(self) -> list[Event]:
        """Retained events, oldest first."""
        return list(self._ring)

    def tail(self, n: int = 20) -> list[Event]:
        """The newest ``n`` retained events, oldest of them first."""
        if n <= 0:
            return []
        return list(self._ring)[-n:]

    def of_kind(self, kind: str) -> list[Event]:
        return [e for e in self._ring if e.kind == kind]

    def to_dicts(self) -> list[dict]:
        return [e.to_dict() for e in self._ring]

    def to_jsonl(self) -> str:
        """Byte-stable JSONL dump (sorted keys, one event per line)."""
        lines = [json.dumps(e.to_dict(), sort_keys=True) for e in self._ring]
        return "\n".join(lines) + ("\n" if lines else "")

    def drain(self) -> list[Event]:
        """Remove and return retained events (per-kind counts survive)."""
        out = list(self._ring)
        self._ring.clear()
        return out


class _NullJournal(EventJournal):
    """Absorbs emissions at zero cost when no journal is wired up (e.g. a
    log scheme constructed stand-alone in a unit test)."""

    def __init__(self):
        super().__init__(SimClock(), None, capacity=1)

    def emit(self, kind: str, /, **attrs) -> Event:  # noqa: ARG002
        return Event(0.0, kind, attrs)


NULL_JOURNAL = _NullJournal()
