"""Span-based tracing over the simulated clock.

The stores compute request latency *analytically* -- each phase is a float
the cost model produces, and the clock advances only after the op returns.
A :class:`Span` therefore records phase durations the store assigns, laid
out sequentially from the op's simulated start time, rather than measuring
wall-clock deltas.  The contract the tests enforce: when an op finishes its
root span with the latency it reports, ``root.duration_s`` equals
``OpResult.latency_s`` exactly, and the children name where that time went
(``update -> encode_delta -> ship_delta -> log_ack``,
``degraded_read -> fetch_survivors -> fetch_logged_parity -> decode``, ...).

:class:`Tracer` hands out root spans, keeps a bounded ring of finished
trees, and fans finished roots out to sinks (the
:class:`~repro.obs.metrics.MetricsRegistry` registers itself as one).  A
disabled tracer hands out the shared :data:`NULL_SPAN`, so hot paths pay a
single attribute check.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.sim.clock import SimClock


class Span:
    """One named interval with sequentially-laid-out children."""

    __slots__ = ("name", "start_s", "duration_s", "attrs", "children")

    def __init__(self, name: str, start_s: float, **attrs):
        self.name = name
        self.start_s = start_s
        self.duration_s = 0.0
        self.attrs: dict = attrs
        self.children: list[Span] = []

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def child(self, name: str, duration_s: float = 0.0, **attrs) -> "Span":
        """Append a child phase starting where the previous sibling ended."""
        start = self.children[-1].end_s if self.children else self.start_s
        sub = Span(name, start, **attrs)
        sub.duration_s = float(duration_s)
        self.children.append(sub)
        return sub

    def finish(self, duration_s: float) -> "Span":
        """Set the span's total duration (the op's reported latency)."""
        self.duration_s = float(duration_s)
        return self

    # ------------------------------------------------------------- inspection

    def phase_seconds(self) -> dict[str, float]:
        """Direct children's durations by name (repeats summed)."""
        out: dict[str, float] = {}
        for c in self.children:
            out[c.name] = out.get(c.name, 0.0) + c.duration_s
        return out

    def to_dict(self) -> dict:
        """JSON-friendly form; floats kept verbatim (determinism is the
        caller's concern -- same seed, same floats)."""
        d: dict = {"name": self.name, "start_s": self.start_s, "duration_s": self.duration_s}
        if self.attrs:
            d["attrs"] = {k: v for k, v in sorted(self.attrs.items())}
        if self.children:
            d["children"] = [c.to_dict() for c in self.children]
        return d

    def render(self, indent: int = 0) -> str:
        """ASCII tree, one line per span, durations in microseconds."""
        pad = "  " * indent
        attrs = "".join(f" {k}={v}" for k, v in sorted(self.attrs.items()))
        lines = [f"{pad}{self.name}  {self.duration_s * 1e6:.3f}us{attrs}"]
        for c in self.children:
            lines.append(c.render(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span({self.name!r}, start={self.start_s:.6f}, "
            f"dur={self.duration_s * 1e6:.1f}us, children={len(self.children)})"
        )


class _NullSpan(Span):
    """Absorbs the tracing API at zero cost when tracing is disabled."""

    def __init__(self):
        super().__init__("null", 0.0)

    def child(self, name: str, duration_s: float = 0.0, **attrs) -> "Span":
        return self

    def finish(self, duration_s: float) -> "Span":
        return self


NULL_SPAN = _NullSpan()


class Tracer:
    """Produces root spans stamped with simulated time; retains the last
    ``keep_last`` finished trees and notifies registered sinks."""

    def __init__(self, clock: SimClock, keep_last: int = 256, enabled: bool = True):
        self.clock = clock
        self.enabled = enabled
        self.spans: deque[Span] = deque(maxlen=keep_last)
        self._sinks: list[Callable[[Span], None]] = []

    def add_sink(self, sink: Callable[[Span], None]) -> None:
        self._sinks.append(sink)

    def start(self, name: str, **attrs) -> Span:
        """Open a root span at the current simulated time."""
        if not self.enabled:
            return NULL_SPAN
        return Span(name, self.clock.now, **attrs)

    def finish(self, span: Span, duration_s: float) -> Span:
        """Close a root span with the op's reported latency and publish it."""
        if span is NULL_SPAN:
            return span
        span.finish(duration_s)
        self.spans.append(span)
        for sink in self._sinks:
            sink(span)
        return span

    @property
    def last(self) -> Span | None:
        return self.spans[-1] if self.spans else None

    def drain(self) -> list[Span]:
        """Remove and return the retained span trees, oldest first."""
        out = list(self.spans)
        self.spans.clear()
        return out
