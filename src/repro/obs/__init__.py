"""Observability: span tracing + metrics over the simulated clock.

``init_observability(store)`` is the one-call wiring every store performs in
its constructor: it attaches a :class:`Tracer` bound to the cluster clock and
a :class:`MetricsRegistry` wrapping the cluster's counter bag, and registers
the registry as a span sink -- so every finished op span lands in the per-op
latency histograms automatically.
"""

from repro.obs.events import EVENT_KINDS, NULL_JOURNAL, Event, EventJournal
from repro.obs.export import (
    engine_gauges_text,
    journal_jsonl,
    prometheus_text,
    timeseries_csv,
    timeseries_jsonl,
    timeseries_prometheus,
    write_journal,
    write_timeseries_csv,
    write_timeseries_jsonl,
)
from repro.obs.metrics import LatencyHistogram, MetricsRegistry
from repro.obs.span import NULL_SPAN, Span, Tracer
from repro.obs.timeseries import (
    Gauge,
    SLOTracker,
    Series,
    SlidingQuantile,
    TelemetrySampler,
    WindowedCounter,
)

__all__ = [
    "EVENT_KINDS",
    "Event",
    "EventJournal",
    "Gauge",
    "LatencyHistogram",
    "MetricsRegistry",
    "NULL_JOURNAL",
    "NULL_SPAN",
    "SLOTracker",
    "Series",
    "SlidingQuantile",
    "Span",
    "TelemetrySampler",
    "Tracer",
    "WindowedCounter",
    "engine_gauges_text",
    "init_observability",
    "journal_jsonl",
    "prometheus_text",
    "timeseries_csv",
    "timeseries_jsonl",
    "timeseries_prometheus",
    "write_journal",
    "write_timeseries_csv",
    "write_timeseries_jsonl",
]


def init_observability(store, keep_last: int = 256) -> None:
    """Attach ``store.tracer`` and ``store.metrics`` to a store that owns a
    cluster (clock + counters)."""
    store.tracer = Tracer(store.cluster.clock, keep_last=keep_last)
    store.metrics = MetricsRegistry(store.cluster.counters, store=store.name)
    store.tracer.add_sink(store.metrics.observe_span)
