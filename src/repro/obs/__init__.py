"""Observability: span tracing + metrics over the simulated clock.

``init_observability(store)`` is the one-call wiring every store performs in
its constructor: it attaches a :class:`Tracer` bound to the cluster clock and
a :class:`MetricsRegistry` wrapping the cluster's counter bag, and registers
the registry as a span sink -- so every finished op span lands in the per-op
latency histograms automatically.
"""

from repro.obs.events import EVENT_KINDS, NULL_JOURNAL, Event, EventJournal
from repro.obs.export import journal_jsonl, prometheus_text, write_journal
from repro.obs.metrics import LatencyHistogram, MetricsRegistry
from repro.obs.span import NULL_SPAN, Span, Tracer

__all__ = [
    "EVENT_KINDS",
    "Event",
    "EventJournal",
    "LatencyHistogram",
    "MetricsRegistry",
    "NULL_JOURNAL",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "init_observability",
    "journal_jsonl",
    "prometheus_text",
    "write_journal",
]


def init_observability(store, keep_last: int = 256) -> None:
    """Attach ``store.tracer`` and ``store.metrics`` to a store that owns a
    cluster (clock + counters)."""
    store.tracer = Tracer(store.cluster.clock, keep_last=keep_last)
    store.metrics = MetricsRegistry(store.cluster.counters, store=store.name)
    store.tracer.add_sink(store.metrics.observe_span)
