"""Compatibility layer between the legacy closed-loop model and the engine.

The original :func:`repro.sim.closedloop.simulate` drove recorded
:class:`~repro.sim.closedloop.OpDemand`\\ s through two shared resources
(proxy CPU then proxy NIC) with closed-loop clients.  Its numbers feed
committed goldens (the heal slice's chaos fingerprints in BENCH_PR3.json
depend on them), so the arithmetic lives on here **byte-identical** as
:func:`simulate_demands`; ``closedloop.simulate`` is now a deprecation shim
over it.

``demands_to_jobs`` re-expresses the same demands as engine
:class:`~repro.engine.jobs.JobSpec`\\ s (CPU stage -> NIC stage -> overlap
delay), and :func:`simulate_engine` runs them through the concurrent engine
and folds the result back into a :class:`ClosedLoopResult` -- the form the
``benchmarks/`` callers consume.  The two models agree qualitatively (same
saturation behaviour) but not bit-for-bit: the legacy model processes ops in
*list* order while the engine processes them in *event* order, which is the
honest concurrent semantics.  New code should use the engine; this module is
the bridge.
"""

from __future__ import annotations

from repro.engine.admission import AdmissionConfig
from repro.engine.core import Engine, EngineConfig
from repro.engine.jobs import JobSpec, Stage
from repro.sim.closedloop import ClosedLoopResult, OpDemand
from repro.sim.params import HardwareProfile
from repro.sim.resources import Resource


def simulate_demands(
    demands: list[OpDemand],
    profile: HardwareProfile,
    concurrency: int | None = None,
) -> ClosedLoopResult:
    """The legacy closed-loop arithmetic, preserved byte-identically.

    Operations are dealt to clients round-robin *in list order*; a client
    issues its next operation the moment the previous one completes.
    Completion = NIC-done + remote_s; the CPU and NIC each process one op at
    a time.  An empty demand list is a zero-length run, not an error.
    """
    if not demands:
        return ClosedLoopResult(
            operations=0,
            makespan_s=0.0,
            throughput_ops_s=0.0,
            mean_response_s=0.0,
            cpu_utilisation=0.0,
            nic_utilisation=0.0,
        )
    c = profile.client_concurrency if concurrency is None else concurrency
    if c < 1:
        raise ValueError(f"concurrency must be >= 1, got {c}")
    cpu = Resource("proxy-cpu")
    nic = Resource("proxy-nic")
    client_free = [0.0] * min(c, len(demands))
    makespan = 0.0
    total_response = 0.0
    for i, op in enumerate(demands):
        client = i % len(client_free)
        arrival = client_free[client]
        cpu_done = cpu.reserve(arrival, op.cpu_s)
        nic_done = nic.reserve(cpu_done, op.nic_bytes / profile.net_bandwidth_Bps)
        completion = nic_done + op.remote_s
        client_free[client] = completion
        total_response += completion - arrival
        if completion > makespan:
            makespan = completion
    n = len(demands)
    return ClosedLoopResult(
        operations=n,
        makespan_s=makespan,
        throughput_ops_s=n / makespan if makespan > 0 else float("inf"),
        mean_response_s=total_response / n,
        cpu_utilisation=cpu.utilisation(makespan),
        nic_utilisation=nic.utilisation(makespan),
    )


def demands_to_jobs(
    demands: list[OpDemand], profile: HardwareProfile
) -> list[JobSpec]:
    """One engine job per demand: proxy CPU stage, proxy NIC stage, then the
    overlappable remote remainder as a pure delay."""
    jobs: list[JobSpec] = []
    for d in demands:
        stages: list[Stage] = []
        if d.cpu_s > 0:
            stages.append(Stage("proxy_cpu", d.cpu_s))
        nic_s = d.nic_bytes / profile.net_bandwidth_Bps
        if nic_s > 0:
            stages.append(Stage("proxy_nic", nic_s))
        if d.remote_s > 0:
            stages.append(Stage("delay", d.remote_s))
        jobs.append(JobSpec(op="op", stages=tuple(stages)))
    return jobs


def simulate_engine(
    demands: list[OpDemand],
    profile: HardwareProfile,
    concurrency: int | None = None,
) -> ClosedLoopResult:
    """Run recorded demands through the concurrent engine; legacy result shape.

    This is what the ``benchmarks/`` closed-loop callers use now: same
    demands, same closed-loop client model, but served by the engine's event
    loop (so it composes with admission control, faults and backpressure when
    callers want them).
    """
    c = profile.client_concurrency if concurrency is None else concurrency
    if c < 1:
        raise ValueError(f"concurrency must be >= 1, got {c}")
    if not demands:
        return simulate_demands(demands, profile, concurrency)
    jobs = demands_to_jobs(demands, profile)
    cfg = EngineConfig(
        concurrency=min(c, len(jobs)), admission=AdmissionConfig(window=None)
    )
    result = Engine(jobs, profile, cfg).run()
    cpu = result.stations.get("proxy_cpu", {})
    nic = result.stations.get("proxy_nic", {})
    mean_us = result.overall.get("mean_us", 0.0)
    return ClosedLoopResult(
        operations=result.jobs_completed,
        makespan_s=result.makespan_s,
        throughput_ops_s=(
            result.throughput_ops_s if result.makespan_s > 0 else float("inf")
        ),
        mean_response_s=mean_us / 1e6,
        cpu_utilisation=cpu.get("utilisation", 0.0),
        nic_utilisation=nic.get("utilisation", 0.0),
    )
