"""Job descriptors: store ops decomposed into per-station stage demands.

The stores cost every request analytically and lay the result out as a span
tree (:mod:`repro.obs.span`): one root per op, one child per phase, each
child carrying the phase's duration and -- for node exchanges -- the node it
talked to.  The concurrent engine needs exactly that information, but keyed
by *which shared device the phase occupies* rather than by phase name, so a
:class:`JobSpec` re-expresses an op as an ordered list of :class:`Stage`\\ s:

* ``proxy_cpu``    -- encode/decode/memcpy work serialised on the proxy CPU;
* ``proxy_nic``    -- fan-out writes whose payload bytes serialise on the
  proxy NIC (the libmemcached behaviour ``parallel_puts`` models);
* ``nic:<node>``   -- synchronous per-node GET round trips, queued at the
  target node's NIC (one server per node);
* ``delay``        -- pure latency with no shared device (client hop,
  propagation, already-acknowledged log waits): overlaps freely across
  concurrent jobs.

The decomposition is *exact* by construction: any part of the root latency
the children do not cover becomes a trailing ``delay`` stage, so a job's
total service demand equals the op's single-request latency and the C=1
engine reproduces the sequential cost model (the compatibility tests assert
this).  Queueing then emerges only from concurrency, never from re-costing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs import init_observability
from repro.obs.span import Span
from repro.workloads.ycsb import Operation, Request

#: phase names whose time is proxy-CPU occupancy
CPU_PHASES = frozenset({"encode_delta", "decode", "memcpy", "seal_stripe", "gc"})

#: fan-out write phases: payload bytes serialise on the proxy NIC
PROXY_NIC_PHASES = frozenset(
    {"ship_delta", "put_replicas", "put_object", "put_tombstone"}
)

#: synchronous GET phases served by the target node's NIC
NODE_READ_PHASES = frozenset(
    {"fetch_object", "read_old", "read_old_xor", "read_old_parities", "fetch_replica"}
)

#: residuals smaller than this are float dust, not a real phase
_RESIDUAL_EPS_S = 1e-12


@dataclass(frozen=True)
class Stage:
    """One stop of a job: ``service_s`` seconds of demand at ``station``."""

    station: str
    service_s: float

    def __post_init__(self) -> None:
        if self.service_s < 0:
            raise ValueError(f"negative stage demand: {self}")


@dataclass(frozen=True)
class JobSpec:
    """One operation as the engine runs it: ordered stages + log-write load.

    ``log_bytes`` is the total parity-delta payload the op appends to log-node
    buffers (0 for reads); the engine spreads it over ``log_nodes`` and uses
    it to drive the buffer-occupancy/flush/backpressure model.
    """

    op: str
    stages: tuple[Stage, ...]
    log_bytes: int = 0
    log_nodes: tuple[str, ...] = ()

    @property
    def service_s(self) -> float:
        """Total service demand = the op's single-request latency."""
        return sum(s.service_s for s in self.stages)


@dataclass
class JobTrace:
    """Bookkeeping for one in-flight job instance (engine-internal)."""

    spec: JobSpec
    client: int
    issued_s: float
    admitted_s: float = 0.0
    stage_index: int = 0
    admission_wait_s: float = 0.0
    station_wait_s: float = 0.0
    backpressure_wait_s: float = 0.0
    stage_log: list = field(default_factory=list)  # (station, wait_s, service_s)


def classify_phase(span: Span) -> list[Stage]:
    """Map one span child to its stage(s).

    Multi-node read phases (``read_old_xor`` carries ``node`` and
    ``xor_node``) split their duration evenly over the nodes involved --
    the split preserves the phase total, which is all C=1 compatibility
    needs; per-node attribution only shapes where queueing happens.
    """
    name = span.name
    dur = span.duration_s
    if dur <= 0:
        return []
    if name in CPU_PHASES:
        return [Stage("proxy_cpu", dur)]
    if name in PROXY_NIC_PHASES:
        return [Stage("proxy_nic", dur)]
    if name in NODE_READ_PHASES:
        nodes = [
            str(v)
            for k, v in sorted(span.attrs.items())
            if k in ("node", "xor_node") and v is not None
        ]
        if nodes:
            share = dur / len(nodes)
            return [Stage(f"nic:{nid}", share) for nid in nodes]
        return [Stage("proxy_nic", dur)]
    # client_hop, log_ack, fetch_survivors, fetch_logged_parity, ...:
    # propagation / overlappable remote time -- no shared station
    return [Stage("delay", dur)]


def job_from_span(
    span: Span,
    op: str | None = None,
    log_bytes: int = 0,
    log_nodes: tuple[str, ...] = (),
) -> JobSpec:
    """Decompose one finished root span into a :class:`JobSpec`.

    The children become stages in order; any uncovered remainder of the root
    duration becomes a trailing ``delay`` stage so the stage total equals the
    op's reported latency exactly.
    """
    stages: list[Stage] = []
    covered = 0.0
    for child in span.children:
        for stage in classify_phase(child):
            stages.append(stage)
            covered += stage.service_s
    residual = span.duration_s - covered
    if residual > _RESIDUAL_EPS_S:
        stages.append(Stage("delay", residual))
    return JobSpec(
        op=op if op is not None else span.name,
        stages=tuple(stages),
        log_bytes=int(log_bytes),
        log_nodes=tuple(log_nodes),
    )


def derive_jobs(store, requests: list[Request]) -> list[JobSpec]:
    """Execute ``requests`` against ``store`` and capture one JobSpec per op.

    This is the measurement pass: the store's own cost model produces each
    op's span tree (and counter deltas), and the engine replays the derived
    jobs at any concurrency.  The store should already be loaded
    (:func:`repro.bench.runner.load_store`); its observability is
    re-initialised so load-phase spans do not leak into the job stream.
    """
    init_observability(store, keep_last=4)
    clock = store.cluster.clock
    counters = store.counters
    value_size = store.cfg.value_size
    log_ids = tuple(store.cluster.log_ids()) if hasattr(store.cluster, "log_ids") else ()
    jobs: list[JobSpec] = []
    for req in requests:
        deltas_before = counters["parity_deltas_sent"]
        if req.op is Operation.READ:
            res = store.read(req.key)
        elif req.op is Operation.UPDATE:
            res = store.update(req.key)
        elif req.op is Operation.WRITE:
            res = store.write(req.key)
        else:
            res = store.delete(req.key)
        clock.advance(res.latency_s)
        n_deltas = int(counters["parity_deltas_sent"] - deltas_before)
        span = store.tracer.last
        jobs.append(
            job_from_span(
                span,
                op=req.op.value,
                log_bytes=n_deltas * value_size,
                log_nodes=log_ids if n_deltas else (),
            )
        )
    return jobs
