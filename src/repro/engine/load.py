"""Throughput-vs-latency load curves: the engine's headline experiment.

``run_load`` measures one store/workload once (deriving the per-op stage
demands), then replays the identical job stream through the concurrent
engine at each requested client concurrency.  The output is the curve every
systems paper plots: offered concurrency on the x-axis, achieved throughput
and response-time quantiles on the y -- and because service demands are
fixed, the *shape* of the curve is pure queueing: throughput climbs until
the hottest station saturates, then plateaus while p99 grows with the queue
(the saturation knee the acceptance tests assert).

With ``expected_faults > 0`` each concurrency point is run twice -- clean,
then under a seeded fault schedule sized to the clean run's makespan -- and
the faulted run's samples are joined with its journal through
:func:`repro.analysis.timeline.fault_windows` / ``attribute_latency``, so
the JSON shows *which* fault window amplified the tail, not just that the
tail moved.

Everything is deterministic: one seed fixes the workload, the job stream,
the fault schedule and every engine decision, and ``load_doc`` rounds /
sorts everything it emits -- CI byte-compares the JSON across hash seeds.
"""

from __future__ import annotations

import json

from repro.analysis.ascii_chart import sparkline
from repro.analysis.timeline import (
    FaultWindow,
    attribute_latency,
    fault_windows,
    telemetry_overlay,
)
from repro.baselines import make_store
from repro.bench.runner import load_store
from repro.chaos.schedule import FaultSchedule
from repro.core.config import StoreConfig
from repro.engine.admission import AdmissionConfig
from repro.engine.core import Engine, EngineConfig, EngineResult
from repro.engine.jobs import JobSpec, derive_jobs
from repro.workloads.ycsb import WorkloadSpec, generate_requests

DEFAULT_CONCURRENCIES = (1, 4, 16, 64)


def build_jobs(
    store_name: str = "logecmem",
    scheme: str = "plm",
    k: int = 6,
    r: int = 3,
    value_size: int = 4096,
    ratio: str = "50:50",
    n_objects: int = 600,
    n_requests: int = 600,
    seed: int = 42,
):
    """Measurement pass: load a store, execute the workload once, return
    ``(jobs, profile, dram_ids, log_ids)`` for engine replays."""
    config = StoreConfig(k=k, r=r, value_size=value_size, scheme=scheme)
    store = make_store(store_name, config)
    spec = WorkloadSpec.read_update(
        ratio,
        n_objects=n_objects,
        n_requests=n_requests,
        value_size=value_size,
        seed=seed,
    )
    load_store(store, spec)
    jobs = derive_jobs(store, generate_requests(spec))
    dram_ids = list(store.cluster.dram_ids())
    log_ids = list(store.cluster.log_ids())
    return jobs, config.profile, dram_ids, log_ids


def run_point(
    jobs: list[JobSpec],
    profile,
    concurrency: int,
    think_s: float = 0.0,
    window: int | None = None,
    queue_cap: int = 128,
    faults: FaultSchedule | None = None,
    telemetry_interval_s: float = 0.0,
    slo_p99_us: float = 0.0,
) -> EngineResult:
    """One engine run at one concurrency."""
    cfg = EngineConfig(
        concurrency=concurrency,
        think_s=think_s,
        admission=AdmissionConfig(window=window, queue_cap=queue_cap),
        telemetry_interval_s=telemetry_interval_s,
        slo_p99_us=slo_p99_us,
    )
    engine = Engine(
        jobs, profile, cfg, faults=list(faults) if faults is not None else None
    )
    return engine.run()


def run_load(
    store_name: str = "logecmem",
    scheme: str = "plm",
    k: int = 6,
    r: int = 3,
    value_size: int = 4096,
    ratio: str = "50:50",
    n_objects: int = 600,
    n_requests: int = 600,
    seed: int = 42,
    concurrencies: tuple[int, ...] = DEFAULT_CONCURRENCIES,
    think_s: float = 0.0,
    window: int | None = None,
    queue_cap: int = 128,
    expected_faults: float = 0.0,
) -> dict:
    """The full load experiment; returns the deterministic curve document."""
    jobs, profile, dram_ids, log_ids = build_jobs(
        store_name=store_name,
        scheme=scheme,
        k=k,
        r=r,
        value_size=value_size,
        ratio=ratio,
        n_objects=n_objects,
        n_requests=n_requests,
        seed=seed,
    )
    doc: dict = {
        "meta": {
            "store": store_name,
            "scheme": scheme,
            "code": [k, r],
            "value_size": value_size,
            "ratio": ratio,
            "objects": n_objects,
            "requests": n_requests,
            "seed": seed,
            "concurrencies": list(concurrencies),
            "think_s": round(think_s, 9),
            "window": window,
            "queue_cap": queue_cap,
            "expected_faults": round(expected_faults, 6),
        },
        "jobs": _jobs_summary(jobs),
        "curve": [],
    }
    for c in concurrencies:
        clean = run_point(
            jobs, profile, c, think_s=think_s, window=window, queue_cap=queue_cap
        )
        point = clean.to_dict()
        if expected_faults > 0:
            point["chaos"] = _chaos_point(
                jobs,
                profile,
                c,
                think_s=think_s,
                window=window,
                queue_cap=queue_cap,
                dram_ids=dram_ids,
                log_ids=log_ids,
                horizon_s=clean.makespan_s,
                expected_faults=expected_faults,
                seed=seed,
                clean=clean,
            )
        doc["curve"].append(point)
    doc["knee"] = knee_summary(doc["curve"])
    return doc


def _jobs_summary(jobs: list[JobSpec]) -> dict:
    by_op: dict[str, int] = {}
    service = 0.0
    log_bytes = 0
    stations: dict[str, float] = {}
    for job in jobs:
        by_op[job.op] = by_op.get(job.op, 0) + 1
        service += job.service_s
        log_bytes += job.log_bytes
        for stage in job.stages:
            stations[stage.station] = stations.get(stage.station, 0.0) + stage.service_s
    return {
        "count": len(jobs),
        "by_op": dict(sorted(by_op.items())),
        "service_total_s": round(service, 9),
        "log_bytes_total": log_bytes,
        "station_demand_s": {
            name: round(s, 9) for name, s in sorted(stations.items())
        },
    }


def _chaos_point(
    jobs: list[JobSpec],
    profile,
    concurrency: int,
    *,
    think_s: float,
    window: int | None,
    queue_cap: int,
    dram_ids: list[str],
    log_ids: list[str],
    horizon_s: float,
    expected_faults: float,
    seed: int,
    clean: EngineResult,
) -> dict:
    """Re-run one point under a seeded fault schedule sized to its clean
    makespan; attribute the faulted run's latency to fault windows."""
    schedule = FaultSchedule.with_expected_faults(
        dram_ids,
        log_ids,
        horizon_s=max(horizon_s, 1e-6),
        expected_faults=expected_faults,
        seed=seed,
    )
    faulted = run_point(
        jobs,
        profile,
        concurrency,
        think_s=think_s,
        window=window,
        queue_cap=queue_cap,
        faults=schedule,
    )
    windows = fault_windows(faulted.events, run_end_s=faulted.makespan_s)
    attribution = attribute_latency(windows, faulted.samples)
    in_lats = sorted(
        lat
        for at, lat, _ in faulted.samples
        if any(w.contains(at) for w in windows)
    )
    out_lats = sorted(
        lat
        for at, lat, _ in faulted.samples
        if not any(w.contains(at) for w in windows)
    )
    return {
        "faults": len(schedule),
        "fault_kinds": schedule.kinds(),
        "overall": faulted.overall,
        "throughput_ops_s": round(faulted.throughput_ops_s, 3),
        "makespan_s": round(faulted.makespan_s, 9),
        "p99_shift_vs_clean_pct": _shift_pct(
            faulted.overall.get("p99_us", 0.0), clean.overall.get("p99_us", 0.0)
        ),
        "in_window": _window_summary(in_lats),
        "out_window": _window_summary(out_lats),
        "attribution": attribution,
    }


def _window_summary(sorted_lats: list[float]) -> dict:
    from repro.engine.core import _latency_summary

    return _latency_summary(sorted_lats)


def _shift_pct(value: float, base: float) -> float:
    return round((value / base - 1.0) * 100.0, 2) if base > 0 else 0.0


def knee_summary(curve: list[dict]) -> dict:
    """Saturation-knee indicators across the curve (lowest vs highest C)."""
    if not curve:
        return {}
    lo, hi = curve[0], curve[-1]
    lo_p99 = lo["overall"].get("p99_us", 0.0)
    hi_p99 = hi["overall"].get("p99_us", 0.0)
    peak = max(pt["throughput_ops_s"] for pt in curve)
    return {
        "c_lo": lo["concurrency"],
        "c_hi": hi["concurrency"],
        "throughput_lo_ops_s": lo["throughput_ops_s"],
        "throughput_hi_ops_s": hi["throughput_ops_s"],
        "throughput_peak_ops_s": peak,
        "hi_over_peak": round(pt_ratio(hi["throughput_ops_s"], peak), 6),
        "p99_lo_us": lo_p99,
        "p99_hi_us": hi_p99,
        "p99_amplification": round(pt_ratio(hi_p99, lo_p99), 3),
    }


def pt_ratio(a: float, b: float) -> float:
    return a / b if b > 0 else 0.0


def load_json(doc: dict) -> str:
    """Byte-stable serialisation of a load document."""
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"


def render_load(doc: dict) -> str:
    """ASCII summary: the curve table plus per-point utilisation hot spots."""
    lines = []
    meta = doc["meta"]
    lines.append(
        f"{meta['store']} ({meta['code'][0]},{meta['code'][1]}) "
        f"scheme={meta['scheme']} r:u={meta['ratio']} "
        f"jobs={doc['jobs']['count']} seed={meta['seed']}"
    )
    header = (
        f"{'C':>5} {'ops/s':>12} {'p50 us':>10} {'p99 us':>10} "
        f"{'max us':>10} {'rej':>5}  hottest station"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for pt in doc["curve"]:
        hot_name, hot = max(
            pt["stations"].items(), key=lambda kv: kv[1]["utilisation"]
        )
        lines.append(
            f"{pt['concurrency']:>5} {pt['throughput_ops_s']:>12.1f} "
            f"{pt['overall']['p50_us']:>10.1f} {pt['overall']['p99_us']:>10.1f} "
            f"{pt['overall']['max_us']:>10.1f} {pt['jobs_rejected']:>5}  "
            f"{hot_name} @ {hot['utilisation'] * 100:.1f}%"
        )
        chaos = pt.get("chaos")
        if chaos:
            lines.append(
                f"      chaos: {chaos['faults']} faults, "
                f"p99 {chaos['overall'].get('p99_us', 0.0):.1f}us "
                f"({chaos['p99_shift_vs_clean_pct']:+.1f}% vs clean), "
                f"in-window p99 {chaos['in_window'].get('p99_us', 0.0):.1f}us "
                f"vs out {chaos['out_window'].get('p99_us', 0.0):.1f}us"
            )
    knee = doc.get("knee") or {}
    if knee:
        lines.append(
            f"knee: throughput x{pt_ratio(knee['throughput_hi_ops_s'], knee['throughput_lo_ops_s']):.2f} "
            f"(C={knee['c_lo']}->{knee['c_hi']}), "
            f"p99 x{knee['p99_amplification']:.2f}, "
            f"hi/peak={knee['hi_over_peak']:.3f}"
        )
    lines.append(
        "throughput  " + sparkline([pt["throughput_ops_s"] for pt in doc["curve"]])
    )
    lines.append(
        "p99         " + sparkline([pt["overall"]["p99_us"] for pt in doc["curve"]])
    )
    return "\n".join(lines)


# ------------------------------------------------------------------- watch


def run_watch(
    store_name: str = "logecmem",
    scheme: str = "plm",
    k: int = 6,
    r: int = 3,
    value_size: int = 4096,
    ratio: str = "50:50",
    n_objects: int = 600,
    n_requests: int = 600,
    seed: int = 42,
    concurrency: int = 16,
    think_s: float = 0.0,
    window: int | None = None,
    queue_cap: int = 128,
    expected_faults: float = 0.0,
    samples: int = 48,
    slo_factor: float = 1.5,
) -> dict:
    """One engine point instrumented for watching.

    Runs the point clean first to size the telemetry interval (the run
    divided into ``samples`` ticks) and the SLO target (``slo_factor`` x the
    clean p99 -- so a healthy rerun stays inside budget and a degraded one
    burns), then reruns with telemetry on and, with ``expected_faults > 0``,
    a seeded fault schedule spanning the clean makespan.  The document is
    deterministic end to end; ``render_watch`` turns it into strip charts.
    """
    jobs, profile, dram_ids, log_ids = build_jobs(
        store_name=store_name,
        scheme=scheme,
        k=k,
        r=r,
        value_size=value_size,
        ratio=ratio,
        n_objects=n_objects,
        n_requests=n_requests,
        seed=seed,
    )
    clean = run_point(
        jobs, profile, concurrency, think_s=think_s, window=window, queue_cap=queue_cap
    )
    interval_s = round(max(clean.makespan_s / max(samples, 1), 1e-9), 12)
    slo_p99_us = round(clean.overall.get("p99_us", 0.0) * slo_factor, 3)
    faults = None
    if expected_faults > 0:
        faults = FaultSchedule.with_expected_faults(
            dram_ids,
            log_ids,
            horizon_s=max(clean.makespan_s, 1e-6),
            expected_faults=expected_faults,
            seed=seed,
        )
    watched = run_point(
        jobs,
        profile,
        concurrency,
        think_s=think_s,
        window=window,
        queue_cap=queue_cap,
        faults=faults,
        telemetry_interval_s=interval_s,
        slo_p99_us=slo_p99_us,
    )
    windows = fault_windows(watched.events, run_end_s=watched.makespan_s)
    return {
        "meta": {
            "store": store_name,
            "scheme": scheme,
            "code": [k, r],
            "value_size": value_size,
            "ratio": ratio,
            "objects": n_objects,
            "requests": n_requests,
            "seed": seed,
            "concurrency": concurrency,
            "expected_faults": round(expected_faults, 6),
            "interval_s": round(interval_s, 9),
            "slo_p99_us": slo_p99_us,
        },
        "clean": {
            "throughput_ops_s": round(clean.throughput_ops_s, 3),
            "p99_us": clean.overall.get("p99_us", 0.0),
            "makespan_s": round(clean.makespan_s, 9),
        },
        "point": watched.to_dict(),
        "windows": [w.to_dict() for w in windows],
    }


def _doc_windows(doc: dict) -> list[FaultWindow]:
    """Rebuild FaultWindow objects from a watch document's dict form."""
    import math

    return [
        FaultWindow(
            kind=w["kind"],
            node_id=w["node"],
            start_s=w["start_s"],
            end_s=w["end_s"] if w["end_s"] is not None else math.inf,
            healed=w["healed"],
        )
        for w in doc.get("windows", [])
    ]


def render_watch(doc: dict, width: int = 60, series: list[str] | None = None) -> str:
    """ASCII view of a watch document: run header, SLO verdict, strip
    charts of every telemetry series with fault windows shaded."""
    meta = doc["meta"]
    pt = doc["point"]
    lines = [
        f"watch: {meta['store']} ({meta['code'][0]},{meta['code'][1]}) "
        f"scheme={meta['scheme']} r:u={meta['ratio']} C={meta['concurrency']} "
        f"seed={meta['seed']}",
        f"ops={pt['jobs_completed']} rejected={pt['jobs_rejected']} "
        f"throughput={pt['throughput_ops_s']:.1f} ops/s "
        f"p99={pt['overall'].get('p99_us', 0.0):.1f}us "
        f"makespan={pt['makespan_s'] * 1e3:.3f} ms",
    ]
    slo = pt.get("telemetry", {}).get("slo")
    if slo:
        state = "BURNING" if slo["episodes"] else "ok"
        lines.append(
            f"slo: target p99={slo['target_p99_us']:.1f}us {state} "
            f"episodes={slo['episodes']} max_burn={slo['max_burn_rate']:.2f}"
        )
    lines.append(
        telemetry_overlay(
            pt.get("telemetry", {}),
            windows=_doc_windows(doc),
            width=width,
            series=series,
        )
    )
    return "\n".join(lines)


def watch_json(doc: dict) -> str:
    """Byte-stable serialisation of a watch document."""
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"
