"""Concurrent discrete-event engine (see docs/INTERNALS.md, "engine").

Promotes the repo's per-op analytic cost models into a loaded system: N
closed-loop clients drive store operations -- decomposed into per-station
stage demands -- through FIFO service stations behind a proxy admission
gate, with log-node buffer occupancy exerting backpressure and chaos fault
schedules opening windows mid-run.  ``python -m repro load`` is the CLI
front end; :func:`repro.engine.load.run_load` the programmatic one.
"""

from repro.engine.admission import AdmissionConfig, AdmissionGate
from repro.engine.backpressure import LogBufferModel
from repro.engine.compat import demands_to_jobs, simulate_demands, simulate_engine
from repro.engine.core import Engine, EngineConfig, EngineResult, exact_quantile
from repro.engine.jobs import JobSpec, JobTrace, Stage, derive_jobs, job_from_span
from repro.engine.load import build_jobs, knee_summary, render_load, run_load, run_point
from repro.engine.stations import Station

__all__ = [
    "AdmissionConfig",
    "AdmissionGate",
    "Engine",
    "EngineConfig",
    "EngineResult",
    "JobSpec",
    "JobTrace",
    "LogBufferModel",
    "Stage",
    "Station",
    "build_jobs",
    "demands_to_jobs",
    "derive_jobs",
    "exact_quantile",
    "job_from_span",
    "knee_summary",
    "render_load",
    "run_load",
    "run_point",
    "simulate_demands",
    "simulate_engine",
]
