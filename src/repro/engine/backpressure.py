"""Log-node buffer occupancy and the backpressure it exerts upstream.

Mirrors the byte accounting of :class:`repro.logstore.buffer.LogBuffer` (same
capacity / flush-threshold knobs from the hardware profile, same
occupancy-fraction signal the log nodes export) as engine state the event
loop can evolve: update jobs append parity-delta bytes, flushes drain them
through the log node's disk station, and two pressure levels propagate
upstream:

* **flush stall** -- when the disk's queued backlog exceeds
  ``max_disk_backlog_s``, pending flushes defer until it drains (the same
  bounded-crash-consistency rule ``LogNode.append`` enforces), so buffered
  bytes keep accumulating against the capacity;
* **write stall** -- past the high-water mark
  (``log_high_water_fraction * capacity``), *client writes* park on the
  buffer until a flush completion brings occupancy back down; the wait is
  charged to the job's response time.  This is the path by which a stalled
  or slow log disk amplifies client tail latency, which the chaos-enabled
  load runs measure.
"""

from __future__ import annotations

from collections import deque

from repro.devtools.simsan import runtime as _san
from repro.engine.jobs import JobTrace
from repro.sim.params import HardwareProfile


class LogBufferModel:
    """One log node's buffer occupancy + the jobs it is stalling."""

    __slots__ = (
        "node_id",
        "capacity_bytes",
        "flush_threshold_bytes",
        "high_water_bytes",
        "nbytes",
        "flush_inflight",
        "waiters",
        "peak_bytes",
        "flushes",
        "flush_deferrals",
        "flushed_bytes",
        "stalls",
        "high_water_crossings",
        "pressured",
    )

    def __init__(self, node_id: str, profile: HardwareProfile):
        self.node_id = node_id
        self.capacity_bytes = profile.log_buffer_bytes
        self.flush_threshold_bytes = profile.log_flush_threshold_bytes
        self.high_water_bytes = int(
            profile.log_buffer_bytes * profile.log_high_water_fraction
        )
        self.nbytes = 0
        self.flush_inflight = False
        #: write jobs parked here until occupancy drops below high water
        self.waiters: deque[JobTrace] = deque()
        self.peak_bytes = 0
        self.flushes = 0
        self.flush_deferrals = 0
        self.flushed_bytes = 0
        self.stalls = 0
        self.high_water_crossings = 0
        self.pressured = False  # currently above high water (edge-detected)

    def occupancy(self) -> float:
        """Buffered fraction of capacity, like ``LogBuffer.occupancy``."""
        return self.nbytes / self.capacity_bytes if self.capacity_bytes else 0.0

    def append(self, nbytes: int) -> None:
        self.nbytes += nbytes
        if self.nbytes > self.peak_bytes:
            self.peak_bytes = self.nbytes
        if self.above_high_water() and not self.pressured:
            self.pressured = True
            self.high_water_crossings += 1

    def should_flush(self) -> bool:
        return self.nbytes >= self.flush_threshold_bytes and not self.flush_inflight

    def begin_flush(self) -> None:
        """Mark a flush in flight; at most one per buffer at a time."""
        san = _san.ACTIVE
        if san is not None:
            san.on_flush_begin(self.node_id)
        self.flush_inflight = True

    def abort_flush(self) -> None:
        """A begun flush found nothing to drain; release the in-flight mark."""
        san = _san.ACTIVE
        if san is not None:
            san.on_flush_end(self.node_id)
        self.flush_inflight = False

    def above_high_water(self) -> bool:
        return self.nbytes >= self.high_water_bytes

    def drained(self, nbytes: int) -> None:
        """A flush of ``nbytes`` completed."""
        san = _san.ACTIVE
        if san is not None:
            san.on_buffer_drain(self.node_id, nbytes, self.nbytes)
            san.on_flush_end(self.node_id)
        self.nbytes = max(0, self.nbytes - nbytes)
        self.flush_inflight = False
        self.flushes += 1
        self.flushed_bytes += nbytes
        if not self.above_high_water():
            self.pressured = False

    def stats(self) -> dict:
        """Deterministic summary for the load-curve JSON."""
        return {
            "peak_bytes": self.peak_bytes,
            "peak_occupancy": round(
                self.peak_bytes / self.capacity_bytes if self.capacity_bytes else 0.0, 6
            ),
            "flushes": self.flushes,
            "flush_deferrals": self.flush_deferrals,
            "flushed_bytes": self.flushed_bytes,
            "write_stalls": self.stalls,
            "high_water_crossings": self.high_water_crossings,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LogBufferModel({self.node_id!r}, {self.nbytes}B, "
            f"occ={self.occupancy():.2f}, waiters={len(self.waiters)})"
        )
