"""Proxy admission control: a bounded in-flight window with queue-or-reject.

The proxy admits at most ``window`` jobs into the service stations at once.
A job arriving at a full window waits in a FIFO admission queue of capacity
``queue_cap``; past that it is **rejected** deterministically -- the closed
loop's client moves on to its next request and the rejection is counted (the
load curve reports goodput, not offered load).  ``window=None`` disables the
gate (pure closed-loop, inflight bounded by client concurrency alone).

Admission wait counts toward a job's response time: the knee the load curves
show past the window is queueing *at the proxy door*, which is exactly what
an operator tunes the window against.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.engine.jobs import JobTrace


@dataclass(frozen=True)
class AdmissionConfig:
    """Gate sizing; ``window=None`` means unbounded (gate disabled)."""

    window: int | None = None
    queue_cap: int = 128

    def __post_init__(self) -> None:
        if self.window is not None and self.window < 1:
            raise ValueError(f"admission window must be >= 1, got {self.window}")
        if self.queue_cap < 0:
            raise ValueError(f"queue_cap must be >= 0, got {self.queue_cap}")


class AdmissionGate:
    """Deterministic bounded-window admission with a FIFO overflow queue."""

    def __init__(self, config: AdmissionConfig):
        self.config = config
        self.inflight = 0
        self.queue: deque[JobTrace] = deque()
        self.admitted = 0
        self.queued = 0
        self.rejected = 0
        self.max_inflight = 0
        self.max_queue = 0
        self.total_queue_wait_s = 0.0

    def offer(self, trace: JobTrace) -> str:
        """Present one job; returns ``"admit"``, ``"queue"`` or ``"reject"``."""
        window = self.config.window
        if window is None or self.inflight < window:
            self._admit()
            return "admit"
        if len(self.queue) < self.config.queue_cap:
            self.queue.append(trace)
            self.queued += 1
            if len(self.queue) > self.max_queue:
                self.max_queue = len(self.queue)
            return "queue"
        self.rejected += 1
        return "reject"

    def _admit(self) -> None:
        self.inflight += 1
        self.admitted += 1
        if self.inflight > self.max_inflight:
            self.max_inflight = self.inflight

    def release(self, now: float) -> JobTrace | None:
        """A job finished: free its window slot and admit the queue head."""
        self.inflight -= 1
        if not self.queue:
            return None
        trace = self.queue.popleft()
        wait = now - trace.issued_s
        trace.admission_wait_s = wait
        self.total_queue_wait_s += wait
        self._admit()
        return trace

    def stats(self) -> dict:
        """Deterministic summary for the load-curve JSON."""
        return {
            "window": self.config.window,
            "queue_cap": self.config.queue_cap,
            "admitted": self.admitted,
            "queued": self.queued,
            "rejected": self.rejected,
            "max_inflight": self.max_inflight,
            "max_queue": self.max_queue,
            "queue_wait_s_total": round(self.total_queue_wait_s, 9),
        }
