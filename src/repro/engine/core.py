"""The concurrent discrete-event engine: N closed-loop clients over stations.

This is the piece that turns the repo's per-op cost models into a *loaded
system*.  ``N`` closed-loop clients (optionally with think time) pull jobs
from one deterministic job stream; each job passes the proxy admission gate,
then walks its stages through FIFO service stations
(:mod:`repro.engine.stations`); update jobs additionally append parity-delta
bytes to log-node buffer models whose flushes occupy the log disks and whose
occupancy pushes back on clients (:mod:`repro.engine.backpressure`).  Faults
from a :class:`~repro.chaos.schedule.FaultSchedule` open windows that slow or
stall stations mid-run, and every notable transition lands in an
:class:`~repro.obs.events.EventJournal` using the same ``fault_inject`` /
``fault_heal`` kinds the chaos harness emits -- so
:mod:`repro.analysis.timeline` attributes engine tail latency to fault
windows with zero new code.

Single-request costing is the ``concurrency=1`` special case: with one
client and no faults, every station is idle on arrival and a job's response
time equals its stage total, i.e. the store's original latency.  Everything
beyond C=1 -- queueing delay, saturation knees, admission waits,
backpressure stalls -- emerges from contention, never from re-costing.

Determinism: one :class:`~repro.sim.events.EventQueue` drives the run; ties
break by schedule order, iteration is over insertion-/sorted-order
structures only, and the result serialises with sorted keys and rounded
floats -- same jobs, same config, same bytes.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field

from repro.chaos.schedule import FaultEvent, FaultKind
from repro.devtools.simsan import runtime as _san
from repro.engine.admission import AdmissionConfig, AdmissionGate
from repro.engine.backpressure import LogBufferModel
from repro.engine.jobs import JobSpec, JobTrace
from repro.engine.stations import Station
from repro.obs.events import EventJournal
from repro.obs.span import Span
from repro.obs.timeseries import SLOTracker, TelemetrySampler
from repro.sim.clock import SimClock
from repro.sim.events import EventQueue
from repro.sim.params import HardwareProfile
from repro.sim.resources import Counters


def exact_quantile(sorted_values: list[float], q: float) -> float:
    """Exact order-statistic quantile of an already-sorted list."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]


@dataclass(frozen=True)
class EngineConfig:
    """One engine run's knobs."""

    concurrency: int = 32
    think_s: float = 0.0
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    #: DRAM/log crash faults stall their stations this long (engine-level
    #: stand-in for the repair pipeline the chaos harness runs for real)
    repair_delay_s: float = 5e-3
    #: keep span trees for the first N completed jobs (0 disables tracing)
    trace_jobs: int = 0
    #: sample telemetry every this many simulated seconds (0 disables it;
    #: the run's JSON is byte-identical to a pre-telemetry build when off)
    telemetry_interval_s: float = 0.0
    #: ring capacity per telemetry series
    telemetry_capacity: int = 512
    #: latency SLO target in microseconds (0 disables the SLO tracker)
    slo_p99_us: float = 0.0
    #: availability objective; the error budget is ``1 - objective``
    slo_objective: float = 0.99
    #: burn rate above which a window counts as burning
    slo_burn_threshold: float = 1.0

    def __post_init__(self) -> None:
        if self.concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {self.concurrency}")
        if self.think_s < 0:
            raise ValueError(f"think_s must be >= 0, got {self.think_s}")
        if self.telemetry_interval_s < 0:
            raise ValueError(
                f"telemetry_interval_s must be >= 0, got {self.telemetry_interval_s}"
            )
        if self.telemetry_capacity < 1:
            raise ValueError(
                f"telemetry_capacity must be >= 1, got {self.telemetry_capacity}"
            )
        if self.slo_p99_us < 0:
            raise ValueError(f"slo_p99_us must be >= 0, got {self.slo_p99_us}")


@dataclass
class EngineResult:
    """Everything one engine run measured."""

    concurrency: int
    think_s: float
    jobs_total: int = 0
    jobs_completed: int = 0
    jobs_rejected: int = 0
    makespan_s: float = 0.0
    throughput_ops_s: float = 0.0
    overall: dict = field(default_factory=dict)
    ops: dict = field(default_factory=dict)
    stations: dict = field(default_factory=dict)
    admission: dict = field(default_factory=dict)
    backpressure: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)
    #: acked jobs as ``(issued_s, response_s, op)`` -- the exact shape
    #: ``analysis.timeline.attribute_latency`` consumes
    samples: list = field(default_factory=list)
    #: journal events (dict form) for fault-window attribution
    events: list = field(default_factory=list)
    #: span trees of the first ``trace_jobs`` completed jobs
    spans: list = field(default_factory=list)
    #: telemetry series dump (empty unless ``telemetry_interval_s > 0``)
    telemetry: dict = field(default_factory=dict)

    def to_dict(self, include_events: bool = False) -> dict:
        """Deterministic JSON-ready form (sorted keys happen at dump time)."""
        doc = {
            "concurrency": self.concurrency,
            "think_s": round(self.think_s, 9),
            "jobs_total": self.jobs_total,
            "jobs_completed": self.jobs_completed,
            "jobs_rejected": self.jobs_rejected,
            "makespan_s": round(self.makespan_s, 9),
            "throughput_ops_s": round(self.throughput_ops_s, 3),
            "overall": self.overall,
            "ops": self.ops,
            "stations": self.stations,
            "admission": self.admission,
            "backpressure": self.backpressure,
            "counters": {k: round(v, 6) for k, v in sorted(self.counters.items())},
        }
        if self.telemetry:
            doc["telemetry"] = self.telemetry
        if include_events:
            doc["events"] = self.events
        return doc


class Engine:
    """Deterministic concurrent simulation of one job stream."""

    def __init__(
        self,
        jobs: list[JobSpec],
        profile: HardwareProfile,
        config: EngineConfig | None = None,
        faults: list[FaultEvent] | None = None,
        journal: EventJournal | None = None,
    ):
        self.jobs = list(jobs)
        self.profile = profile
        self.config = config if config is not None else EngineConfig()
        self.faults = sorted(
            faults or (), key=lambda e: (e.time_s, e.node_id, e.kind.value)
        )
        self.clock = SimClock()
        self.counters = Counters()
        self.journal = (
            journal
            if journal is not None
            else EventJournal(self.clock, self.counters, capacity=8192)
        )
        self.gate = AdmissionGate(self.config.admission)
        self.queue = EventQueue()
        self.stations: dict[str, Station] = {}
        self.buffers: dict[str, LogBufferModel] = {}
        # pre-create every station/buffer the job stream or schedule can
        # touch, so fault windows apply by name even before first use
        for spec in self.jobs:
            for stage in spec.stages:
                if stage.station != "delay":
                    self._station(stage.station)
            for nid in spec.log_nodes:
                self._buffer(nid)
        for ev in self.faults:
            self._station(f"nic:{ev.node_id}")
        self._cursor = 0
        self._samples: list[tuple[float, float, str]] = []
        self._per_op: dict[str, list[float]] = {}
        self._spans: deque[Span] = deque(maxlen=max(1, self.config.trace_jobs))
        self._completed = 0
        self._rejected = 0
        self._last_completion_s = 0.0
        self.sampler: TelemetrySampler | None = None
        self._tele_busy: dict[str, float] = {}
        if self.config.telemetry_interval_s > 0:
            slo = None
            if self.config.slo_p99_us > 0:
                slo = SLOTracker(
                    self.config.slo_p99_us,
                    objective=self.config.slo_objective,
                    burn_threshold=self.config.slo_burn_threshold,
                    journal=self.journal,
                    counters=self.counters,
                )
            self.sampler = TelemetrySampler(
                self.config.telemetry_interval_s,
                capacity=self.config.telemetry_capacity,
                journal=self.journal,
                counters=self.counters,
                slo=slo,
            )
            self.sampler.add_probe(self._telemetry_probe)

    # ------------------------------------------------------------- plumbing

    def _station(self, name: str) -> Station:
        st = self.stations.get(name)
        if st is None:
            st = self.stations[name] = Station(name)
        return st

    def _buffer(self, node_id: str) -> LogBufferModel:
        buf = self.buffers.get(node_id)
        if buf is None:
            buf = self.buffers[node_id] = LogBufferModel(node_id, self.profile)
            self._station(f"disk:{node_id}")
        return buf

    # ------------------------------------------------------------- telemetry

    def _telemetry_probe(self, t: float, sampler: TelemetrySampler) -> None:
        """Gauge live engine state at one sample tick: per-station windowed
        utilisation / live depth / backlog, admission gate occupancy, and
        per-log-node buffer occupancy / parked waiters."""
        interval = self.config.telemetry_interval_s
        for name in sorted(self.stations):
            st = self.stations[name]
            busy = st.busy_elapsed_s(t)
            prev = self._tele_busy.get(name, 0.0)
            self._tele_busy[name] = busy
            util = min(1.0, max(0.0, (busy - prev) / interval))
            sampler.gauge(f"station.{name}.util").record(t, util)
            sampler.gauge(f"station.{name}.depth").record(t, float(st.pending))
            sampler.gauge(f"station.{name}.backlog_s").record(t, st.backlog_s(t))
        sampler.gauge("admission.inflight").record(t, float(self.gate.inflight))
        sampler.gauge("admission.queue").record(t, float(len(self.gate.queue)))
        for nid in sorted(self.buffers):
            buf = self.buffers[nid]
            sampler.gauge(f"log.{nid}.occupancy").record(t, buf.occupancy())
            sampler.gauge(f"log.{nid}.waiters").record(t, float(len(buf.waiters)))

    def _telemetry_tick(self, t: float) -> None:
        self.sampler.sample(t)
        # stop when the run is over: the tick is the only event left
        if len(self.queue):
            self.queue.schedule(
                self.sampler.advance_tick(), lambda tt: self._telemetry_tick(tt)
            )

    # ------------------------------------------------------------ job flow

    def _issue(self, client: int, now: float) -> None:
        if self._cursor >= len(self.jobs):
            return  # stream exhausted: the client retires
        spec = self.jobs[self._cursor]
        self._cursor += 1
        trace = JobTrace(spec=spec, client=client, issued_s=now)
        verdict = self.gate.offer(trace)
        if verdict == "admit":
            self._start(trace, now)
        elif verdict == "reject":
            self._rejected += 1
            self.counters.add("engine_jobs_rejected")
            self.journal.emit("engine_reject", op=spec.op, client=client)
            # the closed loop moves on: this client's next request issues
            # after think time, the rejected op is lost (goodput accounting)
            self.queue.schedule(
                now + self.config.think_s, lambda t, c=client: self._issue(c, t)
            )
        # "queue": parked at the gate; release() restarts it FIFO

    def _start(self, trace: JobTrace, now: float) -> None:
        trace.admitted_s = now
        spec = trace.spec
        if spec.log_bytes:
            for nid in spec.log_nodes:
                buf = self._buffer(nid)
                if buf.above_high_water():
                    # backpressure: the write parks until a flush drains
                    # the buffer below high water
                    buf.waiters.append(trace)
                    buf.stalls += 1
                    self.counters.add("engine_backpressure_stalls")
                    if not buf.flush_inflight and buf.nbytes > 0:
                        # pressure flush: drain now even if the flush
                        # threshold was configured above the high-water mark,
                        # so parked writes are always eventually woken
                        buf.begin_flush()
                        self._flush(buf, now)
                    return
        self._stage(trace, now)

    def _stage(self, trace: JobTrace, now: float) -> None:
        spec = trace.spec
        if trace.stage_index >= len(spec.stages):
            self._complete(trace, now)
            return
        stage = spec.stages[trace.stage_index]
        trace.stage_index += 1
        if stage.station == "delay":
            trace.stage_log.append(("delay", 0.0, stage.service_s))
            self.queue.schedule(
                now + stage.service_s, lambda t, tr=trace: self._stage(tr, t)
            )
            return
        st = self._station(stage.station)
        wait, done = st.submit(now, stage.service_s)
        trace.station_wait_s += wait
        trace.stage_log.append((stage.station, wait, stage.service_s))

        def _done(t: float, tr=trace, station=st) -> None:
            station.depart()
            self._stage(tr, t)

        self.queue.schedule(done, _done)

    def _complete(self, trace: JobTrace, now: float) -> None:
        spec = trace.spec
        if spec.log_bytes and spec.log_nodes:
            share = spec.log_bytes // len(spec.log_nodes)
            for nid in spec.log_nodes:
                buf = self._buffer(nid)
                crossed_before = buf.pressured
                buf.append(share)
                if buf.pressured and not crossed_before:
                    self.journal.emit(
                        "engine_backpressure_on", node=nid, nbytes=buf.nbytes
                    )
                self._maybe_flush(buf, now)
        response = now - trace.issued_s
        self._samples.append((trace.issued_s, response, spec.op))
        if self.sampler is not None:
            self.sampler.observe_op(now, response, spec.op)
        self._per_op.setdefault(spec.op, []).append(response)
        self._completed += 1
        if now > self._last_completion_s:
            self._last_completion_s = now
        self.counters.add("engine_jobs_completed")
        self.counters.add("engine_station_wait_s", trace.station_wait_s)
        self.counters.add("engine_admission_wait_s", trace.admission_wait_s)
        self.counters.add("engine_backpressure_wait_s", trace.backpressure_wait_s)
        if self.config.trace_jobs and len(self._spans) < self.config.trace_jobs:
            self._spans.append(self._job_span(trace, response))
        released = self.gate.release(now)
        if released is not None:
            self._start(released, now)
        self.queue.schedule(
            now + self.config.think_s, lambda t, c=trace.client: self._issue(c, t)
        )

    def _job_span(self, trace: JobTrace, response_s: float) -> Span:
        """Span taxonomy for stages: root = op, children = admission wait,
        backpressure wait, then ``queue:<station>`` / ``serve:<station>``
        pairs in execution order (documented in docs/INTERNALS.md)."""
        span = Span(trace.spec.op, trace.issued_s, client=trace.client)
        if trace.admission_wait_s > 0:
            span.child("admission_wait", trace.admission_wait_s)
        if trace.backpressure_wait_s > 0:
            span.child("backpressure_wait", trace.backpressure_wait_s)
        for station, wait, service in trace.stage_log:
            if wait > 0:
                span.child(f"queue:{station}", wait)
            span.child(f"serve:{station}", service)
        span.finish(response_s)
        return span

    # ----------------------------------------------------------- log flushes

    def _maybe_flush(self, buf: LogBufferModel, now: float) -> None:
        if not buf.should_flush():
            return
        buf.begin_flush()
        disk = self._station(f"disk:{buf.node_id}")
        backlog = disk.backlog_s(now)
        over = backlog - self.profile.max_disk_backlog_s
        if over > 0:
            # upstream flush stall: the disk is too far behind; retry once
            # the backlog has drained back to the bound
            buf.flush_deferrals += 1
            self.counters.add("engine_flush_deferrals")
            self.queue.schedule(now + over, lambda t, b=buf: self._flush(b, t))
        else:
            self._flush(buf, now)

    def _flush(self, buf: LogBufferModel, now: float) -> None:
        nbytes = buf.nbytes
        if nbytes <= 0:
            buf.abort_flush()
            return
        disk = self._station(f"disk:{buf.node_id}")
        service = (
            self.profile.disk_io_overhead_s
            + nbytes / self.profile.disk_seq_bandwidth_Bps
        )
        _, done = disk.submit(now, service)

        def _flushed(t: float, b=buf, n=nbytes, station=disk) -> None:
            station.depart()
            was_pressured = b.pressured
            b.drained(n)
            self.counters.add("engine_flushes")
            self.counters.add("engine_flush_bytes", n)
            self.journal.emit("engine_flush", node=b.node_id, nbytes=n)
            if was_pressured and not b.pressured:
                self.journal.emit("engine_backpressure_off", node=b.node_id)
            while b.waiters and not b.above_high_water():
                trace = b.waiters.popleft()
                trace.backpressure_wait_s += t - trace.admitted_s
                self._stage(trace, t)
            self._maybe_flush(b, t)

        self.queue.schedule(done, _flushed)

    # ---------------------------------------------------------------- faults

    def _fault_targets(self, node_id: str) -> list[Station]:
        return [
            st
            for name, st in sorted(self.stations.items())
            if name in (f"nic:{node_id}", f"disk:{node_id}")
        ]

    def _apply_fault(self, ev: FaultEvent, now: float) -> None:
        self.journal.emit(
            "fault_inject",
            kind=ev.kind.value,
            node=ev.node_id,
            duration_s=ev.duration_s,
            magnitude=ev.magnitude,
        )
        targets = self._fault_targets(ev.node_id)
        if ev.kind is FaultKind.SLOW:
            for st in targets:
                st.set_slowdown(ev.magnitude)

            def _heal(t: float) -> None:
                for st in self._fault_targets(ev.node_id):
                    st.clear_slowdown()
                self.journal.emit("fault_heal", kind=ev.kind.value, node=ev.node_id)

            self.queue.schedule(ev.end_s, _heal)
        elif ev.kind is FaultKind.STALL:
            for st in targets:
                st.stall(ev.end_s)
            # stall windows close by their injected duration (no heal event),
            # matching analysis.timeline's closer table
        else:
            # blip / partition freeze the node's stations for the duration;
            # a crash freezes them until the (engine-level) repair completes
            until = (
                now + self.config.repair_delay_s
                if ev.kind is FaultKind.CRASH
                else ev.end_s
            )
            for st in targets:
                st.stall(until)
            self.queue.schedule(
                until,
                lambda t: self.journal.emit(
                    "fault_heal", kind=ev.kind.value, node=ev.node_id
                ),
            )

    # ------------------------------------------------------------------ run

    def run(self) -> EngineResult:
        cfg = self.config
        self.journal.emit(
            "engine_run_start", concurrency=cfg.concurrency, jobs=len(self.jobs)
        )
        for ev in self.faults:
            self.queue.schedule(ev.time_s, lambda t, e=ev: self._apply_fault(e, t))
        for client in range(cfg.concurrency):
            self.queue.schedule(0.0, lambda t, c=client: self._issue(c, t))
        if self.sampler is not None:
            self.queue.schedule(
                self.sampler.next_tick(), lambda t: self._telemetry_tick(t)
            )
        while len(self.queue):
            now = self.queue.next_time()
            self.clock.advance_to(now)
            self.queue.run_until(now)
        san = _san.ACTIVE
        if san is not None:
            san.on_drained("engine")
        makespan = self._last_completion_s
        if self.sampler is not None:
            self.sampler.finish(self.clock.now)
        self.journal.emit(
            "engine_run_end", completed=self._completed, rejected=self._rejected
        )
        for name, st in sorted(self.stations.items()):
            self.counters.add("engine_station_busy_s", st.resource.busy_s)
        return self._result(makespan)

    def _result(self, makespan: float) -> EngineResult:
        result = EngineResult(
            concurrency=self.config.concurrency,
            think_s=self.config.think_s,
            jobs_total=len(self.jobs),
            jobs_completed=self._completed,
            jobs_rejected=self._rejected,
            makespan_s=makespan,
            throughput_ops_s=self._completed / makespan if makespan > 0 else 0.0,
            samples=self._samples,
            events=self.journal.to_dicts(),
            spans=list(self._spans),
        )
        all_lats = sorted(lat for _, lat, _ in self._samples)
        result.overall = _latency_summary(all_lats)
        result.ops = {
            op: _latency_summary(sorted(lats))
            for op, lats in sorted(self._per_op.items())
        }
        result.stations = {
            name: st.stats(makespan) for name, st in sorted(self.stations.items())
        }
        result.admission = self.gate.stats()
        result.backpressure = {
            nid: buf.stats() for nid, buf in sorted(self.buffers.items())
        }
        result.counters = self.counters.as_dict()
        if self.sampler is not None:
            result.telemetry = self.sampler.to_dict()
        return result


def _latency_summary(sorted_lats: list[float]) -> dict:
    """Exact quantiles in microseconds, rounded for byte-stable JSON."""
    if not sorted_lats:
        return {"count": 0}
    us = 1e6
    return {
        "count": len(sorted_lats),
        "mean_us": round(sum(sorted_lats) / len(sorted_lats) * us, 3),
        "p50_us": round(exact_quantile(sorted_lats, 0.50) * us, 3),
        "p90_us": round(exact_quantile(sorted_lats, 0.90) * us, 3),
        "p99_us": round(exact_quantile(sorted_lats, 0.99) * us, 3),
        "max_us": round(sorted_lats[-1] * us, 3),
    }
