"""FIFO service stations: named, fault-aware servers over ``sim.Resource``.

A :class:`Station` is one serially-shared device the engine schedules jobs
onto -- the proxy CPU, the proxy NIC, one DRAM node's NIC, one log node's
disk.  It wraps the busy-time :class:`~repro.sim.resources.Resource` (so
utilisation accounting matches the rest of the simulator) and adds what the
concurrent engine needs on top:

* FIFO queueing statistics: jobs arriving while the device is busy wait
  ``free_at - now``; total/max wait and a live pending count feed the
  queue-depth counters and the load-curve JSON;
* fault hooks: a multiplicative ``slowdown`` (straggler) scales the service
  time of stages *arriving* during the fault window, and ``stall_until``
  freezes the device (disk stall, blip, partition) -- arrivals queue behind
  the stall exactly like behind a long job.

Because the engine submits stages in event order (the event queue fires in
global time order, ties by sequence number), reserve-on-arrival *is* FIFO
service: no separate queue structure is needed, and the completion time each
``submit`` returns is deterministic.
"""

from __future__ import annotations

from repro.devtools.simsan import runtime as _san
from repro.sim.resources import Resource

#: The declared station-name registry.  Every *literal* station name passed
#: to ``Station(...)`` / ``Stage(...)`` anywhere in the tree must appear here
#: or match a prefix below -- enforced statically by simlint rule SIM008,
#: which parses these assignments out of the module source (the same
#: mechanism SIM004 uses for event kinds and counter names).
STATION_NAMES = frozenset({"delay", "proxy_cpu", "proxy_nic"})

#: Per-node station families (name built with an f-string at runtime).
STATION_PREFIXES = ("disk:", "nic:")


class Station:
    """One FIFO server with queueing stats and fault state."""

    __slots__ = (
        "name",
        "resource",
        "slowdown",
        "stall_until",
        "pending",
        "max_pending",
        "total_wait_s",
        "max_wait_s",
    )

    def __init__(self, name: str):
        self.name = name
        self.resource = Resource(name)
        self.slowdown = 1.0
        self.stall_until = 0.0
        self.pending = 0  # stages submitted but not yet completed
        self.max_pending = 0
        self.total_wait_s = 0.0
        self.max_wait_s = 0.0

    def submit(self, now: float, service_s: float) -> tuple[float, float]:
        """Queue one stage arriving at ``now``; returns ``(wait_s, done_at)``.

        The stage starts at ``max(now, stall_until, free_at)`` and occupies
        the device for ``service_s * slowdown`` seconds.  The caller must
        pair every submit with a :meth:`depart` at ``done_at`` (the engine
        schedules it), which keeps the live queue depth honest.
        """
        service = service_s * self.slowdown
        ready = max(now, self.stall_until)
        wait = max(0.0, max(ready, self.resource.free_at) - now)
        done = self.resource.reserve(ready, service)
        san = _san.ACTIVE
        if san is not None:
            san.on_acquire(self.name, now)
        self.pending += 1
        if self.pending > self.max_pending:
            self.max_pending = self.pending
        self.total_wait_s += wait
        if wait > self.max_wait_s:
            self.max_wait_s = wait
        return wait, done

    def depart(self) -> None:
        san = _san.ACTIVE
        if san is not None:
            san.on_release(self.name)
        self.pending -= 1

    # ------------------------------------------------------------ fault hooks

    def set_slowdown(self, factor: float) -> None:
        if factor < 1.0:
            raise ValueError(f"slowdown factor must be >= 1, got {factor}")
        self.slowdown = factor

    def clear_slowdown(self) -> None:
        self.slowdown = 1.0

    def stall(self, until_s: float) -> None:
        """Freeze the device until ``until_s`` (extends, never shrinks)."""
        if until_s > self.stall_until:
            self.stall_until = until_s

    # ------------------------------------------------------------- reporting

    def backlog_s(self, now: float) -> float:
        """Seconds of queued work ahead of an arrival at ``now``."""
        return max(0.0, max(self.resource.free_at, self.stall_until) - now)

    def busy_elapsed_s(self, now: float) -> float:
        """Busy seconds actually elapsed by ``now``.

        ``resource.busy_s`` counts reserved work including the part scheduled
        past ``now``; for contiguous FIFO reservations the not-yet-elapsed
        part is exactly ``free_at - now``, so subtracting it gives the busy
        time a wall observer would have seen -- the windowed-utilisation
        signal the telemetry sampler differences between ticks.
        """
        return max(0.0, self.resource.busy_s - max(0.0, self.resource.free_at - now))

    def stats(self, elapsed_s: float) -> dict:
        """Deterministic summary for the load-curve JSON."""
        jobs = self.resource.jobs
        return {
            "jobs": jobs,
            "busy_s": round(self.resource.busy_s, 9),
            "utilisation": round(self.resource.utilisation(elapsed_s), 6),
            "mean_wait_us": round(self.total_wait_s / jobs * 1e6, 3) if jobs else 0.0,
            "max_wait_us": round(self.max_wait_s * 1e6, 3),
            "max_queue_depth": self.max_pending,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Station({self.name!r}, pending={self.pending}, x{self.slowdown:g})"
