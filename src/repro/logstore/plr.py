"""PLR: parity logging with reserved space (CodFS, §5.1).

Each parity chunk owns a contiguous reserved extent on disk; its deltas are
appended right next to it.  A repair is therefore one sequential read of the
whole region -- but every flushed record becomes its own random write into
its stripe's region, which is exactly the heavy update-path IO cost the
paper's Figure 14(a) shows.
"""

from __future__ import annotations

from repro.logstore.base import LogScheme, ParityReadResult
from repro.logstore.records import LogRecord


class ReservedSpacePLR(LogScheme):
    name = "plr"

    def flush(self, records: list[LogRecord], now: float) -> float:
        if not records:
            return 0.0
        dur = 0.0
        for rec in records:
            # one random write per record, into that stripe's reserved extent
            dur += self.disk.write(rec.logical_nbytes, sequential=False, now=now)
        self.counters.add("log_random_writes", len(records))
        self._apply_all(records)
        self._note_flush(records, dur)
        return dur

    def read_parity(
        self, stripe_id: int, parity_index: int, phys_size: int, now: float
    ) -> ParityReadResult:
        region = self.region(stripe_id, parity_index)
        duration, reads, logical = self._read_region(region, now)
        return ParityReadResult(
            duration_s=duration,
            payload=region.materialise(phys_size),
            disk_reads=reads,
            logical_bytes_read=logical,
            has_base=region.base is not None,
        )
