"""PLR-m: reserved space plus in-memory merging right before flushing (§5.2).

Within one flush batch, records targeting the same (stripe, parity) pair are
merged (Property 2) so only one random write per pair is issued.  Merging is
limited to what happens to be co-resident in the buffer -- PLM relaxes that
limit with a disk staging extent.
"""

from __future__ import annotations

from collections import defaultdict

from repro.logstore.base import LogScheme, ParityReadResult
from repro.logstore.records import LogRecord, merge_records


class MergingPLRm(LogScheme):
    name = "plr-m"

    def flush(self, records: list[LogRecord], now: float) -> float:
        if not records:
            return 0.0
        groups: dict[tuple[int, int], list[LogRecord]] = defaultdict(list)
        order: list[tuple[int, int]] = []
        for rec in records:
            if rec.key not in groups:
                order.append(rec.key)
            groups[rec.key].append(rec)
        dur = 0.0
        for key in order:
            merged = merge_records(groups[key])
            dur += self.disk.write(merged.logical_nbytes, sequential=False, now=now)
            self.region(*key).apply(merged)
        self.counters.add("log_random_writes", len(order))
        self._note_flush(records, dur)
        return dur

    def read_parity(
        self, stripe_id: int, parity_index: int, phys_size: int, now: float
    ) -> ParityReadResult:
        region = self.region(stripe_id, parity_index)
        duration, reads, logical = self._read_region(region, now)
        return ParityReadResult(
            duration_s=duration,
            payload=region.materialise(phys_size),
            disk_reads=reads,
            logical_bytes_read=logical,
            has_base=region.base is not None,
        )
