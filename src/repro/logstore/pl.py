"""PL: append-only parity logging (§2.2, §5.1).

Flushing is as cheap as it gets -- the whole buffer goes to disk as one
sequential write.  The price is paid at repair time: the base parity chunk
and the deltas sit wherever the append stream put them.  Records of the same
(stripe, parity) that happened to flush in the *same batch* are contiguous
on disk and cost a single positioning operation; records from different
batches are scattered, so a repair pays one random read per flush-batch that
touched the stripe (plus one for the base chunk).
"""

from __future__ import annotations

from collections import defaultdict

from repro.logstore.base import LogScheme, ParityReadResult
from repro.logstore.records import LogRecord


class AppendOnlyPL(LogScheme):
    name = "pl"

    def __init__(self, disk, bytes_scale: float = 1.0, **kwargs):
        super().__init__(disk, bytes_scale=bytes_scale, **kwargs)
        #: (stripe, parity) -> [bytes appended per flush batch that touched it]
        self._delta_extents: dict[tuple[int, int], list[int]] = defaultdict(list)
        self._base_extent: dict[tuple[int, int], int] = {}
        self.appended_bytes = 0  # the append-only log never reclaims in place

    def flush(self, records: list[LogRecord], now: float) -> float:
        if not records:
            return 0.0
        total = sum(r.logical_nbytes for r in records)
        dur = self.disk.write(total, sequential=True, now=now)
        self.appended_bytes += total
        self.counters.add("log_appended_bytes", total)
        per_key_delta_bytes: dict[tuple[int, int], int] = defaultdict(int)
        for rec in records:
            if rec.is_chunk:
                self._base_extent[rec.key] = rec.logical_nbytes
            else:
                per_key_delta_bytes[rec.key] += rec.logical_nbytes
        for key, nbytes in per_key_delta_bytes.items():
            self._delta_extents[key].append(nbytes)
        self._apply_all(records)
        self._note_flush(records, dur)
        return dur

    def read_parity(
        self, stripe_id: int, parity_index: int, phys_size: int, now: float
    ) -> ParityReadResult:
        region = self.region(stripe_id, parity_index)
        key = (stripe_id, parity_index)
        duration = 0.0
        reads = 0
        logical = 0
        base_bytes = self._base_extent.get(key)
        if base_bytes is not None:
            duration += self.disk.read(base_bytes, sequential=False, now=now)
            reads += 1
            logical += base_bytes
        for nbytes in self._delta_extents.get(key, ()):
            # one seek per flush batch; its records are contiguous
            duration += self.disk.read(nbytes, sequential=False, now=now)
            reads += 1
            logical += nbytes
        return ParityReadResult(
            duration_s=duration,
            payload=region.materialise(phys_size),
            disk_reads=reads,
            logical_bytes_read=logical,
            has_base=region.base is not None,
        )

    def drop(self, stripe_id: int, parity_index: int) -> None:
        super().drop(stripe_id, parity_index)
        self._delta_extents.pop((stripe_id, parity_index), None)
        self._base_extent.pop((stripe_id, parity_index), None)

    @property
    def disk_logical_bytes(self) -> int:
        return self.appended_bytes
